// Quickstart: build a task graph by hand, describe a heterogeneous platform,
// and schedule the graph under the bi-directional one-port model with HEFT
// and ILHA.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/sim"
)

func main() {
	// A small pipeline-with-fan DAG: preprocessing feeds four independent
	// workers whose results are combined.
	g := graph.New(6)
	pre := g.AddNode(2, "pre")
	workers := make([]int, 4)
	for i := range workers {
		workers[i] = g.AddNode(4, fmt.Sprintf("work%d", i))
		g.MustEdge(pre, workers[i], 3) // 3 data items to each worker
	}
	post := g.AddNode(2, "post")
	for _, w := range workers {
		g.MustEdge(w, post, 3)
	}

	// Two fast processors (cycle-time 1) and one slower (cycle-time 2),
	// fully connected with link cost 1 per data item.
	pl, err := platform.Uniform([]float64{1, 1, 2}, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
		heft, err := heuristics.HEFT(g, pl, model)
		if err != nil {
			log.Fatal(err)
		}
		ilha, err := heuristics.ILHA(g, pl, model, heuristics.ILHAOptions{B: 4})
		if err != nil {
			log.Fatal(err)
		}
		// Always validate before trusting a schedule.
		for _, s := range []*sched.Schedule{heft, ilha} {
			if err := sched.Validate(g, pl, s, model); err != nil {
				log.Fatalf("invalid schedule: %v", err)
			}
		}
		fmt.Printf("== %s model ==\n", model)
		fmt.Printf("HEFT: makespan %g with %d communications\n", heft.Makespan(), heft.CommCount())
		fmt.Printf("ILHA: makespan %g with %d communications\n", ilha.Makespan(), ilha.CommCount())
		fmt.Println(sim.Gantt(g, pl, ilha, 72))
	}
	fmt.Println("Note how the one-port model serializes the fan-out and fan-in")
	fmt.Println("messages that the macro-dataflow model happily overlaps.")
}
