// Laplace schedules the LAPLACE testbed — the wavefront task graph of a
// Laplace equation solver — on the paper's 10-processor heterogeneous
// platform and compares every heuristic in the library under the one-port
// model. It is the workload where ILHA's load balancing pays off most
// (Figure 9 of the paper).
//
//	go run ./examples/laplace [-size 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func main() {
	size := flag.Int("size", 40, "grid side (size x size tasks)")
	flag.Parse()

	g := testbeds.Laplace(*size, exp.CommRatio)
	pl := platform.Paper()
	seq := pl.SequentialTime(g.TotalWeight())

	fmt.Printf("LAPLACE %dx%d: %d tasks, %d edges, sequential time %g\n",
		*size, *size, g.NumNodes(), g.NumEdges(), seq)
	fmt.Printf("speedup bound: %.4g\n\n", pl.MaxSpeedup())
	fmt.Printf("%-12s %12s %10s %10s %10s\n", "heuristic", "makespan", "speedup", "comms", "time")

	for _, name := range []string{"heft", "ilha", "cpop", "bil", "dls", "roundrobin"} {
		if name == "dls" && *size > 50 {
			// DLS probes every (task, processor) pair per step: quadratic
			// and slow on big grids.
			fmt.Printf("%-12s %12s\n", name, "(skipped at this size)")
			continue
		}
		f, err := heuristics.ByName(name, heuristics.ILHAOptions{B: 38})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s, err := f(g, pl, sched.OnePort)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		fmt.Printf("%-12s %12.0f %10.3f %10d %10s\n",
			name, s.Makespan(), seq/s.Makespan(), s.CommCount(), elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nILHA chunk-size sensitivity (B sweep):")
	res, err := exp.BSweep("laplace", *size, pl, sched.OnePort, []int{10, 20, 38})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range []int{10, 20, 38} {
		fmt.Printf("  B=%-3d speedup %.3f\n", b, res[b])
	}
}
