// LU schedules the LU-decomposition task graph and shows the two phenomena
// §5.3 discusses for Figure 8: the critical path makes small ILHA chunks
// (small B) attractive, and the one-port model costs real performance over
// the (unrealistically optimistic) macro-dataflow model.
//
//	go run ./examples/lu [-size 60]
package main

import (
	"flag"
	"fmt"
	"log"

	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/sim"
	"oneport/internal/testbeds"
)

func main() {
	size := flag.Int("size", 60, "matrix dimension")
	flag.Parse()

	g := testbeds.LU(*size, exp.CommRatio)
	pl := platform.Paper()
	seq := pl.SequentialTime(g.TotalWeight())
	fmt.Printf("LU %d: %d tasks, %d edges\n\n", *size, g.NumNodes(), g.NumEdges())

	// one-port vs macro-dataflow, both heuristics
	fmt.Printf("%-16s %14s %14s\n", "", "macro-dataflow", "one-port")
	for _, h := range []string{"heft", "ilha"} {
		f, err := heuristics.ByName(h, heuristics.ILHAOptions{B: 4})
		if err != nil {
			log.Fatal(err)
		}
		var sp [2]float64
		for i, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
			s, err := f(g, pl, model)
			if err != nil {
				log.Fatal(err)
			}
			if err := sched.Validate(g, pl, s, model); err != nil {
				log.Fatalf("%s/%v: %v", h, model, err)
			}
			sp[i] = seq / s.Makespan()
		}
		fmt.Printf("%-16s %14.3f %14.3f   (speedup)\n", h+" (B=4)", sp[0], sp[1])
	}

	// B sweep under one-port: the critical path favours small chunks
	fmt.Println("\nILHA B sweep (one-port):")
	bs := []int{2, 4, 6, 10, 20, 38}
	res, err := exp.BSweep("lu", *size, pl, sched.OnePort, bs)
	if err != nil {
		log.Fatal(err)
	}
	bestB, bestSp := 0, 0.0
	for _, b := range bs {
		fmt.Printf("  B=%-3d speedup %.3f\n", b, res[b])
		if res[b] > bestSp {
			bestB, bestSp = b, res[b]
		}
	}
	fmt.Printf("best B on this instance: %d\n\n", bestB)

	// a small instance rendered as a Gantt chart
	small := testbeds.LU(8, exp.CommRatio)
	s, err := heuristics.ILHA(small, pl, sched.OnePort, heuristics.ILHAOptions{B: bestB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LU(8) ILHA one-port schedule:")
	fmt.Print(sim.Gantt(small, pl, s, 90))
}
