// Cluster schedules a workload on a *sparse* cluster topology: two switches
// of four workstations each, joined by a single backbone wire. Messages
// between the halves are routed through the gateway processors hop by hop,
// each hop obeying the one-port constraint (§4.3: "if there is no direct
// link ... we redo the previous step for all intermediate messages between
// adjacent processors").
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/sim"
	"oneport/internal/testbeds"
)

// buildCluster returns an 8-processor platform: processors 0-3 are fully
// wired to each other (cost 1), processors 4-7 likewise, and only 3<->4 is
// wired across (cost 2, the backbone). Processors 0-3 are fast (cycle 1),
// 4-7 slower (cycle 2).
func buildCluster() (*platform.Platform, error) {
	const p = 8
	inf := math.Inf(1)
	link := make([][]float64, p)
	for q := range link {
		link[q] = make([]float64, p)
		for r := range link[q] {
			switch {
			case q == r:
				link[q][r] = 0
			case q < 4 && r < 4, q >= 4 && r >= 4:
				link[q][r] = 1
			case (q == 3 && r == 4) || (q == 4 && r == 3):
				link[q][r] = 2
			default:
				link[q][r] = inf
			}
		}
	}
	return platform.New([]float64{1, 1, 1, 1, 2, 2, 2, 2}, link)
}

func main() {
	pl, err := buildCluster()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := pl.ComputeRoutes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster: 2x4 workstations, single backbone wire 3<->4")
	fmt.Printf("route 0 -> 7: %v (cost %g per data item)\n\n", rt.Path(0, 7), rt.Dist(0, 7))

	g := testbeds.RandomLayered(11, 6, 8, 3, 2)
	fmt.Printf("workload: random layered DAG, %d tasks, %d edges\n\n", g.NumNodes(), g.NumEdges())

	for _, name := range []string{"heft", "ilha"} {
		f, err := heuristics.ByName(name, heuristics.ILHAOptions{B: 8})
		if err != nil {
			log.Fatal(err)
		}
		s, err := f(g, pl, sched.OnePort)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		multihop := 0
		for i := range s.Comms {
			if len(s.Comms[i].Hops) > 1 {
				multihop++
			}
		}
		fmt.Printf("%-5s makespan %-8g comms %-4d (of which routed multi-hop: %d)\n",
			name, s.Makespan(), s.CommCount(), multihop)
	}

	// A schedule where routing is forced: a chain crossing the backbone.
	fmt.Println("\nforced cross-backbone pipeline:")
	cg := graph.New(3)
	a := cg.AddNode(2, "ingest")
	b := cg.AddNode(8, "heavy")
	c := cg.AddNode(2, "report")
	cg.MustEdge(a, b, 4)
	cg.MustEdge(b, c, 4)
	s, err := heuristics.HEFT(cg, pl, sched.OnePort)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Validate(cg, pl, s, sched.OnePort); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sim.Trace(cg, s))
}
