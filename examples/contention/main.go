// Contention reproduces the paper's motivating example (§2.3, Figure 1): a
// fork task graph whose parent must send one message per child. Under the
// macro-dataflow model all messages travel in parallel and the makespan is
// 3; under the bi-directional one-port model the parent's send port
// serializes them and the best achievable makespan is 5 — which the exact
// solver confirms and one-port HEFT attains.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"oneport/internal/heuristics"
	"oneport/internal/npc"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/sim"
	"oneport/internal/testbeds"
)

func main() {
	// Figure 1: parent of weight 1, six children of weight 1, one data item
	// on each edge; five same-speed processors with unit links.
	g, err := testbeds.Fork(1,
		[]float64{1, 1, 1, 1, 1, 1},
		[]float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	pl, err := platform.Homogeneous(5)
	if err != nil {
		log.Fatal(err)
	}

	macro, err := heuristics.HEFT(g, pl, sched.MacroDataflow)
	if err != nil {
		log.Fatal(err)
	}
	oneport, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := npc.SolveFork(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 fork graph: 1 parent, 6 children, all costs 1, 5 processors")
	fmt.Printf("macro-dataflow HEFT makespan: %g (messages overlap freely)\n", macro.Makespan())
	fmt.Printf("one-port HEFT makespan:       %g\n", oneport.Makespan())
	fmt.Printf("one-port exact optimum:       %g\n", opt)
	fmt.Println()
	fmt.Println("macro-dataflow schedule:")
	fmt.Print(sim.Gantt(g, pl, macro, 60))
	fmt.Println()
	fmt.Println("one-port schedule (sends serialized):")
	fmt.Print(sim.Gantt(g, pl, oneport, 60))
	fmt.Println()

	// The gap grows with the fan-out: serialized sends become the
	// bottleneck ("arbitrarily large differences in the makespans", §2.3).
	fmt.Println("fan-out scaling (macro vs one-port HEFT makespans):")
	for _, n := range []int{6, 12, 24, 48} {
		weights := make([]float64, n)
		data := make([]float64, n)
		for i := range weights {
			weights[i], data[i] = 1, 1
		}
		gn, err := testbeds.Fork(1, weights, data)
		if err != nil {
			log.Fatal(err)
		}
		pln, err := platform.Homogeneous(n)
		if err != nil {
			log.Fatal(err)
		}
		m, err := heuristics.HEFT(gn, pln, sched.MacroDataflow)
		if err != nil {
			log.Fatal(err)
		}
		o, err := heuristics.HEFT(gn, pln, sched.OnePort)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d children: macro %4g   one-port %4g\n", n, m.Makespan(), o.Makespan())
	}
}
