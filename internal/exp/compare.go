package exp

import (
	"fmt"
	"sort"
	"strings"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// CompareResult aggregates one heuristic's performance over a workload set.
type CompareResult struct {
	Heuristic    string
	MeanSpeedup  float64
	WorstSpeedup float64
	MeanComms    float64
	Wins         int // workloads where this heuristic had the (joint) best makespan
}

// Comparison is the result of running every registered heuristic on a
// workload suite, the experimental methodology of the paper's prior work
// (ILHA versus PCT/BIL/CPOP/GDL/HEFT) extended with this library's extra
// schedulers and controls.
type Comparison struct {
	Model     sched.Model
	Workloads []string
	Results   []CompareResult // sorted by decreasing mean speedup
}

// Workload is a named graph to compare on.
type Workload struct {
	Name string
	G    *graph.Graph
}

// StandardWorkloads returns a mixed suite: one small instance of each paper
// testbed plus a few random layered DAGs.
func StandardWorkloads(size int) ([]Workload, error) {
	var out []Workload
	for _, name := range testbeds.Names() {
		g, err := testbeds.ByName(name, size, CommRatio)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{Name: name, G: g})
	}
	ch := testbeds.Cholesky(size/2+2, CommRatio)
	out = append(out, Workload{Name: "cholesky", G: ch})
	for seed := int64(1); seed <= 3; seed++ {
		g := testbeds.RandomLayered(seed, size/2+2, 6, 5, CommRatio)
		out = append(out, Workload{Name: fmt.Sprintf("random%d", seed), G: g})
	}
	return out, nil
}

// Compare runs every registered heuristic on every workload under the model
// and aggregates speedups, message counts and win counts. Every schedule is
// validated; an invalid schedule is an error, not a data point.
func Compare(workloads []Workload, pl *platform.Platform, model sched.Model, opts heuristics.ILHAOptions) (*Comparison, error) {
	names := heuristics.Names()
	type acc struct {
		speedups []float64
		comms    int
		wins     int
	}
	accs := make(map[string]*acc, len(names))
	for _, n := range names {
		accs[n] = &acc{}
	}
	cmp := &Comparison{Model: model}
	for _, w := range workloads {
		cmp.Workloads = append(cmp.Workloads, w.Name)
		seq := pl.SequentialTime(w.G.TotalWeight())
		best := -1.0
		makespans := make(map[string]float64, len(names))
		for _, n := range names {
			f, err := heuristics.ByName(n, opts)
			if err != nil {
				return nil, err
			}
			s, err := f(w.G, pl, model)
			if err != nil {
				return nil, fmt.Errorf("exp: %s on %s: %w", n, w.Name, err)
			}
			if err := sched.Validate(w.G, pl, s, model); err != nil {
				return nil, fmt.Errorf("exp: %s on %s: %w", n, w.Name, err)
			}
			m := s.Makespan()
			makespans[n] = m
			accs[n].speedups = append(accs[n].speedups, seq/m)
			accs[n].comms += s.CommCount()
			if best < 0 || m < best {
				best = m
			}
		}
		for _, n := range names {
			if makespans[n] <= best*(1+1e-9) {
				accs[n].wins++
			}
		}
	}
	for _, n := range names {
		a := accs[n]
		r := CompareResult{Heuristic: n, Wins: a.wins}
		worst := -1.0
		var sum float64
		for _, sp := range a.speedups {
			sum += sp
			if worst < 0 || sp < worst {
				worst = sp
			}
		}
		if len(a.speedups) > 0 {
			r.MeanSpeedup = sum / float64(len(a.speedups))
			r.MeanComms = float64(a.comms) / float64(len(a.speedups))
		}
		r.WorstSpeedup = worst
		cmp.Results = append(cmp.Results, r)
	}
	sort.SliceStable(cmp.Results, func(i, j int) bool {
		return cmp.Results[i].MeanSpeedup > cmp.Results[j].MeanSpeedup
	})
	return cmp, nil
}

// Table renders the comparison as fixed-width text.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heuristic comparison — %s model, %d workloads (%s)\n",
		c.Model, len(c.Workloads), strings.Join(c.Workloads, ", "))
	fmt.Fprintf(&b, "%-12s %13s %14s %11s %6s\n", "heuristic", "mean speedup", "worst speedup", "mean comms", "wins")
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-12s %13.3f %14.3f %11.1f %6d\n",
			r.Heuristic, r.MeanSpeedup, r.WorstSpeedup, r.MeanComms, r.Wins)
	}
	return b.String()
}

// CSV renders a figure series as comma-separated values for external
// plotting: size,heft_speedup,ilha_speedup,heft_comms,ilha_comms.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("size,tasks,heft_speedup,ilha_speedup,heft_makespan,ilha_makespan,heft_comms,ilha_comms\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%d,%.6g,%.6g,%.6g,%.6g,%d,%d\n",
			p.Size, p.Tasks, p.HEFTSpeedup, p.ILHASpeedup,
			p.HEFTMakespan, p.ILHAMakespan, p.HEFTComms, p.ILHAComms)
	}
	return b.String()
}
