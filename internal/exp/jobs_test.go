package exp

import (
	"math/rand"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
)

// TestJobDecompositionMatchesRun pins the sharding contract: running a
// figure's jobs independently and in scrambled order, then reassembling,
// gives exactly the Series the in-process sweep produces.
func TestJobDecompositionMatchesRun(t *testing.T) {
	fig, err := FigureByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.Paper()
	sizes := []int{20, 40, 60}

	want, err := Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	specs := fig.PointSpecs(sizes)
	rand.New(rand.NewSource(1)).Shuffle(len(specs), func(i, j int) {
		specs[i], specs[j] = specs[j], specs[i]
	})
	var points []Point
	for _, ps := range specs {
		p, err := RunPointSpec(ps, pl, sched.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, p)
	}
	got, err := AssembleSeries(fig, sched.OnePort, points)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Points) != len(want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got.Points[i], want.Points[i])
		}
	}
}

func TestAssembleSeriesRejectsDuplicates(t *testing.T) {
	fig, err := FigureByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	_, err = AssembleSeries(fig, sched.OnePort, []Point{{Size: 20}, {Size: 20}})
	if err == nil {
		t.Fatal("duplicate sizes must be rejected")
	}
}
