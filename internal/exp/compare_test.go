package exp

import (
	"strings"
	"testing"

	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestCompareStandardWorkloads(t *testing.T) {
	wls, err := StandardWorkloads(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 10 { // 6 testbeds + cholesky + 3 random
		t.Fatalf("workloads = %d, want 10", len(wls))
	}
	cmp, err := Compare(wls, platform.Paper(), sched.OnePort, heuristics.ILHAOptions{B: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != len(heuristics.Names()) {
		t.Fatalf("results = %d, want %d", len(cmp.Results), len(heuristics.Names()))
	}
	// sorted by decreasing mean speedup
	for i := 1; i < len(cmp.Results); i++ {
		if cmp.Results[i-1].MeanSpeedup < cmp.Results[i].MeanSpeedup {
			t.Fatalf("results not sorted: %+v", cmp.Results)
		}
	}
	// sanity: the random control should not rank first
	if cmp.Results[0].Heuristic == "random" || cmp.Results[0].Heuristic == "roundrobin" {
		t.Errorf("a control heuristic ranked first: %+v", cmp.Results[0])
	}
	// every workload has at least one winner
	total := 0
	for _, r := range cmp.Results {
		total += r.Wins
	}
	if total < len(wls) {
		t.Errorf("win counts %d below workload count %d", total, len(wls))
	}
	tbl := cmp.Table()
	for _, frag := range []string{"heft", "ilha", "mean speedup", "wins"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("table missing %q:\n%s", frag, tbl)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	fig, _ := FigureByID("fig7")
	s, err := Run(fig, platform.Paper(), sched.OnePort, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "size,tasks,heft_speedup") {
		t.Errorf("csv header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,") {
		t.Errorf("csv row wrong: %s", lines[1])
	}
}
