package exp

import (
	"context"
	"fmt"

	"oneport/internal/cli"
	"oneport/internal/platform"
	"oneport/internal/service"
	"oneport/internal/testbeds"
)

// RunViaService regenerates one figure through a running scheduling service
// instead of in-process calls: every (size, heuristic) pair becomes one
// request of a single POST /batch payload, and the summary fields of the
// responses reassemble into the Series. The server computes speedup and
// makespan with the same formulas RunPoint uses on the same (JSON
// round-tripped, hence bit-identical) graph and platform, so the resulting
// series — tables and CSV — is byte-identical to the in-process Run. A
// sweep re-POSTed to a warm server is answered from its result cache
// without re-entering a scheduler.
func RunViaService(ctx context.Context, cl *service.Client, fig Figure, pl *platform.Platform, modelName string, sizes []int) (*Series, error) {
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return nil, err
	}
	var b service.Batch
	for _, n := range sizes {
		g, err := testbeds.ByName(fig.Testbed, n, CommRatio)
		if err != nil {
			return nil, err
		}
		b.Requests = append(b.Requests,
			service.Request{Graph: g, Platform: pl, Heuristic: "heft", Model: modelName},
			service.Request{Graph: g, Platform: pl, Heuristic: "ilha", Model: modelName,
				Options: service.Options{B: fig.B}},
		)
	}
	resp, err := cl.Batch(ctx, &b)
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(sizes))
	for i, n := range sizes {
		heft, ilha := &resp.Responses[2*i], &resp.Responses[2*i+1]
		for _, r := range []*service.Response{heft, ilha} {
			if r.Error != "" {
				return nil, fmt.Errorf("exp: %s size %d (%s): %s", fig.ID, n, r.Heuristic, r.Error)
			}
		}
		points = append(points, Point{
			Size:         n,
			Tasks:        heft.Tasks,
			HEFTSpeedup:  heft.Speedup,
			ILHASpeedup:  ilha.Speedup,
			HEFTMakespan: heft.Makespan,
			ILHAMakespan: ilha.Makespan,
			HEFTComms:    heft.Comms,
			ILHAComms:    ilha.Comms,
		})
	}
	return AssembleSeries(fig, model, points)
}
