package exp

import (
	"strings"
	"testing"

	"oneport/internal/platform"
)

func TestCSweepRealismTaxGrows(t *testing.T) {
	pl := platform.Paper()
	pts, err := CSweep("laplace", 16, 38, pl, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// with cheap communication the one-port penalty is small; at c = 10 it
	// must be markedly larger
	taxAt := func(p CSweepPoint) float64 { return 1 - p.HEFTSpeedup/p.MacroSpeedup }
	if taxAt(pts[1]) <= taxAt(pts[0]) {
		t.Errorf("realism tax did not grow with c: %.3f (c=1) vs %.3f (c=10)",
			taxAt(pts[0]), taxAt(pts[1]))
	}
	// speedups never negative and macro >= one-port for the same heuristic
	for _, p := range pts {
		if p.MacroSpeedup < p.HEFTSpeedup*0.99 {
			t.Errorf("c=%g: macro %g below one-port %g", p.C, p.MacroSpeedup, p.HEFTSpeedup)
		}
	}
	tbl := CSweepTable("laplace", 16, pts)
	if !strings.Contains(tbl, "realism tax") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestHeterogeneitySweep(t *testing.T) {
	pts, err := HeterogeneitySweep("laplace", 16, 38)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.HEFTSpeedup <= 0 || p.ILHASpeedup <= 0 {
			t.Errorf("%s: non-positive speedups %+v", p.Label, p)
		}
		if len(p.Cycles) != 10 {
			t.Errorf("%s: %d processors, want 10", p.Label, len(p.Cycles))
		}
	}
	tbl := HetTable("laplace", 16, pts)
	for _, frag := range []string{"homogeneous", "paper", "extreme", "gain%"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("table missing %q:\n%s", frag, tbl)
		}
	}
}

func TestCSweepUnknownTestbed(t *testing.T) {
	if _, err := CSweep("nope", 8, 4, platform.Paper(), []float64{1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := HeterogeneitySweep("nope", 8, 4); err == nil {
		t.Fatal("expected error")
	}
}
