// Package exp is the experiment harness: it regenerates every figure of the
// paper's evaluation (§5, Figures 7–12) — HEFT versus ILHA under the
// bi-directional one-port model on the six testbeds — and the §5.2 speedup
// bounds. Each figure is a series of (problem size, speedup) points where
// speedup is the sequential time on a fastest processor divided by the
// schedule makespan, exactly the paper's "ratio (execution time)/(sequential
// time)" axis.
package exp

import (
	"fmt"
	"strings"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// CommRatio is the communication-to-computation ratio of all the paper's
// experiments (§5.2, "workstations linked with a slow (Ethernet) network").
const CommRatio = 10.0

// Figure identifies one experiment of the evaluation section.
type Figure struct {
	ID      string // e.g. "fig7"
	Testbed string // testbeds.ByName key
	B       int    // experimentally best chunk size reported by the paper
	Title   string
}

// Figures lists the paper's six evaluation figures with the B values §5.3
// reports as best.
var Figures = []Figure{
	{ID: "fig7", Testbed: "forkjoin", B: 38, Title: "FORK-JOIN (Figure 7)"},
	{ID: "fig8", Testbed: "lu", B: 4, Title: "LU (Figure 8)"},
	{ID: "fig9", Testbed: "laplace", B: 38, Title: "LAPLACE (Figure 9)"},
	{ID: "fig10", Testbed: "ldmt", B: 20, Title: "LDMt (Figure 10)"},
	{ID: "fig11", Testbed: "doolittle", B: 20, Title: "DOOLITTLE (Figure 11)"},
	{ID: "fig12", Testbed: "stencil", B: 38, Title: "STENCIL (Figure 12)"},
}

// FigureByID returns the figure with the given id.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("exp: unknown figure %q", id)
}

// PaperSizes returns the problem sizes of the x-axis in Figures 7-12.
func PaperSizes() []int { return []int{100, 150, 200, 250, 300, 350, 400, 450, 500} }

// QuickSizes returns a reduced size sweep for tests and default benchmarks;
// the curves' shapes (who wins, trends) are already stable at these sizes.
func QuickSizes() []int { return []int{20, 40, 60, 80} }

// Point is one x-position of a figure: both heuristics at one problem size.
type Point struct {
	Size         int
	Tasks        int
	HEFTSpeedup  float64
	ILHASpeedup  float64
	HEFTMakespan float64
	ILHAMakespan float64
	HEFTComms    int
	ILHAComms    int
}

// GainPercent returns how much ILHA improves over HEFT in makespan, in
// percent (positive = ILHA better).
func (p Point) GainPercent() float64 {
	if p.HEFTMakespan == 0 {
		return 0
	}
	return 100 * (p.HEFTMakespan - p.ILHAMakespan) / p.HEFTMakespan
}

// Series is a complete figure: one point per problem size.
type Series struct {
	Figure Figure
	Model  sched.Model
	Points []Point
}

// Run regenerates one figure on the given platform and model for the given
// problem sizes, using the figure's B for ILHA. It is the in-process
// execution of the figure's job decomposition: one RunPointSpec per size,
// reassembled by AssembleSeries — sharded execution (internal/service/sweep)
// runs exactly the same jobs and merges to the same Series. As a
// consequence the series is always reported in ascending size order and
// duplicate sizes are rejected, whatever order the caller passed.
func Run(fig Figure, pl *platform.Platform, model sched.Model, sizes []int) (*Series, error) {
	points := make([]Point, 0, len(sizes))
	for _, ps := range fig.PointSpecs(sizes) {
		p, err := RunPointSpec(ps, pl, model)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return AssembleSeries(fig, model, points)
}

// RunPoint schedules one graph with both heuristics and returns the
// comparison.
func RunPoint(g *graph.Graph, pl *platform.Platform, model sched.Model, b int) (Point, error) {
	return RunPointTuned(g, pl, model, b, nil)
}

// RunPointTuned is RunPoint with a per-run heuristics.Tuning threaded into
// both scheduler runs, so a worker lane feeding many points through one
// Tuning (sweep workers, the service job feed) reuses its grown probe
// scratch instead of reallocating it per point. A Tuning never changes a
// schedule, so the Point is byte-identical to RunPoint's.
func RunPointTuned(g *graph.Graph, pl *platform.Platform, model sched.Model, b int, tune *heuristics.Tuning) (Point, error) {
	seq := pl.SequentialTime(g.TotalWeight())
	heftFn, err := heuristics.ByNameTuned("heft", heuristics.ILHAOptions{}, tune)
	if err != nil {
		return Point{}, err
	}
	heft, err := heftFn(g, pl, model)
	if err != nil {
		return Point{}, err
	}
	ilhaFn, err := heuristics.ByNameTuned("ilha", heuristics.ILHAOptions{B: b}, tune)
	if err != nil {
		return Point{}, err
	}
	ilha, err := ilhaFn(g, pl, model)
	if err != nil {
		return Point{}, err
	}
	if err := sched.Validate(g, pl, heft, model); err != nil {
		return Point{}, fmt.Errorf("HEFT schedule invalid: %w", err)
	}
	if err := sched.Validate(g, pl, ilha, model); err != nil {
		return Point{}, fmt.Errorf("ILHA schedule invalid: %w", err)
	}
	return Point{
		Tasks:        g.NumNodes(),
		HEFTSpeedup:  seq / heft.Makespan(),
		ILHASpeedup:  seq / ilha.Makespan(),
		HEFTMakespan: heft.Makespan(),
		ILHAMakespan: ilha.Makespan(),
		HEFTComms:    heft.CommCount(),
		ILHAComms:    ilha.CommCount(),
	}, nil
}

// Table renders the series as a fixed-width text table matching the figure's
// series: one row per size with both speedups, ILHA's gain and the message
// counts.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s model, c = %g, B = %d\n", s.Figure.Title, s.Model, CommRatio, s.Figure.B)
	fmt.Fprintf(&b, "%6s %8s %14s %14s %8s %12s %12s\n",
		"size", "tasks", "HEFT speedup", "ILHA speedup", "gain%", "HEFT comms", "ILHA comms")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%6d %8d %14.3f %14.3f %8.2f %12d %12d\n",
			p.Size, p.Tasks, p.HEFTSpeedup, p.ILHASpeedup, p.GainPercent(), p.HEFTComms, p.ILHAComms)
	}
	return b.String()
}

// BSweep runs ILHA for every B in bs on one testbed instance and returns the
// speedups, reproducing the §5.3 observation that the best B depends on the
// testbed (4 for LU, 38 for LAPLACE/STENCIL/FORK-JOIN, 20 for
// DOOLITTLE/LDMt).
func BSweep(testbed string, n int, pl *platform.Platform, model sched.Model, bs []int) (map[int]float64, error) {
	g, err := testbeds.ByName(testbed, n, CommRatio)
	if err != nil {
		return nil, err
	}
	seq := pl.SequentialTime(g.TotalWeight())
	out := make(map[int]float64, len(bs))
	for _, b := range bs {
		s, err := heuristics.ILHA(g, pl, model, heuristics.ILHAOptions{B: b})
		if err != nil {
			return nil, err
		}
		if err := sched.Validate(g, pl, s, model); err != nil {
			return nil, fmt.Errorf("B=%d: %w", b, err)
		}
		out[b] = seq / s.Makespan()
	}
	return out, nil
}

// SpeedupBound returns the §5.2 upper bound on any speedup for the platform
// (7.6 on the paper platform): communications ignored, perfect balance.
func SpeedupBound(pl *platform.Platform) float64 { return pl.MaxSpeedup() }

// ForkJoinSpeedupCap returns the §5.3 analytic speedup cap for the
// FORK-JOIN testbed: s <= w·t/c + 1, where w is the task weight, t the
// fastest cycle-time and c the communication cost; 1.6 with the paper's
// parameters. Communications to and from remote children serialize through
// the fork and join nodes' processor, which caps the useful parallelism.
func ForkJoinSpeedupCap(w, t, c float64) float64 { return w*t/c + 1 }
