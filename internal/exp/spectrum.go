package exp

import (
	"fmt"
	"strings"

	"oneport/internal/bound"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// SpectrumPoint is one (model, heuristic) cell of the model-spectrum table.
type SpectrumPoint struct {
	Model    sched.Model
	Makespan float64
	Speedup  float64
	Comms    int
	Gap      float64 // makespan / lower bound (1.0 = provably optimal)
}

// SpectrumRow is one model's results for both heuristics.
type SpectrumRow struct {
	HEFT SpectrumPoint
	ILHA SpectrumPoint
}

// Spectrum compares the five communication models (§2's discussion made
// quantitative): the same testbed scheduled by HEFT and ILHA under
// macro-dataflow, link-contention, one-port, uni-port and
// one-port-without-overlap. The result shows how much each layer of realism
// costs.
type Spectrum struct {
	Testbed string
	Size    int
	B       int
	Rows    map[sched.Model]SpectrumRow
}

// RunSpectrum builds the spectrum table for one testbed instance.
func RunSpectrum(testbed string, n, b int, pl *platform.Platform) (*Spectrum, error) {
	g, err := testbeds.ByName(testbed, n, CommRatio)
	if err != nil {
		return nil, err
	}
	seq := pl.SequentialTime(g.TotalWeight())
	out := &Spectrum{Testbed: testbed, Size: n, B: b, Rows: map[sched.Model]SpectrumRow{}}
	for _, m := range sched.Models() {
		lb, err := bound.Best(g, pl, m)
		if err != nil {
			return nil, err
		}
		mk := func(s *sched.Schedule) SpectrumPoint {
			p := SpectrumPoint{Model: m, Makespan: s.Makespan(), Comms: s.CommCount()}
			p.Speedup = seq / p.Makespan
			if lb > 0 {
				p.Gap = p.Makespan / lb
			}
			return p
		}
		hs, err := heuristics.HEFT(g, pl, m)
		if err != nil {
			return nil, err
		}
		if err := sched.Validate(g, pl, hs, m); err != nil {
			return nil, fmt.Errorf("exp: HEFT under %v: %w", m, err)
		}
		is, err := heuristics.ILHA(g, pl, m, heuristics.ILHAOptions{B: b})
		if err != nil {
			return nil, err
		}
		if err := sched.Validate(g, pl, is, m); err != nil {
			return nil, fmt.Errorf("exp: ILHA under %v: %w", m, err)
		}
		out.Rows[m] = SpectrumRow{HEFT: mk(hs), ILHA: mk(is)}
	}
	return out, nil
}

// Table renders the spectrum as fixed-width text, one row per model from
// the least to the most restrictive.
func (sp *Spectrum) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model spectrum — %s size %d, c = %g, B = %d\n", sp.Testbed, sp.Size, CommRatio, sp.B)
	fmt.Fprintf(&b, "%-22s %13s %9s %13s %9s %9s\n",
		"model", "HEFT speedup", "gap", "ILHA speedup", "gap", "comms")
	for _, m := range sched.Models() {
		r := sp.Rows[m]
		fmt.Fprintf(&b, "%-22s %13.3f %9.2f %13.3f %9.2f %9d\n",
			m.String(), r.HEFT.Speedup, r.HEFT.Gap, r.ILHA.Speedup, r.ILHA.Gap, r.ILHA.Comms)
	}
	return b.String()
}
