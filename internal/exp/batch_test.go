package exp

import (
	"context"
	"net/http/httptest"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/service"
)

// TestRunViaServiceMatchesInProcess is the diff-clean pin for the /batch
// figure path: a figure regenerated through a live scheduling service must
// render — table and CSV — byte-identical to the in-process exp.Run, and a
// re-POSTed sweep must be answered from the server's result cache.
func TestRunViaServiceMatchesInProcess(t *testing.T) {
	srv := service.New(service.Config{PoolSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &service.Client{BaseURL: ts.URL, HTTP: ts.Client()}

	pl := platform.Paper()
	sizes := []int{10, 20, 30}
	for _, figID := range []string{"fig7", "fig8"} {
		fig, err := FigureByID(figID)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(fig, pl, sched.OnePort, sizes)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunViaService(context.Background(), cl, fig, pl, "oneport", sizes)
		if err != nil {
			t.Fatal(err)
		}
		if got.Table() != want.Table() {
			t.Fatalf("%s: served table differs from in-process:\n got:\n%s\nwant:\n%s", figID, got.Table(), want.Table())
		}
		if got.CSV() != want.CSV() {
			t.Fatalf("%s: served CSV differs from in-process", figID)
		}
	}

	// the repeated sweep is a cache-served no-op for the schedulers
	missesBefore := srv.StatsSnapshot().CacheMisses
	fig, _ := FigureByID("fig8")
	if _, err := RunViaService(context.Background(), cl, fig, pl, "oneport", sizes); err != nil {
		t.Fatal(err)
	}
	st := srv.StatsSnapshot()
	if st.CacheMisses != missesBefore {
		t.Fatalf("repeated sweep re-entered the scheduler: misses %d -> %d", missesBefore, st.CacheMisses)
	}
}
