package exp

import (
	"fmt"
	"strings"

	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// Extension sweeps: the paper fixes the communication-to-computation ratio
// at c = 10 and the platform at 5/3/2 processors of cycle-times 6/10/15.
// These runners vary exactly those two knobs, one at a time, to show where
// the paper's conclusions hold and where they cross over.

// CSweepPoint is one communication-ratio setting.
type CSweepPoint struct {
	C            float64
	MacroSpeedup float64 // HEFT under macro-dataflow
	HEFTSpeedup  float64 // HEFT under one-port
	ILHASpeedup  float64 // ILHA under one-port
}

// CSweep reruns one testbed instance while varying the
// communication-to-computation ratio. As c grows, the gap between the
// macro-dataflow estimate and the one-port reality widens — the paper's
// core argument, swept.
func CSweep(testbed string, n, b int, pl *platform.Platform, cs []float64) ([]CSweepPoint, error) {
	var out []CSweepPoint
	for _, c := range cs {
		g, err := testbeds.ByName(testbed, n, c)
		if err != nil {
			return nil, err
		}
		seq := pl.SequentialTime(g.TotalWeight())
		mac, err := heuristics.HEFT(g, pl, sched.MacroDataflow)
		if err != nil {
			return nil, err
		}
		hef, err := heuristics.HEFT(g, pl, sched.OnePort)
		if err != nil {
			return nil, err
		}
		ilh, err := heuristics.ILHA(g, pl, sched.OnePort, heuristics.ILHAOptions{B: b})
		if err != nil {
			return nil, err
		}
		for _, chk := range []struct {
			s *sched.Schedule
			m sched.Model
		}{{mac, sched.MacroDataflow}, {hef, sched.OnePort}, {ilh, sched.OnePort}} {
			if err := sched.Validate(g, pl, chk.s, chk.m); err != nil {
				return nil, fmt.Errorf("exp: c=%g: %w", c, err)
			}
		}
		out = append(out, CSweepPoint{
			C:            c,
			MacroSpeedup: seq / mac.Makespan(),
			HEFTSpeedup:  seq / hef.Makespan(),
			ILHASpeedup:  seq / ilh.Makespan(),
		})
	}
	return out, nil
}

// CSweepTable renders a CSweep result.
func CSweepTable(testbed string, n int, pts []CSweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "communication-ratio sweep — %s size %d\n", testbed, n)
	fmt.Fprintf(&b, "%8s %14s %14s %14s %12s\n", "c", "macro HEFT", "1-port HEFT", "1-port ILHA", "realism tax")
	for _, p := range pts {
		tax := 0.0
		if p.MacroSpeedup > 0 {
			tax = 100 * (1 - p.HEFTSpeedup/p.MacroSpeedup)
		}
		fmt.Fprintf(&b, "%8g %14.3f %14.3f %14.3f %11.1f%%\n",
			p.C, p.MacroSpeedup, p.HEFTSpeedup, p.ILHASpeedup, tax)
	}
	return b.String()
}

// HetPoint is one heterogeneity setting.
type HetPoint struct {
	Label       string
	Cycles      []float64
	HEFTSpeedup float64
	ILHASpeedup float64
	GainPercent float64
}

// HeterogeneityLadder returns 10-processor platforms of (approximately)
// constant aggregate speed Σ1/t but increasing speed spread, from fully
// homogeneous to a 5:1 fast-to-slow ratio.
func HeterogeneityLadder() []struct {
	Label  string
	Cycles []float64
} {
	return []struct {
		Label  string
		Cycles []float64
	}{
		{"homogeneous", []float64{8, 8, 8, 8, 8, 8, 8, 8, 8, 8}},
		{"mild", []float64{6, 6, 6, 6, 8, 8, 8, 12, 12, 12}},
		{"paper", []float64{6, 6, 6, 6, 6, 10, 10, 10, 15, 15}},
		{"extreme", []float64{4, 4, 4, 8, 8, 8, 20, 20, 20, 20}},
	}
}

// HeterogeneitySweep reruns one testbed over the ladder, asking whether
// ILHA's explicit load balancing pays off more as processors diverge.
func HeterogeneitySweep(testbed string, n, b int) ([]HetPoint, error) {
	var out []HetPoint
	for _, rung := range HeterogeneityLadder() {
		pl, err := platform.Uniform(rung.Cycles, 1)
		if err != nil {
			return nil, err
		}
		g, err := testbeds.ByName(testbed, n, CommRatio)
		if err != nil {
			return nil, err
		}
		p, err := RunPoint(g, pl, sched.OnePort, b)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", rung.Label, err)
		}
		out = append(out, HetPoint{
			Label:       rung.Label,
			Cycles:      rung.Cycles,
			HEFTSpeedup: p.HEFTSpeedup,
			ILHASpeedup: p.ILHASpeedup,
			GainPercent: p.GainPercent(),
		})
	}
	return out, nil
}

// HetTable renders a HeterogeneitySweep result.
func HetTable(testbed string, n int, pts []HetPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "heterogeneity sweep — %s size %d, c = %g\n", testbed, n, CommRatio)
	fmt.Fprintf(&b, "%-12s %13s %13s %8s\n", "platform", "HEFT speedup", "ILHA speedup", "gain%")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %13.3f %13.3f %8.2f\n", p.Label, p.HEFTSpeedup, p.ILHASpeedup, p.GainPercent)
	}
	return b.String()
}
