package exp

import (
	"math"
	"strings"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestSpeedupBound76(t *testing.T) {
	if got := SpeedupBound(platform.Paper()); math.Abs(got-7.6) > 1e-12 {
		t.Fatalf("SpeedupBound = %g, want 7.6 (§5.2)", got)
	}
}

func TestForkJoinSpeedupCap(t *testing.T) {
	// §5.3: with t = 6, c = 10, w = 1 the cap is 1.6
	if got := ForkJoinSpeedupCap(1, 6, 10); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("cap = %g, want 1.6", got)
	}
}

func TestFigureByID(t *testing.T) {
	f, err := FigureByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if f.Testbed != "lu" || f.B != 4 {
		t.Fatalf("fig8 = %+v", f)
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunForkJoinShape(t *testing.T) {
	// Figure 7's shape: HEFT and ILHA coincide on FORK-JOIN, and the
	// speedup respects the 1.6 analytic cap while clearly beating 1 at
	// moderate sizes.
	fig, _ := FigureByID("fig7")
	s, err := Run(fig, platform.Paper(), sched.OnePort, []int{60, 120})
	if err != nil {
		t.Fatal(err)
	}
	cap16 := ForkJoinSpeedupCap(1, 6, CommRatio)
	for _, p := range s.Points {
		if p.HEFTSpeedup > cap16+1e-9 {
			t.Errorf("size %d: HEFT speedup %g exceeds the analytic cap %g", p.Size, p.HEFTSpeedup, cap16)
		}
		if p.ILHASpeedup > cap16+1e-9 {
			t.Errorf("size %d: ILHA speedup %g exceeds the analytic cap %g", p.Size, p.ILHASpeedup, cap16)
		}
		if p.HEFTSpeedup < 1.2 {
			t.Errorf("size %d: HEFT speedup %g too low for FORK-JOIN", p.Size, p.HEFTSpeedup)
		}
		// "HEFT and ILHA lead to the same scheduling" — allow tiny slack
		if math.Abs(p.HEFTMakespan-p.ILHAMakespan) > 0.05*p.HEFTMakespan {
			t.Errorf("size %d: HEFT %g and ILHA %g diverge on FORK-JOIN",
				p.Size, p.HEFTMakespan, p.ILHAMakespan)
		}
	}
}

func TestRunLUShapeILHAWins(t *testing.T) {
	// Figure 8's shape: at the paper's smallest size (100) HEFT and ILHA
	// with B=4 "achieve similar performances"; the speedups sit well above 1
	// and below the 7.6 bound.
	fig, _ := FigureByID("fig8")
	s, err := Run(fig, platform.Paper(), sched.OnePort, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Points[0]
	if p.ILHAMakespan > p.HEFTMakespan*1.05 {
		t.Errorf("size %d: ILHA makespan %g diverges from HEFT %g", p.Size, p.ILHAMakespan, p.HEFTMakespan)
	}
	if p.HEFTSpeedup < 2 || p.HEFTSpeedup > 7.6 {
		t.Errorf("size %d: HEFT speedup %g out of the plausible band", p.Size, p.HEFTSpeedup)
	}
}

func TestLUILHAGainsAtLargerSizes(t *testing.T) {
	// "ILHA gains more and more as the problem size increases" (§5.3): at
	// n = 150 the swept chunk size (B = 10 on this graph shape) beats HEFT
	// strictly.
	if testing.Short() {
		t.Skip("larger LU instance")
	}
	pl := platform.Paper()
	g, err := testbeds.ByName("lu", 150, CommRatio)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunPoint(g, pl, sched.OnePort, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.ILHAMakespan >= p.HEFTMakespan {
		t.Errorf("ILHA (B=10) makespan %g does not beat HEFT %g at n=150",
			p.ILHAMakespan, p.HEFTMakespan)
	}
}

func TestRunAllFiguresSmall(t *testing.T) {
	// every figure runs end to end at a small size and produces validated
	// schedules with positive speedups
	pl := platform.Paper()
	for _, fig := range Figures {
		s, err := Run(fig, pl, sched.OnePort, []int{20})
		if err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
		p := s.Points[0]
		if p.HEFTSpeedup <= 0 || p.ILHASpeedup <= 0 {
			t.Errorf("%s: non-positive speedups %+v", fig.ID, p)
		}
		if p.HEFTSpeedup > SpeedupBound(pl)+1e-9 || p.ILHASpeedup > SpeedupBound(pl)+1e-9 {
			t.Errorf("%s: speedup beats the 7.6 bound: %+v", fig.ID, p)
		}
		tbl := s.Table()
		if !strings.Contains(tbl, "HEFT speedup") || !strings.Contains(tbl, "20") {
			t.Errorf("%s: table malformed:\n%s", fig.ID, tbl)
		}
	}
}

func TestBSweepRuns(t *testing.T) {
	pl := platform.Paper()
	res, err := BSweep("lu", 20, pl, sched.OnePort, []int{10, 20, 38})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for b, sp := range res {
		if sp <= 0 || sp > 7.6 {
			t.Errorf("B=%d: speedup %g implausible", b, sp)
		}
	}
	if _, err := BSweep("nope", 10, pl, sched.OnePort, []int{10}); err == nil {
		t.Fatal("expected error for unknown testbed")
	}
}

func TestGainPercent(t *testing.T) {
	p := Point{HEFTMakespan: 100, ILHAMakespan: 90}
	if g := p.GainPercent(); math.Abs(g-10) > 1e-12 {
		t.Fatalf("GainPercent = %g, want 10", g)
	}
	if g := (Point{}).GainPercent(); g != 0 {
		t.Fatalf("zero-makespan GainPercent = %g, want 0", g)
	}
}
