package exp

import (
	"fmt"
	"sort"

	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// Figure sweeps decomposed into independent jobs. Every (figure, size) pair
// is one self-contained unit of work with no shared state, so a sweep can
// run in-process (Run), across goroutines, or sharded over worker processes
// (internal/service/sweep) and always reassemble to the same Series.

// PointSpec identifies one independent unit of a figure sweep: one problem
// size of one figure.
type PointSpec struct {
	Figure Figure
	Size   int
}

// PointSpecs decomposes a figure sweep into its independent jobs, one per
// problem size.
func (f Figure) PointSpecs(sizes []int) []PointSpec {
	out := make([]PointSpec, len(sizes))
	for i, n := range sizes {
		out[i] = PointSpec{Figure: f, Size: n}
	}
	return out
}

// RunPointSpec executes one sweep job: it regenerates the testbed instance
// and schedules it with both heuristics. The result depends only on the
// spec, the platform and the model — never on which process runs it.
func RunPointSpec(ps PointSpec, pl *platform.Platform, model sched.Model) (Point, error) {
	return RunPointSpecTuned(ps, pl, model, nil)
}

// RunPointSpecTuned is RunPointSpec with a per-run heuristics.Tuning: the
// form the sweep workers' job feed uses, so a lane draining many specs
// through one Tuning keeps its probe scratch warm across jobs.
func RunPointSpecTuned(ps PointSpec, pl *platform.Platform, model sched.Model, tune *heuristics.Tuning) (Point, error) {
	g, err := testbeds.ByName(ps.Figure.Testbed, ps.Size, CommRatio)
	if err != nil {
		return Point{}, err
	}
	p, err := RunPointTuned(g, pl, model, ps.Figure.B, tune)
	if err != nil {
		return Point{}, fmt.Errorf("exp: %s size %d: %w", ps.Figure.ID, ps.Size, err)
	}
	p.Size = ps.Size
	return p, nil
}

// AssembleSeries merges independently computed points back into a figure
// series, deterministically: points are ordered by size regardless of the
// order (or process) they were computed in. Duplicate sizes are rejected so
// a double-dispatched shard cannot silently skew a merged sweep.
func AssembleSeries(fig Figure, model sched.Model, points []Point) (*Series, error) {
	out := &Series{Figure: fig, Model: model, Points: append([]Point(nil), points...)}
	sort.SliceStable(out.Points, func(i, j int) bool { return out.Points[i].Size < out.Points[j].Size })
	for i := 1; i < len(out.Points); i++ {
		if out.Points[i].Size == out.Points[i-1].Size {
			return nil, fmt.Errorf("exp: duplicate point for %s size %d", fig.ID, out.Points[i].Size)
		}
	}
	return out, nil
}
