package exp

import (
	"strings"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestRunSpectrumLaplace(t *testing.T) {
	sp, err := RunSpectrum("laplace", 16, 38, platform.Paper())
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(sp.Rows))
	}
	macro := sp.Rows[sched.MacroDataflow]
	oneport := sp.Rows[sched.OnePort]
	noOverlap := sp.Rows[sched.OnePortNoOverlap]
	// realism costs performance: macro >= one-port >= no-overlap in speedup
	// (heuristics, so allow tiny slack)
	if macro.HEFT.Speedup < oneport.HEFT.Speedup*0.99 {
		t.Errorf("macro speedup %g below one-port %g", macro.HEFT.Speedup, oneport.HEFT.Speedup)
	}
	if oneport.HEFT.Speedup < noOverlap.HEFT.Speedup*0.9 {
		t.Errorf("one-port speedup %g below no-overlap %g",
			oneport.HEFT.Speedup, noOverlap.HEFT.Speedup)
	}
	// gaps are ratios to a lower bound: always >= 1
	for m, r := range sp.Rows {
		if r.HEFT.Gap < 1-1e-9 || r.ILHA.Gap < 1-1e-9 {
			t.Errorf("%v: optimality gap below 1: %+v", m, r)
		}
	}
	tbl := sp.Table()
	for _, frag := range []string{"macro-dataflow", "one-port", "uni-port", "link-contention", "gap"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("spectrum table missing %q:\n%s", frag, tbl)
		}
	}
}

func TestRunSpectrumUnknownTestbed(t *testing.T) {
	if _, err := RunSpectrum("nope", 10, 4, platform.Paper()); err == nil {
		t.Fatal("expected error")
	}
}
