package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRE extracts the quoted pattern of a `// want "regexp"` comment.
var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// loadExpectations scans a fixture file for `// want "regexp"` comments;
// each one demands a diagnostic on its own line whose message matches.
func loadExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
		}
		wants = append(wants, &expectation{file: path, line: i + 1, re: re})
	}
	return wants
}

// runFixtureDir type-checks every .go file under testdata/<dir> as one
// package and runs the given analyzers over it with package-prefix
// filters disabled, then reconciles diagnostics against the fixture's
// want comments: every want must be hit, and every diagnostic must be
// wanted.
func runFixtureDir(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures under testdata/%s (err: %v)", dir, err)
	}
	sort.Strings(paths)
	pkg, err := CheckFiles("fixture/"+dir, paths, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, analyzers, true)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, p := range paths {
		wants = append(wants, loadExpectations(t, p)...)
	}
	for _, d := range diags {
		hit := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestAnalyzerFixtures runs each analyzer alone over its fixture
// directory: flagged.go carries one want per true positive, clean.go
// carries none and must stay silent.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			runFixtureDir(t, a.Name, []*Analyzer{a})
		})
	}
}

// TestAllowSuppressesOnlyNamedAnalyzer runs the full suite over a fixture
// whose loop violates both detorder and wallclock but annotates away only
// detorder: the wallclock diagnostic must survive and the detorder one
// must not (an unexpected detorder diagnostic fails the reconciliation).
func TestAllowSuppressesOnlyNamedAnalyzer(t *testing.T) {
	runFixtureDir(t, "allow", All())
}

// TestAnalyzerNamesUnique guards the allow-annotation namespace: two
// analyzers sharing a name would make //schedlint:allow ambiguous.
func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

// TestRepositoryClean loads the whole module and asserts the suite finds
// nothing: the repo's own code is the sixth fixture. This also exercises
// the rules fixtures cannot reach — the scratchpair newState/reclaim
// pairing and the exact-path package filters — against the real packages
// they police.
func TestRepositoryClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load returned only %d packages; module enumeration is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, All(), false)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
