package analysis

// Shared call-resolution helpers: analyzers match calls against rules
// keyed by (package path, function) or (package path, receiver type,
// method), resolved through go/types so aliasing and embedding don't
// fool the match the way a text grep would.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// callee identifies what a call expression invokes.
type callee struct {
	// PkgPath is the defining package ("net/http", "os", ...); empty for
	// builtins and calls through local function values.
	PkgPath string
	// Recv is the receiver's type name for methods ("Client", "File",
	// ...); empty for package-level functions.
	Recv string
	// Name is the function or method name; empty when the call target is
	// not a named function (e.g. a call through a func-typed variable).
	Name string
	// Obj is the resolved object when one exists.
	Obj types.Object
}

// resolveCallee classifies the target of call. Calls through func-typed
// values resolve to the value's object (a *types.Var) with Name left
// empty, so callers can distinguish "named function" from "function
// value".
func resolveCallee(info *types.Info, call *ast.CallExpr) callee {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return calleeFromObject(info.Uses[fun])
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// method or field selection x.f
			obj := sel.Obj()
			c := calleeFromObject(obj)
			if fn, ok := obj.(*types.Func); ok {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					c.Recv = namedTypeName(recv.Type())
				}
			}
			return c
		}
		// qualified identifier pkg.F
		return calleeFromObject(info.Uses[fun.Sel])
	}
	return callee{}
}

func calleeFromObject(obj types.Object) callee {
	c := callee{Obj: obj}
	if obj == nil {
		return c
	}
	if obj.Pkg() != nil {
		c.PkgPath = obj.Pkg().Path()
	}
	switch obj.(type) {
	case *types.Func, *types.Builtin:
		c.Name = obj.Name()
	}
	return c
}

// namedTypeName returns the bare name of t's named type, looking through
// pointers ("*http.Client" -> "Client"); empty for unnamed types.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typePkgPath returns the defining package path of t's named type,
// looking through pointers; empty for unnamed types.
func typePkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// is reports whether the callee is pkgPath.name (recv == "") or a method
// recv.name defined in pkgPath.
func (c callee) is(pkgPath, recv, name string) bool {
	return c.PkgPath == pkgPath && c.Recv == recv && c.Name == name
}

// render pretty-prints an expression for use as a stable key (matching
// borrow/release pairs, lock/unlock pairs).
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// funcBodies yields every function body in the file along with its
// declaration context: top-level funcs and methods, plus function
// literals (labelled by their enclosing declaration).
func funcBodies(f *ast.File, visit func(name string, fntype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit("func literal", fn.Type, fn.Body)
		}
		return true
	})
}
