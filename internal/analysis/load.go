package analysis

// The standalone loader: resolve package patterns with `go list -json
// -deps`, then type-check the module's own packages from source in
// dependency order, importing the standard library through the
// toolchain's compiled export data (go/importer). This is what
// `schedlint ./...` uses when it is not being driven by go vet (the vet
// path gets files and export data handed to it in the unitchecker
// config instead — see cmd/schedlint).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
}

// Load type-checks the packages matching patterns (plus their in-module
// dependencies) and returns them in dependency order. Standard-library
// imports resolve through compiled export data, so only module code is
// parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	fset := token.NewFileSet()
	std := importer.Default()
	checked := map[string]*Package{}
	imp := &moduleImporter{std: std, checked: checked}
	var loaded []*Package
	for _, lp := range pkgs { // -deps guarantees dependencies first
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo (unsupported)", lp.ImportPath)
		}
		pkg, err := checkPackage(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		checked[lp.ImportPath] = pkg
		loaded = append(loaded, pkg)
	}
	return loaded, nil
}

// CheckFiles parses and type-checks one ad-hoc package from explicit
// file paths (fixture tests use this), importing through imp when
// non-nil, else the toolchain default importer.
func CheckFiles(importPath string, paths []string, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	if imp == nil {
		imp = importer.Default()
	}
	return checkFiles(fset, importPath, paths, imp)
}

func checkPackage(fset *token.FileSet, lp *listPackage, imp types.Importer) (*Package, error) {
	paths := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		paths = append(paths, filepath.Join(lp.Dir, f))
	}
	return checkFiles(fset, lp.ImportPath, paths, imp)
}

func checkFiles(fset *token.FileSet, importPath string, paths []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(paths))
	names := make(map[*ast.File]string, len(paths))
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		names[f] = path
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		FileNames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// moduleImporter resolves module-local imports from the already-checked
// set and everything else (the standard library) from compiled export
// data.
type moduleImporter struct {
	std     types.Importer
	checked map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
