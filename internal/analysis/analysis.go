// Package analysis is the repo's static-analysis layer: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) built on the standard library's
// go/ast + go/types, plus the analyzers that turn DESIGN.md's prose
// invariants — byte-identical determinism, wall-clock-free compute,
// Scratch borrow/lend pairing, no blocking I/O under service locks,
// context-propagating outbound requests — into machine-checked rules.
//
// The x/tools module is deliberately not a dependency: the repo builds
// with the standard library alone, and cmd/schedlint speaks the go vet
// -vettool unitchecker protocol itself, so `go vet -vettool=$(which
// schedlint) ./...` works with nothing installed beyond the toolchain.
//
// Findings can be suppressed per line with an annotation comment:
//
//	//schedlint:allow lockio — reason the invariant is intentionally bent
//
// The annotation names exactly the analyzers it silences (comma
// separated); it applies to diagnostics on its own line or the line
// directly below it, and every use must carry a justification after the
// analyzer list (see DESIGN.md "Static analysis" for the policy).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //schedlint:allow
	// annotations.
	Name string
	// Doc is the one-line invariant statement (shown by schedlint -help).
	Doc string
	// PackagePrefixes limits the analyzer to packages whose import path
	// matches one of these prefixes (exact, or prefix + "/"). Empty means
	// every package. The filter is applied by the driver, not Run, so
	// fixture tests can exercise an analyzer on any package.
	PackagePrefixes []string
	// ExcludePrefixes carves packages back out of PackagePrefixes — e.g.
	// lockio polices internal/service but not internal/service/journal,
	// whose whole job is file I/O under its own lock.
	ExcludePrefixes []string
	// Run reports findings on one type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	// FileNames maps each *ast.File to the path it was parsed from.
	FileNames map[*ast.File]string
	Types     *types.Package
	Info      *types.Info
}

// Polices reports whether a polices the package at importPath (the
// prefix filter used in repo mode).
func (a *Analyzer) Polices(importPath string) bool {
	// vet runs the tool on test variants whose ImportPath carries a
	// " [pkg.test]" suffix; the filter cares about the real path.
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	for _, ex := range a.ExcludePrefixes {
		if importPath == ex || strings.HasPrefix(importPath, ex+"/") {
			return false
		}
	}
	if len(a.PackagePrefixes) == 0 {
		return true
	}
	for _, p := range a.PackagePrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// Run applies analyzers to one package and returns the surviving
// diagnostics, sorted by position: package-prefix filters applied (unless
// ignoreFilters — fixture tests set it), _test.go findings dropped, and
// //schedlint:allow annotations honored.
func Run(pkg *Package, analyzers []*Analyzer, ignoreFilters bool) ([]Diagnostic, error) {
	allow := collectAllows(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		if !ignoreFilters && !a.Polices(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue // invariants gate shipped code; tests may fake clocks etc.
		}
		if allow.allows(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// allowSet records //schedlint:allow annotations: filename -> line ->
// set of analyzer names silenced on that line and the next.
type allowSet map[string]map[int]map[string]bool

const allowPrefix = "//schedlint:allow "

func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				// names end at the first token that is not part of the
				// comma-separated analyzer list; everything after is the
				// required human justification.
				names, _, _ := strings.Cut(rest, " ")
				cpos := pkg.Fset.Position(c.Pos())
				line := cpos.Line
				m := set[cpos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					set[cpos.Filename] = m
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					for _, l := range []int{line, line + 1} {
						if m[l] == nil {
							m[l] = map[string]bool{}
						}
						m[l][n] = true
					}
				}
			}
		}
	}
	return set
}

func (s allowSet) allows(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detorder,
		Wallclock,
		Scratchpair,
		Lockio,
		Ctxhttp,
	}
}
