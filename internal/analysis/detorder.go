package analysis

// detorder enforces the byte-identity promise (DESIGN.md "Frontier
// engine", "Session layer"): schedule output, response encodings and
// dequeue order must be identical across runs and replicas, so map
// iteration — whose order Go randomizes per run — must never influence
// a result. The analyzer flags every `range` over a map in the policed
// packages unless the loop is provably order-insensitive:
//
//   - the body only performs commutative, exact updates (integer
//     accumulation, map/slice keyed writes with pure right-hand sides,
//     sync/atomic counter bumps, delete);
//   - or the loop only collects keys/values into slices that are sorted
//     later in the same function (the collect-then-sort idiom
//     writeMetricTree uses).
//
// Genuinely order-free loops the classifier cannot prove (a min-fold
// over values, say) carry a `//schedlint:allow detorder <why>`
// annotation instead.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var Detorder = &Analyzer{
	Name: "detorder",
	Doc:  "map iteration must not influence schedule output, response encoding, or dequeue order",
	PackagePrefixes: []string{
		"oneport/internal/heuristics",
		"oneport/internal/sched",
		"oneport/internal/exp",
		"oneport/internal/service",
	},
	Run: runDetorder,
}

func runDetorder(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			inspectNoFuncLit(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				c := &detorderCheck{pass: pass, loop: rs}
				c.stmtSafe(rs.Body)
				if c.reason != "" {
					pass.Reportf(rs.Pos(), "iteration over map %s is order-dependent (%s); iterate sorted keys, make the body commutative, or annotate //schedlint:allow detorder with why order cannot matter", render(pass.Fset, rs.X), c.reason)
					return true
				}
				for _, ident := range c.collected {
					if !sortedAfter(pass, body, rs, ident) {
						pass.Reportf(rs.Pos(), "map iteration collects into %s, which is never sorted afterwards; sort it before use or annotate //schedlint:allow detorder with why order cannot matter", ident.Name)
						return true
					}
				}
				return true
			})
		})
	}
	return nil
}

// detorderCheck classifies one map-range body. reason is set to the
// first order-dependence found; collected lists outer slices the loop
// appends to (safe only if sorted afterwards).
type detorderCheck struct {
	pass      *Pass
	loop      *ast.RangeStmt
	reason    string
	collected []*ast.Ident
}

func (c *detorderCheck) fail(reason string) {
	if c.reason == "" {
		c.reason = reason
	}
}

// localTo reports whether ident's object is declared inside the loop
// body — per-iteration state, which cannot carry order across
// iterations.
func (c *detorderCheck) localTo(ident *ast.Ident) bool {
	obj := c.pass.TypesInfo.ObjectOf(ident)
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.loop.Body.Pos() && obj.Pos() <= c.loop.Body.End()
}

func (c *detorderCheck) stmtSafe(s ast.Stmt) {
	if c.reason != "" {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			c.stmtSafe(sub)
		}
	case *ast.AssignStmt:
		c.assignSafe(st)
	case *ast.IncDecStmt:
		if !isExactCommutativeType(c.pass.TypeOf(st.X)) {
			c.fail("increments non-integer state")
		}
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			c.fail("non-call expression statement")
			return
		}
		ce := resolveCallee(c.pass.TypesInfo, call)
		switch {
		case ce.Name == "delete" && ce.PkgPath == "":
			// deleting keys is keyed addressing, order-free
		case isAtomicCounterOp(ce):
			// sync/atomic integer bumps commute
		default:
			c.fail("calls " + render(c.pass.Fset, call.Fun) + " whose effects may depend on iteration order")
		}
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmtSafe(st.Init)
		}
		if !c.pureExpr(st.Cond) {
			c.fail("branches on an impure condition")
			return
		}
		c.stmtSafe(st.Body)
		if st.Else != nil {
			c.stmtSafe(st.Else)
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmtSafe(st.Init)
		}
		if st.Tag != nil && !c.pureExpr(st.Tag) {
			c.fail("switches on an impure tag")
			return
		}
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				if !c.pureExpr(e) {
					c.fail("switch case with impure expression")
					return
				}
			}
			for _, sub := range clause.Body {
				c.stmtSafe(sub)
			}
		}
	case *ast.RangeStmt:
		// nested loops are fine as long as their bodies are; a nested
		// map-range gets its own top-level classification.
		c.stmtSafe(st.Body)
	case *ast.ForStmt:
		c.stmtSafe(st.Body)
	case *ast.DeclStmt:
		// local var/const declarations introduce per-iteration state
	case *ast.BranchStmt:
		if st.Tok != token.CONTINUE {
			c.fail("breaks out of the loop, so the result depends on which keys were seen first")
		}
	case *ast.ReturnStmt:
		c.fail("returns from inside the loop, so the result depends on which key was seen first")
	default:
		c.fail("statement the classifier cannot prove order-free")
	}
}

func (c *detorderCheck) assignSafe(st *ast.AssignStmt) {
	// collect-then-sort: xs = append(xs, ...) into an outer slice
	if st.Tok == token.ASSIGN && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if lhs, ok := st.Lhs[0].(*ast.Ident); ok {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if ce := resolveCallee(c.pass.TypesInfo, call); ce.Name == "append" && ce.PkgPath == "" {
					if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && base.Name == lhs.Name {
						for _, arg := range call.Args[1:] {
							if !c.pureExpr(arg) {
								c.fail("appends an impure expression")
								return
							}
						}
						if !c.localTo(lhs) {
							c.collected = append(c.collected, lhs)
						}
						return
					}
				}
			}
		}
	}

	switch st.Tok {
	case token.DEFINE:
		for _, rhs := range st.Rhs {
			if !c.pureExpr(rhs) {
				c.fail("computes an impure value")
				return
			}
		}
	case token.ASSIGN:
		for _, rhs := range st.Rhs {
			if !c.pureExpr(rhs) {
				c.fail("computes an impure value")
				return
			}
		}
		for _, lhs := range st.Lhs {
			c.lhsSafe(lhs)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.AND_NOT_ASSIGN, token.MUL_ASSIGN:
		// commutative and exact only over integers: float accumulation is
		// order-dependent in the low bits, string += is order itself
		if !isExactCommutativeType(c.pass.TypeOf(st.Lhs[0])) {
			c.fail("accumulates into non-integer state, where evaluation order changes the result")
			return
		}
		if !c.pureExpr(st.Rhs[0]) {
			c.fail("accumulates an impure expression")
		}
	default:
		c.fail("uses an order-sensitive compound assignment")
	}
}

func (c *detorderCheck) lhsSafe(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" || c.localTo(l) {
			return
		}
		c.fail("assigns to " + l.Name + " declared outside the loop, so the final value depends on iteration order")
	case *ast.IndexExpr:
		// keyed writes: each key/index is written independently of order
		if !c.pureExpr(l.X) || !c.pureExpr(l.Index) {
			c.fail("writes through an impure index expression")
		}
	default:
		c.fail("assigns through " + render(c.pass.Fset, lhs) + ", which the classifier cannot prove order-free")
	}
}

// pureExpr reports whether e is free of calls with possible effects:
// only builtins len/cap/min/max and type conversions are allowed.
func (c *detorderCheck) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		ce := resolveCallee(c.pass.TypesInfo, call)
		switch ce.Name {
		case "len", "cap", "min", "max", "abs":
			if ce.PkgPath == "" {
				return true
			}
		}
		pure = false
		return false
	})
	return pure
}

// isExactCommutativeType reports whether accumulating into t commutes
// exactly: integers do; floats lose low bits order-dependently, strings
// and everything else are order itself.
func isExactCommutativeType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAtomicCounterOp reports sync/atomic integer mutations (Add, Store,
// CompareAndSwap on the atomic integer kinds), which commute.
func isAtomicCounterOp(ce callee) bool {
	if ce.PkgPath != "sync/atomic" {
		return false
	}
	switch ce.Name {
	case "Add", "Store", "CompareAndSwap", "AddInt32", "AddInt64", "AddUint32", "AddUint64":
		return true
	}
	return false
}

// sortedAfter reports whether ident is passed to a sort call after the
// loop, inside the enclosing function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, loop *ast.RangeStmt, ident *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(ident)
	found := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() || len(call.Args) == 0 {
			return true
		}
		ce := resolveCallee(pass.TypesInfo, call)
		if !isSortFunc(ce) {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if pass.TypesInfo.ObjectOf(arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortFunc(ce callee) bool {
	switch ce.PkgPath {
	case "sort":
		switch ce.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch ce.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// inspectNoFuncLit walks n without descending into function literals:
// their bodies are separate functions for every per-function analysis.
func inspectNoFuncLit(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return visit(m)
	})
}
