package analysis

// lockio keeps blocking I/O out of service/session critical sections:
// an outbound HTTP exchange, file write or fsync performed while a
// sync.Mutex/RWMutex is held turns one slow peer or disk into a
// pile-up of every goroutine behind that lock (and under the admission
// controller, into queue collapse). The analyzer is lexical and
// per-function: it tracks mutexes locked in the function body —
// including ones released only by defer — and flags, while any is
// held, calls to
//
//   - request-sending net/http functions and methods,
//   - net dialing,
//   - os file creation/write/sync helpers,
//   - the journal Store/Log mutating surface (Append/Sync/Compact/
//     Create/Remove — fsync-bearing by design),
//   - function-typed parameters (a callback the caller controls may
//     block arbitrarily — the session Handoff export-under-lock is the
//     documented, annotated exception).
//
// internal/service/journal itself is excluded: serializing file writes
// under its own lock is that package's entire job. Helpers that run
// with a caller-held lock (the *Locked naming convention) are outside
// a lexical analyzer's reach; the convention is policed by review.

import (
	"go/ast"
	"go/types"
)

var Lockio = &Analyzer{
	Name: "lockio",
	Doc:  "no blocking I/O while holding a service/session mutex",
	PackagePrefixes: []string{
		"oneport/internal/service",
	},
	ExcludePrefixes: []string{
		"oneport/internal/service/journal",
	},
	Run: runLockio,
}

// lockioBlocking matches callees that perform blocking I/O.
func lockioBlocking(ce callee) bool {
	switch ce.PkgPath {
	case "net/http":
		switch ce.Name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return ce.Recv == "" || ce.Recv == "Client"
		}
	case "net":
		switch ce.Name {
		case "Dial", "DialTimeout", "DialContext":
			return true
		}
	case "os":
		if ce.Recv == "File" {
			switch ce.Name {
			case "Write", "WriteString", "WriteAt", "ReadFrom", "Sync", "Truncate":
				return true
			}
		}
		if ce.Recv == "" {
			switch ce.Name {
			case "WriteFile", "ReadFile", "Create", "CreateTemp", "Open", "OpenFile", "Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll":
				return true
			}
		}
	case "oneport/internal/service/journal":
		switch ce.Recv + "." + ce.Name {
		case "Log.Append", "Log.Sync", "Log.Compact", "Store.Create", "Store.Remove", "Store.Recover":
			return true
		}
	}
	return false
}

func runLockio(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, fntype *ast.FuncType, body *ast.BlockStmt) {
			params := paramFuncObjs(pass, fntype)
			checkLockedRegions(pass, body, params, map[string]bool{})
		})
	}
	return nil
}

// paramFuncObjs collects the function-typed parameters of fn: calling
// one while locked hands the critical section to arbitrary caller code.
func paramFuncObjs(pass *Pass, fntype *ast.FuncType) map[types.Object]bool {
	objs := map[types.Object]bool{}
	if fntype.Params == nil {
		return objs
	}
	for _, field := range fntype.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				objs[obj] = true
			}
		}
	}
	return objs
}

// checkLockedRegions walks stmts in order, maintaining the set of
// mutex expressions currently held. Branch bodies get a copy of the
// set: a lock state change inside a branch does not leak past it
// (the `if cond { mu.Unlock(); return }` early-exit idiom).
func checkLockedRegions(pass *Pass, body *ast.BlockStmt, params map[types.Object]bool, held map[string]bool) {
	for _, s := range body.List {
		lockioStmt(pass, s, params, held)
	}
}

func lockioStmt(pass *Pass, s ast.Stmt, params map[types.Object]bool, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if mu, op := mutexOp(pass, st.X); mu != "" {
			switch op {
			case "Lock", "RLock":
				held[mu] = true
			case "Unlock", "RUnlock":
				delete(held, mu)
			}
			return
		}
		reportBlockingCalls(pass, st.X, params, held)
	case *ast.DeferStmt:
		if mu, op := mutexOp(pass, st.Call); mu != "" && (op == "Unlock" || op == "RUnlock") {
			// deferred unlock: the lock stays held for the rest of the
			// function, which the held set already reflects
			return
		}
		// deferred work runs during unwinding, possibly with locks held;
		// too order-dependent for a lexical pass — skip
	case *ast.BlockStmt:
		checkLockedRegions(pass, st, params, held)
	case *ast.IfStmt:
		if st.Init != nil {
			lockioStmt(pass, st.Init, params, held)
		}
		reportBlockingCalls(pass, st.Cond, params, held)
		lockioStmt(pass, st.Body, params, copyHeld(held))
		if st.Else != nil {
			lockioStmt(pass, st.Else, params, copyHeld(held))
		}
	case *ast.ForStmt:
		lockioStmt(pass, st.Body, params, copyHeld(held))
	case *ast.RangeStmt:
		reportBlockingCalls(pass, st.X, params, held)
		lockioStmt(pass, st.Body, params, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			lockioStmt(pass, st.Init, params, held)
		}
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CaseClause)
			sub := copyHeld(held)
			for _, cs := range clause.Body {
				lockioStmt(pass, cs, params, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CaseClause)
			sub := copyHeld(held)
			for _, cs := range clause.Body {
				lockioStmt(pass, cs, params, sub)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CommClause)
			sub := copyHeld(held)
			for _, cs := range clause.Body {
				lockioStmt(pass, cs, params, sub)
			}
		}
	case *ast.GoStmt:
		// the spawned goroutine does not hold this function's locks
	case *ast.LabeledStmt:
		lockioStmt(pass, st.Stmt, params, held)
	default:
		// assignments, returns, sends: scan embedded expressions
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				reportBlockingCall(pass, e, params, held)
			}
			return true
		})
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// mutexOp recognizes mu.Lock()/Unlock()/RLock()/RUnlock() calls on
// sync.Mutex/RWMutex values and returns the rendered mutex expression.
func mutexOp(pass *Pass, e ast.Expr) (mu, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil || typePkgPath(t) != "sync" {
		return "", ""
	}
	switch namedTypeName(t) {
	case "Mutex", "RWMutex":
		return render(pass.Fset, sel.X), sel.Sel.Name
	}
	return "", ""
}

// reportBlockingCalls scans one expression tree (skipping closures).
func reportBlockingCalls(pass *Pass, e ast.Expr, params map[types.Object]bool, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			reportBlockingCall(pass, expr, params, held)
		}
		return true
	})
}

func reportBlockingCall(pass *Pass, e ast.Expr, params map[types.Object]bool, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	ce := resolveCallee(pass.TypesInfo, call)
	lock := anyKey(held)
	if lockioBlocking(ce) {
		pass.Reportf(call.Pos(), "blocking I/O (%s) while holding %s; move the I/O outside the critical section or annotate //schedlint:allow lockio with the documented reason", render(pass.Fset, call.Fun), lock)
		return
	}
	if ce.Obj != nil && params[ce.Obj] {
		pass.Reportf(call.Pos(), "calling caller-supplied function %s while holding %s; the callback may block on I/O — hoist it out of the critical section or annotate //schedlint:allow lockio with the documented reason", render(pass.Fset, call.Fun), lock)
	}
}

func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
