package wallclock

import (
	"math/rand"
	"time"
)

// age takes the clock reading from the caller: the injected-clock idiom.
func age(now, then time.Time) time.Duration {
	return now.Sub(then)
}

// seeded builds an explicit generator; methods on it are reproducible.
func seeded(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
