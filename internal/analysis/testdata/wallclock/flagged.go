package wallclock

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

func jitter() float64 {
	return rand.Float64() // want "process-seeded global generator"
}
