package ctxhttp

import (
	"context"
	"net/http"
)

func fetchWithContext(ctx context.Context, c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}
