package ctxhttp

import "net/http"

func fetch(url string) (*http.Response, error) {
	return http.Get(url) // want "context.Background"
}

func build(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want "drops the caller's context"
}
