package allow

import "time"

// mixed holds a detorder violation and a wallclock violation in one
// loop. The annotation names only detorder, so detorder must be silenced
// and wallclock must still fire — an allow suppresses exactly the
// analyzers it names.
func mixed(m map[string]int) time.Time {
	var last time.Time
	//schedlint:allow detorder fixture: order provably irrelevant here
	for range m {
		last = time.Now() // want "reads the wall clock"
	}
	return last
}
