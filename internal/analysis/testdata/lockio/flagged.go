package lockio

import (
	"net/http"
	"sync"
)

type server struct {
	mu     sync.Mutex
	client *http.Client
}

// relay round-trips to a peer while holding the mutex: every other
// request stalls behind the network.
func (s *server) relay(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.client.Do(req) // want "blocking I/O"
}

// withCallback runs a caller-supplied function under the lock; the
// callback may block on anything.
func (s *server) withCallback(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn() // want "caller-supplied function"
}
