package lockio

import (
	"net/http"
	"sync"
)

type relay struct {
	mu   sync.Mutex
	busy bool
}

// forward copies state under the lock and does the round-trip outside it.
func (r *relay) forward(c *http.Client, req *http.Request) (*http.Response, error) {
	r.mu.Lock()
	r.busy = true
	r.mu.Unlock()
	return c.Do(req)
}
