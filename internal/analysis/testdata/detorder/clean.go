package detorder

import "sort"

// sortedKeys is the blessed collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total folds with an exactly commutative integer sum.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
