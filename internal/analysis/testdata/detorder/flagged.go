package detorder

import "fmt"

// emit writes rows to the output in map order: the canonical violation.
func emit(m map[string]int) {
	for k, v := range m { // want "order-dependent"
		fmt.Println(k, v)
	}
}

// collectUnsorted gathers keys but never sorts them before returning.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted afterwards"
		keys = append(keys, k)
	}
	return keys
}
