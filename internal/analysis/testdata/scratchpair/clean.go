package scratchpair

import "sync"

var keyPool = sync.Pool{New: func() any { return new([]byte) }}

// safe releases on every path, panics included.
func safe() int {
	b := keyPool.Get().(*[]byte)
	defer keyPool.Put(b)
	return len(*b)
}
