package scratchpair

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// leaky borrows and never releases.
func leaky() int {
	b := bufPool.Get().(*[]byte) // want "no matching bufPool.Put"
	return len(*b)
}

// nonPanicSafe releases, but not via defer: a panic between Get and Put
// leaks the scratch.
func nonPanicSafe() int {
	b := bufPool.Get().(*[]byte) // want "released only on non-panic paths"
	n := len(*b)
	bufPool.Put(b)
	return n
}
