package analysis

// scratchpair enforces the pooling invariant (DESIGN.md "Serving
// layer"): every pooled borrow is returned on all paths, including
// panic paths, which in Go means the release is registered with defer
// before the borrowed value is used. Two borrow shapes exist in this
// repo:
//
//   - sync.Pool: p.Get() must pair with a p.Put(...) that sits inside a
//     defer (either `defer p.Put(x)` or inside a deferred closure — the
//     panic-drop pattern in Server.compute counts: the deferred closure
//     decides, but it runs on every unwind);
//   - heuristics.Scratch: newState(g, pl, model, tune) with a non-nil
//     tune lends the Scratch's buffers to the state, so the caller must
//     `defer tune.reclaim(s)`.
//
// Ownership-transfer helpers that hand the release obligation to their
// caller (readBody returns a release closure) are the documented
// exception and carry //schedlint:allow scratchpair annotations.

import (
	"go/ast"
)

var Scratchpair = &Analyzer{
	Name: "scratchpair",
	Doc:  "every Scratch/pool borrow is released on all paths via defer",
	PackagePrefixes: []string{
		"oneport/internal/heuristics",
		"oneport/internal/service",
	},
	Run: runScratchpair,
}

func runScratchpair(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkPoolPairs(pass, body)
			checkScratchLend(pass, body)
		})
	}
	return nil
}

// checkPoolPairs matches sync.Pool Get calls against Put calls on the
// same pool expression within one function.
func checkPoolPairs(pass *Pass, body *ast.BlockStmt) {
	type pairing struct {
		getPos      ast.Node
		putDeferred bool
		putAnywhere bool
	}
	pools := map[string]*pairing{}

	// record Get/Put sites; deferred closures belong to this function's
	// frame, so walk them here with the deferred flag set.
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch t := m.(type) {
			case *ast.DeferStmt:
				if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(t.Call, true)
				}
				return false
			case *ast.FuncLit:
				return false // separate function; analyzed on its own
			case *ast.CallExpr:
				sel, ok := ast.Unparen(t.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recvT := pass.TypeOf(sel.X)
				if recvT == nil || typePkgPath(recvT) != "sync" || namedTypeName(recvT) != "Pool" {
					return true
				}
				key := render(pass.Fset, sel.X)
				switch sel.Sel.Name {
				case "Get":
					if pools[key] == nil {
						pools[key] = &pairing{getPos: t}
					}
				case "Put":
					p := pools[key]
					if p == nil {
						p = &pairing{}
						pools[key] = p
					}
					p.putAnywhere = true
					if inDefer {
						p.putDeferred = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	for key, p := range pools {
		if p.getPos == nil || p.putDeferred {
			continue
		}
		if p.putAnywhere {
			pass.Reportf(p.getPos.Pos(), "%s.Get is released only on non-panic paths; move the %s.Put into a defer so a panicking borrower cannot leak the scratch", key, key)
		} else {
			pass.Reportf(p.getPos.Pos(), "%s.Get has no matching %s.Put in this function; release via defer, or annotate //schedlint:allow scratchpair if ownership transfers to the caller", key, key)
		}
	}
}

// checkScratchLend requires a deferred Tuning.reclaim in every function
// that creates a state with a non-nil Tuning (newState lends the
// Scratch's buffers into the state).
func checkScratchLend(pass *Pass, body *ast.BlockStmt) {
	var lend *ast.CallExpr
	reclaimDeferred := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.DeferStmt:
			ce := resolveCallee(pass.TypesInfo, t.Call)
			if ce.is("oneport/internal/heuristics", "Tuning", "reclaim") {
				reclaimDeferred = true
			}
			return false
		case *ast.CallExpr:
			ce := resolveCallee(pass.TypesInfo, t)
			if ce.is("oneport/internal/heuristics", "", "newState") && len(t.Args) == 4 {
				if id, ok := ast.Unparen(t.Args[3]).(*ast.Ident); !ok || id.Name != "nil" {
					lend = t
				}
			}
		}
		return true
	})
	if lend != nil && !reclaimDeferred {
		pass.Reportf(lend.Pos(), "newState lends the Tuning's Scratch to the run but this function never defers tune.reclaim(s); the borrow leaks on error and panic paths")
	}
}
