package analysis

// ctxhttp keeps cancellation propagating fleet-wide: every outbound
// request — peer cache fills, ring relays, sweep dispatch, session
// handoff imports — must be built with http.NewRequestWithContext and
// the caller's context, so a client hangup or deadline tears down the
// whole remote fan-out instead of leaking goroutines into dead work.
// The context-free constructors (http.NewRequest) and the convenience
// senders that bake in context.Background (http.Get, Client.Post, ...)
// are flagged everywhere in the repo; _test.go files are exempt.

import "go/ast"

var Ctxhttp = &Analyzer{
	Name: "ctxhttp",
	Doc:  "outbound requests use http.NewRequestWithContext with the caller's context",
	Run:  runCtxhttp,
}

func runCtxhttp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ce := resolveCallee(pass.TypesInfo, call)
			if ce.PkgPath != "net/http" {
				return true
			}
			switch {
			case ce.Recv == "" && ce.Name == "NewRequest":
				pass.Reportf(call.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext so cancellation propagates to the peer")
			case (ce.Recv == "" || ce.Recv == "Client") && isConvenienceSender(ce.Name):
				recv := "http"
				if ce.Recv == "Client" {
					recv = "http.Client"
				}
				pass.Reportf(call.Pos(), "%s.%s sends with context.Background; build the request with http.NewRequestWithContext and send it with Client.Do", recv, ce.Name)
			}
			return true
		})
	}
	return nil
}

func isConvenienceSender(name string) bool {
	switch name {
	case "Get", "Post", "PostForm", "Head":
		return true
	}
	return false
}
