package analysis

// wallclock keeps the deterministic compute packages free of ambient
// nondeterminism: a schedule must be a pure function of (graph,
// platform, heuristic, tuning), so reading the wall clock or the
// process-seeded global math/rand generator inside them breaks the
// byte-identity promise (and the warm==cold session oracle) in ways no
// example test reliably catches. Injected clocks (a Now func in a
// Config) and explicitly seeded rand.New(rand.NewSource(seed))
// generators are fine — only the ambient sources are banned. _test.go
// files are exempt.

import "go/ast"

var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock or process-seeded rand reads in deterministic compute packages",
	PackagePrefixes: []string{
		"oneport/internal/heuristics",
		"oneport/internal/sched",
		"oneport/internal/graph",
		"oneport/internal/platform",
		"oneport/internal/bound",
		"oneport/internal/loadbalance",
		"oneport/internal/npc",
		"oneport/internal/exp",
		"oneport/internal/testbeds",
	},
	Run: runWallclock,
}

// wallclockBanned are the ambient time reads: package-level functions of
// "time" that sample the process clock.
var wallclockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// randConstructors are the explicit-seed entry points of math/rand and
// math/rand/v2 — the allowed way to get randomness in compute code.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ce := resolveCallee(pass.TypesInfo, call)
			if ce.Recv != "" {
				return true // methods run on explicit state (rand.Rand, time.Timer)
			}
			switch ce.PkgPath {
			case "time":
				if wallclockBanned[ce.Name] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic compute package; inject a clock through the caller's Tuning/Config instead", ce.Name)
				}
			case "math/rand", "math/rand/v2":
				if ce.Name != "" && !randConstructors[ce.Name] {
					pass.Reportf(call.Pos(), "%s.%s uses the process-seeded global generator; use rand.New(rand.NewSource(seed)) so runs are reproducible", ce.PkgPath, ce.Name)
				}
			}
			return true
		})
	}
	return nil
}
