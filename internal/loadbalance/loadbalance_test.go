package loadbalance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSharesSumToOne(t *testing.T) {
	shares := Shares([]float64{6, 10, 15})
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %g", sum)
	}
	// 1/6 : 1/10 : 1/15 = 5 : 3 : 2 over 10
	want := []float64{0.5, 0.3, 0.2}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Errorf("share[%d] = %g, want %g", i, shares[i], want[i])
		}
	}
}

func TestDistributeErrors(t *testing.T) {
	if _, err := Distribute(5, nil); err == nil {
		t.Error("expected error for no processors")
	}
	if _, err := Distribute(-1, []float64{1}); err == nil {
		t.Error("expected error for negative n")
	}
	if _, err := Distribute(5, []float64{0}); err == nil {
		t.Error("expected error for zero cycle-time")
	}
}

func TestDistributePaperPlatform(t *testing.T) {
	// §5.2: with B = 38, five cycle-6 processors take 5 tasks each, three
	// cycle-10 processors take 3 each, two cycle-15 processors take 2 each,
	// all finishing at exactly 30 time units.
	cycles := []float64{6, 6, 6, 6, 6, 10, 10, 10, 15, 15}
	counts, err := Distribute(38, cycles)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 5, 5, 5, 5, 3, 3, 3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if ct := CompletionTime(counts, cycles); ct != 30 {
		t.Errorf("CompletionTime = %g, want 30", ct)
	}
}

func TestDistributeSmallCases(t *testing.T) {
	cases := []struct {
		n      int
		cycles []float64
		want   []int
	}{
		{0, []float64{1, 2}, []int{0, 0}},
		{1, []float64{1, 2}, []int{1, 0}},
		{3, []float64{1, 2}, []int{2, 1}},
		{4, []float64{1, 1}, []int{2, 2}},
		{5, []float64{2, 3}, []int{3, 2}},
		{7, []float64{1}, []int{7}},
	}
	for _, c := range cases {
		got, err := Distribute(c.n, c.cycles)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Distribute(%d,%v) = %v, want %v", c.n, c.cycles, got, c.want)
				break
			}
		}
	}
}

// bruteForceBest finds the optimal max completion time by exhaustive
// enumeration (small n, small p).
func bruteForceBest(n int, cycles []float64) float64 {
	p := len(cycles)
	best := math.Inf(1)
	counts := make([]int, p)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == p-1 {
			counts[i] = left
			if ct := CompletionTime(counts, cycles); ct < best {
				best = ct
			}
			return
		}
		for c := 0; c <= left; c++ {
			counts[i] = c
			rec(i+1, left-c)
		}
	}
	rec(0, n)
	return best
}

func TestPropertyDistributeOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(4)
		n := r.Intn(12)
		cycles := make([]float64, p)
		for i := range cycles {
			cycles[i] = float64(1 + r.Intn(9))
		}
		counts, err := Distribute(n, cycles)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		if total != n {
			return false
		}
		got := CompletionTime(counts, cycles)
		want := bruteForceBest(n, cycles)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCaps(t *testing.T) {
	caps := Caps(100, []float64{6, 6, 6, 6, 6, 10, 10, 10, 15, 15})
	// fastest processors get 100 * (1/6)/(38/30) = 100*5/38
	want0 := 100 * 5.0 / 38.0
	if math.Abs(caps[0]-want0) > 1e-9 {
		t.Errorf("caps[0] = %g, want %g", caps[0], want0)
	}
	var sum float64
	for _, c := range caps {
		sum += c
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("caps sum to %g, want 100", sum)
	}
}
