// Package loadbalance implements the paper's optimal static distribution of
// independent equal-size tasks over different-speed processors (§4.2), the
// building block of the ILHA heuristic.
//
// Processor P_i with cycle-time t_i should receive a fraction
// c_i = (1/t_i) / Σ_j (1/t_j) of the total work; because tasks are
// indivisible the integer counts are computed by the incremental greedy
// below, which is optimal (Boudet–Rastello–Robert).
package loadbalance

import (
	"fmt"
)

// Shares returns the ideal real-valued fractions c_i = (1/t_i)/Σ(1/t_j).
// They sum to 1.
func Shares(cycleTimes []float64) []float64 {
	var inv float64
	for _, t := range cycleTimes {
		inv += 1 / t
	}
	shares := make([]float64, len(cycleTimes))
	for i, t := range cycleTimes {
		shares[i] = (1 / t) / inv
	}
	return shares
}

// Distribute returns integer task counts c_i with Σc_i = n minimizing the
// parallel completion time max_i c_i·t_i, using the paper's algorithm:
// start from the floors of the ideal shares and hand out the remaining
// tasks one at a time to the processor finishing earliest after receiving
// one more task (ties to the lowest index).
func Distribute(n int, cycleTimes []float64) ([]int, error) {
	p := len(cycleTimes)
	if p == 0 {
		return nil, fmt.Errorf("loadbalance: no processors")
	}
	if n < 0 {
		return nil, fmt.Errorf("loadbalance: negative task count %d", n)
	}
	for i, t := range cycleTimes {
		if t <= 0 {
			return nil, fmt.Errorf("loadbalance: cycle-time t_%d = %g must be positive", i, t)
		}
	}
	shares := Shares(cycleTimes)
	counts := make([]int, p)
	total := 0
	for i := range counts {
		counts[i] = int(shares[i] * float64(n)) // floor: shares are >= 0
		total += counts[i]
	}
	for m := total; m < n; m++ {
		k := 0
		best := cycleTimes[0] * float64(counts[0]+1)
		for i := 1; i < p; i++ {
			if c := cycleTimes[i] * float64(counts[i]+1); c < best {
				k, best = i, c
			}
		}
		counts[k]++
	}
	return counts, nil
}

// CompletionTime returns max_i counts_i * t_i, the parallel time of a
// distribution of equal unit tasks.
func CompletionTime(counts []int, cycleTimes []float64) float64 {
	var m float64
	for i, c := range counts {
		if v := float64(c) * cycleTimes[i]; v > m {
			m = v
		}
	}
	return m
}

// Caps returns the per-processor work capacities c_i·W used by ILHA when the
// chunk's tasks have heterogeneous weights: processor i may take tasks until
// its accumulated weight reaches caps[i].
func Caps(totalWeight float64, cycleTimes []float64) []float64 {
	shares := Shares(cycleTimes)
	caps := make([]float64, len(shares))
	for i, s := range shares {
		caps[i] = s * totalWeight
	}
	return caps
}
