package graph

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// jsonGraph is the on-disk representation used by MarshalJSON/UnmarshalJSON.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

type jsonNode struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// MarshalJSON encodes the graph as {"nodes":[...],"edges":[...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: make([]jsonNode, g.NumNodes()), Edges: g.Edges()}
	for v := 0; v < g.NumNodes(); v++ {
		jg.Nodes[v] = jsonNode{Weight: g.weights[v], Label: g.labels[v]}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON. Any
// malformed payload — negative or non-finite weights, out-of-range or
// duplicate edge endpoints, self loops, negative data, cycles — is rejected
// with an error; a successfully decoded graph always passes Validate, so
// callers feeding untrusted payloads (the scheduling service) never
// schedule a structurally broken DAG.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{}
	for i, n := range jg.Nodes {
		if n.Weight < 0 || math.IsNaN(n.Weight) || math.IsInf(n.Weight, 0) {
			return fmt.Errorf("graph: node %d weight %g in JSON must be finite and non-negative", i, n.Weight)
		}
		g.AddNode(n.Weight, n.Label)
	}
	for _, e := range jg.Edges {
		if math.IsNaN(e.Data) || math.IsInf(e.Data, 0) {
			return fmt.Errorf("graph: edge (%d,%d) data %g in JSON must be finite", e.From, e.To, e.Data)
		}
		if err := g.AddEdge(e.From, e.To, e.Data); err != nil {
			return err
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	return nil
}

// DOT renders the graph in Graphviz dot syntax. Node labels include the
// weight; edge labels carry the data volume.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for v := 0; v < g.NumNodes(); v++ {
		label := g.labels[v]
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nw=%g\"];\n", v, label, g.weights[v])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%g\"];\n", e.From, e.To, e.Data)
	}
	b.WriteString("}\n")
	return b.String()
}
