package graph

import (
	"encoding/json"
	"fmt"
	"strings"
)

// jsonGraph is the on-disk representation used by MarshalJSON/UnmarshalJSON.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

type jsonNode struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// MarshalJSON encodes the graph as {"nodes":[...],"edges":[...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: make([]jsonNode, g.NumNodes()), Edges: g.Edges()}
	for v := 0; v < g.NumNodes(); v++ {
		jg.Nodes[v] = jsonNode{Weight: g.weights[v], Label: g.labels[v]}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{}
	for _, n := range jg.Nodes {
		if n.Weight < 0 {
			return fmt.Errorf("graph: negative node weight %g in JSON", n.Weight)
		}
		g.AddNode(n.Weight, n.Label)
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e.From, e.To, e.Data); err != nil {
			return err
		}
	}
	return nil
}

// DOT renders the graph in Graphviz dot syntax. Node labels include the
// weight; edge labels carry the data volume.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for v := 0; v < g.NumNodes(); v++ {
		label := g.labels[v]
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nw=%g\"];\n", v, label, g.weights[v])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%g\"];\n", e.From, e.To, e.Data)
	}
	b.WriteString("}\n")
	return b.String()
}
