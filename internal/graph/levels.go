package graph

// Level computations.
//
// The paper (§4.1) defines priorities through bottom levels computed on an
// "averaged" homogeneous view of the heterogeneous platform: a task weight
// w(v) contributes w(v)·execFactor where execFactor is the harmonic mean of
// the processor cycle-times (p / Σ 1/t_i), and an edge contributes
// data(u,v)·commFactor where commFactor is the harmonic mean of the
// off-diagonal link entries. All communication costs are charged
// (conservatively assuming no edge is internalised).

// BottomLevels returns, for every node, the length of the longest path from
// the node to any sink, where node v costs Weight(v)*execFactor and edge
// (u,v) costs Data(u,v)*commFactor. The node's own cost is included.
func (g *Graph) BottomLevels(execFactor, commFactor float64) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(g.weights))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0.0
		for _, a := range g.succ[v] {
			c := a.Data*commFactor + bl[a.Node]
			if c > best {
				best = c
			}
		}
		bl[v] = g.weights[v]*execFactor + best
	}
	return bl, nil
}

// TopLevels returns, for every node, the length of the longest path from any
// source to the node, excluding the node's own cost (so sources have top
// level 0). Costs are scaled as in BottomLevels.
func (g *Graph) TopLevels(execFactor, commFactor float64) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]float64, len(g.weights))
	for _, v := range order {
		best := 0.0
		for _, a := range g.pred[v] {
			c := tl[a.Node] + g.weights[a.Node]*execFactor + a.Data*commFactor
			if c > best {
				best = c
			}
		}
		tl[v] = best
	}
	return tl, nil
}

// DepthLevels groups nodes into "iso-levels" by dependence depth: level 0 is
// the set of entry tasks and level i+1 groups the tasks all of whose
// predecessors lie in levels <= i, becoming ready when level i completes.
// This is the level structure behind the first version of ILHA (§4.2).
func (g *Graph) DepthLevels() ([][]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(g.weights))
	maxDepth := 0
	for _, v := range order {
		d := 0
		for _, a := range g.pred[v] {
			if depth[a.Node]+1 > d {
				d = depth[a.Node] + 1
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int, maxDepth+1)
	for _, v := range order {
		levels[depth[v]] = append(levels[depth[v]], v)
	}
	return levels, nil
}
