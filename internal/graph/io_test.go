package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUnmarshalJSONErrors exercises every rejection path of the graph JSON
// codec: the scheduling service feeds it untrusted payloads, so malformed
// input must come back as an error — never a panic, never a graph that
// later fails Validate.
func TestUnmarshalJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{
			"negative node weight",
			`{"nodes":[{"weight":-1}],"edges":[]}`,
			"must be finite and non-negative",
		},
		{
			"NaN is not JSON",
			`{"nodes":[{"weight":NaN}],"edges":[]}`,
			"", // json syntax error, message version-dependent
		},
		{
			"edge endpoint out of range",
			`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":7,"data":1}]}`,
			"out of range",
		},
		{
			"negative edge endpoint",
			`{"nodes":[{"weight":1}],"edges":[{"from":-1,"to":0,"data":1}]}`,
			"out of range",
		},
		{
			"self loop",
			`{"nodes":[{"weight":1}],"edges":[{"from":0,"to":0,"data":1}]}`,
			"self loop",
		},
		{
			"negative edge data",
			`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"data":-3}]}`,
			"negative data",
		},
		{
			"duplicate edge",
			`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":0,"to":1,"data":2}]}`,
			"duplicate edge",
		},
		{
			"two-node cycle",
			`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]}`,
			"cycle",
		},
		{
			"three-node cycle",
			`{"nodes":[{"weight":1},{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":2,"data":1},{"from":2,"to":0,"data":1}]}`,
			"cycle",
		},
		{
			"truncated payload",
			`{"nodes":[{"weight":1}`,
			"",
		},
		{
			"wrong shape",
			`[1,2,3]`,
			"",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var g Graph
			err := json.Unmarshal([]byte(c.in), &g)
			if err == nil {
				t.Fatalf("want error, got graph with %d nodes %d edges", g.NumNodes(), g.NumEdges())
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestUnmarshalJSONValidGraphPassesValidate pins the codec's postcondition:
// a payload that decodes without error yields a graph Validate accepts.
func TestUnmarshalJSONValidGraphPassesValidate(t *testing.T) {
	in := `{"nodes":[{"weight":2,"label":"a"},{"weight":3},{"weight":0}],
	        "edges":[{"from":0,"to":1,"data":1},{"from":0,"to":2,"data":0},{"from":1,"to":2,"data":4}]}`
	var g Graph
	if err := json.Unmarshal([]byte(in), &g); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("decoded %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}
