package graph

import (
	"encoding/json"
	"testing"
)

// FuzzDeltaApply throws arbitrary JSON at the delta decoder and Apply,
// asserting the two properties the session layer relies on for untrusted
// client input: no panic on any input, and atomic apply-or-reject — a
// failed delta returns no graph, a successful one returns a valid graph,
// and the input graph is never mutated either way. The seed corpus mirrors
// the adversarial suite in delta_test.go: cycle introduction, dangling and
// duplicate edges, self loops, NaN/negative costs, missing fields, unknown
// ops, huge ids.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte(`[{"op":"add_task","weight":3,"label":"t"}]`))
	f.Add([]byte(`[{"op":"add_edge","from":0,"to":1,"data":2}]`))
	f.Add([]byte(`[{"op":"set_weight","task":1,"weight":7}]`))
	f.Add([]byte(`[{"op":"set_data","from":0,"to":2,"data":9}]`))
	f.Add([]byte(`[{"op":"add_edge","from":2,"to":0,"data":1}]`))  // cycle
	f.Add([]byte(`[{"op":"add_edge","from":1,"to":1,"data":1}]`))  // self loop
	f.Add([]byte(`[{"op":"add_edge","from":0,"to":99,"data":1}]`)) // dangling
	f.Add([]byte(`[{"op":"add_edge","from":0,"to":1,"data":2},{"op":"add_edge","from":0,"to":1,"data":2}]`))
	f.Add([]byte(`[{"op":"set_weight","task":-4,"weight":1}]`))
	f.Add([]byte(`[{"op":"set_weight","task":1,"weight":-1}]`))
	f.Add([]byte(`[{"op":"add_task"}]`)) // missing weight
	f.Add([]byte(`[{"op":"explode"}]`))  // unknown op
	f.Add([]byte(`[{"op":"add_task","weight":1e308},{"op":"add_task","weight":1e308}]`))
	f.Add([]byte(`[{"op":"set_data","from":2147483647,"to":-2147483648,"data":0}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if json.Unmarshal(data, &d) != nil {
			return // undecodable input is rejected upstream by the HTTP layer
		}
		// a small diamond with one spare node: enough shape for edge ops,
		// cycles and duplicate detection to be reachable from the corpus
		g := New(4)
		g.AddNode(1, "a")
		g.AddNode(2, "b")
		g.AddNode(3, "c")
		g.AddNode(4, "d")
		if err := g.AddEdge(0, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(0, 2, 2); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(1, 3, 1); err != nil {
			t.Fatal(err)
		}
		before, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}

		ng, eff, aerr := d.Apply(g)

		after, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Fatalf("Apply mutated its input graph:\nbefore %s\nafter  %s", before, after)
		}
		if aerr != nil {
			if ng != nil {
				t.Fatalf("failed Apply returned a graph alongside error %v", aerr)
			}
			return
		}
		if ng == nil {
			t.Fatal("successful Apply returned a nil graph")
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("accepted delta produced an invalid graph: %v", err)
		}
		if got, want := ng.NumNodes(), g.NumNodes()+eff.Added; got != want {
			t.Fatalf("NumNodes = %d, want %d (Added = %d)", got, want, eff.Added)
		}
		for _, v := range eff.Dirty {
			if v < 0 || v >= ng.NumNodes() {
				t.Fatalf("dirty id %d outside the new graph's %d nodes", v, ng.NumNodes())
			}
		}
	})
}
