package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node diamond a -> b,c -> d used by several tests.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(2, "b")
	c := g.AddNode(3, "c")
	d := g.AddNode(4, "d")
	g.MustEdge(a, b, 10)
	g.MustEdge(a, c, 20)
	g.MustEdge(b, d, 30)
	g.MustEdge(c, d, 40)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		if id := g.AddNode(float64(i), ""); id != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddNodeNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	New(0).AddNode(-1, "bad")
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	cases := []struct {
		name    string
		u, v    int
		data    float64
		wantErr bool
	}{
		{"valid", a, b, 1, false},
		{"duplicate", a, b, 2, true},
		{"self-loop", a, a, 1, true},
		{"negative data", b, a, -1, true},
		{"out of range u", 7, a, 1, true},
		{"out of range v", a, 9, 1, true},
		{"negative id", -1, a, 1, true},
	}
	for _, c := range cases {
		err := g.AddEdge(c.u, c.v, c.data)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: AddEdge err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestAdjacencyAndDegrees(t *testing.T) {
	g := diamond(t)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(a) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(d) = %d, want 2", got)
	}
	if d, ok := g.EdgeData(0, 2); !ok || d != 20 {
		t.Errorf("EdgeData(a,c) = %g,%v, want 20,true", d, ok)
	}
	if _, ok := g.EdgeData(1, 2); ok {
		t.Error("EdgeData(b,c) should not exist")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", s)
	}
}

func TestTotals(t *testing.T) {
	g := diamond(t)
	if w := g.TotalWeight(); w != 10 {
		t.Errorf("TotalWeight = %g, want 10", w)
	}
	if d := g.TotalData(); d != 100 {
		t.Errorf("TotalData = %g, want 100", d)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	a := g.AddNode(1, "")
	b := g.AddNode(1, "")
	c := g.AddNode(1, "")
	g.MustEdge(a, b, 0)
	g.MustEdge(b, c, 0)
	g.MustEdge(c, a, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("TopoOrder err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Fatalf("Validate err = %v, want ErrCycle", err)
	}
}

func TestValidateOK(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddNode(9, "extra")
	c.MustEdge(3, 4, 5)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("mutating clone changed original: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathWeight(t *testing.T) {
	g := diamond(t)
	// longest weight path: a(1) -> c(3) -> d(4) = 8
	cp, err := g.CriticalPathWeight()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Errorf("CriticalPathWeight = %g, want 8", cp)
	}
}

func TestBottomLevelsUnitFactors(t *testing.T) {
	g := diamond(t)
	bl, err := g.BottomLevels(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// blevel(d)=4; blevel(c)=3+40+4=47; blevel(b)=2+30+4=36;
	// blevel(a)=1+max(10+36, 20+47)=68
	want := []float64{68, 36, 47, 4}
	for v, w := range want {
		if bl[v] != w {
			t.Errorf("blevel(%d) = %g, want %g", v, bl[v], w)
		}
	}
}

func TestBottomLevelsZeroCommFactor(t *testing.T) {
	g := diamond(t)
	bl, err := g.BottomLevels(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// pure computation path doubled: d=8, c=(3+4)*2=14, b=(2+4)*2=12, a=(1+3+4)*2=16
	want := []float64{16, 12, 14, 8}
	for v, w := range want {
		if bl[v] != w {
			t.Errorf("blevel(%d) = %g, want %g", v, bl[v], w)
		}
	}
}

func TestTopLevels(t *testing.T) {
	g := diamond(t)
	tl, err := g.TopLevels(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// tlevel(a)=0; tlevel(b)=1+10=11; tlevel(c)=1+20=21;
	// tlevel(d)=max(11+2+30, 21+3+40)=64
	want := []float64{0, 11, 21, 64}
	for v, w := range want {
		if tl[v] != w {
			t.Errorf("tlevel(%d) = %g, want %g", v, tl[v], w)
		}
	}
}

func TestDepthLevels(t *testing.T) {
	g := diamond(t)
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1, 2}, {3}}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	for i := range want {
		if len(levels[i]) != len(want[i]) {
			t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
		}
		for j := range want[i] {
			if levels[i][j] != want[i][j] {
				t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost structure: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if back.Weight(v) != g.Weight(v) || back.Label(v) != g.Label(v) {
			t.Errorf("node %d mismatch after round trip", v)
		}
	}
	for _, e := range g.Edges() {
		if d, ok := back.EdgeData(e.From, e.To); !ok || d != e.Data {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestUnmarshalRejectsBadGraphs(t *testing.T) {
	cases := []string{
		`{"nodes":[{"weight":-1}],"edges":[]}`,
		`{"nodes":[{"weight":1},{"weight":1}],"edges":[{"From":0,"To":0,"Data":1}]}`,
		`{"nodes":[{"weight":1}],"edges":[{"From":0,"To":5,"Data":1}]}`,
		`not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestDOTContainsAllNodesAndEdges(t *testing.T) {
	g := diamond(t)
	dot := g.DOT("diamond")
	for _, frag := range []string{"digraph", "n0", "n3", "n0 -> n1", "n2 -> n3", "w=4"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(r *rand.Rand, maxNodes int) *Graph {
	n := 1 + r.Intn(maxNodes)
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(float64(r.Intn(10)), "")
	}
	// only edges from lower to higher ids: acyclic by construction
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(4) == 0 {
				g.MustEdge(u, v, float64(r.Intn(100)))
			}
		}
	}
	return g
}

func TestPropertyTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)), 40)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != g.NumNodes() {
			return false
		}
		pos := make([]int, g.NumNodes())
		seen := make([]bool, g.NumNodes())
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBottomLevelMonotone(t *testing.T) {
	// A node's bottom level strictly dominates each successor's bottom level
	// plus the edge cost.
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)), 40)
		bl, err := g.BottomLevels(1.5, 2.5)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, a := range g.Succ(u) {
				if bl[u] < g.Weight(u)*1.5+a.Data*2.5+bl[a.Node]-1e-9 {
					return false
				}
			}
			if bl[u] < g.Weight(u)*1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTopPlusBottomBoundsCriticalPath(t *testing.T) {
	// With commFactor 0 and execFactor 1, tlevel(v)+blevel(v) is the longest
	// weight path through v, which is at most the critical path weight; the
	// maximum over v equals it.
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)), 40)
		tl, err1 := g.TopLevels(1, 0)
		bl, err2 := g.BottomLevels(1, 0)
		cp, err3 := g.CriticalPathWeight()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		max := 0.0
		for v := 0; v < g.NumNodes(); v++ {
			through := tl[v] + bl[v]
			if through > cp+1e-9 {
				return false
			}
			if through > max {
				max = through
			}
		}
		return g.NumNodes() == 0 || abs(max-cp) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDepthLevelsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)), 40)
		levels, err := g.DepthLevels()
		if err != nil {
			return false
		}
		seen := make([]bool, g.NumNodes())
		for d, level := range levels {
			for _, v := range level {
				if seen[v] {
					return false
				}
				seen[v] = true
				// all predecessors must be in strictly earlier levels
				for _, a := range g.Pred(v) {
					found := false
					for dd := 0; dd < d; dd++ {
						for _, u := range levels[dd] {
							if u == a.Node {
								found = true
							}
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
