// Package graph implements the weighted directed acyclic task graphs used
// throughout the library: the macro-dataflow application model
// G = (V, E, w, data) of the paper, where w(v) is the computation cost of a
// task in cycles and data(u,v) is the number of data items carried by an
// edge.
//
// A Graph is built incrementally with AddNode and AddEdge; the structure is
// append-only (nodes and edges are never removed), while weights and edge
// data may be updated in place with SetWeight and SetEdgeData. Node
// identifiers are dense integers in [0, NumNodes). All scheduling packages
// treat those identifiers as indices into per-task arrays.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Adj is one adjacency entry: a neighbouring node and the data volume of the
// connecting edge.
type Adj struct {
	Node int     // neighbour node id
	Data float64 // data volume data(u,v) carried by the edge
}

// Edge is a fully-specified edge, used when enumerating all edges at once.
type Edge struct {
	From, To int
	Data     float64
}

// Graph is a vertex-weighted, edge-weighted directed graph. It is intended to
// be acyclic; Validate or TopoOrder report an error if a cycle is present.
// The zero value is an empty graph ready for use.
type Graph struct {
	weights []float64
	labels  []string
	succ    [][]Adj
	pred    [][]Adj
	edges   int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		weights: make([]float64, 0, n),
		labels:  make([]string, 0, n),
		succ:    make([][]Adj, 0, n),
		pred:    make([][]Adj, 0, n),
	}
}

// AddNode appends a node with the given computation weight and
// human-readable label, returning its id. Weights must be non-negative;
// a negative weight panics, since it indicates a programming error in a
// generator rather than bad external input.
func (g *Graph) AddNode(weight float64, label string) int {
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative node weight %g", weight))
	}
	id := len(g.weights)
	g.weights = append(g.weights, weight)
	g.labels = append(g.labels, label)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds a precedence edge from u to v carrying data items.
// It returns an error on out-of-range endpoints, self loops, negative data,
// or a duplicate edge.
func (g *Graph) AddEdge(u, v int, data float64) error {
	n := len(g.weights)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if data < 0 {
		return fmt.Errorf("graph: negative data %g on edge (%d,%d)", data, u, v)
	}
	for _, a := range g.succ[u] {
		if a.Node == v {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	g.succ[u] = append(g.succ[u], Adj{Node: v, Data: data})
	g.pred[v] = append(g.pred[v], Adj{Node: u, Data: data})
	g.edges++
	return nil
}

// MustEdge is AddEdge that panics on error; generators use it since they
// construct edges from loop indices that are correct by construction.
func (g *Graph) MustEdge(u, v int, data float64) {
	if err := g.AddEdge(u, v, data); err != nil {
		panic(err)
	}
}

// SetWeight updates w(v) in place. It rejects out-of-range nodes and
// non-finite or negative weights with an error (never a panic): weight
// updates arrive from untrusted session deltas, unlike AddNode's
// generator-built weights.
func (g *Graph) SetWeight(v int, weight float64) error {
	if v < 0 || v >= len(g.weights) {
		return fmt.Errorf("graph: set_weight node %d out of range [0,%d)", v, len(g.weights))
	}
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("graph: node %d weight %g must be finite and non-negative", v, weight)
	}
	g.weights[v] = weight
	return nil
}

// SetEdgeData updates data(u,v) in place, keeping the forward and backward
// adjacency lists consistent. It rejects a missing edge and non-finite or
// negative data with an error.
func (g *Graph) SetEdgeData(u, v int, data float64) error {
	n := len(g.weights)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if data < 0 || math.IsNaN(data) || math.IsInf(data, 0) {
		return fmt.Errorf("graph: edge (%d,%d) data %g must be finite and non-negative", u, v, data)
	}
	found := false
	for i := range g.succ[u] {
		if g.succ[u][i].Node == v {
			g.succ[u][i].Data = data
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("graph: set_data on missing edge (%d,%d)", u, v)
	}
	for i := range g.pred[v] {
		if g.pred[v][i].Node == u {
			g.pred[v][i].Data = data
			break
		}
	}
	return nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.weights) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Weight returns w(v).
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// Label returns the label given to AddNode.
func (g *Graph) Label(v int) string { return g.labels[v] }

// Succ returns the successor adjacency of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Succ(v int) []Adj { return g.succ[v] }

// Pred returns the predecessor adjacency of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Pred(v int) []Adj { return g.pred[v] }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v int) int { return len(g.pred[v]) }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v int) int { return len(g.succ[v]) }

// EdgeData returns the data volume of edge (u,v) and whether the edge exists.
func (g *Graph) EdgeData(u, v int) (float64, bool) {
	for _, a := range g.succ[u] {
		if a.Node == v {
			return a.Data, true
		}
	}
	return 0, false
}

// Edges enumerates every edge in node order.
func (g *Graph) Edges() []Edge {
	return g.EdgesAppend(make([]Edge, 0, g.edges))
}

// EdgesAppend appends every edge in node order to dst and returns the
// extended slice. It is the allocation-free form of Edges for callers that
// recycle an edge buffer (the service's canonical request hashing).
func (g *Graph) EdgesAppend(dst []Edge) []Edge {
	for u := range g.succ {
		for _, a := range g.succ[u] {
			dst = append(dst, Edge{From: u, To: a.Node, Data: a.Data})
		}
	}
	return dst
}

// Sources returns all nodes with no predecessors, in id order.
func (g *Graph) Sources() []int {
	var out []int
	for v := range g.pred {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns all nodes with no successors, in id order.
func (g *Graph) Sinks() []int {
	var out []int
	for v := range g.succ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TotalWeight returns the sum of all node weights.
func (g *Graph) TotalWeight() float64 {
	var w float64
	for _, x := range g.weights {
		w += x
	}
	return w
}

// TotalData returns the sum of all edge data volumes.
func (g *Graph) TotalData() float64 {
	var d float64
	for u := range g.succ {
		for _, a := range g.succ[u] {
			d += a.Data
		}
	}
	return d
}

// ErrCycle is reported by TopoOrder and Validate when the graph contains a
// directed cycle.
var ErrCycle = errors.New("graph: not a DAG (cycle detected)")

// TopoOrder returns the node ids in a topological order (Kahn's algorithm,
// smallest-id-first among ready nodes, so the order is deterministic).
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.weights)
	indeg := make([]int, n)
	for v := range g.pred {
		indeg[v] = len(g.pred[v])
	}
	// A simple FIFO queue keeps the order deterministic: sources are pushed
	// in id order and each node pushes its successors in adjacency order.
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, a := range g.succ[v] {
			indeg[a.Node]--
			if indeg[a.Node] == 0 {
				queue = append(queue, a.Node)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and consistency of the
// forward and backward adjacency lists.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	fwd := 0
	for u := range g.succ {
		fwd += len(g.succ[u])
	}
	bwd := 0
	for v := range g.pred {
		bwd += len(g.pred[v])
	}
	if fwd != g.edges || bwd != g.edges {
		return fmt.Errorf("graph: adjacency mismatch fwd=%d bwd=%d edges=%d", fwd, bwd, g.edges)
	}
	for u := range g.succ {
		for _, a := range g.succ[u] {
			found := false
			for _, b := range g.pred[a.Node] {
				if b.Node == u && b.Data == a.Data {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge (%d,%d) missing from pred list", u, a.Node)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		weights: append([]float64(nil), g.weights...),
		labels:  append([]string(nil), g.labels...),
		succ:    make([][]Adj, len(g.succ)),
		pred:    make([][]Adj, len(g.pred)),
		edges:   g.edges,
	}
	for i := range g.succ {
		c.succ[i] = append([]Adj(nil), g.succ[i]...)
	}
	for i := range g.pred {
		c.pred[i] = append([]Adj(nil), g.pred[i]...)
	}
	return c
}

// CriticalPathWeight returns the maximum, over all paths, of the sum of node
// weights along the path (communication ignored). It is a lower bound on any
// makespan when divided by the fastest processor speed.
func (g *Graph) CriticalPathWeight() (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	best := make([]float64, len(g.weights))
	var max float64
	for _, v := range order {
		b := 0.0
		for _, a := range g.pred[v] {
			if best[a.Node] > b {
				b = best[a.Node]
			}
		}
		best[v] = b + g.weights[v]
		if best[v] > max {
			max = best[v]
		}
	}
	return max, nil
}
