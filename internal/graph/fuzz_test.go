package graph

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON ensures arbitrary input never panics the decoder and
// that anything it accepts is a structurally valid graph that round-trips.
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"weight":1},{"weight":2}],"edges":[{"From":0,"To":1,"Data":3}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"weight":-1}]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected input is fine
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("accepted graph fails to marshal: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}
