package graph

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }
func ip(v int) *int          { return &v }

// deltaDiamond builds 0 -> {1,2} -> 3 with unit weights and data.
func deltaDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(1, "")
	}
	g.MustEdge(0, 1, 1)
	g.MustEdge(0, 2, 1)
	g.MustEdge(1, 3, 1)
	g.MustEdge(2, 3, 1)
	return g
}

func TestDeltaApply(t *testing.T) {
	g := deltaDiamond(t)
	d := Delta{
		{Op: "add_task", Weight: f64(5), Label: "new"},
		{Op: "add_edge", From: ip(3), To: ip(4), Data: f64(2)},
		{Op: "set_weight", Task: ip(1), Weight: f64(9)},
		{Op: "set_data", From: ip(0), To: ip(2), Data: f64(7)},
	}
	ng, eff, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if eff.Added != 1 {
		t.Errorf("Added = %d, want 1", eff.Added)
	}
	wantDirty := []int{4, 1, 2}
	if len(eff.Dirty) != len(wantDirty) {
		t.Fatalf("Dirty = %v, want %v", eff.Dirty, wantDirty)
	}
	for i, v := range wantDirty {
		if eff.Dirty[i] != v {
			t.Errorf("Dirty[%d] = %d, want %d", i, eff.Dirty[i], v)
		}
	}
	if ng.NumNodes() != 5 || ng.NumEdges() != 5 {
		t.Errorf("new graph is %d nodes/%d edges, want 5/5", ng.NumNodes(), ng.NumEdges())
	}
	if w := ng.Weight(4); w != 5 {
		t.Errorf("new task weight = %g, want 5", w)
	}
	if ng.Label(4) != "new" {
		t.Errorf("new task label = %q, want %q", ng.Label(4), "new")
	}
	if w := ng.Weight(1); w != 9 {
		t.Errorf("weight(1) = %g, want 9", w)
	}
	if dv, ok := ng.EdgeData(0, 2); !ok || dv != 7 {
		t.Errorf("data(0,2) = %g,%v, want 7,true", dv, ok)
	}
	// set_data must keep both adjacency directions in sync
	for _, a := range ng.Pred(2) {
		if a.Node == 0 && a.Data != 7 {
			t.Errorf("pred data(0,2) = %g, want 7", a.Data)
		}
	}
	if err := ng.Validate(); err != nil {
		t.Errorf("new graph invalid: %v", err)
	}
	// the source graph must be untouched
	if g.NumNodes() != 4 || g.NumEdges() != 4 || g.Weight(1) != 1 {
		t.Errorf("source graph mutated: %d nodes, %d edges, w(1)=%g", g.NumNodes(), g.NumEdges(), g.Weight(1))
	}
}

func TestDeltaErrors(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"empty", Delta{}, "empty delta"},
		{"unknown op", Delta{{Op: "drop_task"}}, "unknown op"},
		{"cycle", Delta{{Op: "add_edge", From: ip(3), To: ip(0), Data: f64(1)}}, "cycle"},
		{"self loop", Delta{{Op: "add_edge", From: ip(2), To: ip(2), Data: f64(1)}}, "self loop"},
		{"dangling edge", Delta{{Op: "add_edge", From: ip(0), To: ip(99), Data: f64(1)}}, "out of range"},
		{"duplicate edge", Delta{{Op: "add_edge", From: ip(0), To: ip(1), Data: f64(1)}}, "duplicate edge"},
		{"negative data", Delta{{Op: "add_edge", From: ip(1), To: ip(2), Data: f64(-1)}}, "negative data"},
		{"missing fields", Delta{{Op: "add_edge", From: ip(0)}}, "missing from/to/data"},
		{"missing weight", Delta{{Op: "add_task"}}, "missing weight"},
		{"unknown task", Delta{{Op: "set_weight", Task: ip(12), Weight: f64(1)}}, "out of range"},
		{"negative weight", Delta{{Op: "set_weight", Task: ip(1), Weight: f64(-2)}}, "finite and non-negative"},
		{"missing edge", Delta{{Op: "set_data", From: ip(1), To: ip(2), Data: f64(1)}}, "missing edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := deltaDiamond(t)
			before := g.Clone()
			if _, _, err := tc.d.Apply(g); err == nil {
				t.Fatalf("Apply succeeded, want error containing %q", tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply error %q, want substring %q", err, tc.want)
			}
			// a failed delta must not disturb the source graph
			if g.NumNodes() != before.NumNodes() || g.NumEdges() != before.NumEdges() {
				t.Errorf("failed delta mutated the graph")
			}
		})
	}
}

func TestDeltaNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, d := range []Delta{
			{{Op: "add_task", Weight: &v}},
			{{Op: "set_weight", Task: ip(0), Weight: &v}},
			{{Op: "add_edge", From: ip(1), To: ip(2), Data: &v}},
			{{Op: "set_data", From: ip(0), To: ip(1), Data: &v}},
		} {
			if _, _, err := d.Apply(deltaDiamond(t)); err == nil {
				t.Errorf("op %s accepted %g", d[0].Op, v)
			}
		}
	}
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	body := `[
		{"op":"add_task","weight":3,"label":"t"},
		{"op":"add_edge","from":0,"to":4,"data":0},
		{"op":"set_weight","task":4,"weight":0}
	]`
	var d Delta
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	ng, eff, err := d.Apply(deltaDiamond(t))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// zero weight and zero data are legal and distinct from "missing"
	if ng.Weight(4) != 0 {
		t.Errorf("weight(4) = %g, want 0", ng.Weight(4))
	}
	if dv, ok := ng.EdgeData(0, 4); !ok || dv != 0 {
		t.Errorf("data(0,4) = %g,%v, want 0,true", dv, ok)
	}
	if eff.Added != 1 || len(eff.Dirty) != 2 {
		t.Errorf("eff = %+v, want Added 1, 2 dirty", eff)
	}
	// a missing required field must error, not default to task 0
	var bad Delta
	if err := json.Unmarshal([]byte(`[{"op":"set_weight","weight":1}]`), &bad); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if _, _, err := bad.Apply(deltaDiamond(t)); err == nil || !strings.Contains(err.Error(), "missing task") {
		t.Errorf("missing task field: got %v", err)
	}
}
