package graph

import (
	"fmt"
	"math"
)

// A Delta is an ordered list of graph mutations streamed by a scheduling
// session: new tasks and edges, and cost updates on existing ones. Ops
// apply sequentially, so an add_edge may reference a task added earlier in
// the same delta. The zero value is an empty delta.
//
// Like UnmarshalJSON, the delta layer turns every malformed input — cycles,
// dangling or duplicate edges, self loops, NaN/Inf or negative costs,
// unknown ops, missing fields — into an error, never a panic: deltas arrive
// from untrusted clients.
type Delta []DeltaOp

// DeltaOp is one graph mutation. Op selects the kind; the other fields are
// pointers so that a missing required field is distinguishable from a zero
// value (task 0, weight 0 and data 0 are all legal) and rejected explicitly.
//
//	{"op":"add_task","weight":3,"label":"t"}     append a task, id = NumNodes
//	{"op":"add_edge","from":1,"to":5,"data":2}   add a precedence edge
//	{"op":"set_weight","task":4,"weight":7}      update a task's weight
//	{"op":"set_data","from":1,"to":5,"data":9}   update an edge's data volume
type DeltaOp struct {
	Op     string   `json:"op"`
	Weight *float64 `json:"weight,omitempty"` // add_task, set_weight
	Label  string   `json:"label,omitempty"`  // add_task
	Task   *int     `json:"task,omitempty"`   // set_weight
	From   *int     `json:"from,omitempty"`   // add_edge, set_data
	To     *int     `json:"to,omitempty"`     // add_edge, set_data
	Data   *float64 `json:"data,omitempty"`   // add_edge, set_data
}

// Effect reports what a successfully applied delta touched, in terms the
// incremental re-scheduler consumes.
type Effect struct {
	// Dirty lists the tasks whose own probe inputs changed: a changed
	// weight alters the task's execution time, and a new or re-costed
	// incoming edge alters its communication placement. Descendants are NOT
	// listed — the suffix replay re-schedules them transitively — and
	// neither are priority shifts, which the commit-order comparison
	// detects. Ids index the new graph; duplicates are possible.
	Dirty []int
	// Added is the number of tasks appended by the delta (their ids are the
	// last Added ids of the new graph).
	Added int
}

// Apply applies the delta to a deep copy of g, re-validates the result
// (acyclicity included) and returns the new graph together with its Effect.
// g itself is never mutated, so a failed delta leaves the caller's graph —
// and the session holding it — exactly as it was.
func (d Delta) Apply(g *Graph) (*Graph, Effect, error) {
	var eff Effect
	if len(d) == 0 {
		return nil, eff, fmt.Errorf("graph: empty delta")
	}
	ng := g.Clone()
	for i, op := range d {
		if err := op.apply(ng, &eff); err != nil {
			return nil, Effect{}, fmt.Errorf("graph: delta op %d (%s): %w", i, op.Op, err)
		}
	}
	// one pass over the final graph catches cycles introduced by any
	// combination of ops (each AddEdge alone only checks local shape)
	if err := ng.Validate(); err != nil {
		return nil, Effect{}, err
	}
	return ng, eff, nil
}

func (op *DeltaOp) apply(g *Graph, eff *Effect) error {
	switch op.Op {
	case "add_task":
		if op.Weight == nil {
			return fmt.Errorf("missing weight")
		}
		w := *op.Weight
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("weight %g must be finite and non-negative", w)
		}
		g.AddNode(w, op.Label)
		eff.Added++
		return nil
	case "add_edge":
		if op.From == nil || op.To == nil || op.Data == nil {
			return fmt.Errorf("missing from/to/data")
		}
		if math.IsNaN(*op.Data) || math.IsInf(*op.Data, 0) {
			return fmt.Errorf("data %g must be finite", *op.Data)
		}
		if err := g.AddEdge(*op.From, *op.To, *op.Data); err != nil {
			return err
		}
		eff.Dirty = append(eff.Dirty, *op.To)
		return nil
	case "set_weight":
		if op.Task == nil || op.Weight == nil {
			return fmt.Errorf("missing task/weight")
		}
		if err := g.SetWeight(*op.Task, *op.Weight); err != nil {
			return err
		}
		eff.Dirty = append(eff.Dirty, *op.Task)
		return nil
	case "set_data":
		if op.From == nil || op.To == nil || op.Data == nil {
			return fmt.Errorf("missing from/to/data")
		}
		if err := g.SetEdgeData(*op.From, *op.To, *op.Data); err != nil {
			return err
		}
		eff.Dirty = append(eff.Dirty, *op.To)
		return nil
	default:
		return fmt.Errorf("unknown op (known: add_task, add_edge, set_weight, set_data)")
	}
}
