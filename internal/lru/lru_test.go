package lru

import "testing"

func TestCoreEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Add("c", 3) // over capacity; "b" is now least recent
	k, v, ok := c.EvictOver()
	if !ok || k != "b" || v != 2 {
		t.Fatalf("EvictOver = %q, %d, %v; want b, 2", k, v, ok)
	}
	if _, _, ok := c.EvictOver(); ok {
		t.Fatal("second EvictOver should report within bounds")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted key still present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCorePeekDoesNotPromote(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = %d, %v", v, ok)
	}
	c.Add("c", 3)
	if k, _, ok := c.EvictOver(); !ok || k != "a" {
		t.Fatalf("evicted %q; Peek must not have promoted a", k)
	}
}

func TestCoreAddRefreshesAndPromotes(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh promotes
	if v, _ := c.Peek("a"); v != 10 {
		t.Fatalf("refreshed value = %d, want 10", v)
	}
	c.Add("c", 3)
	if k, _, ok := c.EvictOver(); !ok || k != "b" {
		t.Fatalf("evicted %q, want b", k)
	}
}

func TestCoreDisabled(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled core cached a value")
	}
	if _, _, ok := c.EvictOver(); ok {
		t.Fatal("disabled core evicted")
	}
}

func TestCoreReset(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("reset core still serves entries")
	}
}
