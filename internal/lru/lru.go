// Package lru provides the unlocked core of a fixed-capacity LRU: the
// list-plus-map mechanics shared by the scheduling service's result cache
// and the sweep workers' job cache. It is deliberately lock-free — both
// callers compose multi-step operations (alias indexes, attach-if-absent)
// that need their own mutex around several core calls, so locking here
// would only double the cost.
package lru

import "container/list"

// Core is an unlocked LRU over comparable keys. The zero value is unusable;
// construct with New. Not safe for concurrent use: callers hold their own
// lock across every call.
type Core[K comparable, V any] struct {
	max   int
	ll    *list.List // front = most recent
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a core holding up to max entries; max <= 0 disables it
// (every Get misses, every Add is dropped).
func New[K comparable, V any](max int) *Core[K, V] {
	return &Core[K, V]{max: max, ll: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the value under k, promoting it to most recent.
func (c *Core[K, V]) Get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value under k without promoting it.
func (c *Core[K, V]) Peek(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts k (most recent) or refreshes an existing entry's value,
// promoting it. It never evicts — callers drain EvictOver afterwards so
// they can unhook per-entry state (alias indexes) as entries fall out.
func (c *Core[K, V]) Add(k K, v V) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
}

// EvictOver removes and returns the least recently used entry while the
// core is over capacity; ok is false once within bounds.
func (c *Core[K, V]) EvictOver() (k K, v V, ok bool) {
	if c.max <= 0 || c.ll.Len() <= c.max {
		return k, v, false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	e := oldest.Value.(*entry[K, V])
	delete(c.items, e.key)
	return e.key, e.val, true
}

// Len reports the current number of entries.
func (c *Core[K, V]) Len() int { return c.ll.Len() }

// Reset empties the core, retaining capacity settings.
func (c *Core[K, V]) Reset() {
	c.ll.Init()
	clear(c.items)
}
