package testbeds

import (
	"fmt"

	"oneport/internal/graph"
)

// Additional classical task-graph families beyond the paper's six testbeds.
// They widen the comparison suite (exp.Compare) and exercise shapes the
// paper's kernels do not cover: trees and a tiled Cholesky factorization.

// OutTree builds a complete out-tree (top-down binary tree by default):
// every node has fanout children, depth levels in total, unit weights.
// Trees are the classic fork-heavy workload where one-port send
// serialization dominates.
func OutTree(depth, fanout int, c float64) *graph.Graph {
	g := graph.New(1 << depth)
	build := func() int { return g.AddNode(1, fmt.Sprintf("n%d", g.NumNodes())) }
	root := build()
	frontier := []int{root}
	for d := 1; d < depth; d++ {
		var next []int
		for _, u := range frontier {
			for k := 0; k < fanout; k++ {
				v := build()
				g.MustEdge(u, v, c)
				next = append(next, v)
			}
		}
		frontier = next
	}
	return g
}

// InTree builds the mirror image: leaves reduce pairwise (fanout-wise) into
// a single root; the receive port of each reducer serializes its inputs.
func InTree(depth, fanin int, c float64) *graph.Graph {
	g := graph.New(1 << depth)
	// build levels from the leaves down to the root
	width := 1
	for d := 1; d < depth; d++ {
		width *= fanin
	}
	level := make([]int, width)
	for i := range level {
		level[i] = g.AddNode(1, fmt.Sprintf("leaf%d", i))
	}
	for len(level) > 1 {
		nextWidth := (len(level) + fanin - 1) / fanin
		next := make([]int, nextWidth)
		for i := range next {
			next[i] = g.AddNode(1, fmt.Sprintf("red%d", g.NumNodes()))
			for k := 0; k < fanin; k++ {
				idx := i*fanin + k
				if idx < len(level) {
					g.MustEdge(level[idx], next[i], c)
				}
			}
		}
		level = next
	}
	return g
}

// Cholesky builds the tiled right-looking Cholesky factorization task graph
// over an n×n tile grid: POTRF(k) → TRSM(k,i) → {SYRK(k,i), GEMM(k,i,j)} →
// next level. Weights follow the classic flop ratios (POTRF 1, TRSM 3,
// SYRK 3, GEMM 6 — scaled so the units stay comparable to the other
// testbeds); data volumes are c times the producing task's weight, the
// paper's convention.
func Cholesky(n int, c float64) *graph.Graph {
	g := graph.New(n * n * n / 3)
	const (
		wPotrf = 1
		wTrsm  = 3
		wSyrk  = 3
		wGemm  = 6
	)
	// tile (i,j) last writer task id
	writer := map[[2]int]int{}
	dep := func(i, j, to int) {
		if u, ok := writer[[2]int{i, j}]; ok {
			g.MustEdge(u, to, c*g.Weight(u))
		}
	}
	for k := 0; k < n; k++ {
		potrf := g.AddNode(wPotrf, fmt.Sprintf("potrf%d", k))
		dep(k, k, potrf)
		writer[[2]int{k, k}] = potrf
		for i := k + 1; i < n; i++ {
			trsm := g.AddNode(wTrsm, fmt.Sprintf("trsm%d,%d", k, i))
			dep(k, k, trsm)
			dep(i, k, trsm)
			writer[[2]int{i, k}] = trsm
		}
		for i := k + 1; i < n; i++ {
			syrk := g.AddNode(wSyrk, fmt.Sprintf("syrk%d,%d", k, i))
			dep(i, k, syrk)
			dep(i, i, syrk)
			writer[[2]int{i, i}] = syrk
			for j := k + 1; j < i; j++ {
				gemm := g.AddNode(wGemm, fmt.Sprintf("gemm%d,%d,%d", k, i, j))
				dep(i, k, gemm)
				dep(j, k, gemm)
				dep(i, j, gemm)
				writer[[2]int{i, j}] = gemm
			}
		}
	}
	return g
}

// ExtraNames lists the families beyond the paper's six.
func ExtraNames() []string { return []string{"cholesky", "outtree", "intree"} }
