// Package testbeds generates the six task-graph families of the paper's
// evaluation (§5.1): LU, LAPLACE, STENCIL, FORK-JOIN, DOOLITTLE and LDMt,
// plus plain fork graphs and random layered DAGs used by tests and the
// complexity constructions.
//
// Weight rules follow §5.2: LAPLACE, STENCIL and FORK-JOIN tasks have unit
// weight; LU tasks at level k weigh N−k; DOOLITTLE and LDMt tasks at level
// k weigh k. Every edge (u,v) carries data(u,v) = c·w(u) where c is the
// communication-to-computation ratio of the target platform (the paper uses
// c = 10 throughout).
package testbeds

import (
	"fmt"
	"math/rand"
	"sort"

	"oneport/internal/graph"
)

// ForkJoin builds the FORK-JOIN testbed: a source task, n independent middle
// tasks and a sink, all of unit weight.
func ForkJoin(n int, c float64) *graph.Graph {
	g := graph.New(n + 2)
	src := g.AddNode(1, "src")
	mids := make([]int, n)
	for i := 0; i < n; i++ {
		mids[i] = g.AddNode(1, fmt.Sprintf("m%d", i))
		g.MustEdge(src, mids[i], c)
	}
	sink := g.AddNode(1, "sink")
	for _, m := range mids {
		g.MustEdge(m, sink, c)
	}
	return g
}

// Fork builds a bare fork graph: a parent of weight w0 and children with the
// given weights and message sizes. It is the graph family of the paper's
// NP-completeness proof (Figure 2).
func Fork(w0 float64, childWeights, childData []float64) (*graph.Graph, error) {
	if len(childWeights) != len(childData) {
		return nil, fmt.Errorf("testbeds: %d child weights but %d data volumes",
			len(childWeights), len(childData))
	}
	g := graph.New(len(childWeights) + 1)
	parent := g.AddNode(w0, "v0")
	for i := range childWeights {
		v := g.AddNode(childWeights[i], fmt.Sprintf("v%d", i+1))
		g.MustEdge(parent, v, childData[i])
	}
	return g, nil
}

// Laplace builds the LAPLACE testbed: an n×n grid in which cell (i,j) feeds
// (i+1,j) and (i,j+1); all weights are 1. Every node lies on a critical
// path (the anti-diagonal wavefront).
func Laplace(n int, c float64) *graph.Graph {
	g := graph.New(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.AddNode(1, fmt.Sprintf("(%d,%d)", i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				g.MustEdge(id(i, j), id(i+1, j), c)
			}
			if j+1 < n {
				g.MustEdge(id(i, j), id(i, j+1), c)
			}
		}
	}
	return g
}

// Stencil builds the STENCIL testbed: n rows of n unit-weight cells; cell
// (r,j) feeds its three lower neighbours (r+1, j−1..j+1).
func Stencil(n int, c float64) *graph.Graph {
	g := graph.New(n * n)
	id := func(r, j int) int { return r*n + j }
	for r := 0; r < n; r++ {
		for j := 0; j < n; j++ {
			g.AddNode(1, fmt.Sprintf("(%d,%d)", r, j))
		}
	}
	for r := 0; r+1 < n; r++ {
		for j := 0; j < n; j++ {
			for dj := -1; dj <= 1; dj++ {
				if nj := j + dj; nj >= 0 && nj < n {
					g.MustEdge(id(r, j), id(r+1, nj), c)
				}
			}
		}
	}
	return g
}

// LU builds the LU-decomposition testbed: for k = 1..n−1 a pivot task P_k
// and update tasks U_{k,j} (j = k+1..n), every level-k task of weight n−k
// (the work shrinks as the factorization proceeds, [Cosnard et al.]).
// Dependences: P_k → U_{k,j}; U_{k,k+1} → P_{k+1}; U_{k,j} → U_{k+1,j}.
func LU(n int, c float64) *graph.Graph {
	return eliminationGraph(n, c, func(k int) float64 { return float64(n - k) }, "lu")
}

// Doolittle builds the DOOLITTLE-reduction testbed. The dependence skeleton
// is the row/column elimination structure of the Doolittle algorithm
// [Golub & Van Loan]; by §5.2 the task weight at level k is k (inner
// products grow with the step).
func Doolittle(n int, c float64) *graph.Graph {
	return eliminationGraph(n, c, func(k int) float64 { return float64(k) }, "doolittle")
}

// eliminationGraph is the shared skeleton of LU and DOOLITTLE: n−1 levels,
// level k with one pivot task and n−k update tasks of weight w(k).
func eliminationGraph(n int, c float64, weight func(int) float64, name string) *graph.Graph {
	g := graph.New(n * n / 2)
	// pivot[k] and update[k][j] ids, 1-based level k
	pivot := make([]int, n) // index k = 1..n-1
	update := make(map[[2]int]int, n*n/2)
	for k := 1; k <= n-1; k++ {
		w := weight(k)
		pivot[k-1] = g.AddNode(w, fmt.Sprintf("%s-p%d", name, k))
		for j := k + 1; j <= n; j++ {
			update[[2]int{k, j}] = g.AddNode(w, fmt.Sprintf("%s-u%d,%d", name, k, j))
		}
	}
	for k := 1; k <= n-1; k++ {
		w := weight(k)
		d := c * w
		for j := k + 1; j <= n; j++ {
			g.MustEdge(pivot[k-1], update[[2]int{k, j}], d)
		}
		if k+1 <= n-1 {
			g.MustEdge(update[[2]int{k, k + 1}], pivot[k], d)
			for j := k + 2; j <= n; j++ {
				g.MustEdge(update[[2]int{k, j}], update[[2]int{k + 1, j}], d)
			}
		}
	}
	return g
}

// LDMt builds the LDMᵀ-factorization testbed: like the elimination skeleton
// but each level k has a diagonal task D_k feeding two independent fans
// (the L-solve and the M-solve), all of weight k (§5.2's rule).
func LDMt(n int, c float64) *graph.Graph {
	g := graph.New(n * n)
	diag := make([]int, n)
	lfan := make(map[[2]int]int, n*n/2)
	mfan := make(map[[2]int]int, n*n/2)
	for k := 1; k <= n-1; k++ {
		w := float64(k)
		diag[k-1] = g.AddNode(w, fmt.Sprintf("ldmt-d%d", k))
		for j := k + 1; j <= n; j++ {
			lfan[[2]int{k, j}] = g.AddNode(w, fmt.Sprintf("ldmt-l%d,%d", k, j))
			mfan[[2]int{k, j}] = g.AddNode(w, fmt.Sprintf("ldmt-m%d,%d", k, j))
		}
	}
	for k := 1; k <= n-1; k++ {
		d := c * float64(k)
		for j := k + 1; j <= n; j++ {
			g.MustEdge(diag[k-1], lfan[[2]int{k, j}], d)
			g.MustEdge(diag[k-1], mfan[[2]int{k, j}], d)
		}
		if k+1 <= n-1 {
			g.MustEdge(lfan[[2]int{k, k + 1}], diag[k], d)
			g.MustEdge(mfan[[2]int{k, k + 1}], diag[k], d)
			for j := k + 2; j <= n; j++ {
				g.MustEdge(lfan[[2]int{k, j}], lfan[[2]int{k + 1, j}], d)
				g.MustEdge(mfan[[2]int{k, j}], mfan[[2]int{k + 1, j}], d)
			}
		}
	}
	return g
}

// RandomLayered builds a random DAG of the given number of layers and width:
// every node has weight in [1, maxW], every layer-l node draws 1..3
// predecessors from layer l−1, and edges carry data = c·w(source). The same
// seed always yields the same graph.
func RandomLayered(seed int64, layers, width, maxW int, c float64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(layers * width)
	prev := make([]int, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]int, 0, width)
		for i := 0; i < width; i++ {
			w := float64(1 + r.Intn(maxW))
			v := g.AddNode(w, fmt.Sprintf("L%d.%d", l, i))
			cur = append(cur, v)
			if l > 0 {
				npred := 1 + r.Intn(3)
				if npred > len(prev) {
					npred = len(prev)
				}
				perm := r.Perm(len(prev))[:npred]
				sort.Ints(perm)
				for _, pi := range perm {
					u := prev[pi]
					g.MustEdge(u, v, c*g.Weight(u))
				}
			}
		}
		prev = cur
	}
	return g
}

// Names lists the six paper testbeds in the order of §5.1.
func Names() []string {
	return []string{"lu", "laplace", "stencil", "forkjoin", "doolittle", "ldmt"}
}

// ByName builds the named testbed at problem size n with communication
// ratio c.
func ByName(name string, n int, c float64) (*graph.Graph, error) {
	switch name {
	case "lu":
		return LU(n, c), nil
	case "laplace":
		return Laplace(n, c), nil
	case "stencil":
		return Stencil(n, c), nil
	case "forkjoin":
		return ForkJoin(n, c), nil
	case "doolittle":
		return Doolittle(n, c), nil
	case "ldmt":
		return LDMt(n, c), nil
	case "cholesky":
		return Cholesky(n, c), nil
	case "outtree":
		return OutTree(n, 2, c), nil
	case "intree":
		return InTree(n, 2, c), nil
	default:
		return nil, fmt.Errorf("testbeds: unknown testbed %q (known: %v + %v)", name, Names(), ExtraNames())
	}
}
