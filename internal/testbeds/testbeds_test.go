package testbeds

import (
	"testing"

	"oneport/internal/graph"
)

func TestAllTestbedsAreValidDAGs(t *testing.T) {
	for _, name := range Names() {
		for _, n := range []int{2, 3, 5, 10} {
			g, err := ByName(name, n, 10)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s(%d): %v", name, n, err)
			}
			if g.NumNodes() == 0 {
				t.Errorf("%s(%d): empty graph", name, n)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 5, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(6, 10)
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8", g.NumNodes())
	}
	if g.NumEdges() != 12 {
		t.Fatalf("edges = %d, want 12", g.NumEdges())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("fork-join must have one source and one sink")
	}
	src, sink := g.Sources()[0], g.Sinks()[0]
	if g.OutDegree(src) != 6 || g.InDegree(sink) != 6 {
		t.Fatal("middle layer wrong")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Weight(v) != 1 {
			t.Errorf("node %d weight %g, want 1", v, g.Weight(v))
		}
	}
	// data = c * w(source) = 10
	for _, e := range g.Edges() {
		if e.Data != 10 {
			t.Errorf("edge %v data %g, want 10", e, e.Data)
		}
	}
}

func TestForkValidation(t *testing.T) {
	if _, err := Fork(1, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	g, err := Fork(0, []float64{5, 7}, []float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("fork shape wrong: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Weight(0) != 0 {
		t.Errorf("parent weight = %g, want 0", g.Weight(0))
	}
}

func TestLaplaceShape(t *testing.T) {
	n := 4
	g := Laplace(n, 10)
	if g.NumNodes() != n*n {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), n*n)
	}
	// edges: 2*n*(n-1)
	if want := 2 * n * (n - 1); g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	// critical path: 2n-1 unit tasks along the top-left to bottom-right
	cp, err := g.CriticalPathWeight()
	if err != nil {
		t.Fatal(err)
	}
	if cp != float64(2*n-1) {
		t.Errorf("critical path = %g, want %d", cp, 2*n-1)
	}
	// every node on a critical path (§5.3): tlevel+blevel == cp for all
	tl, _ := g.TopLevels(1, 0)
	bl, _ := g.BottomLevels(1, 0)
	for v := 0; v < g.NumNodes(); v++ {
		if tl[v]+bl[v] != cp {
			t.Errorf("node %d not on a critical path (%g+%g != %g)", v, tl[v], bl[v], cp)
		}
	}
}

func TestStencilShape(t *testing.T) {
	n := 5
	g := Stencil(n, 10)
	if g.NumNodes() != n*n {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), n*n)
	}
	// interior cells have out-degree 3, boundary cells 2, last row 0
	id := func(r, j int) int { return r*n + j }
	if g.OutDegree(id(0, 2)) != 3 {
		t.Errorf("interior out-degree = %d, want 3", g.OutDegree(id(0, 2)))
	}
	if g.OutDegree(id(0, 0)) != 2 {
		t.Errorf("corner out-degree = %d, want 2", g.OutDegree(id(0, 0)))
	}
	if g.OutDegree(id(n-1, 2)) != 0 {
		t.Errorf("last-row out-degree = %d, want 0", g.OutDegree(id(n-1, 2)))
	}
	// depth levels = n rows of n tasks
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != n {
		t.Fatalf("depth levels = %d, want %d", len(levels), n)
	}
	for r, level := range levels {
		if len(level) != n {
			t.Errorf("level %d has %d tasks, want %d", r, len(level), n)
		}
	}
}

func TestLUShapeAndWeights(t *testing.T) {
	n := 5
	g := LU(n, 10)
	// (n-1) pivots + sum_{k=1}^{n-1} (n-k) updates = 4 + 10 = 14
	if want := (n - 1) + n*(n-1)/2; g.NumNodes() != want {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), want)
	}
	// level-k tasks weigh n-k; levels are 2k-1 (pivot) and 2k (updates) deep
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	// level structure alternates pivot / update fan: 2(n-1) depth levels
	if len(levels) != 2*(n-1) {
		t.Fatalf("depth levels = %d, want %d", len(levels), 2*(n-1))
	}
	for d, level := range levels {
		k := d/2 + 1
		for _, v := range level {
			if g.Weight(v) != float64(n-k) {
				t.Errorf("depth %d task %s weight %g, want %d", d, g.Label(v), g.Weight(v), n-k)
			}
		}
	}
	// data = c * w(source)
	for _, e := range g.Edges() {
		if e.Data != 10*g.Weight(e.From) {
			t.Errorf("edge %v data %g, want %g", e, e.Data, 10*g.Weight(e.From))
		}
	}
}

func TestDoolittleWeightsGrow(t *testing.T) {
	n := 5
	g := Doolittle(n, 10)
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	for d, level := range levels {
		k := d/2 + 1
		for _, v := range level {
			if g.Weight(v) != float64(k) {
				t.Errorf("depth %d task %s weight %g, want %d", d, g.Label(v), g.Weight(v), k)
			}
		}
	}
}

func TestLDMtTwoFans(t *testing.T) {
	n := 4
	g := LDMt(n, 10)
	// per level k: 1 diag + 2*(n-k) fan tasks
	want := 0
	for k := 1; k <= n-1; k++ {
		want += 1 + 2*(n-k)
	}
	if g.NumNodes() != want {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), want)
	}
	// the first diagonal task fans out to 2*(n-1) tasks
	if g.OutDegree(0) != 2*(n-1) {
		t.Errorf("diag out-degree = %d, want %d", g.OutDegree(0), 2*(n-1))
	}
	// weights grow with the level
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	for d, level := range levels {
		k := d/2 + 1
		for _, v := range level {
			if g.Weight(v) != float64(k) {
				t.Errorf("depth %d task %s weight %g, want %d", d, g.Label(v), g.Weight(v), k)
			}
		}
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a := RandomLayered(7, 5, 8, 4, 10)
	b := RandomLayered(7, 5, 8, 4, 10)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.Weight(v) != b.Weight(v) {
			t.Fatal("same seed, different weights")
		}
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different edges")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 40 {
		t.Fatalf("nodes = %d, want 40", a.NumNodes())
	}
}

func TestRandomLayeredConnectivity(t *testing.T) {
	g := RandomLayered(3, 6, 5, 3, 2)
	// every non-first-layer node has at least one predecessor
	levels, err := g.DepthLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 6 {
		t.Fatalf("levels = %d, want 6", len(levels))
	}
	for v := 5; v < g.NumNodes(); v++ { // nodes after layer 0
		if g.InDegree(v) == 0 {
			t.Errorf("node %d (%s) has no predecessor", v, g.Label(v))
		}
	}
}

func TestGraphSizesScale(t *testing.T) {
	// documented size formulas hold for a larger instance
	n := 20
	if got, want := LU(n, 1).NumNodes(), (n-1)+n*(n-1)/2; got != want {
		t.Errorf("LU nodes = %d, want %d", got, want)
	}
	if got, want := Laplace(n, 1).NumNodes(), n*n; got != want {
		t.Errorf("Laplace nodes = %d, want %d", got, want)
	}
	var _ *graph.Graph = Stencil(2, 1) // smallest sensible stencil builds
}

func TestOutTreeShape(t *testing.T) {
	g := OutTree(3, 2, 5)
	// 1 + 2 + 4 = 7 nodes, 6 edges
	if g.NumNodes() != 7 || g.NumEdges() != 6 {
		t.Fatalf("outtree: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.Sources()) != 1 {
		t.Fatalf("outtree sources = %v", g.Sources())
	}
	if len(g.Sinks()) != 4 {
		t.Fatalf("outtree sinks = %d, want 4", len(g.Sinks()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInTreeShape(t *testing.T) {
	g := InTree(3, 2, 5)
	if g.NumNodes() != 7 || g.NumEdges() != 6 {
		t.Fatalf("intree: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.Sinks()) != 1 {
		t.Fatalf("intree sinks = %v", g.Sinks())
	}
	if len(g.Sources()) != 4 {
		t.Fatalf("intree sources = %d, want 4", len(g.Sources()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// fan-in 3 over 9 leaves: 9 -> 3 -> 1
	g3 := InTree(3, 3, 1)
	if g3.NumNodes() != 13 {
		t.Fatalf("intree fanin3 nodes = %d, want 13", g3.NumNodes())
	}
}

func TestCholeskyShape(t *testing.T) {
	n := 4
	g := Cholesky(n, 10)
	// counts: potrf n; trsm n(n-1)/2; syrk n(n-1)/2; gemm sum_{k} C(n-k-1,2)
	wantGemm := 0
	for k := 0; k < n; k++ {
		m := n - k - 1
		wantGemm += m * (m - 1) / 2
	}
	want := n + n*(n-1)/2 + n*(n-1)/2 + wantGemm
	if g.NumNodes() != want {
		t.Fatalf("cholesky nodes = %d, want %d", g.NumNodes(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// the first potrf is the unique entry
	if len(g.Sources()) != 1 || g.Sources()[0] != 0 {
		t.Fatalf("cholesky sources = %v", g.Sources())
	}
	// data volumes follow the c*w(producer) rule
	for _, e := range g.Edges() {
		if e.Data != 10*g.Weight(e.From) {
			t.Fatalf("edge %v data %g, want %g", e, e.Data, 10*g.Weight(e.From))
		}
	}
}

func TestExtraTestbedsSchedulable(t *testing.T) {
	for _, name := range ExtraNames() {
		g, err := ByName(name, 4, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
