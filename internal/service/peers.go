package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"oneport/internal/service/breaker"
	"oneport/internal/service/ring"
)

// maxPeerBodyBytes caps how much of a peer's response a fill will read: a
// compromised or confused replica must not be able to balloon this one's
// memory. Far above any real encoded schedule, far below "unbounded".
const maxPeerBodyBytes = 256 << 20

// ringEpochHeader tags every replica-internal relay with the membership
// epoch the sender routed by. The receiver serves the relay only when the
// epochs match; otherwise it answers 409 and the requester computes
// locally. The tag is what makes a live membership swap safe: two replicas
// holding different rings can never complete a relay between them, so a
// half-propagated epoch degrades to duplicate local compute — never to a
// response produced under the wrong ownership map.
const ringEpochHeader = "X-Ring-Epoch"

// streamMarkHeader marks a response that was encoded straight to the wire
// (no staged body). A requester relaying a peer fill detects the mark and
// streams the body through to its own client instead of staging it.
const streamMarkHeader = "X-Sched-Stream"

// maxFillAttempts is the retry budget of one peer fill: a transport error
// with the request context still live gets this many total connection
// attempts before the fill counts as failed. The budget covers exactly the
// blips worth retrying (a dropped connection mid-handshake); verdicts the
// owner actually delivered — any status, a torn body — are never retried,
// local compute is cheaper than a second round-trip.
const maxFillAttempts = 2

// ringState is one immutable epoch of fleet membership: a version number
// and the consistent-hash ring built from that epoch's replica list. A nil
// ring (epoch 0) means the replica has not joined a fleet. States are
// swapped atomically and whole — a request routes an entire fill by the
// one state it loaded, never by a torn mix of two epochs.
type ringState struct {
	epoch uint64
	ring  *ring.Ring
}

// active reports whether this epoch has anyone to forward to.
func (st *ringState) active() bool {
	return st != nil && st.ring != nil && st.ring.Size() >= 2
}

// members returns the epoch's replica list (nil before joining a fleet).
func (st *ringState) members() []string {
	if st == nil || st.ring == nil {
		return nil
	}
	return st.ring.Members()
}

// peerSet is the requester-side half of the distributed cache: the current
// membership epoch (swappable live via POST /ring), the HTTP client that
// asks owners to fill, and the per-peer circuit breakers that degrade the
// server to local-only compute while an owner is down. nil means the
// replica has no identity (Config.Self empty) and can never participate in
// a fleet; a non-nil peerSet with an inactive ring is a single replica
// that may be joined into a fleet later.
type peerSet struct {
	self     string
	client   *http.Client
	breakers *breaker.Set

	state atomic.Pointer[ringState]
	swaps atomic.Int64 // accepted membership swaps
	skews atomic.Int64 // relays rejected (seen from either side) for epoch mismatch
}

// newPeerSet builds the peer layer from Config.Self and Config.Peers. The
// initial ring is built over peers ∪ {self} — every replica must be handed
// the same full replica list for the fleet to agree on ownership — at
// epoch 1; with no peers the replica starts alone at epoch 0, ready to be
// joined into a fleet by an admin push. Returns nil only when self is
// empty: a replica without an advertised identity cannot own ring
// segments.
func newPeerSet(self string, peers []string, client *http.Client, brk breaker.Config) *peerSet {
	self = ring.Normalize(self)
	if self == "" {
		return nil
	}
	if client == nil {
		// failure detection must be much faster than the compute-scale
		// total timeout, or a hung owner stalls every cold request for its
		// keyspace share until the full timeout: a dead or black-holed host
		// fails at dial (5 s), a connected-but-silent owner at the response
		// header (2 min — fills whose legitimate compute exceeds it degrade
		// to a duplicate local run, which beats minutes of stalling; pass
		// Config.PeerClient to retune for slower heuristics).
		client = &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				TLSHandshakeTimeout:   5 * time.Second,
				ResponseHeaderTimeout: 2 * time.Minute,
				MaxIdleConnsPerHost:   16,
			},
		}
	}
	p := &peerSet{self: self, client: client, breakers: breaker.NewSet(brk)}
	st := &ringState{}
	if len(peers) > 0 {
		st = &ringState{epoch: 1, ring: ring.New(append([]string{self}, peers...), 0)}
	}
	p.state.Store(st)
	return p
}

// epoch returns the current membership epoch.
func (p *peerSet) epoch() uint64 { return p.state.Load().epoch }

// owner maps a canonical sum to its owning replica under the current
// epoch. ok is false when the ring is inactive (no fleet, or alone in it);
// the returned epoch is the one the caller must tag the relay with, so
// ownership and tag always come from the same atomically-loaded state.
func (p *peerSet) owner(sum [sha256.Size]byte) (member string, isSelf bool, epoch uint64, ok bool) {
	st := p.state.Load()
	if !st.active() {
		return "", false, st.epoch, false
	}
	member = st.ring.Owner(sum)
	return member, member == p.self, st.epoch, true
}

// survivorOwner maps a sum to its owner on the ring of the current
// epoch's members minus self — the ring DrainSessions hands sessions to.
// A draining replica uses it to redirect traffic for sessions that hashed
// to itself: they were shipped to the survivor owner, not the full-ring
// one. ok is false when the fleet is inactive or self is the only member.
func (p *peerSet) survivorOwner(sum [sha256.Size]byte) (member string, ok bool) {
	st := p.state.Load()
	if !st.active() {
		return "", false
	}
	var survivors []string
	for _, m := range st.members() {
		if m != p.self {
			survivors = append(survivors, m)
		}
	}
	if len(survivors) == 0 {
		return "", false
	}
	return ring.New(survivors, 0).Owner(sum), true
}

// swap installs a new membership epoch. Epochs are strictly monotonic: a
// push below the current epoch is stale (rejected), a push at the current
// epoch is accepted only as an idempotent replay of the identical member
// list (so an admin can safely re-push to a replica that already has it),
// and a higher epoch replaces the state atomically. Entries whose owner
// changed are NOT migrated — they are lazily re-filled on next use, which
// is what makes the swap O(1) and safe under live traffic.
func (p *peerSet) swap(epoch uint64, members []string) (*ringState, bool, error) {
	if epoch == 0 {
		return nil, false, fmt.Errorf("service: ring epoch must be positive")
	}
	r := ring.New(members, 0)
	if r.Size() == 0 {
		return nil, false, fmt.Errorf("service: ring update has no members")
	}
	for {
		cur := p.state.Load()
		if epoch < cur.epoch {
			return cur, false, fmt.Errorf("service: stale ring epoch %d (serving epoch %d)", epoch, cur.epoch)
		}
		if epoch == cur.epoch {
			if cur.ring != nil && sameMembers(cur.ring.Members(), r.Members()) {
				return cur, false, nil // idempotent replay
			}
			return cur, false, fmt.Errorf("service: conflicting membership for current epoch %d", epoch)
		}
		next := &ringState{epoch: epoch, ring: r}
		if p.state.CompareAndSwap(cur, next) {
			p.swaps.Add(1)
			return next, true, nil
		}
	}
}

// sameMembers compares two normalized, sorted member lists.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fetch relays one raw request body to the owner's internal fill endpoint,
// tagged with the epoch the owner was resolved under. The caller owns the
// returned response (status dispatch, body limits, breaker verdict).
func (p *peerSet) fetch(ctx context.Context, owner string, epoch uint64, body []byte, tenant string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/cache/peer", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ringEpochHeader, strconv.FormatUint(epoch, 10))
	if tenant != "" && tenant != defaultTenant {
		// forward the client's identity so the owner's admission charges
		// the real tenant, not one shared relay bucket
		req.Header.Set(apiKeyHeader, tenant)
	}
	return p.client.Do(req)
}
