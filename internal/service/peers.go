package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"oneport/internal/service/ring"
)

// peerCooldown is how long a replica that failed a fill request is skipped
// before the next forwarding attempt. During the cooldown every key that
// replica owns is computed locally (degraded mode), so a dead peer costs
// one failed round-trip per cooldown window instead of one per request.
const peerCooldown = 5 * time.Second

// maxPeerBodyBytes caps how much of a peer's response a fill will read: a
// compromised or confused replica must not be able to balloon this one's
// memory. Far above any real encoded schedule, far below "unbounded".
const maxPeerBodyBytes = 256 << 20

// peerSet is the requester-side half of the distributed cache: the ring
// that assigns each canonical key an owner replica, the HTTP client that
// asks owners to fill, and the per-peer health state that degrades the
// server to local-only compute while an owner is down. nil (no peers
// configured, or alone in the ring) means single-replica operation.
type peerSet struct {
	self   string
	ring   *ring.Ring
	client *http.Client

	mu   sync.Mutex
	down map[string]time.Time // member -> retry-not-before
}

// newPeerSet builds the peer layer from Config.Self and Config.Peers. The
// ring is built over peers ∪ {self} — every replica must be handed the same
// full replica list for the fleet to agree on ownership — and self is
// excluded from forwarding by identity. Returns nil when the configuration
// leaves nothing to forward to.
func newPeerSet(self string, peers []string, client *http.Client) *peerSet {
	self = ring.Normalize(self)
	if self == "" || len(peers) == 0 {
		return nil
	}
	r := ring.New(append([]string{self}, peers...), 0)
	if r.Size() < 2 {
		return nil // alone in the ring: plain single-replica serving
	}
	if client == nil {
		// failure detection must be much faster than the compute-scale
		// total timeout, or a hung owner stalls every cold request for its
		// keyspace share until the full timeout: a dead or black-holed host
		// fails at dial (5 s), a connected-but-silent owner at the response
		// header (2 min — fills whose legitimate compute exceeds it degrade
		// to a duplicate local run, which beats minutes of stalling; pass
		// Config.PeerClient to retune for slower heuristics).
		client = &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				TLSHandshakeTimeout:   5 * time.Second,
				ResponseHeaderTimeout: 2 * time.Minute,
				MaxIdleConnsPerHost:   16,
			},
		}
	}
	return &peerSet{self: self, ring: r, client: client, down: make(map[string]time.Time)}
}

// owner maps a canonical sum to its owning replica and reports whether that
// replica is this one.
func (p *peerSet) owner(sum [sha256.Size]byte) (member string, isSelf bool) {
	member = p.ring.Owner(sum)
	return member, member == p.self
}

// available reports whether a member is currently worth forwarding to,
// clearing its down mark once the cooldown has passed.
func (p *peerSet) available(member string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	until, marked := p.down[member]
	if !marked {
		return true
	}
	if time.Now().After(until) {
		delete(p.down, member)
		return true
	}
	return false
}

// markDown records a fill failure: member is skipped until the cooldown
// elapses.
func (p *peerSet) markDown(member string) {
	p.mu.Lock()
	p.down[member] = time.Now().Add(peerCooldown)
	p.mu.Unlock()
}

// fetch relays one raw request body to the owner's internal fill endpoint.
// On a 200 it returns the owner's encoded response bytes; on any other
// status it returns (nil, status, nil) — the caller decides whether that is
// the peer's fault — and errors are reserved for transport and read
// failures (including an oversized body).
func (p *peerSet) fetch(ctx context.Context, owner string, body []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/cache/peer", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// drain a bounded slice of the error body so the connection is
		// reusable; its content does not matter — local compute reproduces
		// any owner-side verdict
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBodyBytes+1))
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("service: peer %s: %w", owner, err)
	}
	if len(data) > maxPeerBodyBytes {
		return nil, resp.StatusCode, fmt.Errorf("service: peer %s: response exceeds %d bytes", owner, maxPeerBodyBytes)
	}
	return data, resp.StatusCode, nil
}
