package service

// This file is the sending half of ring-aware session handoff: when a
// replica is told to shut down, DrainSessions ships every live session to
// the replica that owns the session id's hash on a ring built from the
// SURVIVING members (this replica excluded — the departing replica may
// well own its own sessions under the serving epoch, and shipping to
// itself would be a no-op that loses them). Each handoff holds the
// session's lock across export + peer import + local close, so an acked
// delta can never slip in between what was serialized and what the peer
// now owns; sessions whose import fails stay here, journaled, and are
// recovered on the next start instead of being lost.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oneport/internal/service/ring"
	"oneport/internal/service/session"
)

// DrainSessions begins the drain (opens and imports start answering 503,
// /readyz goes not-ready), syncs every session journal to disk, and — when
// the replica is part of an active fleet — hands each live session to its
// ring owner among the surviving members. It returns how many sessions
// moved and how many were kept (no fleet, owner down or refusing, send
// failed); kept sessions remain journaled for recovery. Safe to call once
// on the SIGTERM path before http.Server.Shutdown: in-flight deltas finish
// or get 307ed, new opens bounce to healthy replicas.
func (s *Server) DrainSessions(ctx context.Context) (moved, kept int) {
	s.draining.Store(true)
	// even SyncNone journals become durable now: whatever the handoff
	// cannot move must survive the process exit
	_ = s.sessions.SyncJournals()
	ids := s.sessions.List()
	if len(ids) == 0 {
		return 0, 0
	}
	if s.peers == nil {
		return 0, len(ids)
	}
	st := s.peers.state.Load()
	if !st.active() {
		return 0, len(ids)
	}
	var survivors []string
	for _, m := range st.members() {
		if m != s.peers.self {
			survivors = append(survivors, m)
		}
	}
	if len(survivors) == 0 {
		return 0, len(ids)
	}
	surv := ring.New(survivors, 0)
	for _, id := range ids {
		if ctx.Err() != nil {
			kept += len(ids) - moved - kept
			break
		}
		owner := surv.Owner(sha256.Sum256([]byte(id)))
		err := s.sessions.Handoff(id, func(snap *session.Snapshot) error {
			return s.sendSessionImport(ctx, owner, st.epoch, snap)
		})
		switch {
		case err == nil:
			moved++
		case errors.Is(err, session.ErrNotFound):
			// closed or evicted since List: nothing to move, nothing lost
		default:
			kept++
		}
	}
	return moved, kept
}

// sendSessionImport posts one session snapshot to a peer's import
// endpoint, tagged with the epoch the owner was resolved under, settling
// the peer's circuit breaker with the verdict it earned (the same rules
// as cache fills: transport failure and 5xx are the peer's fault, any
// completed verdict proves it alive, our own cancellation proves
// nothing). Only a 200 — the peer rebuilt and journaled the session —
// counts as delivered.
func (s *Server) sendSessionImport(ctx context.Context, owner string, epoch uint64, snap *session.Snapshot) error {
	now := time.Now()
	if !s.peers.breakers.Allow(owner, now) {
		return fmt.Errorf("service: peer %s breaker open", owner)
	}
	body, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("service: encode session %s: %w", snap.ID, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/session/peer/import", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ringEpochHeader, strconv.FormatUint(epoch, 10))
	hr, err := s.peers.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			s.peers.breakers.Cancel(owner)
		} else {
			s.peers.breakers.Failure(owner, time.Now())
		}
		return err
	}
	defer drainClose(hr.Body)
	switch {
	case hr.StatusCode == http.StatusOK:
		s.peers.breakers.Success(owner)
		return nil
	case hr.StatusCode == http.StatusConflict:
		// epoch skew mid-rollout: the owner is alive but routing by a
		// different membership map — keep the session journaled here
		s.peers.skews.Add(1)
		s.peers.breakers.Success(owner)
		return fmt.Errorf("service: peer %s serves a different ring epoch", owner)
	case hr.StatusCode >= 500:
		s.peers.breakers.Failure(owner, time.Now())
		return fmt.Errorf("service: peer %s import failed: %s", owner, hr.Status)
	default:
		// 4xx (or a 503 shed): the peer answered — alive, but refusing
		s.peers.breakers.Success(owner)
		return fmt.Errorf("service: peer %s refused import: %s", owner, hr.Status)
	}
}
