package service

import (
	"crypto/sha256"
	"sync"

	"oneport/internal/lru"
)

// maxBodyAliases caps how many raw-body hashes one cache entry may be
// reachable through. Equivalent requests can be spelled in unboundedly many
// JSON byte forms (field order, whitespace, model aliases); the cap keeps a
// hostile or sloppy client from growing the alias index without bound while
// still covering every realistic client, which sends one byte form.
const maxBodyAliases = 4

// resultCache is a fixed-capacity LRU over computed responses with two
// indexes: the canonical content hash (CanonicalKey) and the SHA-256 of the
// raw request body bytes. Entries carry both the decoded Response and the
// pre-encoded JSON bytes of its cache-hit form (Cached:true, trailing
// newline), so the serving hot path can answer a repeated request with one
// body hash, one map lookup and one Write — no JSON decode, no
// re-canonicalization, no re-encode. Stored responses and encoded bytes are
// immutable once inserted; readers receive the shared storage read-only.
type resultCache struct {
	mu     sync.Mutex
	core   *lru.Core[string, *cacheEntry]
	bodies map[[sha256.Size]byte]string // raw-body hash -> canonical key
}

type cacheEntry struct {
	key    string
	resp   *Response
	enc    []byte              // encoded cache-hit response; nil until attached
	bodies [][sha256.Size]byte // raw-body aliases pointing at this entry
	gen    uint64              // bumped when resp is replaced; guards late attaches
}

// newResultCache returns an LRU holding up to max entries; max <= 0
// disables caching (every lookup misses, every insert is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{
		core:   lru.New[string, *cacheEntry](max),
		bodies: make(map[[sha256.Size]byte]string),
	}
}

// get returns a copy of the cached response with Cached set, or false.
func (c *resultCache) get(key string) (Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.core.Get(key)
	if !ok {
		return Response{}, false
	}
	resp := *e.resp
	resp.Cached = true
	return resp, true
}

// getByBody returns the pre-encoded cache-hit bytes of the entry aliased by
// the given raw-body hash. The returned slice is shared, immutable storage:
// write it, never mutate it.
func (c *resultCache) getByBody(body [sha256.Size]byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.bodies[body]
	if !ok {
		return nil, false
	}
	e, ok := c.core.Get(key)
	if !ok || e.enc == nil {
		return nil, false
	}
	return e.enc, true
}

// add inserts (or refreshes) a computed response, evicting the least
// recently used entry when full. The caller must not mutate resp or its
// schedule afterwards. A refreshed entry drops its encoded bytes and body
// aliases: they described the replaced response.
func (c *resultCache) add(key string, resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.core.Peek(key); ok {
		e.resp = resp
		e.enc = nil
		e.gen++
		c.dropAliases(e)
		c.core.Add(key, e) // promote
		return
	}
	c.core.Add(key, &cacheEntry{key: key, resp: resp})
	for {
		_, e, ok := c.core.EvictOver()
		if !ok {
			break
		}
		c.dropAliases(e)
	}
}

// attachEncoded registers the raw-body alias for key's entry and, when the
// entry has no encoded bytes yet, attaches the bytes produced by enc. The
// closure — a full response JSON encode, potentially milliseconds for a
// large schedule — runs OUTSIDE the cache lock so it never stalls
// concurrent cache traffic; the entry's generation counter makes a late
// attach against a refreshed or re-inserted entry a no-op instead of
// pairing old bytes with a new response.
func (c *resultCache) attachEncoded(key string, body [sha256.Size]byte, enc func() []byte) {
	c.mu.Lock()
	e0, ok := c.core.Peek(key)
	if !ok {
		c.mu.Unlock()
		return // evicted between compute and attach; nothing to index
	}
	gen, need := e0.gen, e0.enc == nil
	c.mu.Unlock()

	var encoded []byte
	if need {
		if encoded = enc(); encoded == nil {
			return // response not serializable; leave the entry byte-less
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.core.Peek(key)
	if !ok || e != e0 || e.gen != gen {
		return // evicted, re-inserted or refreshed while encoding
	}
	if e.enc == nil && encoded != nil {
		e.enc = encoded
	}
	if e.enc == nil {
		return // lost the need-race to a refresh; next request re-attaches
	}
	if _, aliased := c.bodies[body]; aliased || len(e.bodies) >= maxBodyAliases {
		return
	}
	e.bodies = append(e.bodies, body)
	c.bodies[body] = key
}

// dropAliases removes an entry's raw-body index entries; call with c.mu held.
func (c *resultCache) dropAliases(e *cacheEntry) {
	for _, b := range e.bodies {
		delete(c.bodies, b)
	}
	e.bodies = nil
}

// len reports the current number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.core.Len()
}
