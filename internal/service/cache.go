package service

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over computed responses, keyed by the
// canonical request hash. Stored responses are immutable once inserted —
// readers receive a shallow copy with the Cached flag set, sharing the
// (read-only) *sched.Schedule — so a hit costs one map lookup and one list
// splice under a single mutex.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *Response
}

// newResultCache returns an LRU holding up to max entries; max <= 0
// disables caching (every lookup misses, every insert is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns a copy of the cached response with Cached set, or false.
func (c *resultCache) get(key string) (Response, bool) {
	if c.max <= 0 {
		return Response{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Response{}, false
	}
	c.ll.MoveToFront(el)
	resp := *el.Value.(*cacheEntry).resp
	resp.Cached = true
	return resp, true
}

// add inserts (or refreshes) a computed response, evicting the least
// recently used entry when full. The caller must not mutate resp or its
// schedule afterwards.
func (c *resultCache) add(key string, resp *Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
