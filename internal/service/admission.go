package service

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"oneport/internal/service/admit"
)

// This file binds the admission-control subsystem (internal/service/admit)
// into the serving path: request cost estimation, priority classification,
// tenant extraction, and the shed-response plumbing. Admission is opt-in
// (Config.Admission); without it the compute pool is guarded by the bare
// semaphore exactly as before.
//
// The classification contract, from cheapest to most sheddable:
//
//	cache hits            never enter admission at all (byte-index and
//	                      canonical hits answer before any slot question)
//	session deltas        admit.Interactive — always served, never queued
//	cold cheap runs       admit.Cheap
//	cold expensive runs   admit.Expensive (cost ≥ expensiveCost)
//	batch jobs, sweeps    admit.Background — first against the wall
//
// A shed is decided before any pool slot is taken and answered 503 with a
// Retry-After derived from the observed queue drain rate — never the old
// hardcoded 1.

// apiKeyHeader carries the tenant identity; requests without it are
// accounted to defaultTenant.
const apiKeyHeader = "X-API-Key"

// defaultTenant is the accounting bucket for requests without an API key.
const defaultTenant = "default"

// expensiveCost is the cost-estimate threshold above which a cold run is
// classed Expensive: roughly "a few thousand task-units" — a 4000-node
// HEFT, or DLS beyond ~250 tasks, both of which hold a pool slot long
// enough to starve interactive traffic if admitted indiscriminately.
const expensiveCost = 2000

// heuristicWeight scales a request's task count into cost units: the
// rough per-task compute multiple of each heuristic class relative to a
// single HEFT probe sweep. DLS re-scores every (ready task × processor)
// pair per commit even through the frontier cache, so it dominates; ILHA
// runs its chunked scan on top of HEFT-shaped probes; the listing
// baselines are sub-probe trivial.
var heuristicWeight = map[string]float64{
	"heft":        1,
	"heft-append": 1,
	"pct":         1,
	"dsc":         1.5,
	"ilha-levels": 1.5,
	"cpop":        2,
	"bil":         2,
	"ilha":        3,
	"dls":         8,
	"gdl":         8,
	"roundrobin":  0.5,
	"random":      0.5,
}

// estimateCost scores one normalized request: task count × heuristic
// weight, the admission queue's unit of work. Unknown heuristics (cannot
// happen post-normalize) score like HEFT.
func estimateCost(req *Request) float64 {
	w, ok := heuristicWeight[req.Heuristic]
	if !ok {
		w = 1
	}
	cost := float64(req.Graph.NumNodes()) * w
	if cost < 1 {
		cost = 1
	}
	return cost
}

// classifyRequest maps a normalized request onto its admission class and
// cost estimate. Only cold-run classes come from here — session deltas are
// tagged Interactive at the session surface, and batch/sweep traffic is
// forced to Background by its callers.
func classifyRequest(req *Request) (admit.Class, float64) {
	cost := estimateCost(req)
	if cost >= expensiveCost {
		return admit.Expensive, cost
	}
	return admit.Cheap, cost
}

// tenantOf extracts the accounting tenant from a request's API key header.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get(apiKeyHeader); k != "" {
		return k
	}
	return defaultTenant
}

// lane is the admission identity one compute runs under: who pays
// (tenant), at what priority (class/cost), and which context bounds the
// queue wait (the client's — a shed must honor the client deadline, even
// though the compute itself runs on a detached context for singleflight
// followers).
type lane struct {
	ctx    context.Context
	tenant string
	class  admit.Class
	cost   float64
}

// laneFor builds the default lane for a library-path request.
func (s *Server) laneFor(req *Request) lane {
	class, cost := classifyRequest(req)
	return lane{ctx: context.Background(), tenant: defaultTenant, class: class, cost: cost}
}

// shedResponse converts an admission failure into the 503 response shape.
// A ShedError carries the drain-rate Retry-After; a bare context error
// means the client hung up while queued (it gets a nominal retry hint —
// nobody is listening).
func (s *Server) shedResponse(key string, err error) Response {
	s.shed.Add(1)
	var se *admit.ShedError
	if errors.As(err, &se) {
		return Response{
			Key:        key,
			Error:      "service: " + se.Error(),
			shed:       true,
			retryAfter: ceilSeconds(se.RetryAfter),
		}
	}
	return Response{
		Key:        key,
		Error:      "service: request abandoned while queued for admission: " + err.Error(),
		shed:       true,
		retryAfter: 1,
	}
}

// writeShed answers one shed request: 503 with the numeric Retry-After.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	resp := s.shedResponse("", err)
	w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
	writeJSON(w, http.StatusServiceUnavailable, Response{Error: resp.Error})
}

// retryAfterSeconds is the service-wide backoff hint for 503 responses
// (deadline expiries, shed computes): with admission on, the queue's
// drain-rate estimate; without it, the EWMA of recent compute times scaled
// by how many pool "waves" are ahead of a retry. Always in [1, 60].
func (s *Server) retryAfterSeconds() int {
	if s.admission != nil {
		return ceilSeconds(s.admission.RetryAfter())
	}
	ewma := s.svcNanos.Load()
	if ewma <= 0 {
		return 1
	}
	waves := (s.inFlight.Load() + int64(s.cfg.PoolSize) - 1) / int64(s.cfg.PoolSize)
	if waves < 1 {
		waves = 1
	}
	return ceilSeconds(time.Duration(waves * ewma))
}

// observeServiceTime folds one compute duration into the EWMA behind
// retryAfterSeconds (α = 0.2; the load/store race only blurs an estimate).
func (s *Server) observeServiceTime(elapsed time.Duration) {
	old := s.svcNanos.Load()
	if old == 0 {
		s.svcNanos.Store(elapsed.Nanoseconds())
		return
	}
	s.svcNanos.Store(old - old/5 + elapsed.Nanoseconds()/5)
}

// ceilSeconds rounds a duration up to whole seconds, clamped to [1, 60].
func ceilSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}
