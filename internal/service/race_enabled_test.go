//go:build race

package service

// raceEnabled reports that this test binary was built with -race, where
// allocation counts are inflated by the instrumentation.
const raceEnabled = true
