package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oneport/internal/heuristics"
	"oneport/internal/service/admit"
	"oneport/internal/service/session"
)

// This file is the HTTP face of the scheduling-session subsystem
// (internal/service/session): open a session with the same payload
// /schedule takes, stream delta batches at it, read back re-schedules
// that replayed the untouched prefix of the previous run.
//
// Sessions are replica-local, never ring-replicated: the warm state a
// session holds (Scratch, frontier engine, recorded run) is process
// memory, so clients must pin a session to the replica that opened it
// (see DESIGN.md "Session layer" for the ring-epoch interaction).

// SessionResponse is the reply of POST /session and
// POST /session/{id}/delta: the usual scheduling response plus the
// session coordinates. Response.Key stays empty — session results are
// not cache entries.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Replayed is the number of task placements replayed verbatim from
	// the previous run (0 on open and after platform deltas).
	Replayed int `json:"replayed_tasks"`
	// Deltas is the number of delta batches applied so far.
	Deltas int `json:"deltas"`
	Response
}

// handleSessionOpen opens a scheduling session: the body is a /schedule
// Request (same normalization, same clamping), the reply the cold
// schedule plus the session id to stream deltas at.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return
	}
	defer release()
	var req Request
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	if s.admission != nil {
		// a session open is a cold run — it pays admission like /schedule
		// (deltas on the open session are Interactive and always serve).
		// The ticket is held across Open because the run consumes real
		// compute; the client's context bounds the queue wait.
		class, cost := classifyRequest(&req)
		tk, aerr := s.admission.Acquire(r.Context(), tenantOf(r), class, cost)
		if aerr != nil {
			s.writeShed(w, aerr)
			return
		}
		defer tk.Release()
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	id, info, err := s.sessions.Open(ctx, session.Params{
		Graph:     req.Graph,
		Platform:  req.Platform,
		Heuristic: req.Heuristic,
		Model:     model,
		Opts:      heuristics.ILHAOptions{B: req.Options.B, ScanDepth: req.Options.ScanDepth},
		ProbePar:  s.clampProbePar(req.Options.ProbeParallelism),
	})
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeSessionResponse(w, &SessionResponse{
		SessionID: id,
		Replayed:  info.Replayed,
		Deltas:    info.Deltas,
		Response:  sessionResult(info, req.Heuristic, req.Model),
	})
}

// handleSessionDelta applies one delta batch — {"graph":[ops...],
// "platform":[ops...]} — to a session and replies with the incremental
// re-schedule. The body rides the same pooled, size-capped read path as
// /schedule.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return
	}
	defer release()
	var d session.Delta
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	id := r.PathValue("id")
	if s.admission != nil {
		// deltas on an open session never queue and are never shed — the
		// warm state is already paid for; the bypass is counted so the
		// brownout ladder's "always serve" traffic stays observable
		s.admission.NoteBypass(admit.Interactive)
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	info, err := s.sessions.Delta(ctx, id, d)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeSessionResponse(w, &SessionResponse{
		SessionID: id,
		Replayed:  info.Replayed,
		Deltas:    info.Deltas,
		Response:  sessionResult(info, "", ""),
	})
}

// handleSessionClose closes a session, releasing its warm state.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.Close(r.PathValue("id")); err != nil {
		s.writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// sessionCtx bounds one session run: the client's context (a session run
// serves exactly the client that sent the delta — there is no
// singleflight here, so hanging up may cancel the run), tightened by
// Config.RequestTimeout when set.
func (s *Server) sessionCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if d := s.cfg.RequestTimeout; d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// sessionResult shapes a session run into the /schedule response form.
// heur/model are echoed when known (open); delta replies leave them to
// the client, which chose them at open time.
func sessionResult(info *session.RunInfo, heur, model string) Response {
	speedup := 0.0
	if ms := info.Schedule.Makespan(); ms > 0 {
		speedup = info.SeqTime / ms
	}
	return Response{
		Heuristic: heur,
		Model:     model,
		Tasks:     info.Tasks,
		Makespan:  info.Schedule.Makespan(),
		Speedup:   speedup,
		Comms:     info.Schedule.CommCount(),
		ElapsedNs: info.ElapsedNs,
		Schedule:  info.Schedule,
	}
}

// writeSessionError maps session failures onto the service's status
// conventions: a full table and a deadline abort are retryable 503s, an
// unknown session 404, a server-side fault 500, and everything else — bad
// deltas, invalid requests — 400.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, session.ErrFull):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.sessions.RetryAfterSeconds()))
	case errors.Is(err, heuristics.ErrCanceled):
		s.timeouts.Add(1)
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		if d := s.cfg.RequestTimeout; d > 0 {
			err = fmt.Errorf("service: session run exceeded the %s request deadline", d)
		}
	case errors.Is(err, session.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, session.ErrFault):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, Response{Error: err.Error()})
}

// writeSessionResponse writes a session reply, streaming the encode for
// bodies whose estimate exceeds Config.StreamBytes — the same threshold
// and wire mark as /schedule, so a delta on a huge session never stages a
// many-megabyte body in pooled buffers.
func (s *Server) writeSessionResponse(w http.ResponseWriter, resp *SessionResponse) {
	if !s.shouldStream(&resp.Response) {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set(streamMarkHeader, "1")
	streamJSON(w, http.StatusOK, resp)
}

// Sessions exposes the session manager, for callers embedding the server
// that need direct (non-HTTP) session access or its counters.
func (s *Server) Sessions() *session.Manager { return s.sessions }

var _ = time.Duration(0)
