package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oneport/internal/heuristics"
	"oneport/internal/service/admit"
	"oneport/internal/service/session"
)

// This file is the HTTP face of the scheduling-session subsystem
// (internal/service/session): open a session with the same payload
// /schedule takes, stream delta batches at it, read back re-schedules
// that replayed the untouched prefix of the previous run.
//
// A session's warm state lives on one replica at a time, but it is not
// stuck there: a draining replica ships each session to its id's ring
// owner (GET /session/{id}/export → POST /session/peer/import, epoch-
// tagged like every replica-internal relay), and a replica that receives
// a request for a session it doesn't hold answers 307 with the owner in
// X-Session-Owner, so pinned clients re-pin without a proxy (see
// DESIGN.md "Session durability & handoff").

// sessionOwnerHeader names the replica a 307-redirected session request
// should re-pin to (the redirect Location carries the full URL; the
// header gives clients the base URL without parsing it back out).
const sessionOwnerHeader = "X-Session-Owner"

// SessionResponse is the reply of POST /session and
// POST /session/{id}/delta: the usual scheduling response plus the
// session coordinates. Response.Key stays empty — session results are
// not cache entries.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Replayed is the number of task placements replayed verbatim from
	// the previous run (0 on open and after platform deltas).
	Replayed int `json:"replayed_tasks"`
	// Deltas is the number of delta batches applied so far.
	Deltas int `json:"deltas"`
	Response
}

// handleSessionOpen opens a scheduling session: the body is a /schedule
// Request (same normalization, same clamping), the reply the cold
// schedule plus the session id to stream deltas at.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if s.refuseWhileDraining(w) {
		return
	}
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return
	}
	defer release()
	var req Request
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	if s.admission != nil {
		// a session open is a cold run — it pays admission like /schedule
		// (deltas on the open session are Interactive and always serve).
		// The ticket is held across Open because the run consumes real
		// compute; the client's context bounds the queue wait.
		class, cost := classifyRequest(&req)
		tk, aerr := s.admission.Acquire(r.Context(), tenantOf(r), class, cost)
		if aerr != nil {
			s.writeShed(w, aerr)
			return
		}
		defer tk.Release()
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	id, info, err := s.sessions.Open(ctx, session.Params{
		Graph:     req.Graph,
		Platform:  req.Platform,
		Heuristic: req.Heuristic,
		Model:     model,
		Opts:      heuristics.ILHAOptions{B: req.Options.B, ScanDepth: req.Options.ScanDepth},
		ProbePar:  s.clampProbePar(req.Options.ProbeParallelism),
	})
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeSessionResponse(w, &SessionResponse{
		SessionID: id,
		Replayed:  info.Replayed,
		Deltas:    info.Deltas,
		Response:  sessionResult(info, req.Heuristic, req.Model),
	})
}

// handleSessionDelta applies one delta batch — {"graph":[ops...],
// "platform":[ops...]} — to a session and replies with the incremental
// re-schedule. The body rides the same pooled, size-capped read path as
// /schedule.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return
	}
	defer release()
	var d session.Delta
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	id := r.PathValue("id")
	if s.admission != nil {
		// deltas on an open session never queue and are never shed — the
		// warm state is already paid for; the bypass is counted so the
		// brownout ladder's "always serve" traffic stays observable
		s.admission.NoteBypass(admit.Interactive)
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	info, err := s.sessions.Delta(ctx, id, d)
	if err != nil {
		if s.redirectSession(w, r, id, err) {
			return
		}
		s.writeSessionError(w, err)
		return
	}
	s.writeSessionResponse(w, &SessionResponse{
		SessionID: id,
		Replayed:  info.Replayed,
		Deltas:    info.Deltas,
		Response:  sessionResult(info, "", ""),
	})
}

// handleSessionClose closes a session, releasing its warm state.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sessions.Close(id); err != nil {
		if s.redirectSession(w, r, id, err) {
			return
		}
		s.writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleSessionExport serializes a live session for a peer import (the
// drain path pushes exports itself; this endpoint lets an operator — or a
// future pull-based migration — lift a session out of a replica).
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.sessions.Export(id)
	if err != nil {
		if s.redirectSession(w, r, id, err) {
			return
		}
		s.writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleSessionImport is the receiving half of a session handoff: a
// draining peer posts a session Snapshot, this replica rebuilds it cold
// (byte-identical to the sender's warm state) and journals it as its own.
// Epoch rules match every replica-internal relay: a snapshot routed under
// a different membership epoch is answered 409, and the sender keeps the
// session journaled rather than placing it by a stale ownership map.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	if s.refuseWhileDraining(w) {
		return
	}
	cur := uint64(0)
	if s.peers != nil {
		cur = s.peers.epoch()
	}
	if got, err := strconv.ParseUint(r.Header.Get(ringEpochHeader), 10, 64); err != nil || got != cur {
		if s.peers != nil {
			s.peers.skews.Add(1)
		}
		w.Header().Set(ringEpochHeader, strconv.FormatUint(cur, 10))
		writeJSON(w, http.StatusConflict, Response{Error: fmt.Sprintf(
			"service: ring epoch mismatch: import tagged %q, serving epoch %d", r.Header.Get(ringEpochHeader), cur)})
		return
	}
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return
	}
	defer release()
	var snap session.Snapshot
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	id, info, err := s.sessions.Import(ctx, &snap)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeSessionResponse(w, &SessionResponse{
		SessionID: id,
		Replayed:  info.Replayed,
		Deltas:    info.Deltas,
		Response:  sessionResult(info, snap.Heuristic, snap.Model),
	})
}

// refuseWhileDraining answers 503 to session opens and imports once the
// drain has begun: this replica is actively shipping sessions away, so
// placing new ones here only creates more handoffs (or loses the race
// with shutdown). Reports whether it wrote the refusal.
func (s *Server) refuseWhileDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.errors.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, Response{Error: "service: replica draining"})
	return true
}

// redirectSession turns an ErrNotFound for a session this replica does not
// hold into a 307 at the id's ring owner, when a fleet is configured and
// the owner is someone else: after a drain handoff (or a client pinned to
// the wrong replica from the start), the client replays the same request
// at the Location and re-pins to the X-Session-Owner base URL. Reports
// whether it wrote the redirect.
func (s *Server) redirectSession(w http.ResponseWriter, r *http.Request, id string, err error) bool {
	if !errors.Is(err, session.ErrNotFound) || s.peers == nil {
		return false
	}
	sum := sha256.Sum256([]byte(id))
	owner, isSelf, _, ok := s.peers.owner(sum)
	if !ok {
		return false
	}
	if isSelf {
		// This replica owns the id but doesn't hold the session. While
		// draining that has one cause — DrainSessions shipped it to its
		// owner on the SURVIVOR ring (self excluded) — so point there;
		// otherwise the session is genuinely gone (expired, never opened)
		// and a 404 is the honest answer.
		if !s.draining.Load() {
			return false
		}
		if owner, ok = s.peers.survivorOwner(sum); !ok {
			return false
		}
	}
	s.sessionRedirects.Add(1)
	w.Header().Set(sessionOwnerHeader, owner)
	w.Header().Set("Location", owner+r.URL.RequestURI())
	writeJSON(w, http.StatusTemporaryRedirect, Response{Error: fmt.Sprintf(
		"service: session %s is not held here; its ring owner is %s", id, owner)})
	return true
}

// sessionCtx bounds one session run: the client's context (a session run
// serves exactly the client that sent the delta — there is no
// singleflight here, so hanging up may cancel the run), tightened by
// Config.RequestTimeout when set.
func (s *Server) sessionCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if d := s.cfg.RequestTimeout; d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// sessionResult shapes a session run into the /schedule response form.
// heur/model are echoed when known (open); delta replies leave them to
// the client, which chose them at open time.
func sessionResult(info *session.RunInfo, heur, model string) Response {
	speedup := 0.0
	if ms := info.Schedule.Makespan(); ms > 0 {
		speedup = info.SeqTime / ms
	}
	return Response{
		Heuristic: heur,
		Model:     model,
		Tasks:     info.Tasks,
		Makespan:  info.Schedule.Makespan(),
		Speedup:   speedup,
		Comms:     info.Schedule.CommCount(),
		ElapsedNs: info.ElapsedNs,
		Schedule:  info.Schedule,
	}
}

// writeSessionError maps session failures onto the service's status
// conventions: a full table and a deadline abort are retryable 503s, an
// unknown session 404, a server-side fault 500, and everything else — bad
// deltas, invalid requests — 400.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, session.ErrFull):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.sessions.RetryAfterSeconds()))
	case errors.Is(err, heuristics.ErrCanceled):
		s.timeouts.Add(1)
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		if d := s.cfg.RequestTimeout; d > 0 {
			err = fmt.Errorf("service: session run exceeded the %s request deadline", d)
		}
	case errors.Is(err, session.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, session.ErrFault):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, Response{Error: err.Error()})
}

// writeSessionResponse writes a session reply, streaming the encode for
// bodies whose estimate exceeds Config.StreamBytes — the same threshold
// and wire mark as /schedule, so a delta on a huge session never stages a
// many-megabyte body in pooled buffers.
func (s *Server) writeSessionResponse(w http.ResponseWriter, resp *SessionResponse) {
	if !s.shouldStream(&resp.Response) {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set(streamMarkHeader, "1")
	streamJSON(w, http.StatusOK, resp)
}

// Sessions exposes the session manager, for callers embedding the server
// that need direct (non-HTTP) session access or its counters.
func (s *Server) Sessions() *session.Manager { return s.sessions }

var _ = time.Duration(0)
