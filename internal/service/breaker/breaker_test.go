package breaker

import (
	"testing"
	"time"
)

// fixed config with deterministic (jitter-free) windows for the state
// machine tests.
func detCfg() Config {
	return Config{Threshold: 1, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
}

// TestBreakerOpensOnFailure: a closed breaker denies requests for the
// backoff window after Threshold consecutive failures.
func TestBreakerOpensOnFailure(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := New(detCfg())
	if !b.Allow(t0) {
		t.Fatal("fresh breaker must be closed")
	}
	b.Failure(t0)
	if b.CurrentState(t0) != Open {
		t.Fatalf("state after failure = %v, want open", b.CurrentState(t0))
	}
	if b.Allow(t0.Add(50 * time.Millisecond)) {
		t.Fatal("open breaker allowed a request inside the window")
	}
}

// TestBreakerHalfOpenSingleProbe: once the window elapses exactly one
// caller gets the probe slot; everyone else keeps being denied until the
// probe settles.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := New(detCfg())
	b.Failure(t0)
	after := t0.Add(101 * time.Millisecond)
	if !b.Allow(after) {
		t.Fatal("elapsed window must admit the probe")
	}
	if b.CurrentState(after) != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.CurrentState(after))
	}
	if b.Allow(after) {
		t.Fatal("second caller stole the half-open probe slot")
	}
	b.Success()
	if b.CurrentState(after) != Closed || !b.Allow(after) {
		t.Fatal("successful probe must close the breaker")
	}
}

// TestBreakerProbeFailureBacksOffExponentially: a failed probe re-opens
// with a doubled window, capped at MaxDelay.
func TestBreakerProbeFailureBacksOffExponentially(t *testing.T) {
	b := New(detCfg())
	now := time.Unix(1000, 0)
	b.Failure(now) // fails=1: open, window 100ms
	for i, want := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		want *= time.Millisecond
		if b.Allow(now.Add(want - time.Millisecond)) {
			t.Fatalf("round %d: window shorter than %v", i, want)
		}
		now = now.Add(want + time.Millisecond)
		if !b.Allow(now) {
			t.Fatalf("round %d: window longer than %v", i, want)
		}
		b.Failure(now) // the probe fails: the next window doubles
	}
}

// TestBreakerThreshold: with Threshold 3 the breaker tolerates two
// consecutive failures and opens on the third; an interleaved success
// resets the count.
func TestBreakerThreshold(t *testing.T) {
	cfg := detCfg()
	cfg.Threshold = 3
	t0 := time.Unix(1000, 0)
	b := New(cfg)
	b.Failure(t0)
	b.Failure(t0)
	if !b.Allow(t0) {
		t.Fatal("breaker opened below its threshold")
	}
	b.Success()
	b.Failure(t0)
	b.Failure(t0)
	if !b.Allow(t0) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Failure(t0)
	if b.Allow(t0) {
		t.Fatal("threshold-th consecutive failure did not open the breaker")
	}
}

// TestBreakerJitterBounds: jittered windows stay within
// delay * [1-j/2, 1+j/2).
func TestBreakerJitterBounds(t *testing.T) {
	cfg := Config{Threshold: 1, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 64; i++ {
		b := New(cfg)
		b.fails = 1
		d := b.backoff()
		lo, hi := 75*time.Millisecond, 125*time.Millisecond
		if d < lo || d >= hi {
			t.Fatalf("jittered window %v outside [%v, %v)", d, lo, hi)
		}
	}
}

// TestSetCounters: the set tracks opens, currently-open breakers and
// fast-failed trips across peers.
func TestSetCounters(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := NewSet(detCfg())
	if !s.Allow("a", t0) || !s.Allow("b", t0) {
		t.Fatal("fresh peers must be allowed")
	}
	s.Failure("a", t0)
	s.Success("b")
	if s.Allow("a", t0) {
		t.Fatal("peer a must be open")
	}
	st := s.Stats(t0)
	if st.Open != 1 || st.Opens != 1 || st.Trips != 1 {
		t.Fatalf("counters = %+v, want open=1 opens=1 trips=1", st)
	}
	// recovery closes it again
	later := t0.Add(time.Minute)
	if !s.Allow("a", later) {
		t.Fatal("probe denied after the window")
	}
	s.Success("a")
	if st := s.Stats(later); st.Open != 0 {
		t.Fatalf("recovered peer still counted open: %+v", st)
	}
}

// TestBreakerCancelReleasesProbe: Cancel settles an in-flight probe with
// no verdict — the slot frees immediately for the next caller, the
// failure streak is untouched, and the backoff window does not move.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := New(detCfg())
	b.Allow(t0)
	b.Failure(t0) // open, window [t0, t0+100ms)

	probeAt := t0.Add(150 * time.Millisecond)
	if !b.Allow(probeAt) {
		t.Fatal("probe denied after the window")
	}
	if b.Allow(probeAt) {
		t.Fatal("second probe granted while the first is in flight")
	}
	b.Cancel() // e.g. our client hung up: no verdict
	if b.CurrentState(probeAt) != HalfOpen {
		t.Fatalf("state after cancel = %v, want half-open", b.CurrentState(probeAt))
	}
	if !b.Allow(probeAt) {
		t.Fatal("probe slot not released by Cancel")
	}
	b.Failure(probeAt) // the real verdict doubles the window as usual
	if b.Allow(probeAt.Add(150 * time.Millisecond)) {
		t.Fatal("allowed inside the doubled window: Cancel must not reset backoff")
	}
	if !b.Allow(probeAt.Add(250 * time.Millisecond)) {
		t.Fatal("denied after the doubled window")
	}
}

// TestBreakerCancelWhenClosed: Cancel on a closed breaker is a no-op.
func TestBreakerCancelWhenClosed(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := New(detCfg())
	b.Allow(t0)
	b.Cancel()
	if b.CurrentState(t0) != Closed {
		t.Fatalf("state after cancel = %v, want closed", b.CurrentState(t0))
	}
	if !b.Allow(t0) {
		t.Fatal("closed breaker denied after Cancel")
	}
}
