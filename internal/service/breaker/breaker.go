// Package breaker implements the per-peer circuit breakers of the
// replica fleet: the health layer between "this peer answered" and "stop
// asking this peer for a while". A Breaker tracks one remote endpoint
// through the classic three-state machine — closed (requests flow),
// open (requests denied until a backoff window elapses) and half-open
// (exactly one probe request is let through to test recovery) — with
// exponential backoff and jitter on consecutive failures, so a dead peer
// costs one failed round-trip per growing window instead of one per
// request, and a recovered peer is readmitted by a single cheap probe
// rather than a thundering herd.
//
// The scheduling service shares one breaker Set between the /schedule
// peer-relay path and the sweep worker's ring fills, so both views of a
// peer's health agree. Callers pass time explicitly (Allow/Failure take
// `now`), which keeps the state machine deterministic under test.
package breaker

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int

const (
	// Closed: the peer is believed healthy; requests flow.
	Closed State = iota
	// Open: the peer failed recently; requests are denied until the
	// backoff window elapses.
	Open
	// HalfOpen: the backoff elapsed; exactly one probe request is in
	// flight to test recovery, everything else is still denied.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Config tunes a breaker. The zero value resolves to the defaults below.
type Config struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 1: peers are replicas of ourselves, and one failed
	// fill already has a cheap local fallback, so there is no reason to
	// burn more round-trips confirming the outage).
	Threshold int
	// BaseDelay is the first open window (default 500ms). Each further
	// consecutive failure doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 30s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized (default
	// 0.2: the window is delay * [1-Jitter/2, 1+Jitter/2)). Jitter keeps
	// a fleet that lost the same peer from re-probing it in lockstep.
	// Negative disables jitter deterministically.
	Jitter float64
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 1
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 500 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 30 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	return c
}

// Breaker is the circuit state of one peer. It is safe for concurrent
// use; construct via NewSet (or use the zero value with cfg defaults via
// New).
type Breaker struct {
	mu      sync.Mutex
	cfg     Config
	state   State
	fails   int       // consecutive failures
	until   time.Time // open: deny until this instant
	probing bool      // half-open: the single probe slot is taken
	opens   int64     // cumulative closed/half-open -> open transitions
}

// New returns a closed breaker with the given config (zero-value fields
// use the package defaults).
func New(cfg Config) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request to the peer may proceed at `now`. In
// the open state it returns false until the backoff window elapses, at
// which point the first caller becomes the half-open probe (Allow true)
// and everyone else keeps being denied until that probe settles. Every
// allowed request MUST be settled with exactly one Success or Failure
// call — the half-open probe slot is only released by settling.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false // the probe slot is taken
		}
		b.probing = true // a canceled probe released the slot; take it
		return true
	}
}

// Success settles an allowed request that succeeded: consecutive
// failures reset and a half-open probe closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Cancel settles an allowed request that produced no verdict about the
// peer — typically the requester's own client hung up mid-flight. It
// releases a half-open probe slot without moving the state machine, so a
// client cancellation can never trip (or heal) a breaker.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Cancel settles an allowed request to name that produced no verdict.
func (s *Set) Cancel(name string) { s.Get(name).Cancel() }

// Failure settles an allowed request that failed for a peer-attributable
// reason. Consecutive failures past Config.Threshold open the breaker
// with an exponentially growing, jittered window; a failed half-open
// probe re-opens it with the next-longer window.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.state == Closed && b.fails < b.cfg.Threshold {
		return
	}
	b.state = Open
	b.until = now.Add(b.backoff())
	b.opens++
}

// backoff computes the current open window from the consecutive-failure
// count: BaseDelay doubled per failure beyond the opening one, capped at
// MaxDelay, then jittered. Call with b.mu held.
func (b *Breaker) backoff() time.Duration {
	d := b.cfg.BaseDelay
	for i := b.cfg.Threshold; i < b.fails && d < b.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > b.cfg.MaxDelay {
		d = b.cfg.MaxDelay
	}
	if j := b.cfg.Jitter; j > 0 {
		// delay * [1-j/2, 1+j/2): full windows on average, decorrelated
		// probes across a fleet
		d = time.Duration(float64(d) * (1 - j/2 + j*rand.Float64()))
	}
	return d
}

// CurrentState reports the breaker's state at `now` without consuming
// the half-open probe slot (an elapsed open window reads as half-open).
func (b *Breaker) CurrentState(now time.Time) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && !now.Before(b.until) {
		return HalfOpen
	}
	return b.state
}

// Set is a collection of breakers keyed by peer name (the service keys
// by replica base URL), sharing one Config. It is safe for concurrent
// use; the zero value is NOT usable — construct with NewSet.
type Set struct {
	cfg   Config
	mu    sync.Mutex
	m     map[string]*Breaker
	trips atomic.Int64 // denied requests (fast-failed without a round-trip)
}

// NewSet returns an empty Set whose breakers use cfg (zero-value fields
// resolve to package defaults).
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// Get returns the breaker for name, creating a closed one on first use.
func (s *Set) Get(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = New(s.cfg)
		s.m[name] = b
	}
	return b
}

// Allow reports whether a request to name may proceed at `now`, counting
// denials in the set's trip counter. An allowed request must be settled
// with Success or Failure.
func (s *Set) Allow(name string, now time.Time) bool {
	if s.Get(name).Allow(now) {
		return true
	}
	s.trips.Add(1)
	return false
}

// Success settles an allowed request to name that succeeded.
func (s *Set) Success(name string) { s.Get(name).Success() }

// Failure settles an allowed request to name that failed for a
// peer-attributable reason.
func (s *Set) Failure(name string, now time.Time) { s.Get(name).Failure(now) }

// Counters summarizes a Set for stats export.
type Counters struct {
	// Open is the number of breakers currently in the open or half-open
	// state (peers being avoided or probed).
	Open int `json:"open"`
	// Opens is the cumulative number of closed/half-open -> open
	// transitions across all breakers.
	Opens int64 `json:"opens"`
	// Trips is the cumulative number of requests fast-failed by an open
	// breaker (degraded without a round-trip).
	Trips int64 `json:"trips"`
}

// Stats snapshots the set's counters at `now`.
func (s *Set) Stats(now time.Time) Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := Counters{Trips: s.trips.Load()}
	//schedlint:allow detorder — integer sums over per-breaker counters commute
	for _, b := range s.m {
		b.mu.Lock()
		if b.state == Open || b.state == HalfOpen {
			c.Open++
		}
		c.Opens += b.opens
		b.mu.Unlock()
	}
	return c
}
