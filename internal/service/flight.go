package service

import "sync"

// flightGroup coalesces concurrent computations of the same canonical key:
// the first caller (the leader) runs the computation, every caller that
// arrives while it is in flight waits and shares the leader's response. N
// identical cold requests — a thundering herd of clients, or peer-forwarded
// fills landing next to local traffic — therefore run the scheduler exactly
// once instead of N times.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-flight computation. resp and enc are written by the
// leader before done is closed and read-only afterwards. enc, when non-nil,
// is the pre-encoded response body fetched from a peer replica: HTTP
// followers relay it verbatim, library followers use resp.
type flight struct {
	done chan struct{}
	resp Response
	enc  []byte
}

// do returns fn's result for key, running fn at most once across concurrent
// callers. Followers invoke onWait exactly once before blocking, so callers
// can count coalesced requests at wait time (not completion time). The
// flight is deregistered before done is closed: a caller that arrives after
// completion starts a fresh flight, which is why leaders re-check the
// result cache first.
func (g *flightGroup) do(key string, onWait func(), fn func() (Response, []byte)) (Response, []byte) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		onWait()
		<-f.done
		return f.resp, f.enc
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	// deregister-then-release also on panic so followers never deadlock;
	// the compute path recovers panics itself, so resp is always populated
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.resp, f.enc = fn()
	return f.resp, f.enc
}
