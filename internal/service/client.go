package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Response bodies are read through LimitReader: the client trusts the
// remote end for content, not for size — a compromised or misbehaving
// server must not be able to balloon this process's memory. Success bodies
// carry whole encoded schedules (large but bounded); error bodies are
// one-line JSON.
const (
	maxClientRespBytes  = 1 << 30
	maxClientErrorBytes = 1 << 20
)

// Client drives a running scheduling service over HTTP: the programmatic
// counterpart of `curl -d @req.json host/schedule`. The zero value is
// unusable; set BaseURL to the server's base (e.g. "http://host:8642").
type Client struct {
	BaseURL string
	// HTTP defaults to a client with a batch-scale timeout.
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

// Schedule runs one request through POST /schedule. Job-level failures come
// back in Response.Error, transport- and server-level ones as an error.
func (c *Client) Schedule(ctx context.Context, req *Request) (*Response, error) {
	var resp Response
	if err := c.post(ctx, "/schedule", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch runs a batch through POST /batch; Responses[i] answers Requests[i]
// with per-job errors isolated in Response.Error.
func (c *Client) Batch(ctx context.Context, b *Batch) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.post(ctx, "/batch", b, &resp); err != nil {
		return nil, err
	}
	if len(resp.Responses) != len(b.Requests) {
		return nil, fmt.Errorf("service: server answered %d responses for %d requests", len(resp.Responses), len(b.Requests))
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	url := strings.TrimRight(c.BaseURL, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e Response
		_ = json.NewDecoder(io.LimitReader(resp.Body, maxClientErrorBytes)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("service: %s: %s", url, e.Error)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClientRespBytes)).Decode(out); err != nil {
		return fmt.Errorf("service: %s: bad response: %w", url, err)
	}
	return nil
}
