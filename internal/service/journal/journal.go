// Package journal is the session durability layer: one append-only
// write-ahead log per scheduling session, holding the session's opening
// state and every accepted delta in order. Because a session's warm state
// is a deterministic function of (open request, ordered delta log) — the
// incremental-oracle suites pin warm == cold — replaying a journal through
// the cold-run path reconstructs the exact pre-crash state, so the journal
// IS the session for durability purposes.
//
// Records are length-prefixed and checksummed (CRC-32C over kind+payload);
// a crash mid-append leaves a torn tail that Recover truncates back to the
// last intact record — exactly the un-acked suffix, since the manager
// appends (and, under SyncAlways, fsyncs) before acking any delta. Once a
// log outgrows Config.CompactBytes the manager folds the whole state into
// one snapshot record and the log restarts from it (write-temp + rename,
// crash-safe in both directions).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Record kinds. A log is one open (or snapshot) record followed by zero or
// more delta records; anything else is treated as a tear.
const (
	kindOpen     = 1 // the session's opening state
	kindDelta    = 2 // one accepted delta batch
	kindSnapshot = 3 // compaction: full state replacing everything before it
)

// recHeaderLen is the fixed record framing: 4-byte little-endian payload
// length, 1 byte kind; the payload is followed by a 4-byte CRC-32C over
// kind+payload.
const recHeaderLen = 5

// maxRecordBytes bounds one record's payload — matching the HTTP layer's
// body cap, since every journaled payload arrived through it. A length
// prefix above the cap is corruption, not a record to allocate for.
const maxRecordBytes = 64 << 20

// DefaultCompactBytes is the log size past which the manager is told to
// compact (Config.CompactBytes zero value).
const DefaultCompactBytes = 1 << 20

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the service runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appends reach the disk.
type Policy int

const (
	// SyncAlways fsyncs after every record: an acked delta survives power
	// loss, not just process death. The default.
	SyncAlways Policy = iota
	// SyncNone leaves flushing to the OS: acked deltas survive a process
	// crash (the write hit the page cache before the ack) but a machine
	// crash may lose a tail — Recover truncates it and the session resumes
	// from the surviving prefix.
	SyncNone
)

// ParsePolicy maps the -session-fsync flag values onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "none", "never":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always or none)", s)
	}
}

// Config sizes a Store.
type Config struct {
	// Dir holds one <id>.wal file per live session. Created if missing.
	Dir string
	// Policy is the fsync policy (zero value: SyncAlways).
	Policy Policy
	// CompactBytes is the log size above which the session manager folds
	// the state into a snapshot record (0: DefaultCompactBytes).
	CompactBytes int64
}

// Store owns a journal directory and its counters. Safe for concurrent
// use; individual Logs serialize their own appends.
type Store struct {
	cfg Config

	appends     atomic.Int64
	bytes       atomic.Int64
	compactions atomic.Int64
	tornTails   atomic.Int64
}

// Stats is the Store's counter snapshot, folded into the service /stats.
type Stats struct {
	// Appends counts journaled records (opens, deltas and snapshots) and
	// AppendedBytes their on-disk size including framing.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	// Compactions counts snapshot rewrites; TornTails counts logs whose
	// tail failed the length/checksum scan on recovery and was truncated.
	Compactions int64 `json:"compactions"`
	TornTails   int64 `json:"torn_tails"`
}

// Open creates the journal directory if needed and returns the Store.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("journal: Config.Dir is required")
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = DefaultCompactBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Store{cfg: cfg}, nil
}

// CompactBytes returns the resolved compaction threshold.
func (st *Store) CompactBytes() int64 { return st.cfg.CompactBytes }

// StatsSnapshot returns the current counters.
func (st *Store) StatsSnapshot() Stats {
	return Stats{
		Appends:       st.appends.Load(),
		AppendedBytes: st.bytes.Load(),
		Compactions:   st.compactions.Load(),
		TornTails:     st.tornTails.Load(),
	}
}

// validID accepts lowercase-hex session ids only: the id becomes a file
// name, so anything else (path separators, dots) must be rejected here no
// matter what the HTTP layer let through.
func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (st *Store) path(id string) string {
	return filepath.Join(st.cfg.Dir, id+".wal")
}

// Create starts a session's log with its opening-state record, replacing
// any leftover file under the same id (an import re-placing a stale copy:
// the incoming snapshot supersedes whatever the old file held). The open
// record is always synced — it is the ack of the open itself.
func (st *Store) Create(id string, open []byte) (*Log, error) {
	if !validID(id) {
		return nil, fmt.Errorf("journal: invalid session id %q", id)
	}
	f, err := os.OpenFile(st.path(id), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l := &Log{st: st, id: id, f: f}
	if err := l.append(kindOpen, open, true); err != nil {
		f.Close()
		os.Remove(st.path(id))
		return nil, err
	}
	return l, nil
}

// Remove deletes a session's journal file (eviction, close, handoff).
// Removing a file that does not exist is not an error.
func (st *Store) Remove(id string) error {
	if !validID(id) {
		return fmt.Errorf("journal: invalid session id %q", id)
	}
	if err := os.Remove(st.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Log is one session's append-only journal, open for writing. Appends
// serialize on its mutex.
type Log struct {
	st *Store
	id string

	mu     sync.Mutex
	f      *os.File
	size   int64
	closed bool
}

// encodeRecord frames one record for a single Write call.
func encodeRecord(kind byte, payload []byte) []byte {
	buf := make([]byte, recHeaderLen+len(payload)+4)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = kind
	copy(buf[recHeaderLen:], payload)
	crc := crc32.Checksum(buf[4:recHeaderLen+len(payload)], crcTable)
	binary.LittleEndian.PutUint32(buf[recHeaderLen+len(payload):], crc)
	return buf
}

// Append journals one accepted delta. Under SyncAlways the record is on
// disk when Append returns — the caller acks only after.
func (l *Log) Append(payload []byte) error {
	return l.append(kindDelta, payload, l.st.cfg.Policy == SyncAlways)
}

func (l *Log) append(kind byte, payload []byte, sync bool) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecordBytes)
	}
	rec := encodeRecord(kind, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: log %s is closed", l.id)
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	l.size += int64(len(rec))
	l.st.appends.Add(1)
	l.st.bytes.Add(int64(len(rec)))
	return nil
}

// Size returns the log's current on-disk size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Compact replaces the whole log with a single snapshot record holding the
// session's current state. The snapshot is written to a temp file, synced,
// and renamed over the log, so a crash at any point leaves either the old
// log or the new snapshot — never a mix. On success the Log continues on
// the new file.
func (l *Log) Compact(snapshot []byte) error {
	if len(snapshot) > maxRecordBytes {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds the %d-byte cap", len(snapshot), maxRecordBytes)
	}
	rec := encodeRecord(kindSnapshot, snapshot)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: log %s is closed", l.id)
	}
	path := l.st.path(l.id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(rec); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// the snapshot is durable but the log can take no more appends;
		// surface the fault so the next delta fails instead of acking
		// un-journaled
		l.closed = true
		l.f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.size = int64(len(rec))
	l.st.appends.Add(1)
	l.st.bytes.Add(int64(len(rec)))
	l.st.compactions.Add(1)
	return nil
}

// Sync flushes the log to disk regardless of policy (the drain path syncs
// every journal before handing sessions off).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the log file. Further appends fail; the file stays on disk
// (Remove deletes it).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Replay is one recovered session journal: the opening (or last snapshot)
// state, the delta payloads journaled after it, and the Log re-opened for
// further appends.
type Replay struct {
	ID     string
	Open   []byte
	Deltas [][]byte
	Log    *Log
}

// Recover scans the journal directory: orphan compaction temp files are
// removed, each log's torn tail (short header, short payload, checksum
// mismatch, oversize length, or a second open/snapshot record where a
// delta belongs) is truncated back to the last intact record, and logs
// with no intact open record are deleted — their open was never acked.
// The returned Logs are positioned for appends; the caller owns them.
func (st *Store) Recover() ([]Replay, error) {
	ents, err := os.ReadDir(st.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []Replay
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".wal.tmp") {
			// a compaction that never renamed: the original log is intact
			os.Remove(filepath.Join(st.cfg.Dir, name))
			continue
		}
		id, ok := strings.CutSuffix(name, ".wal")
		if !ok || !validID(id) {
			continue
		}
		rp, err := st.recoverLog(id)
		if err != nil {
			return nil, err
		}
		if rp != nil {
			out = append(out, *rp)
		}
	}
	return out, nil
}

// recoverLog scans one log file. Returns nil (and removes the file) when
// it holds no intact open record.
func (st *Store) recoverLog(id string) (*Replay, error) {
	path := st.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	rp := &Replay{ID: id}
	good := int64(0) // offset just past the last intact, in-sequence record
	torn := false
	for off := 0; off < len(data); {
		rest := data[off:]
		if len(rest) < recHeaderLen+4 {
			torn = true
			break
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n > maxRecordBytes || len(rest) < recHeaderLen+n+4 {
			torn = true
			break
		}
		kind := rest[4]
		payload := rest[recHeaderLen : recHeaderLen+n]
		want := binary.LittleEndian.Uint32(rest[recHeaderLen+n:])
		if crc32.Checksum(rest[4:recHeaderLen+n], crcTable) != want {
			torn = true
			break
		}
		switch {
		case rp.Open == nil && (kind == kindOpen || kind == kindSnapshot):
			rp.Open = append([]byte(nil), payload...)
		case rp.Open != nil && kind == kindDelta:
			rp.Deltas = append(rp.Deltas, append([]byte(nil), payload...))
		default:
			// a record that cannot follow what came before it — treat the
			// rest of the file as a tear
			torn = true
		}
		if torn {
			break
		}
		off += recHeaderLen + n + 4
		good = int64(off)
	}
	if rp.Open == nil {
		// nothing acked under this id: the open record itself never made it
		os.Remove(path)
		if torn {
			st.tornTails.Add(1)
		}
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if good < int64(len(data)) {
		st.tornTails.Add(1)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	rp.Log = &Log{st: st, id: id, f: f, size: good}
	return rp, nil
}
