package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, pol Policy) *Store {
	t.Helper()
	st, err := Open(Config{Dir: t.TempDir(), Policy: pol})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// reopen builds a second Store over the same directory, as a restart does.
func reopen(t *testing.T, st *Store) *Store {
	t.Helper()
	n, err := Open(st.cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return n
}

func TestRoundTrip(t *testing.T) {
	st := open(t, SyncAlways)
	l, err := st.Create("ab12", []byte(`{"open":true}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	deltas := [][]byte{[]byte(`{"d":1}`), []byte(`{"d":2}`), []byte(`{"d":3}`)}
	for _, d := range deltas {
		if err := l.Append(d); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reps, err := reopen(t, st).Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(reps) != 1 {
		t.Fatalf("Recover returned %d replays, want 1", len(reps))
	}
	rp := reps[0]
	defer rp.Log.Close()
	if rp.ID != "ab12" || !bytes.Equal(rp.Open, []byte(`{"open":true}`)) {
		t.Fatalf("replay = %q open %q", rp.ID, rp.Open)
	}
	if len(rp.Deltas) != len(deltas) {
		t.Fatalf("recovered %d deltas, want %d", len(rp.Deltas), len(deltas))
	}
	for i := range deltas {
		if !bytes.Equal(rp.Deltas[i], deltas[i]) {
			t.Fatalf("delta %d = %q want %q", i, rp.Deltas[i], deltas[i])
		}
	}
	// the recovered log takes further appends at the right offset
	if err := rp.Log.Append([]byte(`{"d":4}`)); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	reps2, err := reopen(t, st).Recover()
	if err != nil || len(reps2) != 1 || len(reps2[0].Deltas) != 4 {
		t.Fatalf("second recovery: %d replays, err %v", len(reps2), err)
	}
	reps2[0].Log.Close()
}

// TestTornTail chops bytes off the end of a valid log at every possible
// length and checks recovery always yields an intact prefix of the acked
// records, with the torn tail truncated so appends continue cleanly.
func TestTornTail(t *testing.T) {
	st := open(t, SyncNone)
	l, err := st.Create("0c", []byte("open"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("delta-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	path := st.path("0c")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	openLen := recHeaderLen + 4 + 4 // "open" record's framed size

	for cut := 0; cut < len(full); cut++ {
		sub := reopen(t, st)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reps, err := sub.Recover()
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if cut < openLen {
			// open record torn: nothing was acked, file must be gone
			if len(reps) != 0 {
				t.Fatalf("cut %d: got %d replays, want 0", cut, len(reps))
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cut %d: torn-open file not removed", cut)
			}
			continue
		}
		if len(reps) != 1 {
			t.Fatalf("cut %d: got %d replays, want 1", cut, len(reps))
		}
		rp := reps[0]
		if !bytes.Equal(rp.Open, []byte("open")) {
			t.Fatalf("cut %d: open = %q", cut, rp.Open)
		}
		for i, d := range rp.Deltas {
			if want := fmt.Sprintf("delta-%d", i); string(d) != want {
				t.Fatalf("cut %d: delta %d = %q want %q", cut, i, d, want)
			}
		}
		// appending after truncation then recovering again must see the
		// surviving prefix plus the new record — no interleaved garbage
		if err := rp.Log.Append([]byte("after")); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		rp.Log.Close()
		reps2, err := reopen(t, st).Recover()
		if err != nil || len(reps2) != 1 {
			t.Fatalf("cut %d: re-recover: %d replays, err %v", cut, len(reps2), err)
		}
		got := reps2[0]
		if want := len(rp.Deltas) + 1; len(got.Deltas) != want {
			t.Fatalf("cut %d: %d deltas after re-append, want %d", cut, len(got.Deltas), want)
		}
		if string(got.Deltas[len(got.Deltas)-1]) != "after" {
			t.Fatalf("cut %d: last delta = %q", cut, got.Deltas[len(got.Deltas)-1])
		}
		got.Log.Close()
	}
}

func TestCorruptMiddleTruncatesFrom(t *testing.T) {
	st := open(t, SyncNone)
	l, _ := st.Create("dd", []byte("open"))
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()
	path := st.path("dd")
	data, _ := os.ReadFile(path)
	// flip a byte inside the first delta's payload: its CRC fails, and
	// everything from it on is discarded even though "two" is intact
	openLen := recHeaderLen + 4 + 4
	data[openLen+recHeaderLen] ^= 0xff
	os.WriteFile(path, data, 0o644)

	reps, err := reopen(t, st).Recover()
	if err != nil || len(reps) != 1 {
		t.Fatalf("Recover: %d replays, err %v", len(reps), err)
	}
	defer reps[0].Log.Close()
	if len(reps[0].Deltas) != 0 {
		t.Fatalf("recovered %d deltas past a corrupt record, want 0", len(reps[0].Deltas))
	}
	if st2 := reopen(t, st); st2.StatsSnapshot().TornTails != 0 {
		t.Fatal("fresh store should have zero counters")
	}
}

func TestCompact(t *testing.T) {
	st := open(t, SyncAlways)
	l, _ := st.Create("ee", []byte("open"))
	for i := 0; i < 10; i++ {
		l.Append([]byte("delta"))
	}
	before := l.Size()
	if err := l.Compact([]byte("snapshot-state")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.Size() >= before {
		t.Fatalf("size %d not reduced from %d", l.Size(), before)
	}
	// the log continues after compaction
	if err := l.Append([]byte("post")); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	l.Close()

	reps, err := reopen(t, st).Recover()
	if err != nil || len(reps) != 1 {
		t.Fatalf("Recover: %d replays, err %v", len(reps), err)
	}
	rp := reps[0]
	defer rp.Log.Close()
	if string(rp.Open) != "snapshot-state" {
		t.Fatalf("open = %q, want the snapshot", rp.Open)
	}
	if len(rp.Deltas) != 1 || string(rp.Deltas[0]) != "post" {
		t.Fatalf("deltas = %q", rp.Deltas)
	}
	if st.StatsSnapshot().Compactions != 1 {
		t.Fatalf("compactions = %d", st.StatsSnapshot().Compactions)
	}
}

func TestRecoverCleansOrphanTmp(t *testing.T) {
	st := open(t, SyncNone)
	l, _ := st.Create("ff", []byte("open"))
	l.Close()
	// a compaction that crashed before rename
	tmp := st.path("ff") + ".tmp"
	os.WriteFile(tmp, []byte("half-written"), 0o644)

	reps, err := reopen(t, st).Recover()
	if err != nil || len(reps) != 1 {
		t.Fatalf("Recover: %d replays, err %v", len(reps), err)
	}
	reps[0].Log.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("orphan .tmp survived recovery")
	}
}

func TestCreateReplacesAndRemove(t *testing.T) {
	st := open(t, SyncNone)
	l1, _ := st.Create("aa", []byte("first"))
	l1.Append([]byte("stale"))
	l1.Close()
	l2, err := st.Create("aa", []byte("second"))
	if err != nil {
		t.Fatalf("Create over existing: %v", err)
	}
	l2.Close()
	reps, _ := reopen(t, st).Recover()
	if len(reps) != 1 || string(reps[0].Open) != "second" || len(reps[0].Deltas) != 0 {
		t.Fatalf("replay after replace = %+v", reps)
	}
	reps[0].Log.Close()
	if err := st.Remove("aa"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := st.Remove("aa"); err != nil {
		t.Fatalf("Remove of missing file: %v", err)
	}
	if reps, _ := reopen(t, st).Recover(); len(reps) != 0 {
		t.Fatalf("%d replays after Remove", len(reps))
	}
}

func TestInvalidIDs(t *testing.T) {
	st := open(t, SyncNone)
	for _, id := range []string{"", "../evil", "UPPER", "has.dot", "a/b", "zz zz"} {
		if _, err := st.Create(id, []byte("x")); err == nil {
			t.Errorf("Create(%q) accepted", id)
		}
	}
	// a foreign file in the dir is ignored, not parsed
	os.WriteFile(filepath.Join(st.cfg.Dir, "README.txt"), []byte("hi"), 0o644)
	if reps, err := st.Recover(); err != nil || len(reps) != 0 {
		t.Fatalf("Recover with foreign file: %d replays, err %v", len(reps), err)
	}
}

func TestParsePolicy(t *testing.T) {
	for spec, want := range map[string]Policy{"always": SyncAlways, "": SyncAlways, "none": SyncNone, "NEVER": SyncNone} {
		got, err := ParsePolicy(spec)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", spec, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	st := open(t, SyncNone)
	l, _ := st.Create("bb", []byte("open"))
	l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync on closed log: %v", err)
	}
}
