// Package admit is the scheduling service's admission-control subsystem:
// a priority- and deadline-aware queue in front of the compute pool, with
// per-tenant token-bucket rate and concurrency quotas, weighted fair
// dequeue across tenants, and a brownout degradation ladder that sheds the
// lowest-priority work first as the queue deepens.
//
// The controller owns the compute slots (the bounded pool the service used
// to guard with a bare semaphore). Every non-cache-hit request asks for a
// slot via Acquire with a priority class, a tenant, and a cost estimate
// (task count × heuristic weight — see the service's cost estimator); the
// request either gets a Ticket immediately, waits in the queue, or is shed
// with a ShedError carrying a Retry-After computed from the observed drain
// rate. The load-bearing invariant: every shed decision is made BEFORE a
// slot is granted — a shed request never burns a slot, and a request that
// holds a Ticket is never shed.
//
// Shedding happens for five reasons, all decided at Acquire time or while
// waiting:
//
//   - brownout: the queue depth crossed a ladder threshold that sheds this
//     request's class (Background first, then Expensive, then Cheap;
//     Interactive is never brownout-shed),
//   - rate: the tenant's token bucket cannot cover the request's cost,
//   - queue-full: the queue is at its hard cap,
//   - budget: the estimated wait — backlog cost over observed drain rate —
//     exceeds the configured queue budget,
//   - deadline: the client's context deadline would expire before the
//     estimated wait elapses (or does expire while queued).
//
// A request whose context is canceled while waiting leaves the queue
// immediately without consuming a slot.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Class is a request's priority class. Lower values dequeue first.
type Class uint8

const (
	// Interactive is session-delta traffic on open sessions: it is never
	// shed by the brownout ladder (only by its own deadline or quota) and
	// always dequeues first.
	Interactive Class = iota
	// Cheap is a cold run below the expensive-cost threshold.
	Cheap
	// Expensive is a cold run above the expensive-cost threshold
	// (Exhaustive/DLS-class work, or a huge graph on a cheap heuristic).
	Expensive
	// Background is batch payloads, sweep shards and fill traffic: the
	// first class the ladder sheds.
	Background
	// NumClasses bounds per-class arrays.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Cheap:
		return "cheap"
	case Expensive:
		return "expensive"
	case Background:
		return "background"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Reason says why a request was shed.
type Reason uint8

const (
	ReasonNone Reason = iota
	// ReasonBrownout: the class is shed at the current brownout level.
	ReasonBrownout
	// ReasonRate: the tenant's token bucket cannot cover the cost.
	ReasonRate
	// ReasonQueueFull: the queue is at its hard cap.
	ReasonQueueFull
	// ReasonBudget: the estimated wait exceeds the queue budget.
	ReasonBudget
	// ReasonDeadline: the client's deadline is (or would be) exceeded
	// before a slot could be granted.
	ReasonDeadline
	numReasons
)

func (r Reason) String() string {
	switch r {
	case ReasonBrownout:
		return "brownout"
	case ReasonRate:
		return "rate"
	case ReasonQueueFull:
		return "queue-full"
	case ReasonBudget:
		return "budget"
	case ReasonDeadline:
		return "deadline"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// ShedError reports a shed admission attempt. RetryAfter is computed from
// the observed queue drain rate (or, for rate sheds, the token refill
// time) and is always at least one second, so HTTP layers can emit it as a
// numeric Retry-After header directly.
type ShedError struct {
	Reason     Reason
	Class      Class
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: %s request shed (%s); retry after %s", e.Class, e.Reason, e.RetryAfter)
}

// Quota is one tenant's admission policy. The zero value means unlimited
// rate and concurrency with weight 1.
type Quota struct {
	// Rate is the token refill rate in cost units per second (a cost unit
	// is one task on a weight-1 heuristic); 0 means unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity in cost units (0 with a positive Rate:
	// one second's worth of tokens).
	Burst float64 `json:"burst,omitempty"`
	// MaxConcurrent caps the compute slots the tenant may hold at once;
	// 0 means unlimited. Waiters over the cap stay queued (not shed) until
	// the tenant frees a slot.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Weight is the tenant's fair-share weight (0 means 1): a tenant with
	// weight 2 drains twice the cost per unit of contention as weight 1.
	Weight float64 `json:"weight,omitempty"`
}

// Config sizes a Controller.
type Config struct {
	// Slots is the number of concurrent compute slots (required ≥ 1); the
	// service sets it to its pool size.
	Slots int
	// QueueBudget is the maximum estimated wait before a request is shed
	// (default 2s; negative disables budget shedding).
	QueueBudget time.Duration
	// MaxQueue is the hard cap on queued requests (default 16×Slots).
	MaxQueue int
	// Brownout ladder thresholds in queued requests: at ShedBackgroundAt
	// the ladder sheds Background, at ShedExpensiveAt also Expensive, at
	// ShedCheapAt also Cheap. Interactive is never brownout-shed. Defaults:
	// MaxQueue/4, MaxQueue/2, 3×MaxQueue/4 (each at least 1 and
	// monotonically non-decreasing).
	ShedBackgroundAt int
	ShedExpensiveAt  int
	ShedCheapAt      int
	// DefaultQuota applies to tenants not named in Quotas (zero value:
	// unlimited, weight 1).
	DefaultQuota Quota
	// Quotas maps tenant names (API keys) to their quotas.
	Quotas map[string]Quota
	// Now is the clock (nil: time.Now). Tests inject a fake to drive token
	// refill and drain-rate accounting deterministically.
	Now func() time.Time
}

// maxTenants caps the tenant table; past it, idle tenants (holding no
// slots, waiting on nothing) are swept so a hostile client cycling API
// keys cannot grow the table without bound.
const maxTenants = 4096

// retryFloor/retryCeil clamp every computed Retry-After.
const (
	retryFloor = time.Second
	retryCeil  = 60 * time.Second
)

// drainAlpha is the EWMA weight of the newest per-slot drain-rate sample.
const drainAlpha = 0.3

// tenant is one accounting unit: token bucket, concurrency gauge, and fair
// -share virtual time. All fields are guarded by the Controller's mutex.
type tenant struct {
	name    string
	quota   Quota
	tokens  float64
	filled  time.Time // last refill instant
	vt      float64   // weighted fair-queueing virtual time
	holding int       // slots currently held
	waiting int       // waiters currently queued
}

// refill tops the bucket up for the elapsed time. Unlimited-rate tenants
// skip bucket accounting entirely.
func (t *tenant) refill(now time.Time) {
	if t.quota.Rate <= 0 {
		return
	}
	burst := t.quota.Burst
	if burst <= 0 {
		burst = t.quota.Rate
	}
	dt := now.Sub(t.filled).Seconds()
	if dt > 0 {
		t.tokens = math.Min(burst, t.tokens+dt*t.quota.Rate)
		t.filled = now
	}
}

// take spends cost tokens; reports false (and spends nothing) when the
// bucket cannot cover it.
func (t *tenant) take(cost float64, now time.Time) bool {
	if t.quota.Rate <= 0 {
		return true
	}
	t.refill(now)
	if t.tokens < cost {
		return false
	}
	t.tokens -= cost
	return true
}

// refundTime is how long until the bucket could cover cost.
func (t *tenant) refundTime(cost float64) time.Duration {
	if t.quota.Rate <= 0 {
		return retryFloor
	}
	need := cost - t.tokens
	if need <= 0 {
		return retryFloor
	}
	return time.Duration(need / t.quota.Rate * float64(time.Second))
}

// underLimit reports whether the tenant may take one more slot.
func (t *tenant) underLimit() bool {
	return t.quota.MaxConcurrent <= 0 || t.holding < t.quota.MaxConcurrent
}

func (t *tenant) weight() float64 {
	if t.quota.Weight > 0 {
		return t.quota.Weight
	}
	return 1
}

// waiter is one queued request.
type waiter struct {
	t        *tenant
	class    Class
	cost     float64
	deadline time.Time // zero: none
	granted  chan struct{}
	ticket   *Ticket // set before granted is closed
	gone     bool    // left the queue (canceled); skip on dispatch
}

// Ticket is a granted compute slot. Release returns the slot and feeds the
// observed service time into the drain-rate estimate; it is idempotent.
type Ticket struct {
	c     *Controller
	t     *tenant
	cost  float64
	began time.Time
	once  sync.Once
}

// Release returns the slot. Safe to call more than once.
func (tk *Ticket) Release() {
	tk.once.Do(func() { tk.c.release(tk) })
}

// Controller is the admission queue. Construct with New; safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	free      int
	inService int
	svcCost   float64 // summed cost of in-service tickets
	tenants   map[string]*tenant
	// queues[class] is the per-class dequeue order: waiters are granted by
	// class priority, then weighted-fair across tenants, then earliest
	// deadline first within a tenant.
	queues   [NumClasses][]*waiter
	waiting  int
	level    int
	slotRate float64 // EWMA cost units drained per second per busy slot

	admitted   [NumClasses]int64
	shed       [NumClasses]int64
	shedReason [numReasons]int64
	canceled   int64 // waiters whose client hung up while queued
	shifts     int64 // brownout level transitions
}

// New returns a ready Controller with Config defaults resolved. It panics
// on Slots < 1 — the caller owns pool sizing.
func New(cfg Config) *Controller {
	if cfg.Slots < 1 {
		panic("admit: Config.Slots must be >= 1")
	}
	if cfg.QueueBudget == 0 {
		cfg.QueueBudget = 2 * time.Second
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16 * cfg.Slots
	}
	if cfg.ShedBackgroundAt <= 0 {
		cfg.ShedBackgroundAt = max(1, cfg.MaxQueue/4)
	}
	if cfg.ShedExpensiveAt <= 0 {
		cfg.ShedExpensiveAt = max(cfg.ShedBackgroundAt, cfg.MaxQueue/2)
	}
	if cfg.ShedCheapAt <= 0 {
		cfg.ShedCheapAt = max(cfg.ShedExpensiveAt, 3*cfg.MaxQueue/4)
	}
	// a misordered explicit ladder is forced monotone so a level can never
	// shed a higher class while admitting a lower one
	cfg.ShedExpensiveAt = max(cfg.ShedExpensiveAt, cfg.ShedBackgroundAt)
	cfg.ShedCheapAt = max(cfg.ShedCheapAt, cfg.ShedExpensiveAt)
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{
		cfg:     cfg,
		free:    cfg.Slots,
		tenants: make(map[string]*tenant),
	}
}

// Acquire asks for a compute slot for one request. It returns a Ticket
// (release it when the run completes), a *ShedError when the request is
// shed, or ctx.Err() when the client hung up while queued. cost below 1 is
// clamped to 1.
func (c *Controller) Acquire(ctx context.Context, tenantName string, class Class, cost float64) (*Ticket, error) {
	if class >= NumClasses {
		class = Background
	}
	if cost < 1 {
		cost = 1
	}
	now := c.cfg.Now()

	c.mu.Lock()
	t := c.tenant(tenantName, now)

	// 1. brownout ladder: the cheapest check, and the one that must win —
	// under overload the ladder's verdict is the system's verdict
	if c.levelSheds(class) {
		err := c.shedLocked(class, ReasonBrownout, c.retryAfterLocked())
		c.mu.Unlock()
		return nil, err
	}
	// 2. hard queue cap
	if c.waiting >= c.cfg.MaxQueue {
		err := c.shedLocked(class, ReasonQueueFull, c.retryAfterLocked())
		c.mu.Unlock()
		return nil, err
	}
	// 3. tenant rate quota
	if !t.take(cost, now) {
		err := c.shedLocked(class, ReasonRate, clampRetry(t.refundTime(cost)))
		c.mu.Unlock()
		return nil, err
	}

	// 4. immediate grant: a free slot with the tenant under its
	// concurrency cap. Any waiter still queued at this instant is blocked
	// on its own tenant's concurrency cap (dispatch is eager), so taking
	// the slot keeps the pool busy rather than jumping a runnable queue.
	if c.free > 0 && t.underLimit() {
		tk := c.grantLocked(t, class, cost, now)
		c.mu.Unlock()
		return tk, nil
	}

	// 5. wait estimate vs budget and client deadline: shed now, before
	// queueing, when the wait cannot be worth it. Tokens are refunded —
	// the request never ran.
	est := c.estWaitLocked(class, cost)
	if c.cfg.QueueBudget > 0 && est > c.cfg.QueueBudget {
		t.tokens += cost
		err := c.shedLocked(class, ReasonBudget, clampRetry(est))
		c.mu.Unlock()
		return nil, err
	}
	var deadline time.Time
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
		if now.Add(est).After(dl) {
			t.tokens += cost
			err := c.shedLocked(class, ReasonDeadline, c.retryAfterLocked())
			c.mu.Unlock()
			return nil, err
		}
	}

	// 6. queue up
	w := &waiter{t: t, class: class, cost: cost, deadline: deadline, granted: make(chan struct{})}
	c.enqueueLocked(w)
	c.mu.Unlock()

	select {
	case <-w.granted:
		return w.ticket, nil
	case <-ctx.Done():
	}

	// the client hung up (or its deadline fired) while we were queued:
	// leave without consuming a slot — unless the grant raced the
	// cancellation, in which case the slot is ours and must go back
	c.mu.Lock()
	select {
	case <-w.granted:
		c.mu.Unlock()
		w.ticket.Release()
	default:
		w.gone = true
		w.t.waiting--
		c.waiting--
		c.updateLevelLocked()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			err := c.shedLocked(w.class, ReasonDeadline, c.retryAfterLocked())
			c.mu.Unlock()
			return nil, err
		}
		c.canceled++
		c.mu.Unlock()
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return nil, &ShedError{Reason: ReasonDeadline, Class: class, RetryAfter: c.RetryAfter()}
	}
	return nil, ctx.Err()
}

// NoteBypass counts a request that serves without admission — a session
// delta on an open session — so the admitted counters describe all served
// traffic, not just the queued part.
func (c *Controller) NoteBypass(class Class) {
	c.mu.Lock()
	c.admitted[class]++
	c.mu.Unlock()
}

// RetryAfter is the controller's current backoff hint: the time to drain
// the present backlog at the observed drain rate, clamped to [1s, 60s].
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked()
}

// MaxBrownoutLevel is the ladder's top rung: every class but Interactive
// is shed. Readiness probes treat a replica stuck here as not-ready — a
// load balancer should stop feeding it new cold traffic.
const MaxBrownoutLevel = 3

// Level is the current brownout level: 0 (all classes admitted) through 3
// (only Interactive and cache hits serve).
func (c *Controller) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// tenant returns (creating on first use) the accounting record for a name,
// sweeping idle records when the table outgrows maxTenants.
func (c *Controller) tenant(name string, now time.Time) *tenant {
	t := c.tenants[name]
	if t != nil {
		return t
	}
	if len(c.tenants) >= maxTenants {
		for n, o := range c.tenants {
			if o.holding == 0 && o.waiting == 0 {
				delete(c.tenants, n)
			}
		}
	}
	q, ok := c.cfg.Quotas[name]
	if !ok {
		q = c.cfg.DefaultQuota
	}
	t = &tenant{name: name, quota: q, filled: now}
	if q.Rate > 0 {
		if t.tokens = q.Burst; t.tokens <= 0 {
			t.tokens = q.Rate
		}
	}
	// a tenant (re)entering contention starts at the active minimum
	// virtual time: no credit hoarded while idle, no debt either
	t.vt = c.minActiveVT()
	c.tenants[name] = t
	return t
}

// minActiveVT is the smallest virtual time among tenants currently holding
// or waiting; 0 when none are.
func (c *Controller) minActiveVT() float64 {
	min := math.Inf(1)
	//schedlint:allow detorder — min-fold over values; min is exact and commutative
	for _, t := range c.tenants {
		if (t.holding > 0 || t.waiting > 0) && t.vt < min {
			min = t.vt
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// levelSheds reports whether the current brownout level sheds a class.
func (c *Controller) levelSheds(class Class) bool {
	switch class {
	case Background:
		return c.level >= 1
	case Expensive:
		return c.level >= 2
	case Cheap:
		return c.level >= 3
	}
	return false // Interactive is never brownout-shed
}

// updateLevelLocked recomputes the ladder level from the queue depth.
func (c *Controller) updateLevelLocked() {
	lvl := 0
	switch {
	case c.waiting >= c.cfg.ShedCheapAt:
		lvl = 3
	case c.waiting >= c.cfg.ShedExpensiveAt:
		lvl = 2
	case c.waiting >= c.cfg.ShedBackgroundAt:
		lvl = 1
	}
	if lvl != c.level {
		c.level = lvl
		c.shifts++
	}
}

// shedLocked counts one shed and builds its error.
func (c *Controller) shedLocked(class Class, reason Reason, retry time.Duration) *ShedError {
	c.shed[class]++
	c.shedReason[reason]++
	return &ShedError{Reason: reason, Class: class, RetryAfter: clampRetry(retry)}
}

// drainRate is the fleet-of-slots drain rate in cost units per second; 0
// when no completion has been observed yet.
func (c *Controller) drainRate() float64 {
	return c.slotRate * float64(c.cfg.Slots)
}

// estWaitLocked estimates how long a new waiter of the given class would
// queue: the cost queued at its priority or better, plus the in-service
// remainder (half the running cost, on average), over the observed drain
// rate. With no drain data yet the estimate is optimistic zero — the
// budget shed arms itself as soon as the first run completes.
func (c *Controller) estWaitLocked(class Class, cost float64) time.Duration {
	rate := c.drainRate()
	if rate <= 0 {
		return 0
	}
	ahead := c.svcCost / 2
	for cl := Class(0); cl <= class; cl++ {
		for _, w := range c.queues[cl] {
			if !w.gone {
				ahead += w.cost
			}
		}
	}
	return time.Duration((ahead + cost) / rate * float64(time.Second))
}

// retryAfterLocked is RetryAfter's body: full backlog over drain rate.
func (c *Controller) retryAfterLocked() time.Duration {
	rate := c.drainRate()
	if rate <= 0 {
		return retryFloor
	}
	backlog := c.svcCost / 2
	for cl := Class(0); cl < NumClasses; cl++ {
		for _, w := range c.queues[cl] {
			if !w.gone {
				backlog += w.cost
			}
		}
	}
	return clampRetry(time.Duration(backlog / rate * float64(time.Second)))
}

// enqueueLocked inserts a waiter: per class, ordered earliest-deadline
// first with deadline-less waiters FIFO at the back.
func (c *Controller) enqueueLocked(w *waiter) {
	q := c.queues[w.class]
	i := len(q)
	if !w.deadline.IsZero() {
		for i > 0 {
			prev := q[i-1]
			if prev.gone || prev.deadline.IsZero() || prev.deadline.After(w.deadline) {
				i--
				continue
			}
			break
		}
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = w
	c.queues[w.class] = q
	w.t.waiting++
	c.waiting++
	c.updateLevelLocked()
}

// grantLocked hands a slot to a request that never queued.
func (c *Controller) grantLocked(t *tenant, class Class, cost float64, now time.Time) *Ticket {
	c.free--
	c.inService++
	c.svcCost += cost
	t.holding++
	t.vt += cost / t.weight()
	c.admitted[class]++
	return &Ticket{c: c, t: t, cost: cost, began: now}
}

// release returns a ticket's slot, folds the observed per-slot drain rate
// into the EWMA, and dispatches freed capacity to waiters.
func (c *Controller) release(tk *Ticket) {
	now := c.cfg.Now()
	secs := now.Sub(tk.began).Seconds()
	if secs < 1e-3 {
		secs = 1e-3
	}
	sample := tk.cost / secs

	c.mu.Lock()
	if c.slotRate == 0 {
		c.slotRate = sample
	} else {
		c.slotRate = (1-drainAlpha)*c.slotRate + drainAlpha*sample
	}
	c.free++
	c.inService--
	c.svcCost -= tk.cost
	tk.t.holding--
	c.dispatchLocked(now)
	c.updateLevelLocked()
	c.mu.Unlock()
}

// dispatchLocked grants free slots to queued waiters: classes in priority
// order; within a class the under-limit tenant with the least virtual time
// wins, and within a tenant the earliest deadline (queue order) wins.
func (c *Controller) dispatchLocked(now time.Time) {
	for c.free > 0 {
		w := c.nextLocked()
		if w == nil {
			return
		}
		c.free--
		c.inService++
		c.svcCost += w.cost
		w.t.holding++
		w.t.waiting--
		w.t.vt += w.cost / w.t.weight()
		c.waiting--
		c.admitted[w.class]++
		w.ticket = &Ticket{c: c, t: w.t, cost: w.cost, began: now}
		close(w.granted)
	}
}

// nextLocked picks the next dispatchable waiter, compacting canceled
// entries as it scans.
func (c *Controller) nextLocked() *waiter {
	for cl := Class(0); cl < NumClasses; cl++ {
		q := compact(c.queues[cl])
		c.queues[cl] = q
		var best *waiter
		var bestIdx int
		for i, w := range q {
			if !w.t.underLimit() {
				continue
			}
			if best == nil || w.t.vt < best.t.vt {
				best, bestIdx = w, i
			}
		}
		if best != nil {
			c.queues[cl] = append(q[:bestIdx], q[bestIdx+1:]...)
			return best
		}
	}
	return nil
}

// compact drops canceled waiters from a queue in place.
func compact(q []*waiter) []*waiter {
	out := q[:0]
	for _, w := range q {
		if !w.gone {
			out = append(out, w)
		}
	}
	// zero the tail so canceled waiters are collectable
	for i := len(out); i < len(q); i++ {
		q[i] = nil
	}
	return out
}

func clampRetry(d time.Duration) time.Duration {
	if d < retryFloor {
		return retryFloor
	}
	if d > retryCeil {
		return retryCeil
	}
	return d
}

// Stats is the controller's counter snapshot, folded into the service
// /stats (and /metrics) surface.
type Stats struct {
	// BrownoutLevel is the current ladder level (0..3) and BrownoutShifts
	// the number of level transitions since start.
	BrownoutLevel  int   `json:"brownout_level"`
	BrownoutShifts int64 `json:"brownout_shifts"`
	// QueueDepth is the current number of queued requests (per class
	// below); InService the slots currently held.
	QueueDepth            int `json:"queue_depth"`
	QueueDepthInteractive int `json:"queue_depth_interactive"`
	QueueDepthCheap       int `json:"queue_depth_cheap"`
	QueueDepthExpensive   int `json:"queue_depth_expensive"`
	QueueDepthBackground  int `json:"queue_depth_background"`
	InService             int `json:"in_service"`
	// DrainCostPerSec is the observed drain rate (cost units per second
	// across all slots) that Retry-After and wait estimates derive from.
	DrainCostPerSec float64 `json:"drain_cost_per_sec"`
	// Admitted/Shed count requests per class; Canceled counts waiters
	// whose client hung up while queued (they never consumed a slot).
	AdmittedInteractive int64 `json:"admitted_interactive"`
	AdmittedCheap       int64 `json:"admitted_cheap"`
	AdmittedExpensive   int64 `json:"admitted_expensive"`
	AdmittedBackground  int64 `json:"admitted_background"`
	ShedInteractive     int64 `json:"shed_interactive"`
	ShedCheap           int64 `json:"shed_cheap"`
	ShedExpensive       int64 `json:"shed_expensive"`
	ShedBackground      int64 `json:"shed_background"`
	ShedBrownout        int64 `json:"shed_brownout"`
	ShedRate            int64 `json:"shed_rate"`
	ShedQueueFull       int64 `json:"shed_queue_full"`
	ShedBudget          int64 `json:"shed_budget"`
	ShedDeadline        int64 `json:"shed_deadline"`
	Canceled            int64 `json:"canceled_in_queue"`
	// Tenants is the live accounting-record count.
	Tenants int `json:"tenants"`
}

// StatsSnapshot returns the current counters.
func (c *Controller) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := func(cl Class) int {
		n := 0
		for _, w := range c.queues[cl] {
			if !w.gone {
				n++
			}
		}
		return n
	}
	return Stats{
		BrownoutLevel:         c.level,
		BrownoutShifts:        c.shifts,
		QueueDepth:            c.waiting,
		QueueDepthInteractive: depth(Interactive),
		QueueDepthCheap:       depth(Cheap),
		QueueDepthExpensive:   depth(Expensive),
		QueueDepthBackground:  depth(Background),
		InService:             c.inService,
		DrainCostPerSec:       c.drainRate(),
		AdmittedInteractive:   c.admitted[Interactive],
		AdmittedCheap:         c.admitted[Cheap],
		AdmittedExpensive:     c.admitted[Expensive],
		AdmittedBackground:    c.admitted[Background],
		ShedInteractive:       c.shed[Interactive],
		ShedCheap:             c.shed[Cheap],
		ShedExpensive:         c.shed[Expensive],
		ShedBackground:        c.shed[Background],
		ShedBrownout:          c.shedReason[ReasonBrownout],
		ShedRate:              c.shedReason[ReasonRate],
		ShedQueueFull:         c.shedReason[ReasonQueueFull],
		ShedBudget:            c.shedReason[ReasonBudget],
		ShedDeadline:          c.shedReason[ReasonDeadline],
		Canceled:              c.canceled,
		Tenants:               len(c.tenants),
	}
}
