package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives token refill and drain-rate accounting without real
// sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func mustAcquire(t *testing.T, c *Controller, tenant string, class Class, cost float64) *Ticket {
	t.Helper()
	tk, err := c.Acquire(context.Background(), tenant, class, cost)
	if err != nil {
		t.Fatalf("Acquire(%s, %v, %v): %v", tenant, class, cost, err)
	}
	return tk
}

func shedReason(t *testing.T, err error) Reason {
	t.Helper()
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if se.RetryAfter < time.Second || se.RetryAfter > 60*time.Second {
		t.Fatalf("RetryAfter %v outside [1s, 60s]", se.RetryAfter)
	}
	return se.Reason
}

// waitDepth polls until the controller reports the wanted queue depth —
// the only synchronization available to observe another goroutine's
// enqueue.
func waitDepth(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.StatsSnapshot().QueueDepth == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, c.StatsSnapshot().QueueDepth)
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{Slots: 4})
	if c.cfg.QueueBudget != 2*time.Second {
		t.Fatalf("QueueBudget default: %v", c.cfg.QueueBudget)
	}
	if c.cfg.MaxQueue != 64 {
		t.Fatalf("MaxQueue default: %d", c.cfg.MaxQueue)
	}
	if c.cfg.ShedBackgroundAt != 16 || c.cfg.ShedExpensiveAt != 32 || c.cfg.ShedCheapAt != 48 {
		t.Fatalf("ladder defaults: %d/%d/%d", c.cfg.ShedBackgroundAt, c.cfg.ShedExpensiveAt, c.cfg.ShedCheapAt)
	}
	// a misordered explicit ladder is forced monotone
	c = New(Config{Slots: 1, MaxQueue: 100, ShedBackgroundAt: 50, ShedExpensiveAt: 10, ShedCheapAt: 20})
	if c.cfg.ShedExpensiveAt < c.cfg.ShedBackgroundAt || c.cfg.ShedCheapAt < c.cfg.ShedExpensiveAt {
		t.Fatalf("ladder not monotone: %d/%d/%d", c.cfg.ShedBackgroundAt, c.cfg.ShedExpensiveAt, c.cfg.ShedCheapAt)
	}
}

func TestNewPanicsWithoutSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Config{}) did not panic")
		}
	}()
	New(Config{})
}

// TestTokenBucket pins the rate-quota semantics: the bucket starts at
// burst, spends per cost, refuses (ReasonRate) when short, and refills at
// Rate per second of fake time. A rate shed never consumes a slot.
func TestTokenBucket(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots:  4,
		Quotas: map[string]Quota{"metered": {Rate: 10, Burst: 20}},
		Now:    clk.now,
	})
	tk := mustAcquire(t, c, "metered", Cheap, 20) // drains the whole burst
	tk.Release()

	if _, err := c.Acquire(context.Background(), "metered", Cheap, 1); shedReason(t, err) != ReasonRate {
		t.Fatal("empty bucket did not shed with ReasonRate")
	}
	st := c.StatsSnapshot()
	if st.ShedRate != 1 || st.ShedCheap != 1 || st.InService != 0 {
		t.Fatalf("after rate shed: %+v", st)
	}

	clk.advance(time.Second) // refills 10 units
	mustAcquire(t, c, "metered", Cheap, 10).Release()
	if _, err := c.Acquire(context.Background(), "metered", Cheap, 1); shedReason(t, err) != ReasonRate {
		t.Fatal("bucket refilled more than Rate × elapsed")
	}
	// an unmetered tenant is untouched by the metered tenant's bucket
	mustAcquire(t, c, "free", Cheap, 1e6).Release()
}

// TestQueueGrantOnRelease pins the basic queue cycle: with the one slot
// held, the next request queues; Release grants it.
func TestQueueGrantOnRelease(t *testing.T) {
	clk := newClock()
	c := New(Config{Slots: 1, Now: clk.now})
	first := mustAcquire(t, c, "a", Cheap, 1)

	granted := make(chan *Ticket)
	go func() {
		tk, err := c.Acquire(context.Background(), "b", Cheap, 1)
		if err != nil {
			panic(err)
		}
		granted <- tk
	}()
	waitDepth(t, c, 1)
	select {
	case <-granted:
		t.Fatal("second request granted while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	first.Release()
	tk := <-granted
	tk.Release()

	st := c.StatsSnapshot()
	if st.AdmittedCheap != 2 || st.QueueDepth != 0 || st.InService != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

// TestTicketReleaseIdempotent: double Release must not free two slots.
func TestTicketReleaseIdempotent(t *testing.T) {
	c := New(Config{Slots: 1})
	tk := mustAcquire(t, c, "a", Cheap, 1)
	tk.Release()
	tk.Release()
	c.mu.Lock()
	free := c.free
	c.mu.Unlock()
	if free != 1 {
		t.Fatalf("free slots %d after double release, want 1", free)
	}
}

// TestBrownoutLadder drives the queue depth across the three thresholds
// and asserts each level sheds exactly the classes below it — and that
// Interactive is never brownout-shed, even at the top of the ladder.
func TestBrownoutLadder(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots: 1, MaxQueue: 100,
		ShedBackgroundAt: 2, ShedExpensiveAt: 4, ShedCheapAt: 6,
		QueueBudget: -1, // disable budget shedding; this test is about the ladder
		Now:         clk.now,
	})
	hold := mustAcquire(t, c, "hold", Cheap, 1)

	var wg sync.WaitGroup
	queueOne := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Acquire(context.Background(), tenant, Interactive, 1)
			if err != nil {
				panic(err)
			}
			tk.Release()
		}()
	}

	// depth 2 → level 1: Background sheds, Expensive still queues
	queueOne("w1")
	waitDepth(t, c, 1)
	queueOne("w2")
	waitDepth(t, c, 2)
	if c.Level() != 1 {
		t.Fatalf("level at depth 2: %d", c.Level())
	}
	if _, err := c.Acquire(context.Background(), "bg", Background, 1); shedReason(t, err) != ReasonBrownout {
		t.Fatal("Background not brownout-shed at level 1")
	}

	// depth 4 → level 2: Expensive sheds too
	queueOne("w3")
	queueOne("w4")
	waitDepth(t, c, 4)
	if c.Level() != 2 {
		t.Fatalf("level at depth 4: %d", c.Level())
	}
	if _, err := c.Acquire(context.Background(), "exp", Expensive, 1); shedReason(t, err) != ReasonBrownout {
		t.Fatal("Expensive not brownout-shed at level 2")
	}

	// depth 6 → level 3: Cheap sheds; Interactive still queues
	queueOne("w5")
	queueOne("w6")
	waitDepth(t, c, 6)
	if c.Level() != 3 {
		t.Fatalf("level at depth 6: %d", c.Level())
	}
	if _, err := c.Acquire(context.Background(), "cheap", Cheap, 1); shedReason(t, err) != ReasonBrownout {
		t.Fatal("Cheap not brownout-shed at level 3")
	}
	queueOne("vip") // Interactive queues even at level 3
	waitDepth(t, c, 7)

	free := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.free
	}
	if free() != 0 {
		t.Fatalf("sheds consumed slots: free=%d", free())
	}

	hold.Release()
	wg.Wait()
	st := c.StatsSnapshot()
	if st.BrownoutLevel != 0 || st.QueueDepth != 0 {
		t.Fatalf("ladder did not step down after drain: %+v", st)
	}
	if st.ShedBrownout != 3 || st.BrownoutShifts < 4 {
		t.Fatalf("ladder counters: %+v", st)
	}
	if st.AdmittedInteractive != 7 || st.AdmittedCheap != 1 {
		t.Fatalf("admitted counters: %+v", st)
	}
}

// TestQueueFullShed: the hard cap sheds even classes the ladder admits.
func TestQueueFullShed(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots: 1, MaxQueue: 2,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50,
		QueueBudget: -1,
		Now:         clk.now,
	})
	hold := mustAcquire(t, c, "hold", Cheap, 1)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Acquire(context.Background(), "w", Interactive, 1)
			if err != nil {
				panic(err)
			}
			tk.Release()
		}()
		waitDepth(t, c, i+1)
	}
	if _, err := c.Acquire(context.Background(), "late", Interactive, 1); shedReason(t, err) != ReasonQueueFull {
		t.Fatal("over-cap request not shed with ReasonQueueFull")
	}
	hold.Release()
	wg.Wait()
}

// TestBudgetShed: once a drain rate is observed, a request whose estimated
// wait exceeds QueueBudget is shed immediately with a drain-derived
// Retry-After — and its rate tokens are refunded.
func TestBudgetShed(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots: 1, MaxQueue: 100, QueueBudget: 2 * time.Second,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50,
		Quotas: map[string]Quota{"m": {Rate: 10000, Burst: 10000}},
		Now:    clk.now,
	})
	// teach the controller its drain rate: 1000 cost units over 1s
	tk := mustAcquire(t, c, "m", Cheap, 1000)
	clk.advance(time.Second)
	tk.Release()
	if st := c.StatsSnapshot(); st.DrainCostPerSec != 1000 {
		t.Fatalf("drain rate %v, want 1000", st.DrainCostPerSec)
	}

	hold := mustAcquire(t, c, "hold", Cheap, 1000)
	// estimated wait ≈ (500 in-service remainder + 5000 own) / 1000 = 5.5s > 2s
	_, err := c.Acquire(context.Background(), "m", Cheap, 5000)
	if shedReason(t, err) != ReasonBudget {
		t.Fatalf("want budget shed, got %v", err)
	}
	var se *ShedError
	errors.As(err, &se)
	if se.RetryAfter < 2*time.Second {
		t.Fatalf("budget shed Retry-After %v below the estimated wait", se.RetryAfter)
	}
	// the shed refunded its tokens: the same cost is admittable once the
	// slot frees
	hold.Release()
	mustAcquire(t, c, "m", Cheap, 5000).Release()
}

// TestDeadlineShedWhileQueued: a queued request whose client deadline
// fires leaves the queue as a deadline shed, never consuming a slot.
func TestDeadlineShedWhileQueued(t *testing.T) {
	clk := newClock()
	c := New(Config{Slots: 1, MaxQueue: 100,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50, Now: clk.now})
	hold := mustAcquire(t, c, "hold", Cheap, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Acquire(ctx, "late", Cheap, 1)
	if shedReason(t, err) != ReasonDeadline {
		t.Fatalf("want deadline shed, got %v", err)
	}
	st := c.StatsSnapshot()
	if st.ShedDeadline != 1 || st.QueueDepth != 0 {
		t.Fatalf("after deadline shed: %+v", st)
	}
	hold.Release()
	if got := c.StatsSnapshot().InService; got != 0 {
		t.Fatalf("in service after drain: %d", got)
	}
}

// TestCancelLeavesQueue: a plain client cancellation surfaces ctx.Err()
// (not a ShedError), leaves the queue, and never consumes a slot.
func TestCancelLeavesQueue(t *testing.T) {
	clk := newClock()
	c := New(Config{Slots: 1, MaxQueue: 100,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50, Now: clk.now})
	hold := mustAcquire(t, c, "hold", Cheap, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		_, err := c.Acquire(ctx, "canceler", Cheap, 1)
		done <- err
	}()
	waitDepth(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := c.StatsSnapshot()
	if st.Canceled != 1 || st.QueueDepth != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
	hold.Release()
	// the canceled waiter must not absorb the freed slot
	mustAcquire(t, c, "next", Cheap, 1).Release()
}

// TestWeightedFairDequeue: two tenants with 3:1 weights contending for one
// slot drain in weighted order — the heavy tenant's four requests all
// complete within the first five grants.
func TestWeightedFairDequeue(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots: 1, MaxQueue: 100,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50,
		QueueBudget: -1,
		Quotas: map[string]Quota{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		},
		Now: clk.now,
	})
	hold := mustAcquire(t, c, "warm", Cheap, 1)

	order := make(chan string, 8)
	var wg sync.WaitGroup
	queue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Acquire(context.Background(), tenant, Cheap, 1)
			if err != nil {
				panic(err)
			}
			order <- tenant
			tk.Release()
		}()
	}
	// enqueue one at a time so queue order (the vt tie-break) is fixed
	for i := 0; i < 4; i++ {
		queue("heavy")
		waitDepth(t, c, 2*i+1)
		queue("light")
		waitDepth(t, c, 2*i+2)
	}
	hold.Release()
	wg.Wait()
	close(order)

	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	heavyDone := 0
	for i, tenant := range got {
		if tenant == "heavy" {
			heavyDone = i
		}
	}
	if heavyDone > 4 {
		t.Fatalf("heavy (weight 3) finished at grant %d of 8; order %v", heavyDone+1, got)
	}
	light := 0
	for _, tenant := range got[:5] {
		if tenant == "light" {
			light++
		}
	}
	if light == 0 {
		t.Fatalf("light tenant starved across the first five grants: %v", got)
	}
}

// TestConcurrencyQuota: a tenant at MaxConcurrent queues (not sheds) until
// it frees a slot, while other tenants pass it in the queue.
func TestConcurrencyQuota(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Slots: 2, MaxQueue: 100,
		ShedBackgroundAt: 50, ShedExpensiveAt: 50, ShedCheapAt: 50,
		QueueBudget: -1,
		Quotas:      map[string]Quota{"capped": {MaxConcurrent: 1}},
		Now:         clk.now,
	})
	first := mustAcquire(t, c, "capped", Cheap, 1)

	queued := make(chan *Ticket)
	go func() {
		tk, err := c.Acquire(context.Background(), "capped", Cheap, 1)
		if err != nil {
			panic(err)
		}
		queued <- tk
	}()
	waitDepth(t, c, 1)
	select {
	case <-queued:
		t.Fatal("tenant exceeded MaxConcurrent")
	case <-time.After(20 * time.Millisecond):
	}
	// another tenant takes the free slot past the blocked waiter
	other := mustAcquire(t, c, "other", Cheap, 1)
	other.Release()

	first.Release()
	tk := <-queued
	tk.Release()
}

func TestNoteBypass(t *testing.T) {
	c := New(Config{Slots: 1})
	c.NoteBypass(Interactive)
	c.NoteBypass(Interactive)
	if got := c.StatsSnapshot().AdmittedInteractive; got != 2 {
		t.Fatalf("bypass count %d, want 2", got)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	c := New(Config{Slots: 1})
	if got := c.RetryAfter(); got != time.Second {
		t.Fatalf("cold RetryAfter %v, want the 1s floor", got)
	}
	if got := clampRetry(5 * time.Minute); got != 60*time.Second {
		t.Fatalf("clamp ceiling: %v", got)
	}
}
