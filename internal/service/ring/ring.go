// Package ring maps cache keys to owner replicas with a consistent-hash
// ring: the placement layer of the scheduling service's distributed
// encoded-response cache. Every replica builds the ring from the same
// member list (order-insensitive, duplicate-tolerant) and therefore agrees
// on which replica owns which canonical key, with no coordination traffic;
// adding or removing a replica remaps only the keys adjacent to its virtual
// nodes instead of reshuffling the whole key space.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"slices"
	"strings"
)

// ringSchema versions the placement hash; bump on incompatible change so a
// mixed-version fleet can never half-agree on ownership.
const ringSchema = "oneport-ring/v1"

// DefaultVirtualNodes is the per-member virtual-node count used when New is
// given a non-positive count. 64 points per member keeps the ownership split
// of a small replica set within a few percent of even.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over replica base URLs. It is
// safe for concurrent use; construct with New.
type Ring struct {
	points  []point
	members []string
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	pos    uint64
	member int // index into members
}

// Normalize canonicalizes one member URL the way New does (trailing
// slashes stripped), so callers can compare their own URL against ring
// members. Replicas must otherwise spell each URL identically across the
// fleet — the ring hashes the string, not the resolved address.
func Normalize(member string) string {
	return strings.TrimRight(strings.TrimSpace(member), "/")
}

// New builds a ring over the given members with vnodes virtual nodes each
// (non-positive: DefaultVirtualNodes). Members are normalized, deduplicated
// and sorted first, so every replica handed the same set — in any order,
// with or without itself listed twice — builds the identical ring. Empty
// member strings are dropped; an empty set yields a ring that owns nothing.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	norm := make([]string, 0, len(members))
	for _, m := range members {
		if m = Normalize(m); m != "" {
			norm = append(norm, m)
		}
	}
	slices.Sort(norm)
	norm = slices.Compact(norm)

	r := &Ring{members: norm, points: make([]point, 0, len(norm)*vnodes)}
	var buf []byte
	for i, m := range norm {
		for v := 0; v < vnodes; v++ {
			buf = buf[:0]
			buf = append(buf, ringSchema...)
			buf = append(buf, 0)
			buf = append(buf, m...)
			buf = append(buf, 0)
			buf = binary.BigEndian.AppendUint64(buf, uint64(v))
			sum := sha256.Sum256(buf)
			r.points = append(r.points, point{pos: binary.BigEndian.Uint64(sum[:8]), member: i})
		}
	}
	// ties (astronomically unlikely) break by member order so the walk is
	// still deterministic across replicas
	slices.SortFunc(r.points, func(a, b point) int {
		switch {
		case a.pos != b.pos:
			if a.pos < b.pos {
				return -1
			}
			return 1
		default:
			return a.member - b.member
		}
	})
	return r
}

// Members returns the normalized, deduplicated member list in ring order.
// The returned slice is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Size reports the number of distinct members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning the given key sum — the first virtual
// node at or clockwise-after the key's position, wrapping at the top — or
// "" for an empty ring. The key is expected to be a content hash (the
// service passes CanonicalSum); only its first 8 bytes position it.
func (r *Ring) Owner(sum [sha256.Size]byte) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := binary.BigEndian.Uint64(sum[:8])
	i, _ := slices.BinarySearchFunc(r.points, pos, func(p point, target uint64) int {
		switch {
		case p.pos < target:
			return -1
		case p.pos > target:
			return 1
		default:
			return 0
		}
	})
	if i == len(r.points) {
		i = 0 // wrap: keys past the last point belong to the first
	}
	return r.members[r.points[i].member]
}
