package ring

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func keyOf(i int) [sha256.Size]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

// TestDeterministicAcrossSpellings pins the fleet-agreement invariant:
// every replica builds the identical ring from the member list however it
// is ordered, duplicated or slash-terminated.
func TestDeterministicAcrossSpellings(t *testing.T) {
	a := New([]string{"http://h1:8642", "http://h2:8642", "http://h3:8642"}, 0)
	b := New([]string{"http://h3:8642/", "http://h1:8642", "http://h2:8642", "http://h1:8642"}, 0)
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes: %d, %d, want 3", a.Size(), b.Size())
	}
	for i := 0; i < 1000; i++ {
		k := keyOf(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owners disagree: %q vs %q", i, a.Owner(k), b.Owner(k))
		}
	}
}

// TestSingleMemberOwnsAll: a one-replica ring degenerates to local-only.
func TestSingleMemberOwnsAll(t *testing.T) {
	r := New([]string{"http://only:1"}, 0)
	for i := 0; i < 100; i++ {
		if got := r.Owner(keyOf(i)); got != "http://only:1" {
			t.Fatalf("key %d owned by %q", i, got)
		}
	}
}

// TestEmptyRingOwnsNothing: no members, no owner — callers treat "" as
// compute-locally.
func TestEmptyRingOwnsNothing(t *testing.T) {
	for _, members := range [][]string{nil, {""}, {"  ", "/"}} {
		if got := New(members, 0).Owner(keyOf(1)); got != "" {
			t.Fatalf("empty ring %v owned by %q", members, got)
		}
	}
}

// TestCoverageAndBalance: with default virtual nodes every member owns a
// non-trivial share of the key space (no starved replica).
func TestCoverageAndBalance(t *testing.T) {
	members := []string{"http://h1:1", "http://h2:1", "http://h3:1", "http://h4:1"}
	r := New(members, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(keyOf(i))]++
	}
	for _, m := range members {
		if counts[m] < n/len(members)/4 {
			t.Fatalf("member %s owns only %d of %d keys: %v", m, counts[m], n, counts)
		}
	}
}

// TestRemovalRemapsOnlyTheLostShare: dropping one member must not move keys
// between the survivors — the defining consistent-hashing property.
func TestRemovalRemapsOnlyTheLostShare(t *testing.T) {
	full := New([]string{"http://h1:1", "http://h2:1", "http://h3:1"}, 0)
	reduced := New([]string{"http://h1:1", "http://h3:1"}, 0)
	for i := 0; i < 2000; i++ {
		k := keyOf(i)
		was, now := full.Owner(k), reduced.Owner(k)
		if was != "http://h2:1" && now != was {
			t.Fatalf("key %d moved %q -> %q though its owner survived", i, was, now)
		}
	}
}

// TestNormalize pins the member canonicalization callers rely on to match
// their own URL against the ring.
func TestNormalize(t *testing.T) {
	if Normalize(" http://h1:8642/ ") != "http://h1:8642" {
		t.Fatal("Normalize did not strip space and slash")
	}
}
