package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/service/admit"
	"oneport/internal/service/journal"
	"oneport/internal/testbeds"
)

// journalStoreT opens a journal store on a fresh (or given) dir for tests.
func journalStoreT(t *testing.T, dir string) *journal.Store {
	t.Helper()
	st, err := journal.Open(journal.Config{Dir: dir, Policy: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// noFollow returns a client that surfaces redirects instead of chasing them.
func noFollow(ts *httptest.Server) *http.Client {
	c := *ts.Client()
	c.CheckRedirect = func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }
	return &c
}

// TestReadyzGates walks every not-ready reason: a fresh server is ready, a
// recovering one is not until RecoverSessions finishes, a draining one
// never goes ready again, and a replica browned out to the top of the
// ladder reports not-ready while /healthz stays 200 throughout (liveness
// and readiness must not be conflated — a busy replica is skipped, not
// restarted).
func TestReadyzGates(t *testing.T) {
	ready := func(t *testing.T, ts *httptest.Server, want bool, wantReason string) {
		t.Helper()
		hr, body := doJSON(t, ts, http.MethodGet, "/readyz", nil)
		var r struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("/readyz body: %s", body)
		}
		if want && (hr.StatusCode != http.StatusOK || !r.Ready) {
			t.Fatalf("/readyz = %d %s, want ready", hr.StatusCode, body)
		}
		if !want && (hr.StatusCode != http.StatusServiceUnavailable || r.Ready || r.Reason != wantReason) {
			t.Fatalf("/readyz = %d %s, want 503 %q", hr.StatusCode, body, wantReason)
		}
		// liveness is orthogonal: the process is healthy in every state
		if hh, hb := doJSON(t, ts, http.MethodGet, "/healthz", nil); hh.StatusCode != http.StatusOK {
			t.Fatalf("/healthz = %d %s", hh.StatusCode, hb)
		}
	}

	t.Run("recovering", func(t *testing.T) {
		srv := New(Config{SessionJournal: journalStoreT(t, t.TempDir())})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		ready(t, ts, false, "recovering sessions")
		if _, _, err := srv.RecoverSessions(context.Background()); err != nil {
			t.Fatal(err)
		}
		ready(t, ts, true, "")
	})

	t.Run("draining", func(t *testing.T) {
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		ready(t, ts, true, "")
		srv.DrainSessions(context.Background())
		if !srv.Draining() {
			t.Fatal("Draining() false after DrainSessions")
		}
		ready(t, ts, false, "draining")
		// opens refuse while draining
		hr, body := doJSON(t, ts, http.MethodPost, "/session",
			Request{Graph: testbeds.LU(6, 10), Platform: platform.Paper(), Heuristic: "heft"})
		if hr.StatusCode != http.StatusServiceUnavailable || hr.Header.Get("Retry-After") == "" {
			t.Fatalf("open while draining = %d %s", hr.StatusCode, body)
		}
		if st := statsSnapshot(t, ts); !st.Draining {
			t.Errorf("stats draining = false")
		}
	})

	t.Run("browned out", func(t *testing.T) {
		srv := New(Config{
			PoolSize: 1,
			Admission: &admit.Config{
				MaxQueue:         8,
				ShedBackgroundAt: 1,
				ShedExpensiveAt:  1,
				ShedCheapAt:      2,
				QueueBudget:      -1,
			},
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		ready(t, ts, true, "")
		gate := make(chan struct{})
		srv.testHook = func(*Request) { <-gate }
		done := make(chan struct{}, 3)
		for i := 0; i < 3; i++ {
			go func(i int) {
				defer func() { done <- struct{}{} }()
				post(t, ts, "/schedule", Request{
					Graph: testbeds.LU(8+i, 10), Platform: platform.Paper(), Heuristic: "heft"})
			}(i)
		}
		waitAdmit(t, srv, "ladder at its top", func(st admit.Stats) bool {
			return st.BrownoutLevel >= admit.MaxBrownoutLevel
		})
		ready(t, ts, false, "browned out")
		close(gate)
		for i := 0; i < 3; i++ {
			<-done
		}
		waitAdmit(t, srv, "drained", func(st admit.Stats) bool { return st.BrownoutLevel == 0 })
		ready(t, ts, true, "")
	})
}

// TestCrashRecoveryHTTP is the service-level half of the tentpole pin: a
// session opened and mutated over HTTP, its server discarded (nothing but
// the journal directory survives), a new server recovering the directory —
// and the 4th delta's schedule byte-identical to a cold /schedule of the
// equivalent final graph.
func TestCrashRecoveryHTTP(t *testing.T) {
	dir := t.TempDir()
	ts1 := httptest.NewServer(New(Config{SessionJournal: journalStoreT(t, dir)}).Handler())
	// note: never closed cleanly — the "crash" is simply abandoning it
	defer ts1.Close()

	g, pl := testbeds.LU(8, 10), platform.Paper()
	sr := openSession(t, ts1, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
	cur := g
	for i, d := range []graph.Delta{
		{{Op: "set_weight", Task: intp(2), Weight: floatp(9)}},
		{{Op: "add_task", Weight: floatp(6)}, {Op: "add_edge", From: intp(0), To: intp(g.NumNodes()), Data: floatp(2)}},
		{{Op: "set_weight", Task: intp(5), Weight: floatp(4)}},
	} {
		ng, _, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		cur = ng
		hr, body := doJSON(t, ts1, http.MethodPost, "/session/"+sr.SessionID+"/delta",
			session2Body(t, d))
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: %d %s", i, hr.StatusCode, body)
		}
	}

	srv2 := New(Config{SessionJournal: journalStoreT(t, dir)})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if recovered, failed, err := srv2.RecoverSessions(context.Background()); err != nil || recovered != 1 || failed != 0 {
		t.Fatalf("RecoverSessions = %d, %d, %v", recovered, failed, err)
	}

	final := graph.Delta{{Op: "set_weight", Task: intp(0), Weight: floatp(7)}}
	ng, _, err := final.Apply(cur)
	if err != nil {
		t.Fatal(err)
	}
	hr, body := doJSON(t, ts2, http.MethodPost, "/session/"+sr.SessionID+"/delta", session2Body(t, final))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery delta: %d %s", hr.StatusCode, body)
	}
	var dr SessionResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Deltas != 4 {
		t.Errorf("Deltas = %d, want 4 across the crash", dr.Deltas)
	}
	got, err := json.Marshal(dr.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	want := scheduleJSON(t, ts2, Request{Graph: ng, Platform: pl, Heuristic: "heft", Model: "oneport"})
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered session diverged from the cold oracle:\nwant %s\ngot  %s", want, got)
	}
	if st := statsSnapshot(t, ts2); st.SessionsRecovered != 1 || st.Journal == nil {
		t.Errorf("stats after recovery: recovered=%d journal=%v", st.SessionsRecovered, st.Journal)
	}
}

func session2Body(t *testing.T, d graph.Delta) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"graph": d})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDrainHandoffNoAckedDeltaLost is the fleet half of the tentpole: a
// two-replica fleet, sessions live on A, A drains — every session must land
// on B with no acked delta lost, A must 307 follow-up traffic at B with the
// owner in X-Session-Owner, and the schedule served by B after one more
// delta must be byte-identical to a cold run of the full mutation history.
func TestDrainHandoffNoAckedDeltaLost(t *testing.T) {
	var sA, sB atomic.Pointer[Server]
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sA.Load().Handler().ServeHTTP(w, r)
	}))
	defer tsA.Close()
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sB.Load().Handler().ServeHTTP(w, r)
	}))
	defer tsB.Close()
	members := []string{tsA.URL, tsB.URL}
	sA.Store(New(Config{Self: tsA.URL, Peers: members, SessionJournal: journalStoreT(t, t.TempDir())}))
	sB.Store(New(Config{Self: tsB.URL, Peers: members, SessionJournal: journalStoreT(t, t.TempDir())}))
	for _, srv := range []*Server{sA.Load(), sB.Load()} {
		if _, _, err := srv.RecoverSessions(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// a handful of sessions on A, each with one acked delta
	g, pl := testbeds.LU(8, 10), platform.Paper()
	const n = 3
	ids := make([]string, n)
	finals := make([]*graph.Graph, n)
	for i := 0; i < n; i++ {
		sr := openSession(t, tsA, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
		ids[i] = sr.SessionID
		d := graph.Delta{{Op: "set_weight", Task: intp(i + 1), Weight: floatp(float64(20 + i))}}
		ng, _, err := d.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		finals[i] = ng
		if hr, body := doJSON(t, tsA, http.MethodPost, "/session/"+sr.SessionID+"/delta",
			session2Body(t, d)); hr.StatusCode != http.StatusOK {
			t.Fatalf("delta on session %d: %d %s", i, hr.StatusCode, body)
		}
	}

	moved, kept := sA.Load().DrainSessions(context.Background())
	if moved != n || kept != 0 {
		t.Fatalf("DrainSessions = %d moved, %d kept, want %d, 0", moved, kept, n)
	}

	// A now 307s session traffic at B, naming the owner
	raw := session2Body(t, graph.Delta{{Op: "set_weight", Task: intp(0), Weight: floatp(3)}})
	req, err := http.NewRequest(http.MethodPost, tsA.URL+"/session/"+ids[0]+"/delta", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := noFollow(tsA).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("drained replica answered %d, want 307", hr.StatusCode)
	}
	if got := hr.Header.Get(sessionOwnerHeader); got != tsB.URL {
		t.Fatalf("X-Session-Owner = %q, want %q", got, tsB.URL)
	}
	if loc := hr.Header.Get("Location"); loc != tsB.URL+"/session/"+ids[0]+"/delta" {
		t.Fatalf("Location = %q", loc)
	}

	// and a default client just follows the redirect transparently: the
	// delta lands on B and extends the session's acked history
	for i := 0; i < n; i++ {
		d := graph.Delta{{Op: "set_weight", Task: intp(0), Weight: floatp(float64(3 + i))}}
		ng, _, err := d.Apply(finals[i])
		if err != nil {
			t.Fatal(err)
		}
		hr, body := doJSON(t, tsA, http.MethodPost, "/session/"+ids[i]+"/delta", session2Body(t, d))
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("redirected delta on session %d: %d %s", i, hr.StatusCode, body)
		}
		var dr SessionResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Deltas != 2 {
			t.Errorf("session %d: Deltas = %d, want 2 (acked delta lost in the move)", i, dr.Deltas)
		}
		got, err := json.Marshal(dr.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if want := scheduleJSON(t, tsB, Request{Graph: ng, Platform: pl, Heuristic: "heft", Model: "oneport"}); !bytes.Equal(want, got) {
			t.Fatalf("session %d diverged after handoff:\nwant %s\ngot  %s", i, want, got)
		}
	}

	stA, stB := statsSnapshot(t, tsA), statsSnapshot(t, tsB)
	if stA.SessionsHandedOff != n || stB.SessionsImported != n {
		t.Errorf("handoff counters: A handed_off=%d B imported=%d, want %d/%d",
			stA.SessionsHandedOff, stB.SessionsImported, n, n)
	}
	if stA.SessionRedirects == 0 {
		t.Error("A reported no session redirects")
	}
}

// TestImportEpochSkew: an import tagged with a foreign ring epoch is
// refused 409 with the serving epoch echoed — a draining sender must never
// place sessions by a membership map the receiver does not share.
func TestImportEpochSkew(t *testing.T) {
	self := "http://127.0.0.1:1"
	srv := New(Config{Self: self, Peers: []string{self, "http://127.0.0.1:2"}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/session/peer/import",
		bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ringEpochHeader, "999999")
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusConflict {
		t.Fatalf("skewed import answered %d, want 409", hr.StatusCode)
	}
	if hr.Header.Get(ringEpochHeader) == "" {
		t.Error("409 does not echo the serving epoch")
	}
	if st := statsSnapshot(t, ts); st.PeerEpochSkew == 0 {
		t.Error("epoch skew not counted")
	}
}

// TestDrainWithDeadPeerKeepsSessions: when every survivor is unreachable,
// the drain keeps the sessions — journaled and recoverable — rather than
// losing them; the replica itself keeps serving deltas on them until the
// process exits.
func TestDrainWithDeadPeerKeepsSessions(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()

	dir := t.TempDir()
	var sA atomic.Pointer[Server]
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sA.Load().Handler().ServeHTTP(w, r)
	}))
	defer tsA.Close()
	sA.Store(New(Config{Self: tsA.URL, Peers: []string{tsA.URL, dead.URL},
		SessionJournal: journalStoreT(t, dir)}))
	if _, _, err := sA.Load().RecoverSessions(context.Background()); err != nil {
		t.Fatal(err)
	}

	g, pl := testbeds.LU(8, 10), platform.Paper()
	sr := openSession(t, tsA, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
	moved, kept := sA.Load().DrainSessions(context.Background())
	if moved != 0 || kept != 1 {
		t.Fatalf("DrainSessions = %d moved, %d kept, want 0, 1", moved, kept)
	}
	// the kept session still serves here (deltas are not refused by drain)
	if hr, body := doJSON(t, tsA, http.MethodPost, "/session/"+sr.SessionID+"/delta",
		session2Body(t, graph.Delta{{Op: "set_weight", Task: intp(1), Weight: floatp(5)}})); hr.StatusCode != http.StatusOK {
		t.Fatalf("delta on kept session: %d %s", hr.StatusCode, body)
	}
	// and it survives the process: a fresh server over the same journal dir
	// recovers it with both deltas' worth of state
	srv2 := New(Config{SessionJournal: journalStoreT(t, dir)})
	if recovered, failed, err := srv2.RecoverSessions(context.Background()); err != nil || recovered != 1 || failed != 0 {
		t.Fatalf("recovery after failed drain = %d, %d, %v", recovered, failed, err)
	}
}

// TestExportEndpoint: GET /session/{id}/export serializes a live session,
// and the snapshot imports cleanly into a peer via the import endpoint
// (epoch-tagged with the receiver's serving epoch).
func TestExportEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	g, pl := testbeds.LU(8, 10), platform.Paper()
	sr := openSession(t, ts, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
	hr, body := doJSON(t, ts, http.MethodGet, "/session/"+sr.SessionID+"/export", nil)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %s", hr.StatusCode, body)
	}
	var snap struct {
		ID        string `json:"id"`
		Heuristic string `json:"heuristic"`
		Model     string `json:"model"`
		Deltas    int    `json:"deltas"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != sr.SessionID || snap.Heuristic != "heft" || snap.Model != "oneport" {
		t.Fatalf("export body: %s", body)
	}

	// a solo receiver (no peers: serving epoch 0) accepts the snapshot
	ts2 := httptest.NewServer(New(Config{}).Handler())
	defer ts2.Close()
	req, err := http.NewRequest(http.MethodPost, ts2.URL+"/session/peer/import", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ringEpochHeader, "0")
	hr2, err := ts2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	b2 := new(bytes.Buffer)
	if _, err := b2.ReadFrom(hr2.Body); err != nil {
		t.Fatal(err)
	}
	if hr2.StatusCode != http.StatusOK {
		t.Fatalf("import of exported snapshot: %d %s", hr2.StatusCode, b2.Bytes())
	}
	var ir SessionResponse
	if err := json.Unmarshal(b2.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.SessionID != sr.SessionID {
		t.Fatalf("import renamed the session: %s", ir.SessionID)
	}
	// the imported copy answers deltas under the same id
	if hr3, body3 := doJSON(t, ts2, http.MethodPost, "/session/"+sr.SessionID+"/delta",
		session2Body(t, graph.Delta{{Op: "set_weight", Task: intp(1), Weight: floatp(5)}})); hr3.StatusCode != http.StatusOK {
		t.Fatalf("delta on imported session: %d %s", hr3.StatusCode, body3)
	}
	// unknown session on a fleetless replica: a plain 404, no redirect
	if hr4, _ := doJSON(t, ts, http.MethodGet, "/session/ffffffffffffffffffffffffffffffff/export", nil); hr4.StatusCode != http.StatusNotFound {
		t.Fatalf("export of unknown session = %d, want 404", hr4.StatusCode)
	}
}
