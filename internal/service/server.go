package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oneport/internal/heuristics"
	"oneport/internal/sched"
)

// maxBodyBytes bounds request payloads (graphs of several hundred thousand
// edges fit comfortably; unbounded bodies would let one client exhaust the
// server).
const maxBodyBytes = 64 << 20

// Config sizes a Server.
type Config struct {
	// PoolSize bounds the number of concurrently executing scheduler runs
	// (default: GOMAXPROCS). Requests beyond it queue on the pool, not in
	// new goroutine pile-ups.
	PoolSize int
	// CacheSize is the LRU result-cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// ProbeParallelism is the per-run probe fan-out handed to each
	// scheduler (default 1: a loaded server gets its parallelism from
	// concurrent requests, so single-probe runs avoid oversubscribing the
	// machine; raise it for latency-sensitive, low-concurrency use).
	ProbeParallelism int
}

// Server executes scheduling requests on a bounded worker pool with pooled
// probe scratch and an LRU result cache. It is safe for concurrent use;
// construct with New.
type Server struct {
	cfg     Config
	sem     chan struct{}
	scratch sync.Map // procs int -> *sync.Pool of *heuristics.Scratch
	cache   *resultCache
	start   time.Time

	requests  atomic.Int64 // single /schedule jobs accepted
	batches   atomic.Int64 // /batch payloads accepted
	batchJobs atomic.Int64 // jobs inside batch payloads
	hits      atomic.Int64
	bodyHits  atomic.Int64 // subset of hits served from the raw-body byte index
	misses    atomic.Int64
	errors    atomic.Int64
	inFlight  atomic.Int64 // scheduler runs currently executing
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.ProbeParallelism <= 0 {
		cfg.ProbeParallelism = 1
	}
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.PoolSize),
		cache: newResultCache(cfg.CacheSize),
		start: time.Now(),
	}
}

// scratchPool returns the Scratch pool for platforms with the given
// processor count. Pools are keyed by shape because Scratch.lend drops
// probe buffers sized for a different processor count: one shared pool
// would let a mixed workload (10-proc paper requests interleaved with
// 4-proc cluster requests) thrash every borrowed Scratch back to empty,
// while per-shape pools keep each platform family's buffers — and the
// frontier engine they carry, which now warm-resets in O(1) — hot across
// requests.
func (s *Server) scratchPool(procs int) *sync.Pool {
	if p, ok := s.scratch.Load(procs); ok {
		return p.(*sync.Pool)
	}
	p, _ := s.scratch.LoadOrStore(procs, &sync.Pool{New: func() any { return heuristics.NewScratch() }})
	return p.(*sync.Pool)
}

// Run executes one request: cache lookup, then a pooled scheduler run. It
// never panics on malformed input; failures come back in Response.Error.
// The returned Response is self-contained (its schedule is never mutated
// later), so callers may hold or serialize it freely.
func (s *Server) Run(req *Request) Response {
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		return Response{Error: err.Error()}
	}
	key := CanonicalKey(req)
	if resp, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		return resp
	}
	s.misses.Add(1)

	s.sem <- struct{}{}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	par := s.cfg.ProbeParallelism
	if req.Options.ProbeParallelism > 0 {
		par = req.Options.ProbeParallelism
	}
	pool := s.scratchPool(req.Platform.NumProcs())
	sc := pool.Get().(*heuristics.Scratch)
	tune := &heuristics.Tuning{ProbeParallelism: par, Scratch: sc}
	fn, err := heuristics.ByNameTuned(req.Heuristic,
		heuristics.ILHAOptions{B: req.Options.B, ScanDepth: req.Options.ScanDepth}, tune)
	if err != nil {
		pool.Put(sc)
		s.errors.Add(1)
		return Response{Key: key, Error: err.Error()}
	}
	began := time.Now()
	schedule, err := fn(req.Graph, req.Platform, model)
	elapsed := time.Since(began)
	pool.Put(sc)
	if err != nil {
		s.errors.Add(1)
		return Response{Key: key, Error: err.Error()}
	}
	if err := sched.Validate(req.Graph, req.Platform, schedule, model); err != nil {
		s.errors.Add(1)
		return Response{Key: key, Error: fmt.Sprintf("service: produced schedule failed validation: %v", err), serverFault: true}
	}

	// a graph of all-zero weights legally yields makespan 0; guard the
	// division so the response never carries a NaN JSON cannot encode
	speedup := 0.0
	if ms := schedule.Makespan(); ms > 0 {
		speedup = req.Platform.SequentialTime(req.Graph.TotalWeight()) / ms
	}
	resp := Response{
		Key:       key,
		Heuristic: req.Heuristic,
		Model:     req.Model,
		Tasks:     req.Graph.NumNodes(),
		Makespan:  schedule.Makespan(),
		Speedup:   speedup,
		Comms:     schedule.CommCount(),
		ElapsedNs: elapsed.Nanoseconds(),
		Schedule:  schedule,
	}
	s.cache.add(key, &resp)
	return resp
}

// RunBatch executes a batch's jobs concurrently on the worker pool and
// returns responses in input order. Per-job failures are reported in the
// matching Response.Error; one bad job never fails its neighbours.
func (s *Server) RunBatch(b *Batch) BatchResponse {
	out := BatchResponse{Responses: make([]Response, len(b.Requests))}
	workers := s.cfg.PoolSize
	if workers > len(b.Requests) {
		workers = len(b.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(b.Requests) {
					return
				}
				out.Responses[i] = s.Run(&b.Requests[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Handler returns the server's HTTP surface:
//
//	POST /schedule  one Request  -> one Response
//	POST /batch     {"requests":[...]} -> {"responses":[...]}
//	GET  /healthz   liveness
//	GET  /stats     counters (requests, cache hits/misses, in-flight, ...)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// handleSchedule is the serving hot path. The fast path never touches JSON:
// the raw body bytes are hashed and looked up in the cache's byte index, so
// a repeated request costs one pooled body read, one SHA-256 and one Write
// of the pre-encoded response. Only requests that miss the byte index are
// decoded; after a successful run (or a canonical-index hit under a new
// byte spelling) the encoded response is attached to the cache and the body
// hash registered, so the next repeat stays on the fast path.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	body := sha256.Sum256(buf.Bytes())
	if enc, ok := s.cache.getByBody(body); ok {
		s.requests.Add(1)
		s.hits.Add(1)
		s.bodyHits.Add(1)
		writeRaw(w, http.StatusOK, enc)
		return
	}

	var req Request
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	s.requests.Add(1)
	resp := s.Run(&req)
	status := http.StatusOK
	switch {
	case resp.serverFault:
		status = http.StatusInternalServerError
	case resp.Error != "":
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
	if resp.Error == "" {
		// index this byte spelling; the encode closure only runs if the
		// entry has no encoded bytes yet (once per cache entry lifetime)
		s.cache.attachEncoded(resp.Key, body, func() []byte {
			enc := resp
			enc.Cached = true
			b, err := json.Marshal(enc)
			if err != nil {
				return nil
			}
			return append(b, '\n')
		})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var b Batch
	if err := decodeJSON(w, r, &b); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	if len(b.Requests) == 0 {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: "service: batch has no requests"})
		return
	}
	s.batches.Add(1)
	s.batchJobs.Add(int64(len(b.Requests)))
	writeJSON(w, http.StatusOK, s.RunBatch(&b))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// Stats is the counters snapshot served by GET /stats.
type Stats struct {
	UptimeS   float64 `json:"uptime_s"`
	PoolSize  int     `json:"pool_size"`
	Requests  int64   `json:"requests"`
	Batches   int64   `json:"batches"`
	BatchJobs int64   `json:"batch_jobs"`
	CacheHits int64   `json:"cache_hits"`
	// CacheBodyHits is the subset of CacheHits served straight from the
	// raw-body byte index (hash + Write, no JSON work at all).
	CacheBodyHits int64 `json:"cache_body_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheLen      int   `json:"cache_len"`
	CacheSize     int   `json:"cache_size"`
	Errors        int64 `json:"errors"`
	InFlight      int64 `json:"in_flight"`
}

// StatsSnapshot returns the current counters.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		UptimeS:       time.Since(s.start).Seconds(),
		PoolSize:      s.cfg.PoolSize,
		Requests:      s.requests.Load(),
		Batches:       s.batches.Load(),
		BatchJobs:     s.batchJobs.Load(),
		CacheHits:     s.hits.Load(),
		CacheBodyHits: s.bodyHits.Load(),
		CacheMisses:   s.misses.Load(),
		CacheLen:      s.cache.len(),
		CacheSize:     s.cfg.CacheSize,
		Errors:        s.errors.Load(),
		InFlight:      s.inFlight.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// decodeJSON strictly decodes one JSON value from a size-capped body.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

// bufPool recycles the request-body and response-encode buffers of the
// serving path, so steady-state requests reuse grown buffers instead of
// reallocating them per request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes into a pooled buffer before writing the status line, so
// a value that fails to encode becomes an honest 500 instead of a 200 with
// a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"service: response not serializable"}`, http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, buf.Bytes())
}

// writeRaw writes pre-encoded JSON bytes.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
