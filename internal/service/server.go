package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oneport/internal/heuristics"
	"oneport/internal/sched"
	"oneport/internal/service/admit"
	"oneport/internal/service/breaker"
	"oneport/internal/service/journal"
	"oneport/internal/service/session"
)

// maxBodyBytes bounds request payloads (graphs of several hundred thousand
// edges fit comfortably; unbounded bodies would let one client exhaust the
// server).
const maxBodyBytes = 64 << 20

// defaultStreamBytes is the default Config.StreamBytes: responses whose
// estimated encoding exceeds 1 MiB are streamed straight to the wire
// instead of staged in pooled buffers.
const defaultStreamBytes = 1 << 20

// Config sizes a Server.
type Config struct {
	// PoolSize bounds the number of concurrently executing scheduler runs
	// (default: GOMAXPROCS). Requests beyond it queue on the pool, not in
	// new goroutine pile-ups.
	PoolSize int
	// CacheSize is the LRU result-cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// ProbeParallelism is the per-run probe fan-out handed to each
	// scheduler (default 1: a loaded server gets its parallelism from
	// concurrent requests, so single-probe runs avoid oversubscribing the
	// machine; raise it for latency-sensitive, low-concurrency use).
	// A request may override it upward only as far as
	// max(ProbeParallelism, GOMAXPROCS) — see Server.clampProbePar.
	ProbeParallelism int
	// StreamBytes is the response-size estimate above which the server
	// encodes straight to the ResponseWriter instead of buffering the whole
	// body (and skips the encoded byte index for that entry). 0 uses
	// defaultStreamBytes; negative disables streaming entirely.
	StreamBytes int

	// Self is this replica's advertised base URL (e.g. "http://h1:8642")
	// and Peers the full replica list of the distributed encoded-response
	// cache. Every replica must be handed the same list (order and
	// trailing slashes are normalized away; Self may or may not appear in
	// Peers) so the fleet agrees on key ownership. Empty Self or Peers
	// means single-replica operation.
	Self  string
	Peers []string
	// PeerClient is the HTTP client used for replica-internal fill
	// requests (default: a client with a compute-scale timeout).
	PeerClient *http.Client
	// Breaker tunes the per-peer circuit breakers guarding every peer
	// path (zero value: breaker package defaults — open on first failure,
	// 500ms base backoff doubling to 30s, 20% jitter).
	Breaker breaker.Config
	// AdminToken, when non-empty, enables the /ring admin surface (live
	// membership swaps) behind `Authorization: Bearer <token>`. Empty
	// leaves the surface disabled (403), not open.
	AdminToken string
	// RequestTimeout, when positive, bounds each scheduler run: a run
	// whose compute exceeds it is aborted at its next task commit and the
	// request answered 503 with a Retry-After header (counted in
	// Stats.Timeouts). The deadline spans the run itself, not queueing or
	// I/O, and is independent of the client connection — a singleflight
	// leader computes for its followers even if its own client hangs up.
	RequestTimeout time.Duration

	// MaxSessions bounds the scheduling-session table (0: the session
	// package default) and SessionTTL the idle time after which a session
	// may be evicted to admit a new one (0: package default; negative:
	// sessions never expire). Session warm state is replica-local, but
	// with SessionJournal set sessions survive crashes (write-ahead delta
	// journal, replayed by RecoverSessions) and follow the ring on drain
	// (DrainSessions ships each one to its key's owner) — see DESIGN.md
	// "Session durability & handoff".
	MaxSessions int
	SessionTTL  time.Duration
	// SessionJournal, when non-nil, is the per-session write-ahead journal
	// store (internal/service/journal): opens and deltas are journaled
	// before they are acked, and the server reports not-ready on /readyz
	// until RecoverSessions has replayed the directory. nil keeps sessions
	// volatile.
	SessionJournal *journal.Store

	// Admission, when non-nil, puts a deadline- and priority-aware
	// admission queue with per-tenant quotas and a brownout ladder in
	// front of the compute pool (see internal/service/admit): cold runs
	// are cost-estimated, classed, and queued or shed before any pool
	// slot is taken; cache hits and session deltas bypass it entirely.
	// Slots defaults to PoolSize. nil keeps the bare bounded pool.
	Admission *admit.Config
}

// Server executes scheduling requests on a bounded worker pool with pooled
// probe scratch and an LRU result cache. It is safe for concurrent use;
// construct with New.
type Server struct {
	cfg       Config
	sem       chan struct{}
	scratch   sync.Map // procs int -> *sync.Pool of *heuristics.Scratch
	cache     *resultCache
	flights   flightGroup
	peers     *peerSet          // nil: single-replica
	admission *admit.Controller // nil: bare bounded pool
	sessions  *session.Manager
	start     time.Time

	requests   atomic.Int64 // single /schedule jobs accepted
	batches    atomic.Int64 // /batch payloads accepted
	batchJobs  atomic.Int64 // jobs inside batch payloads
	hits       atomic.Int64
	bodyHits   atomic.Int64 // subset of hits served from the raw-body byte index
	misses     atomic.Int64
	coalesced  atomic.Int64 // requests that shared an identical in-flight run
	peerHits   atomic.Int64 // requests answered with bytes fetched from the owner replica
	peerFills  atomic.Int64 // inbound /cache/peer fill requests accepted
	peerErrors atomic.Int64 // owner fetches that failed and degraded to local compute
	timeouts   atomic.Int64 // runs aborted at the RequestTimeout deadline (503)
	shed       atomic.Int64 // requests refused by admission control (503)
	errors     atomic.Int64
	inFlight   atomic.Int64 // scheduler runs currently executing
	svcNanos   atomic.Int64 // EWMA of compute durations, for Retry-After hints

	draining         atomic.Bool  // drain begun: opens/imports refused, readyz not-ready
	recovering       atomic.Bool  // journal replay in progress: readyz not-ready
	sessionRedirects atomic.Int64 // session requests 307ed to the id's ring owner

	// testHook, when non-nil, runs inside compute between the scratch
	// borrow and the heuristic call. Tests use it to inject panics (the
	// recovery path cannot be reached through valid inputs) and to gate
	// compute for coalescing assertions. Never set in production.
	testHook func(*Request)
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.ProbeParallelism <= 0 {
		cfg.ProbeParallelism = 1
	}
	if cfg.StreamBytes == 0 {
		cfg.StreamBytes = defaultStreamBytes
	}
	var ctrl *admit.Controller
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Slots <= 0 {
			ac.Slots = cfg.PoolSize
		}
		ctrl = admit.New(ac)
	}
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.PoolSize),
		cache:     newResultCache(cfg.CacheSize),
		peers:     newPeerSet(cfg.Self, cfg.Peers, cfg.PeerClient, cfg.Breaker),
		admission: ctrl,
		sessions: session.NewManager(session.Config{
			MaxSessions: cfg.MaxSessions, TTL: cfg.SessionTTL, Journal: cfg.SessionJournal}),
		start: time.Now(),
	}
	// a journal directory may hold acked sessions: stay not-ready until
	// RecoverSessions has replayed it, so a load balancer never routes a
	// pinned client to a replica that would 404 its session
	s.recovering.Store(cfg.SessionJournal != nil)
	return s
}

// RecoverSessions replays the session journal directory (no-op without
// Config.SessionJournal) and clears the not-ready gate /readyz holds while
// the replay runs. Callers embedding the server should invoke it once,
// before or concurrently with serving; session ids are random, so traffic
// for ids still mid-replay simply 404s (or 307s) until their journal is
// done.
func (s *Server) RecoverSessions(ctx context.Context) (recovered, failed int, err error) {
	defer s.recovering.Store(false)
	return s.sessions.Recover(ctx)
}

// scratchPool returns the Scratch pool for platforms with the given
// processor count. Pools are keyed by shape because Scratch.lend drops
// probe buffers sized for a different processor count: one shared pool
// would let a mixed workload (10-proc paper requests interleaved with
// 4-proc cluster requests) thrash every borrowed Scratch back to empty,
// while per-shape pools keep each platform family's buffers — and the
// frontier engine they carry, which now warm-resets in O(1) — hot across
// requests.
func (s *Server) scratchPool(procs int) *sync.Pool {
	if p, ok := s.scratch.Load(procs); ok {
		return p.(*sync.Pool)
	}
	p, _ := s.scratch.LoadOrStore(procs, &sync.Pool{New: func() any { return heuristics.NewScratch() }})
	return p.(*sync.Pool)
}

// parCap is the server-side ceiling on per-run probe fan-out: the larger of
// the configured default and GOMAXPROCS. Requests may tune their fan-out,
// but no single request can demand arbitrary goroutine fan-out on a shared
// box.
func (s *Server) parCap() int {
	if c := runtime.GOMAXPROCS(0); c > s.cfg.ProbeParallelism {
		return c
	}
	return s.cfg.ProbeParallelism
}

// clampProbePar resolves one run's probe fan-out: the request override when
// set — clamped to parCap — and the server default otherwise. Negative
// overrides are rejected earlier, in Request.normalize.
func (s *Server) clampProbePar(reqPar int) int {
	par := s.cfg.ProbeParallelism
	if reqPar > 0 {
		par = reqPar
	}
	if cap := s.parCap(); par > cap {
		par = cap
	}
	return par
}

// Run executes one request: cache lookup, then a pooled scheduler run under
// singleflight (concurrent identical cold requests share one run). It
// never panics on malformed input; failures come back in Response.Error.
// The returned Response is self-contained (its schedule is never mutated
// later), so callers may hold or serialize it freely.
func (s *Server) Run(req *Request) Response {
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		return Response{Error: err.Error()}
	}
	key := CanonicalKey(req)
	if resp, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		return resp
	}
	return s.runFlight(req, key, model, s.laneFor(req))
}

// runFlight executes the scheduler for a normalized request under
// singleflight: among concurrent identical cold requests — local clients,
// batch jobs or peer-forwarded fills — exactly one runs the scheduler, the
// rest wait and share its response (counted in coalesced). The leader
// re-checks the cache because a flight that completed between a caller's
// miss and its leadership has already populated the entry.
func (s *Server) runFlight(req *Request, key string, model sched.Model, ln lane) Response {
	resp, _ := s.flights.do(key,
		func() { s.coalesced.Add(1) },
		func() (Response, []byte) {
			if resp, ok := s.cache.get(key); ok {
				s.hits.Add(1)
				return resp, nil
			}
			s.misses.Add(1)
			return s.compute(req, key, model, ln), nil
		})
	return resp
}

// maxServeAttempts bounds how many times one HTTP request re-enters the
// singleflight after waiting out another caller's streamed peer relay
// (streamed relays go to the leader's own client and are never cached, so
// followers must retry). After the budget the request computes locally
// outside the flight — bounded work, no livelock.
const maxServeAttempts = 3

// serveFlight is the HTTP path's runFlight: the leader additionally tries a
// peer fill before computing, so N concurrent identical cold requests on a
// non-owner replica cost ONE owner fetch shared by all waiters — never N
// full-body transfers — and the owner's own singleflight bounds the fleet
// to one scheduler run. When the leader filled from a peer, the returned
// enc carries the owner's bytes for followers to relay verbatim.
//
// A stream-marked owner response cannot be shared through the flight (the
// body is a wire stream, not bytes): the leader carries it out via the
// returned relay and streams it to its own client; followers see
// resp.relayStreamed and retry.
func (s *Server) serveFlight(req *Request, sum, body [sha256.Size]byte, key string, model sched.Model, fromPeer bool, raw []byte, ln lane) (Response, []byte, *peerRelay) {
	var relay *peerRelay
	resp, enc := s.flights.do(key,
		func() { s.coalesced.Add(1) },
		func() (Response, []byte) {
			if resp, ok := s.cache.get(key); ok {
				s.hits.Add(1)
				return resp, nil
			}
			if !fromPeer && s.peers != nil {
				resp, enc, rel, ok := s.peerFill(ln.ctx, sum, body, key, raw, ln.tenant)
				if rel != nil {
					relay = rel
					return Response{relayStreamed: true}, nil
				}
				if ok {
					return resp, enc
				}
			}
			s.misses.Add(1)
			return s.compute(req, key, model, ln), nil
		})
	return resp, enc, relay
}

// compute runs the scheduler for one request. It is panic-hardened: a
// panicking heuristic — on this goroutine or re-raised from a shared probe
// worker (heuristics' pool faults surface after the fan-out barrier) —
// becomes a serverFault response (HTTP 500) instead of escaping the "never
// panics" contract. The pooled Scratch goes back via defer on every normal
// path; on a panic it is deliberately dropped, not re-pooled: the
// heuristic's own reclaim defer runs during unwinding and may have
// restocked it with the dead run's buffers, which a mid-fan-out panic can
// leave referenced by in-flight probe workers — dropping the one Scratch
// is the alias-free option, and the pool regrows a fresh one on demand.
func (s *Server) compute(req *Request, key string, model sched.Model, ln lane) (resp Response) {
	if s.admission != nil {
		// admission decides BEFORE any pool slot is taken: a shed costs
		// queue bookkeeping only, never compute capacity. The ticket IS
		// the slot (admit.Config.Slots mirrors PoolSize), so the bare
		// semaphore is bypassed — two gates would deadlock under burst.
		tk, err := s.admission.Acquire(ln.ctx, ln.tenant, ln.class, ln.cost)
		if err != nil {
			return s.shedResponse(key, err)
		}
		defer tk.Release()
	} else {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	pool := s.scratchPool(req.Platform.NumProcs())
	sc := pool.Get().(*heuristics.Scratch)
	defer func() {
		if r := recover(); r != nil {
			s.errors.Add(1)
			resp = Response{Key: key, Error: fmt.Sprintf("service: internal fault: %v", r), serverFault: true}
			return // sc dropped, not pooled — see the function comment
		}
		pool.Put(sc)
	}()

	tune := &heuristics.Tuning{ProbeParallelism: s.clampProbePar(req.Options.ProbeParallelism), Scratch: sc}
	if d := s.cfg.RequestTimeout; d > 0 {
		// deadline on a fresh context, NOT the client request's: a
		// singleflight leader computes for its followers, so its own
		// client hanging up must not abort the shared run
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		tune.Ctx = ctx
	}
	fn, err := heuristics.ByNameTuned(req.Heuristic,
		heuristics.ILHAOptions{B: req.Options.B, ScanDepth: req.Options.ScanDepth}, tune)
	if err != nil {
		s.errors.Add(1)
		return Response{Key: key, Error: err.Error()}
	}
	if s.testHook != nil {
		s.testHook(req)
	}
	began := time.Now()
	schedule, err := fn(req.Graph, req.Platform, model)
	elapsed := time.Since(began)
	s.observeServiceTime(elapsed)
	if err != nil {
		s.errors.Add(1)
		if errors.Is(err, heuristics.ErrCanceled) {
			s.timeouts.Add(1)
			return Response{Key: key, Error: fmt.Sprintf(
				"service: compute exceeded the %s request deadline", s.cfg.RequestTimeout), timedOut: true}
		}
		return Response{Key: key, Error: err.Error()}
	}
	if err := sched.Validate(req.Graph, req.Platform, schedule, model); err != nil {
		s.errors.Add(1)
		return Response{Key: key, Error: fmt.Sprintf("service: produced schedule failed validation: %v", err), serverFault: true}
	}

	// a graph of all-zero weights legally yields makespan 0; guard the
	// division so the response never carries a NaN JSON cannot encode
	speedup := 0.0
	if ms := schedule.Makespan(); ms > 0 {
		speedup = req.Platform.SequentialTime(req.Graph.TotalWeight()) / ms
	}
	out := Response{
		Key:       key,
		Heuristic: req.Heuristic,
		Model:     req.Model,
		Tasks:     req.Graph.NumNodes(),
		Makespan:  schedule.Makespan(),
		Speedup:   speedup,
		Comms:     schedule.CommCount(),
		ElapsedNs: elapsed.Nanoseconds(),
		Schedule:  schedule,
	}
	s.cache.add(key, &out)
	return out
}

// RunBatch executes a batch's jobs concurrently on the worker pool and
// returns responses in input order. Per-job failures are reported in the
// matching Response.Error; one bad job never fails its neighbours. Batch
// jobs always compute locally (no peer forwarding), but identical jobs
// still coalesce through the singleflight. Under admission control every
// batch job is Background class — the first traffic the brownout ladder
// sheds.
func (s *Server) RunBatch(b *Batch) BatchResponse {
	return s.runBatch(context.Background(), b, defaultTenant)
}

func (s *Server) runBatch(ctx context.Context, b *Batch, tenant string) BatchResponse {
	out := BatchResponse{Responses: make([]Response, len(b.Requests))}
	workers := s.cfg.PoolSize
	if workers > len(b.Requests) {
		workers = len(b.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(b.Requests) {
					return
				}
				out.Responses[i] = s.runBatchJob(ctx, &b.Requests[i], tenant)
			}
		}()
	}
	wg.Wait()
	return out
}

// runBatchJob is Run with a batch job's admission identity: the caller's
// tenant and context, class forced to Background regardless of cost.
func (s *Server) runBatchJob(ctx context.Context, req *Request, tenant string) Response {
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		return Response{Error: err.Error()}
	}
	key := CanonicalKey(req)
	if resp, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		return resp
	}
	return s.runFlight(req, key, model,
		lane{ctx: ctx, tenant: tenant, class: admit.Background, cost: estimateCost(req)})
}

// Handler returns the server's HTTP surface:
//
//	POST   /schedule            one Request  -> one Response
//	POST   /batch               {"requests":[...]} -> {"responses":[...]}
//	POST   /session             open a scheduling session (body: a Request)
//	POST   /session/{id}/delta  apply a delta batch, get the re-schedule
//	GET    /session/{id}/export session snapshot for a peer import
//	DELETE /session/{id}        close a session
//	POST   /session/peer/import replica-internal session handoff receive
//	POST   /cache/peer          replica-internal distributed-cache fill
//	GET    /ring                current membership epoch (admin token required)
//	POST   /ring                live membership swap (admin token required)
//	GET    /healthz             liveness (process up)
//	GET    /readyz              readiness (not draining/recovering/browned out)
//	GET    /stats               counters (requests, cache hits/misses, ...)
//	GET    /metrics             the same counters in Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /session", s.handleSessionOpen)
	mux.HandleFunc("POST /session/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("GET /session/{id}/export", s.handleSessionExport)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /session/peer/import", s.handleSessionImport)
	mux.HandleFunc("POST /cache/peer", s.handleCachePeer)
	mux.HandleFunc("GET /ring", s.handleRingGet)
	mux.HandleFunc("POST /ring", s.handleRingPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.serveSchedule(w, r, false)
}

// handleCachePeer is the owner-side half of the distributed cache: another
// replica relays a raw request body here when this replica owns its
// canonical key on the ring. It behaves exactly like /schedule — byte-index
// fast path, compute-and-cache on miss, identical response bytes — except
// that it never forwards again (a misconfigured fleet cannot loop) and the
// request counts as a peer fill, not client traffic.
//
// Before any body work the relay's ring-epoch tag is checked against the
// epoch this replica is serving; a mismatch is answered 409 so the
// requester computes locally. This is the no-split-brain invariant: a
// relay routed by one membership map is never served under another.
func (s *Server) handleCachePeer(w http.ResponseWriter, r *http.Request) {
	cur := uint64(0)
	if s.peers != nil {
		cur = s.peers.epoch()
	}
	if got, err := strconv.ParseUint(r.Header.Get(ringEpochHeader), 10, 64); err != nil || got != cur {
		if s.peers != nil {
			s.peers.skews.Add(1)
		}
		w.Header().Set(ringEpochHeader, strconv.FormatUint(cur, 10))
		writeJSON(w, http.StatusConflict, Response{Error: fmt.Sprintf(
			"service: ring epoch mismatch: relay tagged %q, serving epoch %d", r.Header.Get(ringEpochHeader), cur)})
		return
	}
	s.serveSchedule(w, r, true)
}

// serveSchedule is the serving hot path. The fast path never touches JSON:
// the raw body bytes are hashed and looked up in the cache's byte index, so
// a repeated request costs one pooled body read, one SHA-256 and one Write
// of the pre-encoded response. Only requests that miss the byte index are
// decoded; a cold key owned by another replica is filled from the owner
// before this replica computes (peerFill), and after a successful run (or a
// canonical-index hit under a new byte spelling) the encoded response is
// attached to the cache and the body hash registered, so the next repeat
// stays on the fast path.
func (s *Server) serveSchedule(w http.ResponseWriter, r *http.Request, fromPeer bool) {
	buf, release, err := s.readBody(w, r)
	if err != nil {
		return // readBody already answered 400 and counted the error
	}
	defer release()
	accepted := func() {
		if fromPeer {
			s.peerFills.Add(1)
		} else {
			s.requests.Add(1)
		}
	}
	body := sha256.Sum256(buf.Bytes())
	if enc, ok := s.cache.getByBody(body); ok {
		accepted()
		s.hits.Add(1)
		s.bodyHits.Add(1)
		writeRaw(w, http.StatusOK, enc)
		return
	}

	var req Request
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return
	}
	accepted()
	model, err := req.normalize()
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	sum := CanonicalSum(&req)
	key := hex.EncodeToString(sum[:])
	class, cost := classifyRequest(&req)
	// the lane's ctx is the client's: a queued request whose client hangs
	// up (or whose deadline passes) leaves the admission queue without
	// ever consuming a pool slot
	ln := lane{ctx: r.Context(), tenant: tenantOf(r), class: class, cost: cost}

	// everything below the byte index runs under singleflight: a canonical
	// hit under a new byte spelling, a peer fill for a key another replica
	// owns, or a local compute — whichever the leader resolves, concurrent
	// identical requests share it
	var resp Response
	var enc []byte
	for attempt := 0; ; attempt++ {
		var relay *peerRelay
		resp, enc, relay = s.serveFlight(&req, sum, body, key, model, fromPeer, buf.Bytes(), ln)
		if relay != nil {
			// this request led a stream-marked fill: pipe the owner's body
			// straight to the client, no staging
			s.streamRelay(w, relay)
			return
		}
		if !resp.relayStreamed {
			break
		}
		// followed a flight whose leader streamed to its own client (nothing
		// cached, nothing shareable): retry — likely becoming the leader of a
		// fresh relay — and after the budget compute locally outside the flight
		if attempt >= maxServeAttempts-1 {
			s.misses.Add(1)
			resp, enc = s.compute(&req, key, model, ln), nil
			break
		}
	}
	if enc != nil {
		// peer-filled: relay the owner's bytes verbatim (the leader already
		// adopted them into the local cache and byte index)
		writeRaw(w, http.StatusOK, enc)
		return
	}
	status := http.StatusOK
	switch {
	case resp.shed:
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
	case resp.timedOut:
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	case resp.serverFault:
		status = http.StatusInternalServerError
	case resp.Error != "":
		status = http.StatusBadRequest
	}
	s.writeResponse(w, status, &resp)
	if resp.Error == "" && !s.shouldStream(&resp) {
		// index this byte spelling; the encode closure only runs if the
		// entry has no encoded bytes yet (once per cache entry lifetime)
		s.cache.attachEncoded(resp.Key, body, encodeHit(resp))
	}
}

// readBody reads one request body through the serving path's pooled-buffer,
// size-capped read: every body-carrying endpoint (/schedule, /cache/peer,
// the session surface) shares this path, so oversize and torn bodies get
// the same 400 everywhere and steady-state requests reuse grown buffers.
// On success the caller must invoke release when done with the bytes; on
// error the 400 has already been written and the error counted.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, func(), error) {
	//schedlint:allow scratchpair — ownership transfers: the caller must invoke the returned release
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		bufPool.Put(buf)
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: fmt.Sprintf("service: bad request body: %v", err)})
		return nil, nil, err
	}
	return buf, func() { bufPool.Put(buf) }, nil
}

// peerRelay carries a stream-marked owner response out of the flight
// closure: the leader that fetched it owns the body and streams it to its
// own client after the flight settles.
type peerRelay struct {
	body  io.ReadCloser
	owner string
}

// peerFill is the requester side of the distributed cache: on a local miss
// for a key the ring assigns to another replica, relay the raw body to the
// owner's /cache/peer endpoint and serve its bytes verbatim — the owner
// computes at most once fleet-wide (its own singleflight coalesces
// concurrent fills) and the response is byte-identical to a single-replica
// answer. The fetched result is adopted into the local cache, so repeats on
// this replica become local byte-index hits; a stream-marked response is
// instead handed back as a relay for the caller to pipe through.
//
// Every fill settles the owner's circuit breaker exactly once, and only
// with a verdict the owner actually earned: transport failures with our
// client still connected, owner 5xx, and a torn or undecodable 200 are the
// owner's fault (Failure); an owner 4xx and a ring-epoch 409 prove the
// owner alive (Success); our own client hanging up proves nothing
// (Cancel). ok=false always degrades to local compute.
func (s *Server) peerFill(ctx context.Context, sum, body [sha256.Size]byte, key string, raw []byte, tenant string) (Response, []byte, *peerRelay, bool) {
	owner, isSelf, epoch, active := s.peers.owner(sum)
	if !active || isSelf {
		return Response{}, nil, nil, false
	}
	if !s.peers.breakers.Allow(owner, time.Now()) {
		return Response{}, nil, nil, false
	}
	var hr *http.Response
	for attempt := 1; ; attempt++ {
		var err error
		hr, err = s.peers.fetch(ctx, owner, epoch, raw, tenant)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			s.peers.breakers.Cancel(owner)
			return Response{}, nil, nil, false
		}
		if attempt < maxFillAttempts {
			continue // retry budget: a transport blip gets one more connection
		}
		s.peerErrors.Add(1)
		s.peers.breakers.Failure(owner, time.Now())
		return Response{}, nil, nil, false
	}
	switch {
	case hr.StatusCode == http.StatusConflict:
		// ring-epoch skew: the owner serves a different membership epoch
		// than the one this fill was routed by. The peer is alive and
		// answering — record Success, count the skew, compute locally until
		// the membership push reaches both sides.
		drainClose(hr.Body)
		s.peers.skews.Add(1)
		s.peers.breakers.Success(owner)
		return Response{}, nil, nil, false
	case hr.StatusCode == http.StatusServiceUnavailable:
		// the owner is shedding load (admission queue full, brownout, or
		// a compute deadline): explicit backpressure from a live peer, not
		// a fault — settling Failure here would let overload masquerade as
		// peer death and cascade breaker opens across the fleet. Degrade
		// to local compute under this replica's own admission verdict.
		drainClose(hr.Body)
		s.peerErrors.Add(1)
		s.peers.breakers.Success(owner)
		return Response{}, nil, nil, false
	case hr.StatusCode >= 500:
		drainClose(hr.Body)
		s.peerErrors.Add(1)
		s.peers.breakers.Failure(owner, time.Now())
		return Response{}, nil, nil, false
	case hr.StatusCode != http.StatusOK:
		// 4xx: the request's fault, not the peer's; local compute reproduces
		// the same verdict without poisoning peer health
		drainClose(hr.Body)
		s.peers.breakers.Success(owner)
		return Response{}, nil, nil, false
	}
	if hr.Header.Get(streamMarkHeader) != "" {
		// the owner streamed its encode: hand the open body to the caller;
		// the breaker settles after the copy, when the owner's half of the
		// stream has proven itself
		return Response{}, nil, &peerRelay{body: hr.Body, owner: owner}, false
	}
	defer hr.Body.Close()
	enc, err := io.ReadAll(io.LimitReader(hr.Body, maxPeerBodyBytes+1))
	if err != nil || len(enc) > maxPeerBodyBytes {
		// torn or oversized body: nothing adoptable, and NOTHING may be
		// cached — a truncated encoding must never become a byte-index entry
		s.peerErrors.Add(1)
		s.peers.breakers.Failure(owner, time.Now())
		return Response{}, nil, nil, false
	}
	var resp Response
	if json.Unmarshal(enc, &resp) != nil || resp.Error != "" {
		// a 200 that does not decode to a clean response is an owner fault
		s.peerErrors.Add(1)
		s.peers.breakers.Failure(owner, time.Now())
		return Response{}, nil, nil, false
	}
	s.peerHits.Add(1)
	s.peers.breakers.Success(owner)
	stored := resp
	stored.Cached = false // stored form; get and encodeHit re-mark hits
	s.cache.add(key, &stored)
	if !s.shouldStream(&stored) {
		s.cache.attachEncoded(key, body, encodeHit(stored))
	}
	return resp, enc, nil, true
}

// streamRelay pipes a stream-marked owner body straight through to the
// client — owner to requester to client wire with no staging — and settles
// the owner's breaker with what the copy proved. A body torn mid-stream
// aborts the client connection (panic(http.ErrAbortHandler) is net/http's
// sanctioned abort): the client must see a broken transfer, never a
// truncated body dressed up as a complete response.
func (s *Server) streamRelay(w http.ResponseWriter, rel *peerRelay) {
	defer rel.body.Close()
	src := &readErrTracker{r: io.LimitReader(rel.body, maxPeerBodyBytes)}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, src); err != nil {
		if src.err != nil {
			// the owner's half broke: peer fault
			s.peerErrors.Add(1)
			s.peers.breakers.Failure(rel.owner, time.Now())
		} else {
			// our client stopped reading: no verdict about the owner
			s.peers.breakers.Cancel(rel.owner)
		}
		panic(http.ErrAbortHandler)
	}
	s.peerHits.Add(1)
	s.peers.breakers.Success(rel.owner)
}

// readErrTracker remembers whether a copy failure came from the read side,
// so a relay can attribute a torn transfer to the owner rather than to its
// own client hanging up.
type readErrTracker struct {
	r   io.Reader
	err error
}

func (t *readErrTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.err = err
	}
	return n, err
}

// drainClose reads a bounded slice of an error body so the connection is
// reusable, then closes it; its content does not matter — local compute
// reproduces any owner-side verdict.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4096))
	body.Close()
}

// encodeHit builds the attachEncoded closure for a response: its cache-hit
// form (Cached:true, trailing newline) encoded once per entry lifetime.
// resp is captured by value, so the caller's copy is never mutated.
func encodeHit(resp Response) func() []byte {
	return func() []byte {
		resp.Cached = true
		b, err := json.Marshal(resp)
		if err != nil {
			return nil
		}
		return append(b, '\n')
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var b Batch
	if err := decodeJSON(w, r, &b); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	if len(b.Requests) == 0 {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, Response{Error: "service: batch has no requests"})
		return
	}
	s.batches.Add(1)
	s.batchJobs.Add(int64(len(b.Requests)))
	out := s.runBatch(r.Context(), &b, tenantOf(r))
	if s.cfg.StreamBytes > 0 {
		est := 0
		for i := range out.Responses {
			est += out.Responses[i].estimateBytes()
		}
		if est > s.cfg.StreamBytes {
			streamJSON(w, http.StatusOK, &out)
			return
		}
	}
	writeJSON(w, http.StatusOK, &out)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// Restart decisions belong here; routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the routing probe: 200 only when sending this replica
// fresh traffic is useful. It reports 503 while draining (the replica is
// handing its sessions away and refusing opens), while session-journal
// recovery is still replaying (pinned clients would 404), and while the
// brownout ladder sits at its top level (every new cold run would only be
// shed). Liveness stays on /healthz — a not-ready replica must not be
// restarted, just skipped.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	reason := ""
	switch {
	case s.draining.Load():
		reason = "draining"
	case s.recovering.Load():
		reason = "recovering sessions"
	case s.admission != nil && s.admission.Level() >= admit.MaxBrownoutLevel:
		reason = "browned out"
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// Draining reports whether DrainSessions has begun shutting this replica
// down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the counters snapshot served by GET /stats.
type Stats struct {
	UptimeS   float64 `json:"uptime_s"`
	PoolSize  int     `json:"pool_size"`
	Requests  int64   `json:"requests"`
	Batches   int64   `json:"batches"`
	BatchJobs int64   `json:"batch_jobs"`
	CacheHits int64   `json:"cache_hits"`
	// CacheBodyHits is the subset of CacheHits served straight from the
	// raw-body byte index (hash + Write, no JSON work at all).
	CacheBodyHits int64 `json:"cache_body_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	// Coalesced counts requests that shared an identical in-flight
	// scheduler run instead of starting their own (singleflight); for N
	// concurrent identical cold requests it advances by N-1.
	Coalesced int64 `json:"coalesced"`
	CacheLen  int   `json:"cache_len"`
	CacheSize int   `json:"cache_size"`
	// Peers is the distinct replica count of the cache ring (0 when
	// running single-replica). PeerHits counts requests answered with
	// bytes fetched from the key's owner replica, PeerFills inbound fill
	// requests served for other replicas, and PeerErrors owner fetches
	// that failed and degraded to local compute.
	Peers      int   `json:"peers"`
	PeerHits   int64 `json:"peer_hits"`
	PeerFills  int64 `json:"peer_fills"`
	PeerErrors int64 `json:"peer_errors"`
	// RingEpoch is the membership epoch this replica is serving (0:
	// never joined a fleet), RingSwaps the number of live membership
	// swaps it has accepted, and PeerEpochSkew the number of relays —
	// inbound or outbound — rejected because the two sides held
	// different epochs (each one degraded to a local compute).
	RingEpoch     uint64 `json:"ring_epoch"`
	RingSwaps     int64  `json:"ring_swaps"`
	PeerEpochSkew int64  `json:"peer_epoch_skew"`
	// BreakersOpen is the number of peers currently being avoided or
	// probed, BreakerOpens the cumulative trip-open count, and
	// BreakerTrips the requests fast-failed by an open breaker.
	BreakersOpen int   `json:"breakers_open"`
	BreakerOpens int64 `json:"breaker_opens"`
	BreakerTrips int64 `json:"breaker_trips"`
	// SessionsOpen is the live scheduling-session count and SessionsBytes
	// the estimated state those sessions pin; SessionDeltas counts applied
	// delta batches, SessionEvictions idle sessions reclaimed past the
	// TTL, and SessionReplayedTasks the task placements replayed from a
	// previous run instead of being re-probed (the subsystem's saved work).
	SessionsOpen         int   `json:"sessions_open"`
	SessionsBytes        int64 `json:"sessions_bytes"`
	SessionDeltas        int64 `json:"session_deltas"`
	SessionEvictions     int64 `json:"session_evictions"`
	SessionReplayedTasks int64 `json:"session_replayed_tasks"`
	// SessionsRecovered counts sessions rebuilt from their write-ahead
	// journals after a restart, SessionRecoveryFailed journals whose
	// replay failed (left on disk), SessionsImported sessions accepted
	// from a draining peer, SessionsHandedOff sessions this replica
	// shipped to their ring owners on drain, and SessionRedirects session
	// requests answered 307 + X-Session-Owner because the id lives on
	// another replica. Draining is set once DrainSessions has begun.
	// Journal is the journal store's counters (nil with no journal).
	SessionsRecovered     int64          `json:"sessions_recovered"`
	SessionRecoveryFailed int64          `json:"session_recovery_failed"`
	SessionsImported      int64          `json:"sessions_imported"`
	SessionsHandedOff     int64          `json:"sessions_handed_off"`
	SessionRedirects      int64          `json:"session_redirects"`
	Draining              bool           `json:"draining"`
	Journal               *journal.Stats `json:"journal,omitempty"`
	// Timeouts counts runs aborted at Config.RequestTimeout (503s).
	Timeouts int64 `json:"timeouts"`
	// Shed counts requests refused by admission control before any pool
	// slot was taken (503 + computed Retry-After). Admission is the live
	// admission-queue state — brownout level, per-class queue depths and
	// admit/shed counters, drain rate, per-tenant accounting — and nil
	// when admission control is disabled.
	Shed      int64        `json:"shed"`
	Admission *admit.Stats `json:"admission,omitempty"`
	Errors    int64        `json:"errors"`
	InFlight  int64        `json:"in_flight"`
}

// StatsSnapshot returns the current counters.
func (s *Server) StatsSnapshot() Stats {
	peers := 0
	var ringEpoch uint64
	var ringSwaps, epochSkew int64
	var brk breaker.Counters
	if s.peers != nil {
		st := s.peers.state.Load()
		if st.ring != nil {
			peers = st.ring.Size()
		}
		ringEpoch = st.epoch
		ringSwaps = s.peers.swaps.Load()
		epochSkew = s.peers.skews.Load()
		brk = s.peers.breakers.Stats(time.Now())
	}
	sess := s.sessions.StatsSnapshot()
	st := Stats{
		UptimeS:               time.Since(s.start).Seconds(),
		PoolSize:              s.cfg.PoolSize,
		Requests:              s.requests.Load(),
		Batches:               s.batches.Load(),
		BatchJobs:             s.batchJobs.Load(),
		CacheHits:             s.hits.Load(),
		CacheBodyHits:         s.bodyHits.Load(),
		CacheMisses:           s.misses.Load(),
		Coalesced:             s.coalesced.Load(),
		CacheLen:              s.cache.len(),
		CacheSize:             s.cfg.CacheSize,
		Peers:                 peers,
		PeerHits:              s.peerHits.Load(),
		PeerFills:             s.peerFills.Load(),
		PeerErrors:            s.peerErrors.Load(),
		RingEpoch:             ringEpoch,
		RingSwaps:             ringSwaps,
		PeerEpochSkew:         epochSkew,
		BreakersOpen:          brk.Open,
		BreakerOpens:          brk.Opens,
		BreakerTrips:          brk.Trips,
		SessionsOpen:          sess.Open,
		SessionsBytes:         sess.Bytes,
		SessionDeltas:         sess.Deltas,
		SessionEvictions:      sess.Evictions,
		SessionReplayedTasks:  sess.ReplayedTasks,
		SessionsRecovered:     sess.Recovered,
		SessionRecoveryFailed: sess.RecoveryFailed,
		SessionsImported:      sess.Imported,
		SessionsHandedOff:     sess.HandedOff,
		SessionRedirects:      s.sessionRedirects.Load(),
		Draining:              s.draining.Load(),
		Timeouts:              s.timeouts.Load(),
		Shed:                  s.shed.Load(),
		Errors:                s.errors.Load(),
		InFlight:              s.inFlight.Load(),
	}
	if s.cfg.SessionJournal != nil {
		js := s.cfg.SessionJournal.StatsSnapshot()
		st.Journal = &js
	}
	if s.admission != nil {
		as := s.admission.StatsSnapshot()
		st.Admission = &as
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// RingOwner resolves a 32-byte key's owner under the current membership
// epoch, for subsystems that share the service's ring (the sweep worker's
// job cache). ok is false when the replica is single (nothing to forward
// to); the returned epoch must tag any relay made from this resolution.
func (s *Server) RingOwner(sum [sha256.Size]byte) (owner string, isSelf bool, epoch uint64, ok bool) {
	if s.peers == nil {
		return "", false, 0, false
	}
	return s.peers.owner(sum)
}

// RingEpoch returns the membership epoch this replica is serving (0:
// never joined a fleet).
func (s *Server) RingEpoch() uint64 {
	if s.peers == nil {
		return 0
	}
	return s.peers.epoch()
}

// Admission exposes the admission controller so in-process subsystems —
// the sweep worker surface — can gate their own traffic on the same
// slots and brownout ladder. nil when admission control is disabled.
func (s *Server) Admission() *admit.Controller { return s.admission }

// PeerBreakers exposes the per-peer circuit breakers so every peer path in
// the process — /schedule relays and sweep fills alike — shares one view
// of each peer's health. nil when the replica has no identity.
func (s *Server) PeerBreakers() *breaker.Set {
	if s.peers == nil {
		return nil
	}
	return s.peers.breakers
}

// decodeJSON strictly decodes one JSON value from a size-capped body.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

// estimateBytes conservatively estimates the encoded JSON size of a
// response from its event counts (a task event is ~70 bytes; a comm event
// carries a hop array), so the serving path can decide to stream without
// encoding first.
func (r *Response) estimateBytes() int {
	return 512 + 96*r.Tasks + 160*r.Comms
}

// shouldStream reports whether a response's estimated encoding is above the
// configured streaming threshold.
func (s *Server) shouldStream(resp *Response) bool {
	return s.cfg.StreamBytes > 0 && resp.estimateBytes() > s.cfg.StreamBytes
}

// writeResponse writes one Response, streaming the encode straight to the
// ResponseWriter when its estimated size exceeds Config.StreamBytes instead
// of staging the whole body in a pooled buffer. Streamed responses trade
// the encode-failure-to-500 conversion (headers are already out by then)
// for bounded memory on schedules whose JSON runs to many megabytes; such
// responses are also never attached to the encoded byte index, so the cache
// holds only their decoded form and repeats re-stream from it.
// Streamed bodies carry streamMarkHeader so a relaying replica knows to
// pipe them through rather than stage them.
func (s *Server) writeResponse(w http.ResponseWriter, status int, resp *Response) {
	if !s.shouldStream(resp) {
		writeJSON(w, status, resp)
		return
	}
	w.Header().Set(streamMarkHeader, "1")
	streamJSON(w, status, resp)
}

// bufPool recycles the request-body and response-encode buffers of the
// serving path, so steady-state requests reuse grown buffers instead of
// reallocating them per request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes into a pooled buffer before writing the status line, so
// a value that fails to encode becomes an honest 500 instead of a 200 with
// a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"service: response not serializable"}`, http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, buf.Bytes())
}

// streamJSON encodes directly to the wire: no staging buffer, no
// whole-body copy in memory.
func streamJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRaw writes pre-encoded JSON bytes.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
