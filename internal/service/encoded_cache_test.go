package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/testbeds"
)

// postRaw drives the handler directly (no sockets), returning status and body.
func postRaw(handler http.Handler, payload []byte) (int, []byte) {
	req := httptest.NewRequest("POST", "/schedule", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestEncodedCacheConcurrentHits hammers the byte-index fast path from many
// goroutines (run under -race in CI): every hit must serve exactly the same
// pre-encoded bytes, and the counters must account for one miss plus all
// hits. This is the concurrency pin for the shared, immutable enc storage.
func TestEncodedCacheConcurrentHits(t *testing.T) {
	srv := New(Config{PoolSize: 2})
	handler := srv.Handler()
	payload, err := json.Marshal(Request{
		Graph: testbeds.LU(12, 10), Platform: platform.Paper(), Heuristic: "heft",
	})
	if err != nil {
		t.Fatal(err)
	}

	// prime: first request computes and indexes the encoded response
	code, first := postRaw(handler, payload)
	if code != http.StatusOK {
		t.Fatalf("prime status %d: %s", code, first)
	}
	var primed Response
	if err := json.Unmarshal(first, &primed); err != nil {
		t.Fatal(err)
	}
	if primed.Cached || primed.Error != "" {
		t.Fatalf("prime response: %+v", primed)
	}

	const workers, reps = 16, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	bodies := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				code, body := postRaw(handler, payload)
				if code != http.StatusOK {
					errs <- nil
					return
				}
				bodies[i] = append([]byte(nil), body...)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatal("a concurrent hit answered non-200")
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("worker %d served different bytes", i)
		}
	}
	var hit Response
	if err := json.Unmarshal(bodies[0], &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Key != primed.Key {
		t.Fatalf("hit response not a cache hit: %+v", hit)
	}
	st := srv.StatsSnapshot()
	if st.CacheMisses != 1 || st.CacheHits != workers*reps {
		t.Fatalf("cache accounting off: %+v", st)
	}
	if st.CacheBodyHits == 0 {
		t.Fatal("no hit went through the byte index")
	}
}

// TestCacheHitAllocs is the allocation budget of the serving fast path: a
// repeated request must be answered in a near-zero-alloc hash + Write, not
// a decode/re-encode cycle. The pre-PR hit path cost ~2200 allocs; the
// budget leaves room for the recorder and header plumbing only. Skipped
// under -race, whose instrumentation allocates.
func TestCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	srv := New(Config{PoolSize: 1})
	handler := srv.Handler()
	payload, err := json.Marshal(Request{
		Graph: testbeds.LU(20, 10), Platform: platform.Paper(), Heuristic: "heft",
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := postRaw(handler, payload); code != http.StatusOK {
		t.Fatalf("prime status %d: %s", code, body)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if code, _ := postRaw(handler, payload); code != http.StatusOK {
			t.Fatal("hit answered non-200")
		}
	})
	// ~12 allocs observed: recorder, header map, request plumbing. 40 keeps
	// headroom across Go versions while still failing loudly if JSON work
	// ever sneaks back onto the hit path (thousands of allocs).
	if allocs > 40 {
		t.Fatalf("cache hit costs %.0f allocs, budget 40", allocs)
	}
}

// TestCanonicalAliasSpellings: two byte-different spellings of the same
// problem (the model written under an alias) share one canonical entry;
// each spelling gets its own byte-index alias after first contact, so
// repeats of either spelling ride the fast path.
func TestCanonicalAliasSpellings(t *testing.T) {
	srv := New(Config{PoolSize: 1})
	handler := srv.Handler()
	mk := func(model string) []byte {
		g := graph.New(3)
		g.AddNode(1, "")
		g.AddNode(2, "")
		g.AddNode(3, "")
		g.MustEdge(0, 1, 5)
		g.MustEdge(0, 2, 6)
		g.MustEdge(1, 2, 7)
		payload, err := json.Marshal(Request{Graph: g, Platform: platform.Paper(), Heuristic: "heft", Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	// normalize rewrites the "one-port" alias to "oneport": same canonical
	// key, different request bytes
	a, b := mk("oneport"), mk("one-port")
	if bytes.Equal(a, b) {
		t.Fatal("spellings must differ as bytes for this test to bite")
	}

	if code, _ := postRaw(handler, a); code != http.StatusOK {
		t.Fatal("spelling A failed")
	}
	// spelling B: byte miss, canonical hit; registers B's alias
	code, body := postRaw(handler, b)
	if code != http.StatusOK {
		t.Fatal("spelling B failed")
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("spelling B did not hit the canonical index")
	}
	before := srv.StatsSnapshot().CacheBodyHits
	if code, _ := postRaw(handler, b); code != http.StatusOK {
		t.Fatal("spelling B repeat failed")
	}
	if got := srv.StatsSnapshot().CacheBodyHits; got != before+1 {
		t.Fatalf("spelling B repeat missed the byte index: body hits %d -> %d", before, got)
	}
	if st := srv.StatsSnapshot(); st.CacheMisses != 1 {
		t.Fatalf("want a single scheduler run across spellings: %+v", st)
	}
}

// TestEncodedCacheEvictionDropsAliases pins the index consistency: evicting
// a canonical entry must drop its raw-body aliases, so a later identical
// request recomputes instead of serving freed bytes.
func TestEncodedCacheEvictionDropsAliases(t *testing.T) {
	c := newResultCache(1)
	resp := &Response{Key: "k1"}
	body := sha256.Sum256([]byte("req1"))
	c.add("k1", resp)
	c.attachEncoded("k1", body, func() []byte { return []byte(`{"key":"k1"}`) })
	if _, ok := c.getByBody(body); !ok {
		t.Fatal("alias not registered")
	}
	c.add("k2", &Response{Key: "k2"}) // evicts k1
	if _, ok := c.getByBody(body); ok {
		t.Fatal("evicted entry still reachable through its body alias")
	}
	if _, ok := c.get("k1"); ok {
		t.Fatal("evicted entry still reachable through its canonical key")
	}
	// refreshing an existing entry drops stale enc/aliases too
	c.add("k2", &Response{Key: "k2"})
	body2 := sha256.Sum256([]byte("req2"))
	c.attachEncoded("k2", body2, func() []byte { return []byte(`{"key":"k2"}`) })
	c.add("k2", &Response{Key: "k2", Makespan: 1})
	if _, ok := c.getByBody(body2); ok {
		t.Fatal("refreshed entry served the replaced response's bytes")
	}
}
