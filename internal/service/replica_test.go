package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oneport/internal/platform"
	"oneport/internal/service/ring"
	"oneport/internal/testbeds"
)

func luPayload(t *testing.T, n int) []byte {
	t.Helper()
	payload, err := json.Marshal(Request{
		Graph: testbeds.LU(n, 10), Platform: platform.Paper(), Heuristic: "heft",
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestPanicRecovery pins the panic-hardened compute path: a panicking
// heuristic must become a 500 serverFault response — never a process crash —
// the pooled Scratch must flow back (the pool stays usable), and the fault
// must count in errors. Panics cannot be reached through valid inputs, so
// the test injects one via the compute hook.
func TestPanicRecovery(t *testing.T) {
	srv := New(Config{PoolSize: 1})
	handler := srv.Handler()
	payload := luPayload(t, 10)

	srv.testHook = func(*Request) { panic("injected fault") }
	code, body := postRaw(handler, payload)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking run answered %d, want 500: %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("500 body not JSON (%v): %s", err, body)
	}
	if !strings.Contains(resp.Error, "injected fault") {
		t.Fatalf("fault response hides the panic: %+v", resp)
	}
	if st := srv.StatsSnapshot(); st.Errors != 1 {
		t.Fatalf("panic not counted in errors: %+v", st)
	}

	// the failed run must not poison the pool or the cache: the same
	// request now computes cleanly, and its repeat is a cache hit
	srv.testHook = nil
	code, body = postRaw(handler, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
		t.Fatalf("post-panic request failed: %d %s", code, body)
	}
	code, body = postRaw(handler, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"cached":true`)) {
		t.Fatalf("post-panic repeat not a cache hit: %d %s", code, body)
	}
}

// TestProbeParallelismClamp: a request may tune its probe fan-out, but only
// up to max(server default, GOMAXPROCS) — one request cannot demand
// arbitrary goroutine fan-out on a shared box — and negative values are
// rejected as a 400.
func TestProbeParallelismClamp(t *testing.T) {
	srv := New(Config{ProbeParallelism: 2})
	cap := srv.parCap()
	if g := runtime.GOMAXPROCS(0); cap != g && cap != 2 || cap < 2 {
		t.Fatalf("parCap = %d, want max(2, GOMAXPROCS=%d)", cap, g)
	}
	if got := srv.clampProbePar(0); got != 2 {
		t.Fatalf("default fan-out = %d, want the server's 2", got)
	}
	if got := srv.clampProbePar(1); got != 1 {
		t.Fatalf("in-range override = %d, want 1", got)
	}
	if got := srv.clampProbePar(1 << 30); got != cap {
		t.Fatalf("hostile override clamped to %d, want %d", got, cap)
	}

	handler := srv.Handler()
	// a hostile fan-out request still answers fine (clamped, not obeyed)
	huge, err := json.Marshal(Request{
		Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft",
		Options: Options{ProbeParallelism: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := postRaw(handler, huge); code != http.StatusOK {
		t.Fatalf("clamped request failed: %d %s", code, body)
	}
	// negative is a client error
	neg := bytes.Replace(huge, []byte(fmt.Sprint(1<<30)), []byte("-1"), 1)
	code, body := postRaw(handler, neg)
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("probe_parallelism")) {
		t.Fatalf("negative fan-out answered %d: %s", code, body)
	}
}

// TestSingleflightColdRequests pins the coalescing contract: N concurrent
// identical cold requests run the scheduler exactly once and all N callers
// receive identical responses (run under -race in CI). The compute hook
// holds the leader until every follower is counted waiting, so the test is
// deterministic rather than timing-dependent.
func TestSingleflightColdRequests(t *testing.T) {
	srv := New(Config{PoolSize: 2})
	gate := make(chan struct{})
	var computes atomic.Int64
	srv.testHook = func(*Request) {
		computes.Add(1)
		<-gate
	}

	const n = 8
	results := make([]Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Graph: testbeds.LU(12, 10), Platform: platform.Paper(), Heuristic: "heft"}
			results[i] = srv.Run(&req)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.StatsSnapshot().Coalesced != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", srv.StatsSnapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("scheduler ran %d times for %d identical requests", got, n)
	}
	st := srv.StatsSnapshot()
	if st.CacheMisses != 1 || st.Coalesced != n-1 || st.CacheHits != 0 {
		t.Fatalf("flight accounting off: %+v", st)
	}
	want, err := json.Marshal(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error != "" || results[0].Schedule == nil {
		t.Fatalf("leader response invalid: %+v", results[0])
	}
	for i := 1; i < n; i++ {
		got, err := json.Marshal(results[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("caller %d received a different response", i)
		}
	}
}

// normElapsed zeroes the one legitimately run-dependent field so responses
// from different processes can be compared byte-for-byte.
func normElapsed(t *testing.T, body []byte) []byte {
	t.Helper()
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("response not JSON (%v): %s", err, body)
	}
	r.ElapsedNs = 0
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTwoReplicaDistributedCache is the ring determinism pin: a two-replica
// fleet must serve a request computed on one replica from the other without
// recomputing (peer fill), with responses byte-identical across replicas
// and — modulo the measured ElapsedNs — identical to single-replica output.
// The assertions hold whichever replica the ring makes the key's owner.
func TestTwoReplicaDistributedCache(t *testing.T) {
	var sA, sB atomic.Pointer[Server]
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sA.Load().Handler().ServeHTTP(w, r)
	}))
	defer tsA.Close()
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sB.Load().Handler().ServeHTTP(w, r)
	}))
	defer tsB.Close()
	members := []string{tsA.URL, tsB.URL}
	sA.Store(New(Config{Self: tsA.URL, Peers: members}))
	sB.Store(New(Config{Self: tsB.URL, Peers: members}))

	// single-replica reference: the fresh and the repeat response
	ref := New(Config{})
	refH := ref.Handler()
	payload := luPayload(t, 12)
	_, refFresh := postRaw(refH, payload)
	_, refRepeat := postRaw(refH, payload)

	post := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return body
	}

	first := post(tsA)  // computes — locally or, when B owns the key, via fill
	second := post(tsB) // must reuse the first compute, never re-run it
	third := post(tsA)  // repeat on A: a local byte-index hit either way

	if !bytes.Equal(normElapsed(t, first), normElapsed(t, refFresh)) {
		t.Fatal("first fleet response differs from single-replica fresh output")
	}
	if !bytes.Equal(normElapsed(t, second), normElapsed(t, refRepeat)) {
		t.Fatal("second fleet response differs from single-replica repeat output")
	}
	// within the fleet the repeat bytes are strictly identical: one compute,
	// one encoded form, whichever replica serves it
	if !bytes.Equal(second, third) {
		t.Fatalf("replicas served different repeat bytes:\n%s\nvs\n%s", second, third)
	}

	stA, stB := sA.Load().StatsSnapshot(), sB.Load().StatsSnapshot()
	if stA.Peers != 2 || stB.Peers != 2 {
		t.Fatalf("ring size wrong: %d, %d", stA.Peers, stB.Peers)
	}
	if got := stA.CacheMisses + stB.CacheMisses; got != 1 {
		t.Fatalf("scheduler ran %d times across the fleet, want 1 (%+v / %+v)", got, stA, stB)
	}
	if got := stA.PeerHits + stB.PeerHits; got != 1 {
		t.Fatalf("peer hits = %d, want 1 (%+v / %+v)", got, stA, stB)
	}
	if got := stA.PeerFills + stB.PeerFills; got != 1 {
		t.Fatalf("peer fills = %d, want 1 (%+v / %+v)", got, stA, stB)
	}
	if got := stA.CacheBodyHits + stB.CacheBodyHits; got < 1 {
		t.Fatalf("no repeat rode the byte index (%+v / %+v)", stA, stB)
	}
	// peer-internal traffic never counts as client requests
	if stA.Requests+stB.Requests != 3 {
		t.Fatalf("client request count off: %+v / %+v", stA, stB)
	}
}

// TestPeerDownDegradesToLocal: a replica whose owner peer is unreachable
// must compute locally (one failed round-trip, then a served request),
// count the degradation, and serve repeats from its local cache without
// re-probing the dead peer.
func TestPeerDownDegradesToLocal(t *testing.T) {
	self := "http://self.example:8642"
	dead := "http://127.0.0.1:9" // discard port: connection refused fast
	srv := New(Config{
		Self: self, Peers: []string{self, dead},
		PeerClient: &http.Client{Timeout: 2 * time.Second},
	})
	handler := srv.Handler()

	// find a request whose canonical key the ring assigns to the dead peer
	r := ring.New([]string{self, dead}, 0)
	var payload []byte
	for n := 8; n <= 60; n++ {
		req := Request{Graph: testbeds.LU(n, 10), Platform: platform.Paper(), Heuristic: "heft"}
		if _, err := req.normalize(); err != nil {
			t.Fatal(err)
		}
		if r.Owner(CanonicalSum(&req)) == dead {
			var err error
			if payload, err = json.Marshal(req); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if payload == nil {
		t.Fatal("no LU size hashed to the dead peer — placement hash changed?")
	}

	code, body := postRaw(handler, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
		t.Fatalf("degraded request failed: %d %s", code, body)
	}
	st := srv.StatsSnapshot()
	if st.PeerErrors != 1 || st.PeerHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("degradation accounting off: %+v", st)
	}
	// the repeat is a local byte-index hit: no second probe of the dead peer
	code, body = postRaw(handler, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"cached":true`)) {
		t.Fatalf("degraded repeat not served locally: %d %s", code, body)
	}
	if st := srv.StatsSnapshot(); st.PeerErrors != 1 {
		t.Fatalf("repeat re-probed the dead peer: %+v", st)
	}
}

// TestStreamedResponses: above the size threshold the server encodes
// straight to the wire and deliberately skips the encoded byte index —
// repeats hit the canonical cache and stream again, so multi-megabyte
// bodies are never held in pooled buffers or duplicated into the cache.
func TestStreamedResponses(t *testing.T) {
	srv := New(Config{StreamBytes: 1}) // everything is "large"
	handler := srv.Handler()
	payload := luPayload(t, 12)

	code, body := postRaw(handler, payload)
	if code != http.StatusOK {
		t.Fatalf("streamed request failed: %d %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("streamed body not JSON (%v): %s", err, body)
	}
	if resp.Error != "" || resp.Schedule == nil {
		t.Fatalf("streamed response invalid: %+v", resp)
	}

	code, body = postRaw(handler, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"cached":true`)) {
		t.Fatalf("streamed repeat not a canonical hit: %d %s", code, body)
	}
	st := srv.StatsSnapshot()
	if st.CacheHits != 1 || st.CacheBodyHits != 0 {
		t.Fatalf("streamed entries must stay out of the byte index: %+v", st)
	}

	// batch payloads stream above the threshold too
	batch, err := json.Marshal(Batch{Requests: []Request{
		{Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	breq := httptest.NewRequest("POST", "/batch", bytes.NewReader(batch))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, breq)
	var bresp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bresp); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("streamed batch failed: %d %v %s", rec.Code, err, rec.Body.Bytes())
	}
	if len(bresp.Responses) != 1 || bresp.Responses[0].Error != "" {
		t.Fatalf("streamed batch content wrong: %+v", bresp)
	}

	// sanity: with streaming disabled the same flow does attach the index
	plain := New(Config{StreamBytes: -1})
	ph := plain.Handler()
	postRaw(ph, payload)
	postRaw(ph, payload)
	if st := plain.StatsSnapshot(); st.CacheBodyHits != 1 {
		t.Fatalf("unstreamed repeat missed the byte index: %+v", st)
	}
}

// ownedPayloads returns marshaled requests whose canonical keys the ring
// (over exactly {self, owner}) assigns to owner.
func ownedPayloads(t *testing.T, self, owner string, want int) [][]byte {
	t.Helper()
	r := ring.New([]string{self, owner}, 0)
	var out [][]byte
	for n := 8; n <= 120 && len(out) < want; n++ {
		req := Request{Graph: testbeds.LU(n, 10), Platform: platform.Paper(), Heuristic: "heft"}
		if _, err := req.normalize(); err != nil {
			t.Fatal(err)
		}
		if r.Owner(CanonicalSum(&req)) == owner {
			payload, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, payload)
		}
	}
	if len(out) < want {
		t.Fatalf("found %d of %d keys owned by the peer — placement hash changed?", len(out), want)
	}
	return out
}

// TestPeerFillSingleFetch pins the requester-side coalescing of fills: N
// concurrent identical cold requests for a peer-owned key must cost ONE
// owner fetch shared by every waiter — never N full-body transfers (run
// under -race in CI). The stub owner gates its reply until all followers
// are counted waiting, so the assertion is deterministic.
func TestPeerFillSingleFetch(t *testing.T) {
	self := "http://self.example:8642"
	var fills atomic.Int64
	gate := make(chan struct{})
	var canned atomic.Pointer[[]byte]
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fills.Add(1)
		<-gate
		w.Header().Set("Content-Type", "application/json")
		w.Write(*canned.Load())
	}))
	defer stub.Close()

	payload := ownedPayloads(t, self, stub.URL, 1)[0]
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		t.Fatal(err)
	}
	ref := New(Config{}).Run(&req)
	if ref.Error != "" {
		t.Fatalf("reference run failed: %+v", ref)
	}
	hit := ref
	hit.Cached = true
	enc, err := json.Marshal(hit)
	if err != nil {
		t.Fatal(err)
	}
	enc = append(enc, '\n')
	canned.Store(&enc)

	srv := New(Config{Self: self, Peers: []string{self, stub.URL}})
	handler := srv.Handler()
	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postRaw(handler, payload)
			if code == http.StatusOK {
				bodies[i] = body
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.StatsSnapshot().Coalesced != n-1 || fills.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fill never coalesced: %+v fills=%d", srv.StatsSnapshot(), fills.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("%d concurrent requests issued %d owner fetches, want 1", n, got)
	}
	st := srv.StatsSnapshot()
	if st.PeerHits != 1 || st.CacheMisses != 0 || st.Coalesced != n-1 {
		t.Fatalf("fill accounting off: %+v", st)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(bodies[i], enc) {
			t.Fatalf("caller %d did not receive the owner's bytes verbatim: %s", i, bodies[i])
		}
	}
}

// TestPeerFillHealthAttribution pins which fill outcomes may poison peer
// health: an owner 4xx is the request's fault — the requester computes
// locally and keeps forwarding future keys — while an owner 5xx marks the
// peer down for the cooldown.
func TestPeerFillHealthAttribution(t *testing.T) {
	self := "http://self.example:8642"
	for _, tc := range []struct {
		name       string
		status     int
		wantErrors int64
		wantSecond int64 // fills the stub must have seen after two requests
	}{
		{"4xx stays healthy", http.StatusBadRequest, 0, 2},
		{"5xx marks down", http.StatusInternalServerError, 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var fills atomic.Int64
			stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				fills.Add(1)
				w.WriteHeader(tc.status)
			}))
			defer stub.Close()
			payloads := ownedPayloads(t, self, stub.URL, 2)
			srv := New(Config{Self: self, Peers: []string{self, stub.URL}})
			handler := srv.Handler()

			for i, payload := range payloads {
				code, body := postRaw(handler, payload)
				if code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
					t.Fatalf("request %d did not degrade to local compute: %d %s", i, code, body)
				}
			}
			if got := fills.Load(); got != tc.wantSecond {
				t.Fatalf("owner saw %d fill attempts, want %d", got, tc.wantSecond)
			}
			st := srv.StatsSnapshot()
			if st.PeerErrors != tc.wantErrors || st.CacheMisses != 2 || st.PeerHits != 0 {
				t.Fatalf("health accounting off: %+v", st)
			}
		})
	}
}
