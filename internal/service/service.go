// Package service is the scheduling server: it turns the library's
// single-shot heuristics into a long-running, concurrent HTTP/JSON
// subsystem. A request carries a task graph, a platform, a heuristic name,
// a communication model and options; the server runs it on a bounded worker
// pool where each in-flight run borrows pooled probe scratch
// (heuristics.Scratch via sync.Pool), so steady-state requests stay
// near-zero-alloc in the scheduler core, and returns the validated
// schedule.
//
// Results are cached in an LRU keyed by a canonical content hash of
// (graph, platform, heuristic, model, options) — see CanonicalKey — so a
// repeated request is a cache hit that never re-enters the scheduler.
// Entries also carry the pre-encoded response bytes indexed by the SHA-256
// of the raw request body, so the repeat of an identical request is served
// as a hash + Write without any JSON work at all.
// Sweep-shaped payloads can be batched (POST /batch) through the same pool.
// The sharded sweep protocol built on top lives in the sweep subpackage.
//
// Overload is handled in front of the pool, not inside it. With admission
// control enabled (Config.Admission, schedserve -admission), every
// non-cache-hit run is cost-estimated (task count × a per-heuristic
// weight), classified (interactive / cheap / expensive / background) and
// admitted through internal/service/admit: per-tenant token-bucket and
// concurrency quotas (tenant = X-API-Key header, "default" otherwise),
// weighted-fair dequeue, a deadline-aware bounded queue, and a brownout
// ladder that sheds the lowest classes first as the queue deepens. A shed
// is always an immediate 503 with a numeric Retry-After derived from the
// measured queue drain rate — never a request that burned a pool slot —
// and cache hits and session deltas bypass admission entirely. GET
// /metrics exports the full stats surface in Prometheus text format.
//
// Endpoints: POST /schedule, POST /batch, GET /healthz, GET /stats,
// GET /metrics.
package service

import (
	"fmt"

	"oneport/internal/cli"
	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// Options tunes the heuristic of one request.
type Options struct {
	// B is ILHA's chunk size (0 lets ILHA pick the platform default).
	B int `json:"b,omitempty"`
	// ScanDepth is ILHA's Step-1 scan depth.
	ScanDepth int `json:"scan_depth,omitempty"`
	// ProbeParallelism overrides the server's per-run probe fan-out for
	// this request (0 keeps the server default; negative is rejected). The
	// server clamps it to max(its configured default, GOMAXPROCS), so one
	// request cannot demand arbitrary fan-out on a shared box. It never
	// changes the resulting schedule — parallel probing is deterministic —
	// so it is deliberately NOT part of the cache key.
	ProbeParallelism int `json:"probe_parallelism,omitempty"`
}

// Request is one scheduling job: everything needed to reproduce the
// schedule from scratch.
type Request struct {
	Graph     *graph.Graph       `json:"graph"`
	Platform  *platform.Platform `json:"platform"`
	Heuristic string             `json:"heuristic"`
	// Model names the communication model ("oneport", "macro", "uniport",
	// "nooverlap", "linkcontention"); empty means "oneport".
	Model   string  `json:"model,omitempty"`
	Options Options `json:"options,omitempty"`
}

// normalize validates the request's scalar fields and resolves defaults.
// It returns the parsed model; graph and platform content is validated by
// their JSON codecs and again by the scheduler.
func (r *Request) normalize() (sched.Model, error) {
	if r.Graph == nil || r.Graph.NumNodes() == 0 {
		return 0, fmt.Errorf("service: request has no graph")
	}
	if r.Platform == nil || r.Platform.NumProcs() == 0 {
		return 0, fmt.Errorf("service: request has no platform")
	}
	if r.Heuristic == "" {
		r.Heuristic = "heft"
	}
	if _, err := heuristics.ByName(r.Heuristic, heuristics.ILHAOptions{}); err != nil {
		return 0, err
	}
	if r.Model == "" {
		r.Model = "oneport"
	}
	model, err := cli.ParseModel(r.Model)
	if err != nil {
		return 0, err
	}
	// rewrite aliases ("macro-dataflow", "1port", ...) to the canonical
	// name so equivalent requests share one cache key
	r.Model = canonicalModelName(model)
	if r.Options.B < 0 {
		return 0, fmt.Errorf("service: B = %d must be non-negative", r.Options.B)
	}
	if r.Options.ScanDepth < 0 {
		return 0, fmt.Errorf("service: scan_depth = %d must be non-negative", r.Options.ScanDepth)
	}
	if r.Options.ProbeParallelism < 0 {
		return 0, fmt.Errorf("service: probe_parallelism = %d must be non-negative", r.Options.ProbeParallelism)
	}
	return model, nil
}

// canonicalModelName maps a parsed model back to the primary token
// cli.ParseModel accepts for it.
func canonicalModelName(m sched.Model) string { return cli.ModelName(m) }

// Response is the outcome of one scheduling job. For batch entries that
// failed, Error is set and every other field is zero.
type Response struct {
	// Key is the canonical cache key of the request (hex SHA-256).
	Key       string  `json:"key"`
	Heuristic string  `json:"heuristic"`
	Model     string  `json:"model"`
	Tasks     int     `json:"tasks"`
	Makespan  float64 `json:"makespan"`
	// Speedup is sequential-time-on-the-fastest-processor / makespan, the
	// paper's figure axis.
	Speedup float64 `json:"speedup"`
	Comms   int     `json:"comms"`
	// Cached reports that the schedule was served from the result cache.
	Cached bool `json:"cached"`
	// ElapsedNs is the scheduler time of the run that produced the
	// schedule (not the cache lookup).
	ElapsedNs int64           `json:"elapsed_ns"`
	Schedule  *sched.Schedule `json:"schedule,omitempty"`
	Error     string          `json:"error,omitempty"`

	// serverFault marks an Error as server-originated (a produced schedule
	// failing validation) rather than a bad request, so the HTTP layer can
	// answer 500 instead of 400.
	serverFault bool
	// timedOut marks an Error as a Config.RequestTimeout expiry, answered
	// 503 with a Retry-After header (load shedding, not a bad request).
	timedOut bool
	// relayStreamed marks a singleflight result whose leader streamed a
	// peer relay to its own client: there is nothing shareable, so
	// followers retry their flight (bounded by maxServeAttempts).
	relayStreamed bool
	// shed marks an Error as an admission-control refusal — answered 503
	// with retryAfter (whole seconds) in the Retry-After header, computed
	// from the queue's observed drain rate. A shed response never
	// consumed a pool slot.
	shed       bool
	retryAfter int
}

// Batch is the payload of POST /batch: independent requests executed
// concurrently on the worker pool, answered in input order.
type Batch struct {
	Requests []Request `json:"requests"`
}

// BatchResponse answers a Batch; Responses[i] matches Requests[i].
type BatchResponse struct {
	Responses []Response `json:"responses"`
}
