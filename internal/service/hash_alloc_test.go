package service

import (
	"testing"

	"oneport/internal/platform"
	"oneport/internal/testbeds"
)

// TestCanonicalSumSteadyStateAllocs pins that CanonicalSum allocates
// nothing once the pooled scratch has warmed up. The deferred keyPool.Put
// must hand back the grown buffers (not the empty scratch it borrowed),
// or every request re-grows the encoding buffer from scratch.
func TestCanonicalSumSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	req := Request{
		Graph:     testbeds.LU(6, 10),
		Platform:  platform.Paper(),
		Heuristic: "heft",
		Model:     "oneport",
	}
	if _, err := req.normalize(); err != nil {
		t.Fatal(err)
	}
	// warm the pool so the scratch buffers reach their steady-state size
	for i := 0; i < 4; i++ {
		CanonicalSum(&req)
	}
	if allocs := testing.AllocsPerRun(200, func() { CanonicalSum(&req) }); allocs > 0 {
		t.Fatalf("CanonicalSum allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
