// Package chaos is the fault-injection harness for the service's peer
// paths. An Injector holds a queue of Faults; wrapping a peer client's
// RoundTripper (Transport) or a replica's handler (Middleware) makes each
// intercepted request consume the next fault — a hang, a status burst, a
// torn body, slow-loris headers, or an arbitrary test hook (used to swap
// ring membership mid-request) — while an empty queue passes traffic
// through untouched.
//
// The package is imported only from _test files, so production binaries
// never link it: the serving path carries zero chaos cost. Faults are
// consumed in FIFO order, which keeps multi-step scenarios ("one 500,
// then recover") deterministic under -race.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what a Fault does to its request.
type Mode int

const (
	// Pass lets the request through untouched (useful to skip over
	// requests in a scripted sequence).
	Pass Mode = iota
	// Timeout hangs the request until its context expires (client side)
	// or the client gives up (server side): a black-holed peer.
	Timeout
	// Status answers with Fault.Status and an empty body without doing
	// any real work: a 5xx burst or a misbehaving proxy.
	Status
	// TornBody delivers the real response but cuts the body off after
	// Fault.Truncate bytes: a connection dying mid-transfer.
	TornBody
	// SlowHeaders stalls for Fault.Delay before letting the real request
	// proceed: a slow-loris peer that accepts but barely answers.
	SlowHeaders
	// Hook runs Fault.Do before letting the request through: the
	// injection point for mid-request state changes (e.g. a ring swap
	// between a relay's dispatch and its arrival).
	Hook
)

// Fault is one scripted failure.
type Fault struct {
	Mode     Mode
	Status   int           // Status mode: the synthesized status code
	Truncate int64         // TornBody: bytes delivered before the cut
	Delay    time.Duration // SlowHeaders: the stall
	Do       func()        // Hook: runs before the request proceeds
}

// ErrTorn is the read error a TornBody fault surfaces after the cut.
var ErrTorn = errors.New("chaos: torn body")

// Injector scripts faults for one interception point. Safe for concurrent
// use; the zero value is ready.
type Injector struct {
	mu    sync.Mutex
	queue []Fault

	intercepted atomic.Int64 // requests that consumed a fault
}

// Push appends faults to the script.
func (in *Injector) Push(faults ...Fault) {
	in.mu.Lock()
	in.queue = append(in.queue, faults...)
	in.mu.Unlock()
}

// Intercepted reports how many requests consumed a fault.
func (in *Injector) Intercepted() int64 { return in.intercepted.Load() }

// next pops the script head; ok=false means pass through.
func (in *Injector) next() (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.queue) == 0 {
		return Fault{}, false
	}
	f := in.queue[0]
	in.queue = in.queue[1:]
	in.intercepted.Add(1)
	return f, true
}

// Transport wraps a client-side RoundTripper: each request consumes the
// next fault. base nil uses http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, ok := t.in.next()
	if !ok {
		return t.base.RoundTrip(req)
	}
	switch f.Mode {
	case Timeout:
		<-req.Context().Done()
		return nil, fmt.Errorf("chaos: black-holed: %w", req.Context().Err())
	case Status:
		return &http.Response{
			StatusCode: f.Status,
			Status:     http.StatusText(f.Status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    http.NoBody,
			Request: req,
		}, nil
	case TornBody:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &tornBody{rc: resp.Body, left: f.Truncate}
		return resp, nil
	case SlowHeaders:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case Hook:
		if f.Do != nil {
			f.Do()
		}
		return t.base.RoundTrip(req)
	default: // Pass
		return t.base.RoundTrip(req)
	}
}

// tornBody delivers left bytes of the real body, then fails every read.
type tornBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, ErrTorn
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	if err == io.EOF && b.left > 0 {
		return n, io.EOF // real body ended before the cut: pass EOF through
	}
	if b.left <= 0 {
		// swallow any real error; the next Read reports the tear
		return n, nil
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }

// Middleware wraps a server-side handler: each request consumes the next
// fault before (or instead of) reaching next.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := in.next()
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		switch f.Mode {
		case Timeout:
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case Status:
			w.WriteHeader(f.Status)
		case TornBody:
			next.ServeHTTP(&tornWriter{w: w, left: f.Truncate}, r)
		case SlowHeaders:
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		case Hook:
			if f.Do != nil {
				f.Do()
			}
			next.ServeHTTP(w, r)
		default: // Pass
			next.ServeHTTP(w, r)
		}
	})
}

// tornWriter passes left bytes through, then aborts the connection so the
// client sees a broken transfer, never a truncated-but-framed body.
type tornWriter struct {
	w    http.ResponseWriter
	left int64
}

func (t *tornWriter) Header() http.Header { return t.w.Header() }

func (t *tornWriter) WriteHeader(status int) { t.w.WriteHeader(status) }

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) > t.left {
		n, _ := t.w.Write(p[:t.left])
		t.left = 0
		_ = n
		panic(http.ErrAbortHandler)
	}
	n, err := t.w.Write(p)
	t.left -= int64(n)
	return n, err
}
