package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// handleMetrics serves the full Stats surface in Prometheus text
// exposition format (version 0.0.4): every numeric field of the /stats
// JSON, flattened to metric names under the sched_ prefix with nested
// blocks joined by '_' (admission.queue_depth becomes
// sched_admission_queue_depth). The flattening is driven by the JSON
// encoding of Stats itself, so a counter added to /stats appears here
// without a second registration site — fleets can autoscale on queue
// depth and hit rate without a JSON-scraping sidecar.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.StatsSnapshot()
	raw, err := json.Marshal(&st)
	if err != nil {
		http.Error(w, "metrics: stats not serializable", http.StatusInternalServerError)
		return
	}
	var tree map[string]any
	if err := json.Unmarshal(raw, &tree); err != nil {
		http.Error(w, "metrics: stats not decodable", http.StatusInternalServerError)
		return
	}
	var b strings.Builder
	writeMetricTree(&b, "sched", tree)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// writeMetricTree flattens one decoded JSON object into exposition lines,
// keys sorted so scrapes are byte-stable across requests. Every metric is
// declared a gauge: monotone counters are gauges that happen to only
// grow, and one uniform type keeps the exporter registration-free.
func writeMetricTree(b *strings.Builder, prefix string, obj map[string]any) {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := prefix + "_" + k
		switch v := obj[k].(type) {
		case map[string]any:
			writeMetricTree(b, name, v)
		case float64:
			fmt.Fprintf(b, "# TYPE %s gauge\n%s %s\n", name, name, strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			n := 0
			if v {
				n = 1
			}
			fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", name, name, n)
		}
	}
}
