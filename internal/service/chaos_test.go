package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"oneport/internal/service/breaker"
	"oneport/internal/service/chaos"
)

// replicaPair builds two live replicas A and B (epoch 1, members {A,B}),
// with B's serving surface wrapped in the given chaos middleware and A's
// peer client in the given chaos transport (nil injectors leave a side
// untouched). Returns the servers and their base URLs.
func replicaPair(t *testing.T, serverSide, clientSide *chaos.Injector, tweak func(*Config)) (a, b *Server, aURL, bURL string) {
	t.Helper()
	var sA, sB atomic.Pointer[Server]
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sA.Load().Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(tsA.Close)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sB.Load().Handler().ServeHTTP(w, r)
	})
	var outer http.Handler = inner
	if serverSide != nil {
		outer = serverSide.Middleware(inner)
	}
	tsB := httptest.NewServer(outer)
	t.Cleanup(tsB.Close)

	members := []string{tsA.URL, tsB.URL}
	cfgA := Config{Self: tsA.URL, Peers: members}
	cfgB := Config{Self: tsB.URL, Peers: members}
	if clientSide != nil {
		cfgA.PeerClient = &http.Client{Transport: clientSide.Transport(nil), Timeout: 30 * time.Second}
	}
	if tweak != nil {
		tweak(&cfgA)
		tweak(&cfgB)
	}
	sA.Store(New(cfgA))
	sB.Store(New(cfgB))
	return sA.Load(), sB.Load(), tsA.URL, tsB.URL
}

// postURL posts a payload to a live replica over real HTTP.
func postURL(t *testing.T, url string, payload []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// pushRing posts a membership epoch to a replica's admin endpoint.
func pushRing(t *testing.T, url, token string, epoch uint64, members []string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"epoch": epoch, "members": members})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/ring", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRingEpochSwapMidFlight is the no-split-brain pin: a relay routed
// under one membership epoch must never be served under another. The
// chaos hook swaps the owner's ring to epoch 2 after the requester has
// already routed (and tagged) its fill at epoch 1 — the owner rejects the
// cross-epoch relay, the requester degrades to a local compute with a
// byte-identical response, nobody's breaker trips, and once the new epoch
// reaches the requester too, fills flow again.
func TestRingEpochSwapMidFlight(t *testing.T) {
	inj := &chaos.Injector{}
	srvA, srvB, aURL, bURL := replicaPair(t, inj, nil, func(c *Config) { c.AdminToken = "sekrit" })
	members := []string{aURL, bURL}

	// the swap fires on B between A's epoch-1 routing and B's serving
	inj.Push(chaos.Fault{Mode: chaos.Hook, Do: func() {
		if _, _, err := srvB.peers.swap(2, members); err != nil {
			t.Errorf("mid-flight swap failed: %v", err)
		}
	}})

	payloads := ownedPayloads(t, aURL, bURL, 2)
	ref := New(Config{})
	refH := ref.Handler()
	_, want := postRaw(refH, payloads[0])

	code, body := postURL(t, aURL, payloads[0])
	if code != http.StatusOK {
		t.Fatalf("request across the swap answered %d: %s", code, body)
	}
	if !bytes.Equal(normElapsed(t, body), normElapsed(t, want)) {
		t.Fatal("cross-epoch degradation served a different schedule than single-replica compute")
	}
	stA, stB := srvA.StatsSnapshot(), srvB.StatsSnapshot()
	if stA.PeerEpochSkew != 1 || stA.PeerErrors != 0 || stA.CacheMisses != 1 {
		t.Fatalf("requester skew accounting off: %+v", stA)
	}
	if stA.BreakersOpen != 0 || stA.BreakerOpens != 0 {
		t.Fatalf("epoch skew tripped a breaker: %+v", stA)
	}
	if stB.PeerEpochSkew != 1 || stB.RingEpoch != 2 || stB.RingSwaps != 1 || stB.PeerFills != 0 {
		t.Fatalf("owner skew accounting off: %+v", stB)
	}

	// the admin push reaches A: same members, epoch 2 — fills flow again
	if code, body := pushRing(t, aURL, "sekrit", 2, members); code != http.StatusOK {
		t.Fatalf("epoch push to requester answered %d: %s", code, body)
	}
	_, want2 := postRaw(refH, payloads[1])
	code, body = postURL(t, aURL, payloads[1])
	if code != http.StatusOK || !bytes.Equal(normElapsed(t, body), normElapsed(t, want2)) {
		t.Fatalf("post-swap fill wrong: %d %s", code, body)
	}
	stA = srvA.StatsSnapshot()
	if stA.PeerHits != 1 || stA.RingEpoch != 2 || stA.RingSwaps != 1 {
		t.Fatalf("post-swap fill accounting off: %+v", stA)
	}
}

// TestBreakerHalfOpenRecovery drives one peer through the full breaker
// cycle at the service level: a chaos-injected 500 opens it (one failed
// round-trip), requests inside the backoff window fast-fail without
// touching the wire, and the first request past the window is the single
// half-open probe — which, finding the peer healthy again, closes the
// breaker and resumes fills.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	inj := &chaos.Injector{}
	const window = 500 * time.Millisecond
	srvA, srvB, aURL, bURL := replicaPair(t, nil, inj, func(c *Config) {
		c.Breaker = breaker.Config{BaseDelay: window, MaxDelay: window, Jitter: -1}
	})
	payloads := ownedPayloads(t, aURL, bURL, 3)

	// 1: the synthesized 500 opens the breaker; the request degrades locally
	inj.Push(chaos.Fault{Mode: chaos.Status, Status: http.StatusInternalServerError})
	if code, body := postURL(t, aURL, payloads[0]); code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
		t.Fatalf("request during 500 burst: %d %s", code, body)
	}
	st := srvA.StatsSnapshot()
	if st.PeerErrors != 1 || st.BreakerOpens != 1 || st.BreakersOpen != 1 {
		t.Fatalf("5xx did not open the breaker: %+v", st)
	}

	// 2: inside the window the fill fast-fails — the wire is never touched
	if code, _ := postURL(t, aURL, payloads[1]); code != http.StatusOK {
		t.Fatalf("request during open window answered %d", code)
	}
	st = srvA.StatsSnapshot()
	if st.BreakerTrips == 0 || st.PeerErrors != 1 {
		t.Fatalf("open breaker did not fast-fail: %+v", st)
	}
	if got := srvB.StatsSnapshot().PeerFills; got != 0 {
		t.Fatalf("owner saw %d fills while the breaker was open, want 0", got)
	}

	// 3: past the window, the half-open probe reaches the healthy owner
	// (the chaos queue is drained) and recovery is immediate
	time.Sleep(window + 200*time.Millisecond)
	code, body := postURL(t, aURL, payloads[2])
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
		t.Fatalf("half-open probe request: %d %s", code, body)
	}
	st = srvA.StatsSnapshot()
	if st.PeerHits != 1 || st.BreakersOpen != 0 || st.BreakerOpens != 1 {
		t.Fatalf("probe did not close the breaker: %+v", st)
	}
	if got := srvB.StatsSnapshot().PeerFills; got != 1 {
		t.Fatalf("owner served %d fills after recovery, want 1", got)
	}
}

// TestTornPeerBodyNeverCached is the cache-integrity pin under torn
// transfers: a fill whose body dies mid-read must never leave truncated
// bytes anywhere — not in the served response, not in the result cache,
// not in the encoded byte index. The requester degrades to local compute
// and every response (first and repeat) is complete and byte-identical to
// the single-replica answer.
func TestTornPeerBodyNeverCached(t *testing.T) {
	inj := &chaos.Injector{}
	srvA, _, aURL, bURL := replicaPair(t, nil, inj, nil)
	payload := ownedPayloads(t, aURL, bURL, 1)[0]

	ref := New(Config{})
	refH := ref.Handler()
	_, want := postRaw(refH, payload)
	_, wantRepeat := postRaw(refH, payload)

	inj.Push(chaos.Fault{Mode: chaos.TornBody, Truncate: 16})
	code, body := postURL(t, aURL, payload)
	if code != http.StatusOK {
		t.Fatalf("request over torn fill answered %d: %s", code, body)
	}
	if !bytes.Equal(normElapsed(t, body), normElapsed(t, want)) {
		t.Fatal("torn fill leaked into the served response")
	}
	st := srvA.StatsSnapshot()
	if st.PeerErrors != 1 || st.PeerHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("torn-body accounting off: %+v", st)
	}
	if inj.Intercepted() != 1 {
		t.Fatalf("chaos intercepted %d requests, want 1", inj.Intercepted())
	}

	// the repeat must come from the local cache, complete and identical —
	// never a truncated adoption
	code, body = postURL(t, aURL, payload)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"cached":true`)) {
		t.Fatalf("repeat after torn fill not served locally: %d %s", code, body)
	}
	if !bytes.Equal(normElapsed(t, body), normElapsed(t, wantRepeat)) {
		t.Fatal("repeat after torn fill differs from the single-replica cache hit")
	}
}

// TestClientCancelNeverTripsBreaker: a fill aborted because OUR client
// hung up proves nothing about the peer — the breaker must stay closed
// (the half-open probe slot released without a verdict) and the very next
// request must try the peer again.
func TestClientCancelNeverTripsBreaker(t *testing.T) {
	release := make(chan struct{})
	var fills atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fills.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusNotFound) // after release: a 4xx, also breaker-neutral
	}))
	defer stub.Close()

	self := "http://self.example:8642"
	srv := New(Config{Self: self, Peers: []string{self, stub.URL}})
	var sp atomic.Pointer[Server]
	sp.Store(srv)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	payloads := ownedPayloads(t, self, stub.URL, 2)

	// first request: the client gives up while the owner is still "thinking"
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/schedule", bytes.NewReader(payloads[0]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("canceled client request unexpectedly completed")
	}
	close(release)

	// the abandoned handler finishes its local compute in the background;
	// wait for the fill attempt count to settle
	deadline := time.Now().Add(5 * time.Second)
	for fills.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never saw the first fill")
		}
		time.Sleep(time.Millisecond)
	}

	// second request: the breaker must still be closed, so the owner is
	// asked again (and its 4xx still does not trip anything)
	code, body := postURL(t, ts.URL, payloads[1])
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"schedule"`)) {
		t.Fatalf("request after client cancel: %d %s", code, body)
	}
	deadline = time.Now().Add(5 * time.Second)
	for fills.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("owner saw %d fills, want 2 — the cancel tripped the breaker", fills.Load())
		}
		time.Sleep(time.Millisecond)
	}
	st := srv.StatsSnapshot()
	if st.BreakerOpens != 0 || st.BreakerTrips != 0 || st.PeerErrors != 0 {
		t.Fatalf("client cancel poisoned peer health: %+v", st)
	}
}

// TestRingAdminAuth pins the admin surface's gate: disabled without a
// token, constant-time bearer auth with one, monotonic epochs, idempotent
// replays, and conflict rejection.
func TestRingAdminAuth(t *testing.T) {
	members := []string{"http://a.example:1", "http://b.example:2"}

	// no token configured: the surface is disabled, not open
	bare := New(Config{Self: members[0], Peers: members})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	if code, _ := pushRing(t, tsBare.URL, "anything", 2, members); code != http.StatusForbidden {
		t.Fatalf("tokenless replica accepted an admin push: %d", code)
	}

	srv := New(Config{Self: members[0], Peers: members, AdminToken: "sekrit"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := pushRing(t, ts.URL, "", 2, members); code != http.StatusUnauthorized {
		t.Fatalf("missing token accepted: %d", code)
	}
	if code, _ := pushRing(t, ts.URL, "wrong", 2, members); code != http.StatusUnauthorized {
		t.Fatalf("wrong token accepted: %d", code)
	}

	// valid push: epoch 2 installs
	code, body := pushRing(t, ts.URL, "sekrit", 2, members)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"swapped":true`)) {
		t.Fatalf("valid push rejected: %d %s", code, body)
	}
	// idempotent replay: same epoch, same members — accepted, not a swap
	code, body = pushRing(t, ts.URL, "sekrit", 2, members)
	if code != http.StatusOK || bytes.Contains(body, []byte(`"swapped":true`)) {
		t.Fatalf("idempotent replay mishandled: %d %s", code, body)
	}
	// stale epoch and conflicting membership both 409
	if code, _ := pushRing(t, ts.URL, "sekrit", 1, members); code != http.StatusConflict {
		t.Fatalf("stale epoch accepted: %d", code)
	}
	if code, _ := pushRing(t, ts.URL, "sekrit", 2, members[:1]); code != http.StatusConflict {
		t.Fatalf("conflicting membership for the current epoch accepted: %d", code)
	}
	// malformed: epoch 0, empty members
	if code, _ := pushRing(t, ts.URL, "sekrit", 0, members); code != http.StatusBadRequest {
		t.Fatalf("epoch 0 accepted: %d", code)
	}
	if code, _ := pushRing(t, ts.URL, "sekrit", 3, nil); code != http.StatusBadRequest {
		t.Fatalf("empty membership accepted: %d", code)
	}

	st := srv.StatsSnapshot()
	if st.RingEpoch != 2 || st.RingSwaps != 1 {
		t.Fatalf("admin sequence left wrong ring state: %+v", st)
	}

	// GET /ring is admin-gated too and reports the installed epoch
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/ring", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET /ring answered %d", resp.StatusCode)
	}
	req.Header.Set("Authorization", "Bearer sekrit")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Epoch   uint64   `json:"epoch"`
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Epoch != 2 || len(info.Members) != 2 {
		t.Fatalf("GET /ring reported %+v", info)
	}
}

// TestRequestTimeout pins the per-request compute deadline: a run that
// exceeds Config.RequestTimeout is aborted at its next task commit and
// answered 503 with a Retry-After header, counted in Stats.Timeouts — and
// nothing of the aborted run is cached.
func TestRequestTimeout(t *testing.T) {
	srv := New(Config{RequestTimeout: time.Millisecond})
	srv.testHook = func(*Request) { time.Sleep(20 * time.Millisecond) } // outlive the deadline before the run starts
	handler := srv.Handler()
	payload := luPayload(t, 12)

	req := httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out run answered %d, want 503: %s", rec.Code, rec.Body.Bytes())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After")
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("timeout body malformed (%v): %s", err, rec.Body.Bytes())
	}
	st := srv.StatsSnapshot()
	if st.Timeouts != 1 || st.Errors != 1 {
		t.Fatalf("timeout accounting off: %+v", st)
	}

	// nothing cached: the retry (hook removed) computes cleanly from cold
	srv.testHook = nil
	code, body := postRaw(handler, payload)
	if code != http.StatusOK || bytes.Contains(body, []byte(`"cached":true`)) {
		t.Fatalf("retry after timeout: %d %s", code, body)
	}
	if st := srv.StatsSnapshot(); st.Timeouts != 1 || st.CacheMisses != 2 {
		t.Fatalf("retry accounting off: %+v", st)
	}

	// a generous deadline never fires
	calm := New(Config{RequestTimeout: time.Hour})
	if code, body := postRaw(calm.Handler(), payload); code != http.StatusOK {
		t.Fatalf("generous deadline aborted the run: %d %s", code, body)
	}
}

// TestStreamedPeerRelay pins the end-to-end streaming relay: when the
// owner streams its encode (stream mark set), the requester pipes the
// bytes straight through to its client — no staging, no adoption — and
// repeats relay again rather than serving a truncated or stale copy.
func TestStreamedPeerRelay(t *testing.T) {
	srvA, srvB, aURL, bURL := replicaPair(t, nil, nil, func(c *Config) { c.StreamBytes = 1 })
	payload := ownedPayloads(t, aURL, bURL, 1)[0]

	ref := New(Config{StreamBytes: 1})
	refH := ref.Handler()
	_, want := postRaw(refH, payload)

	code, body := postURL(t, aURL, payload)
	if code != http.StatusOK {
		t.Fatalf("streamed relay answered %d: %s", code, body)
	}
	if !bytes.Equal(normElapsed(t, body), normElapsed(t, want)) {
		t.Fatal("streamed relay differs from single-replica output")
	}
	stA, stB := srvA.StatsSnapshot(), srvB.StatsSnapshot()
	if stA.PeerHits != 1 || stA.CacheMisses != 0 || stA.CacheLen != 0 {
		t.Fatalf("streamed relay accounting off (requester must not stage or adopt): %+v", stA)
	}
	if stB.PeerFills != 1 || stB.CacheMisses != 1 {
		t.Fatalf("owner fill accounting off: %+v", stB)
	}

	// the repeat relays again: the owner serves its canonical cache hit as
	// a fresh stream, and the requester still stages nothing
	_, wantRepeat := postRaw(refH, payload)
	code, body = postURL(t, aURL, payload)
	if code != http.StatusOK || !bytes.Equal(normElapsed(t, body), normElapsed(t, wantRepeat)) {
		t.Fatalf("repeated streamed relay wrong: %d %s", code, body)
	}
	stA = srvA.StatsSnapshot()
	if stA.PeerHits != 2 || stA.CacheLen != 0 {
		t.Fatalf("repeat relay accounting off: %+v", stA)
	}
	if fmt.Sprintf("%d", srvB.StatsSnapshot().CacheHits) == "0" {
		t.Fatal("owner recomputed instead of serving its cache")
	}
}
