package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"oneport/internal/platform"
	"oneport/internal/service/admit"
	"oneport/internal/testbeds"
)

// postKey is post with a tenant API key header.
func postKey(t *testing.T, ts *httptest.Server, path, key string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if key != "" {
		hreq.Header.Set(apiKeyHeader, key)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// waitAdmit polls the admission stats until cond holds.
func waitAdmit(t *testing.T, srv *Server, what string, cond func(admit.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := srv.StatsSnapshot().Admission; st != nil && cond(*st) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission state never reached %q: %+v", what, srv.StatsSnapshot().Admission)
}

// expensiveReq builds a distinct cold request that classifies Expensive:
// DLS (weight 8) on an LU graph big enough to cross the cost threshold,
// with i varying the size so concurrent requests never coalesce.
func expensiveReq(t *testing.T, i int) Request {
	t.Helper()
	size := 25 + i
	req := Request{Graph: testbeds.LU(size, 10), Platform: platform.Paper(), Heuristic: "dls"}
	if class, cost := classifyRequest(&req); class != admit.Expensive {
		t.Fatalf("LU(%d)+dls classed %v (cost %v), want Expensive", size, class, cost)
	}
	return req
}

// checkShed asserts one response is a proper shed: 503, a numeric
// Retry-After of at least one second, and a shed-describing error body.
func checkShed(t *testing.T, hr *http.Response, body []byte) {
	t.Helper()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d: %s", hr.StatusCode, body)
	}
	secs, err := strconv.Atoi(hr.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("shed Retry-After %q not a positive integer", hr.Header.Get("Retry-After"))
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil || !strings.Contains(resp.Error, "shed") {
		t.Fatalf("shed body: %s", body)
	}
}

func TestEstimateCostAndClassify(t *testing.T) {
	lu := testbeds.LU(12, 10)
	n := float64(lu.NumNodes())
	cases := []struct {
		heuristic string
		wantCost  float64
	}{
		{"heft", n},
		{"dls", 8 * n},
		{"ilha", 3 * n},
		{"roundrobin", 0.5 * n},
		{"", n}, // unnormalized default weighs like HEFT
	}
	for _, tc := range cases {
		req := Request{Graph: lu, Platform: platform.Paper(), Heuristic: tc.heuristic}
		if got := estimateCost(&req); got != tc.wantCost {
			t.Errorf("estimateCost(%q) = %v, want %v", tc.heuristic, got, tc.wantCost)
		}
	}
	// the class boundary: cost >= expensiveCost is Expensive
	cheap := Request{Graph: lu, Platform: platform.Paper(), Heuristic: "heft"}
	if class, _ := classifyRequest(&cheap); class != admit.Cheap {
		t.Errorf("small HEFT classed %v, want Cheap", class)
	}
	exp := expensiveReq(t, 0)
	if class, cost := classifyRequest(&exp); class != admit.Expensive || cost < expensiveCost {
		t.Errorf("big DLS classed %v (cost %v)", class, cost)
	}
}

// TestStatsWithoutAdmission pins that a server without admission exposes
// no admission block and keeps the pre-admission serving behavior.
func TestStatsWithoutAdmission(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	req := Request{Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft"}
	if hr, body := post(t, ts, "/schedule", req); hr.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", hr.StatusCode, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"admission"`) {
		t.Fatalf("/stats leaks an admission block with admission disabled: %s", buf.String())
	}
}

// TestAdmissionOverloadBrownout is the overload chaos drill (run under
// -race in CI): a burst of expensive cold runs saturates the two slots and
// the queue, climbing the brownout ladder. While saturated, cache hits and
// session deltas keep serving, every shed is a 503 with a computed
// Retry-After, batch jobs (Background) shed first, and no request that
// acquired a slot is ever shed. After the burst drains, the ladder steps
// back to level 0 with every slot returned.
func TestAdmissionOverloadBrownout(t *testing.T) {
	srv := New(Config{
		PoolSize: 2,
		Admission: &admit.Config{
			MaxQueue:         8,
			ShedBackgroundAt: 1,
			ShedExpensiveAt:  2,
			ShedCheapAt:      8,
			QueueBudget:      -1, // this test drives the ladder, not the budget
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// pre-overload: a cached entry and an open session to serve through the brownout
	warm := Request{Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft"}
	if hr, body := post(t, ts, "/schedule", warm); hr.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d %s", hr.StatusCode, body)
	}
	sess := openSession(t, ts, Request{Graph: testbeds.LU(11, 10), Platform: platform.Paper(), Heuristic: "heft"})

	gate := make(chan struct{})
	srv.testHook = func(*Request) { <-gate }

	type result struct {
		hr   *http.Response
		body []byte
	}
	var wg sync.WaitGroup
	results := make([]result, 4)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hr, body := post(t, ts, "/schedule", expensiveReq(t, i))
			results[i] = result{hr, body}
		}()
	}
	// two fill the slots, two queue (level 2: Expensive sheds from here)
	launch(0)
	launch(1)
	waitAdmit(t, srv, "both slots held", func(st admit.Stats) bool { return st.InService == 2 })
	launch(2)
	launch(3)
	waitAdmit(t, srv, "two queued", func(st admit.Stats) bool {
		return st.QueueDepth == 2 && st.BrownoutLevel == 2
	})

	// late expensive arrivals shed — before any slot is touched
	for i := 4; i < 7; i++ {
		hr, body := post(t, ts, "/schedule", expensiveReq(t, i))
		checkShed(t, hr, body)
	}
	// batch jobs are Background: shed at level >= 1, reported per job
	hrB, bodyB := post(t, ts, "/batch", Batch{Requests: []Request{
		{Graph: testbeds.LU(13, 10), Platform: platform.Paper(), Heuristic: "heft"},
	}})
	if hrB.StatusCode != http.StatusOK {
		t.Fatalf("batch envelope: %d %s", hrB.StatusCode, bodyB)
	}
	var batch BatchResponse
	if err := json.Unmarshal(bodyB, &batch); err != nil || len(batch.Responses) != 1 {
		t.Fatalf("batch body: %s", bodyB)
	}
	if !strings.Contains(batch.Responses[0].Error, "shed") {
		t.Fatalf("batch job not shed under brownout: %+v", batch.Responses[0])
	}
	// cache hits never queue: the warm entry answers instantly through the brownout
	began := time.Now()
	hrC, bodyC := post(t, ts, "/schedule", warm)
	if hrC.StatusCode != http.StatusOK {
		t.Fatalf("cached hit under brownout: %d %s", hrC.StatusCode, bodyC)
	}
	var cached Response
	if err := json.Unmarshal(bodyC, &cached); err != nil || !cached.Cached {
		t.Fatalf("warm request not a cache hit under brownout: %s", bodyC)
	}
	if d := time.Since(began); d > 2*time.Second {
		t.Fatalf("cache hit took %v under brownout", d)
	}
	// session deltas on the open session always serve
	hrD, bodyD := doJSON(t, ts, http.MethodPost, "/session/"+sess.SessionID+"/delta",
		[]byte(`{"graph":[{"op":"add_task","weight":1}]}`))
	if hrD.StatusCode != http.StatusOK {
		t.Fatalf("session delta under brownout: %d %s", hrD.StatusCode, bodyD)
	}

	close(gate)
	wg.Wait()
	for i, r := range results {
		if r.hr.StatusCode != http.StatusOK {
			t.Fatalf("admitted request %d answered %d: %s", i, r.hr.StatusCode, r.body)
		}
		var resp Response
		if err := json.Unmarshal(r.body, &resp); err != nil || resp.Error != "" || resp.Schedule == nil {
			t.Fatalf("admitted request %d: %s", i, r.body)
		}
	}

	waitAdmit(t, srv, "drained", func(st admit.Stats) bool { return st.InService == 0 })
	st := srv.StatsSnapshot()
	a := st.Admission
	if a.AdmittedExpensive != 4 || a.ShedExpensive != 3 || a.ShedBackground != 1 {
		t.Fatalf("class accounting: %+v", a)
	}
	if a.ShedBrownout != 4 || a.QueueDepth != 0 || a.BrownoutLevel != 0 {
		t.Fatalf("ladder accounting: %+v", a)
	}
	if a.AdmittedInteractive < 1 {
		t.Fatal("session-delta bypass not counted")
	}
	if st.Shed != 4 {
		t.Fatalf("Stats.Shed = %d, want 4", st.Shed)
	}
	// the slots survived the storm: a fresh cold run is admitted immediately
	srv.testHook = nil
	if hr, body := post(t, ts, "/schedule", expensiveReq(t, 9)); hr.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request: %d %s", hr.StatusCode, body)
	}
}

// TestTenantQuotaExhaustionHTTP: a metered tenant burns its burst and is
// rate-shed, while the default tenant keeps serving — per-tenant isolation
// over the wire, keyed by the API header.
func TestTenantQuotaExhaustionHTTP(t *testing.T) {
	first := Request{Graph: testbeds.LU(14, 10), Platform: platform.Paper(), Heuristic: "heft"}
	second := Request{Graph: testbeds.LU(15, 10), Platform: platform.Paper(), Heuristic: "heft"}
	burst := estimateCost(&first)
	srv := New(Config{
		PoolSize: 2,
		Admission: &admit.Config{
			Quotas: map[string]admit.Quota{"metered": {Rate: 0.001, Burst: burst}},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if hr, body := postKey(t, ts, "/schedule", "metered", first); hr.StatusCode != http.StatusOK {
		t.Fatalf("within-burst request: %d %s", hr.StatusCode, body)
	}
	hr, body := postKey(t, ts, "/schedule", "metered", second)
	checkShed(t, hr, body)
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil || !strings.Contains(resp.Error, "rate") {
		t.Fatalf("rate shed body: %s", body)
	}
	// the default tenant is not in the metered bucket
	if hr, body := post(t, ts, "/schedule", second); hr.StatusCode != http.StatusOK {
		t.Fatalf("default tenant blocked by another tenant's quota: %d %s", hr.StatusCode, body)
	}
	a := srv.StatsSnapshot().Admission
	if a.ShedRate != 1 || a.Tenants < 2 {
		t.Fatalf("tenant accounting: %+v", a)
	}
}

// TestClientDisconnectLeavesQueue (run under -race in CI): a client that
// hangs up while its request is queued leaves the queue without consuming
// a slot, and the slot later goes to a live request.
func TestClientDisconnectLeavesQueue(t *testing.T) {
	srv := New(Config{
		PoolSize: 1,
		Admission: &admit.Config{
			MaxQueue: 8, ShedBackgroundAt: 8, ShedExpensiveAt: 8, ShedCheapAt: 8,
			QueueBudget: -1,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	srv.testHook = func(*Request) { <-gate }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if hr, body := post(t, ts, "/schedule", expensiveReq(t, 0)); hr.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("slot holder answered %d: %s", hr.StatusCode, body))
		}
	}()
	waitAdmit(t, srv, "slot held", func(st admit.Stats) bool { return st.InService == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	data, err := json.Marshal(expensiveReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/schedule", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()
	waitAdmit(t, srv, "one queued", func(st admit.Stats) bool { return st.QueueDepth == 1 })
	cancel()
	if err := <-clientDone; err == nil {
		t.Fatal("canceled client got a response")
	}
	waitAdmit(t, srv, "queue abandoned", func(st admit.Stats) bool {
		return st.Canceled == 1 && st.QueueDepth == 0
	})

	close(gate)
	wg.Wait()
	srv.testHook = nil
	// the abandoned waiter did not leak the slot
	if hr, body := post(t, ts, "/schedule", expensiveReq(t, 2)); hr.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: %d %s", hr.StatusCode, body)
	}
	waitAdmit(t, srv, "all slots free", func(st admit.Stats) bool { return st.InService == 0 })
}

// TestMetricsEndpoint pins the Prometheus exporter: the full Stats surface
// flattened under sched_, admission block included, stable content type.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{Admission: &admit.Config{}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := Request{Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft"}
	if hr, body := post(t, ts, "/schedule", req); hr.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", hr.StatusCode, body)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE sched_requests gauge\nsched_requests 1\n",
		"sched_cache_misses 1\n",
		"sched_admission_queue_depth 0\n",
		"sched_admission_admitted_cheap 1\n",
		"sched_admission_brownout_level 0\n",
		"sched_pool_size ",
		"sched_shed 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
