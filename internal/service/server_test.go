package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestScheduleMatchesLibrary pins the service's core contract: the schedule
// coming back over HTTP is byte-identical (as JSON) to a direct library
// call, and the repeat request is served from the cache.
func TestScheduleMatchesLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	pl := platform.Paper()
	g := testbeds.LU(12, 10)
	req := Request{Graph: g, Platform: pl, Heuristic: "ilha", Model: "oneport", Options: Options{B: 4}}

	want, err := heuristics.ILHA(g, pl, sched.OnePort, heuristics.ILHAOptions{B: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	hr, body := post(t, ts, "/schedule", req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var got Response
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Error != "" || got.Cached {
		t.Fatalf("first response: %+v", got)
	}
	gotJSON, err := json.Marshal(got.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("service schedule differs from library:\n %s\nvs %s", gotJSON, wantJSON)
	}
	if got.Makespan != want.Makespan() || got.Comms != want.CommCount() {
		t.Fatalf("summary fields differ: %+v", got)
	}

	// repeat request: a cache hit with the same schedule bytes
	hr2, body2 := post(t, ts, "/schedule", req)
	if hr2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr2.StatusCode, body2)
	}
	var again Response
	if err := json.Unmarshal(body2, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat request was not a cache hit")
	}
	againJSON, err := json.Marshal(again.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(againJSON, wantJSON) {
		t.Fatal("cached schedule differs from library schedule")
	}
}

// TestConcurrentRequestsByteIdentical floods the server with concurrent
// heterogeneous requests (run under -race in CI): every response must equal
// the direct library result regardless of interleaving, cache state or
// scratch reuse.
func TestConcurrentRequestsByteIdentical(t *testing.T) {
	srv := New(Config{PoolSize: 4, ProbeParallelism: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pl := platform.Paper()
	type variant struct {
		req  Request
		want []byte
	}
	var variants []variant
	for _, v := range []struct {
		heuristic string
		size      int
		b         int
	}{
		{"heft", 10, 0}, {"heft", 14, 0}, {"ilha", 10, 4}, {"ilha", 14, 7}, {"cpop", 12, 0}, {"dls", 12, 0},
	} {
		g := testbeds.LU(v.size, 10)
		fn, err := heuristics.ByName(v.heuristic, heuristics.ILHAOptions{B: v.b})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fn(g, pl, sched.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		variants = append(variants, variant{
			req:  Request{Graph: g, Platform: pl, Heuristic: v.heuristic, Options: Options{B: v.b}},
			want: wj,
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := variants[i%len(variants)]
			_, body := post(t, ts, "/schedule", v.req)
			var resp Response
			if err := json.Unmarshal(body, &resp); err != nil {
				errs <- err
				return
			}
			if resp.Error != "" {
				errs <- fmt.Errorf("worker %d: %s", i, resp.Error)
				return
			}
			gj, err := json.Marshal(resp.Schedule)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(gj, v.want) {
				errs <- fmt.Errorf("worker %d (%s): schedule differs from library", i, v.req.Heuristic)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.StatsSnapshot()
	if st.Requests != 24 {
		t.Fatalf("requests = %d, want 24", st.Requests)
	}
	// every request is a hit, a computing miss, or coalesced onto an
	// identical in-flight run; each distinct variant computes at least once
	if st.CacheMisses < int64(len(variants)) || st.CacheHits+st.CacheMisses+st.Coalesced != 24 {
		t.Fatalf("cache accounting off: %+v", st)
	}
}

// TestBatch checks the sweep-shaped path: one payload, many jobs, answers
// in input order with per-job errors isolated.
func TestBatch(t *testing.T) {
	ts := httptest.NewServer(New(Config{PoolSize: 3}).Handler())
	defer ts.Close()

	pl := platform.Paper()
	var b Batch
	sizes := []int{8, 10, 12, 14}
	for _, n := range sizes {
		b.Requests = append(b.Requests, Request{Graph: testbeds.LU(n, 10), Platform: pl, Heuristic: "heft"})
	}
	// one poisoned job in the middle: unknown heuristic
	b.Requests = append(b.Requests[:2], append([]Request{{Graph: testbeds.LU(9, 10), Platform: pl, Heuristic: "nope"}}, b.Requests[2:]...)...)

	hr, body := post(t, ts, "/batch", b)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != len(b.Requests) {
		t.Fatalf("%d responses for %d requests", len(out.Responses), len(b.Requests))
	}
	for i, resp := range out.Responses {
		if i == 2 {
			if resp.Error == "" || !strings.Contains(resp.Error, "unknown heuristic") {
				t.Fatalf("poisoned job %d: %+v", i, resp)
			}
			continue
		}
		if resp.Error != "" {
			t.Fatalf("job %d failed: %s", i, resp.Error)
		}
		if resp.Tasks != b.Requests[i].Graph.NumNodes() {
			t.Fatalf("job %d answered out of order: %d tasks, want %d", i, resp.Tasks, b.Requests[i].Graph.NumNodes())
		}
	}
}

// TestBadPayloads drives every rejection path over HTTP: the server must
// answer 400 with a JSON error, never 500 or a panic.
func TestBadPayloads(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"empty object", `{}`},
		{"cyclic graph", `{"graph":{"nodes":[{"weight":1},{"weight":1}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]},"platform":{"cycles":[1,1]}}`},
		{"bad edge endpoint", `{"graph":{"nodes":[{"weight":1}],"edges":[{"from":0,"to":9,"data":1}]},"platform":{"cycles":[1]}}`},
		{"negative weight", `{"graph":{"nodes":[{"weight":-1}],"edges":[]},"platform":{"cycles":[1]}}`},
		{"bad platform", `{"graph":{"nodes":[{"weight":1}],"edges":[]},"platform":{"cycles":[0]}}`},
		{"unknown heuristic", `{"graph":{"nodes":[{"weight":1}],"edges":[]},"platform":{"cycles":[1]},"heuristic":"zzz"}`},
		{"unknown model", `{"graph":{"nodes":[{"weight":1}],"edges":[]},"platform":{"cycles":[1]},"model":"zzz"}`},
		{"unknown field", `{"graf":{}}`},
		{"not json", `{`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var out Response
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if out.Error == "" {
				t.Fatal("400 with no error message")
			}
		})
	}
}

// TestZeroWeightGraph: an all-zero-weight graph is legal and yields
// makespan 0; the response must stay finite (no NaN speedup) and encode as
// a 200 with a full JSON body.
func TestZeroWeightGraph(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	g := graph.New(2)
	g.AddNode(0, "")
	g.AddNode(0, "")
	g.MustEdge(0, 1, 0)
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	hr, body := post(t, ts, "/schedule", Request{Graph: g, Platform: pl, Heuristic: "heft"})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("body not JSON (%v): %s", err, body)
	}
	if resp.Error != "" || resp.Makespan != 0 || resp.Speedup != 0 {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

// TestHealthzAndStats smoke-tests the operational endpoints.
func TestHealthzAndStats(t *testing.T) {
	srv := New(Config{CacheSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	pl := platform.Paper()
	for _, n := range []int{6, 8, 10} { // 3 distinct keys through a 2-entry LRU
		req := Request{Graph: testbeds.LU(n, 10), Platform: pl}
		if _, body := post(t, ts, "/schedule", req); !bytes.Contains(body, []byte(`"schedule"`)) {
			t.Fatalf("schedule missing: %s", body)
		}
	}
	st, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 3 || stats.CacheMisses != 3 || stats.CacheLen != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestCanonicalKey pins the key's invariants: insensitive to edge insertion
// order and probe parallelism, sensitive to every problem-defining field.
func TestCanonicalKey(t *testing.T) {
	pl := platform.Paper()
	mk := func(order []int) *graph.Graph {
		g := graph.New(3)
		g.AddNode(1, "")
		g.AddNode(2, "")
		g.AddNode(3, "")
		edges := [][3]float64{{0, 1, 5}, {0, 2, 6}, {1, 2, 7}}
		for _, i := range order {
			e := edges[i]
			g.MustEdge(int(e[0]), int(e[1]), e[2])
		}
		return g
	}
	base := Request{Graph: mk([]int{0, 1, 2}), Platform: pl, Heuristic: "heft", Model: "oneport"}
	if _, err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	key := CanonicalKey(&base)

	reordered := base
	reordered.Graph = mk([]int{2, 0, 1})
	if CanonicalKey(&reordered) != key {
		t.Fatal("edge insertion order changed the key")
	}
	alias := base
	alias.Model = "one-port" // normalize rewrites aliases to the canonical name
	if _, err := alias.normalize(); err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(&alias) != key {
		t.Fatal("model alias changed the key")
	}
	tuned := base
	tuned.Options.ProbeParallelism = 7
	if CanonicalKey(&tuned) != key {
		t.Fatal("probe parallelism changed the key")
	}

	for name, mut := range map[string]func(*Request){
		"heuristic": func(r *Request) { r.Heuristic = "ilha" },
		"model":     func(r *Request) { r.Model = "macro" },
		"B":         func(r *Request) { r.Options.B = 9 },
		"scan":      func(r *Request) { r.Options.ScanDepth = 2 },
		"platform": func(r *Request) {
			p, err := platform.Homogeneous(4)
			if err != nil {
				t.Fatal(err)
			}
			r.Platform = p
		},
		"graph": func(r *Request) { r.Graph = testbeds.LU(5, 10) },
	} {
		alt := base
		mut(&alt)
		if CanonicalKey(&alt) == key {
			t.Fatalf("changing %s did not change the key", name)
		}
	}
}
