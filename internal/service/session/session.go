// Package session implements the scheduling-session subsystem: long-lived
// server-side sessions that hold a live (graph, platform, heuristic) triple
// plus the warm scheduling state — probe Scratch, frontier engine, and the
// previous run's commit order and schedule — so a client can stream deltas
// and get back a re-schedule that replays the untouched prefix instead of
// recomputing from scratch (heuristics.RunIncremental).
//
// The Manager owns a bounded session table with idle-TTL eviction: expired
// sessions are swept when a new one is opened, and an Open against a table
// whose live sessions are all within TTL fails with ErrFull (the HTTP layer
// answers 503 + Retry-After). Deltas to one session are serialized on a
// per-session mutex — concurrent deltas never interleave or tear state —
// while different sessions run concurrently.
//
// The warm state itself (Scratch, frontier engine, recorded run) is
// pointer-rich process memory and is never shipped anywhere. What makes
// sessions durable and relocatable anyway is determinism: a session's
// state is a pure function of (open request, ordered delta log) — the
// incremental-oracle suites pin warm == cold — so the compact log IS the
// session. With Config.Journal set, the Manager write-ahead-journals the
// open and every delta before acking it (internal/service/journal), and
// Recover rebuilds every acked session byte-identically after a crash by
// replaying its journal through the same cold-run path. Export/Import/
// Handoff move a session between replicas by the same token: serialize
// (state snapshot, delta count), rebuild cold on the receiver.
package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/service/journal"
)

// Defaults for Config zero values.
const (
	DefaultMaxSessions = 256
	DefaultTTL         = 15 * time.Minute
)

var (
	// ErrFull reports that the session table is at capacity and no session
	// has been idle past the TTL; the caller should retry later.
	ErrFull = errors.New("session: table full")
	// ErrNotFound reports an unknown (or already evicted/closed) session id.
	ErrNotFound = errors.New("session: not found")
	// ErrFault marks a server-side failure (a panicking heuristic or an
	// invalid produced schedule) as opposed to a bad delta; the HTTP layer
	// answers 500. The session survives with its pre-delta state and a
	// fresh Scratch.
	ErrFault = errors.New("session: internal fault")
)

// Config sizes a Manager.
type Config struct {
	// MaxSessions bounds the table (<= 0: DefaultMaxSessions).
	MaxSessions int
	// TTL is the idle time after which a session may be evicted
	// (0: DefaultTTL; negative: sessions never expire).
	TTL time.Duration
	// Now is the clock (nil: time.Now). Tests inject a fake to drive
	// TTL eviction deterministically.
	Now func() time.Time
	// Journal, when non-nil, write-ahead-journals every session: the open
	// and each accepted delta hit the Store before the client sees the
	// ack, and Recover replays the journals after a restart. nil keeps
	// sessions volatile.
	Journal *journal.Store
}

// Params opens a session: the same fields a /schedule request carries,
// already normalized and clamped by the caller (the HTTP layer reuses the
// service's request normalization).
type Params struct {
	Graph     *graph.Graph
	Platform  *platform.Platform
	Heuristic string
	Model     sched.Model
	Opts      heuristics.ILHAOptions
	// ProbePar is the clamped per-run probe fan-out.
	ProbePar int
}

// RunInfo reports one (re-)schedule produced by Open or Delta. Schedule is
// owned by the session's recorded state: callers must not mutate it (the
// HTTP layer only serializes it).
type RunInfo struct {
	Schedule *sched.Schedule
	// Replayed is the number of prefix commits replayed from the previous
	// run without probing (0 on Open and on full recomputes).
	Replayed int
	// Deltas is the number of deltas applied over the session's lifetime.
	Deltas int
	// Tasks/Procs reflect the session's graph and platform after the run.
	Tasks, Procs int
	// SeqTime is the sequential reference time of the session's graph on
	// its platform, for the same speedup figure /schedule reports.
	SeqTime   float64
	ElapsedNs int64
}

// Delta is one streamed mutation batch: graph ops apply first, then
// platform ops (the two sets are independent; order only matters within
// each list). At least one op is required.
type Delta struct {
	Graph    graph.Delta    `json:"graph,omitempty"`
	Platform platform.Delta `json:"platform,omitempty"`
}

// Session is one open scheduling session. All fields below mu are guarded
// by it; lastUsed is guarded by the owning Manager's mutex.
type Session struct {
	id       string
	lastUsed time.Time // guarded by Manager.mu

	mu      sync.Mutex
	g       *graph.Graph
	pl      *platform.Platform
	heur    string
	model   sched.Model
	opts    heuristics.ILHAOptions
	par     int
	scratch *heuristics.Scratch
	// prev carries the last run's commit order and schedule for prefix
	// replay; nil when the heuristic has no simulable order (every delta
	// then recomputes in full, still on the warm Scratch).
	prev   *heuristics.PrevRun
	deltas int
	bytes  int64 // footprint estimate currently accounted to the Manager
	// log is the session's write-ahead journal (nil when the Manager runs
	// without one). closed marks a session handed off to another replica:
	// a delta that was blocked on mu while the handoff ran must fail with
	// ErrNotFound rather than ack into state nobody owns anymore.
	log    *journal.Log
	closed bool
}

// Manager owns the bounded session table. Safe for concurrent use.
type Manager struct {
	cfg      Config
	mu       sync.Mutex
	sessions map[string]*Session

	bytes     atomic.Int64 // summed session footprint estimates
	opened    atomic.Int64
	deltas    atomic.Int64
	evictions atomic.Int64
	replayed  atomic.Int64

	recovered     atomic.Int64 // sessions rebuilt from journals after a restart
	recoverFailed atomic.Int64 // journals whose replay failed (kept on disk)
	imported      atomic.Int64 // sessions accepted from a draining peer
	handedOff     atomic.Int64 // sessions shipped to their ring owner on drain
}

// NewManager returns a Manager with Config defaults resolved.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*Session)}
}

// Open creates a session and runs the cold schedule. ctx bounds the run via
// the heuristics cancellation path. The slot is reserved before computing,
// so a full table fails fast with ErrFull (after sweeping sessions idle
// past the TTL); a failed cold run releases the slot again.
func (m *Manager) Open(ctx context.Context, p Params) (string, *RunInfo, error) {
	s := &Session{
		g:       p.Graph,
		pl:      p.Platform,
		heur:    p.Heuristic,
		model:   p.Model,
		opts:    p.Opts,
		par:     p.ProbePar,
		scratch: heuristics.NewScratch(),
	}
	m.mu.Lock()
	now := m.cfg.Now()
	m.sweepLocked(now)
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return "", nil, ErrFull
	}
	s.id = newID()
	s.lastUsed = now
	m.sessions[s.id] = s
	m.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	res, elapsed, err := m.run(ctx, s, nil, nil)
	if err != nil {
		m.drop(s)
		return "", nil, err
	}
	if res.Order != nil {
		s.prev = &heuristics.PrevRun{Order: res.Order, Schedule: res.Schedule}
	}
	if err := m.journalCreate(s); err != nil {
		// no durable open record means no ack: the client retries and the
		// table never holds a session a crash would silently lose
		m.drop(s)
		return "", nil, err
	}
	m.account(s)
	m.opened.Add(1)
	return s.id, m.info(s, res, elapsed), nil
}

// journalCreate starts a session's write-ahead log from its current state
// (caller holds s.mu). A failure is a server fault: the session must not
// be acked without its durable open record.
func (m *Manager) journalCreate(s *Session) error {
	if m.cfg.Journal == nil {
		return nil
	}
	payload, err := json.Marshal(m.snapshotLocked(s))
	if err != nil {
		return fmt.Errorf("%w: journal open: %v", ErrFault, err)
	}
	log, err := m.cfg.Journal.Create(s.id, payload)
	if err != nil {
		return fmt.Errorf("%w: journal open: %v", ErrFault, err)
	}
	s.log = log
	return nil
}

// Delta applies one delta batch to a session and re-schedules. Deltas to
// the same session serialize on its mutex; a failed delta (validation
// error, cancellation, fault) leaves the session's graph, platform and
// recorded run exactly as they were. With a journal configured, the delta
// is journaled — and under SyncAlways, on disk — before this returns
// success: an acked delta survives a crash.
func (m *Manager) Delta(ctx context.Context, id string, d Delta) (*RunInfo, error) {
	if len(d.Graph) == 0 && len(d.Platform) == 0 {
		return nil, fmt.Errorf("session: empty delta (need graph and/or platform ops)")
	}
	s := m.lookup(id)
	if s == nil {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.deltaLocked(ctx, s, d, true)
}

// deltaLocked applies one delta under s.mu. journaled=false is the replay
// path: the delta came FROM the journal, so it is neither re-journaled nor
// counted as fresh client traffic.
func (m *Manager) deltaLocked(ctx context.Context, s *Session, d Delta, journaled bool) (*RunInfo, error) {
	if s.closed {
		return nil, ErrNotFound
	}
	ng, dirty := s.g, []bool(nil)
	if len(d.Graph) > 0 {
		var eff graph.Effect
		var err error
		ng, eff, err = d.Graph.Apply(s.g)
		if err != nil {
			return nil, err
		}
		dirty = make([]bool, ng.NumNodes())
		for _, v := range eff.Dirty {
			dirty[v] = true
		}
	}
	npl, prev := s.pl, s.prev
	if len(d.Platform) > 0 {
		var err error
		npl, err = d.Platform.Apply(s.pl)
		if err != nil {
			return nil, err
		}
		// probes read every processor's speed, links and timelines, so no
		// prefix of the previous run survives a platform change
		prev = nil
	}
	// swap in the new pair for the run; restore on failure so the session
	// is never left holding a graph its recorded schedule does not match
	og, opl := s.g, s.pl
	s.g, s.pl = ng, npl
	res, elapsed, err := m.run(ctx, s, prev, dirty)
	if err != nil {
		s.g, s.pl = og, opl
		return nil, err
	}
	if journaled && s.log != nil {
		// write-ahead before the ack: a delta the journal cannot hold is a
		// failed delta, and the session rolls back to the state its journal
		// still describes
		payload, jerr := json.Marshal(&d)
		if jerr == nil {
			jerr = s.log.Append(payload)
		}
		if jerr != nil {
			s.g, s.pl = og, opl
			return nil, fmt.Errorf("%w: journal append: %v", ErrFault, jerr)
		}
	}
	if res.Order != nil {
		s.prev = &heuristics.PrevRun{Order: res.Order, Schedule: res.Schedule}
	} else {
		s.prev = nil
	}
	s.deltas++
	m.account(s)
	if journaled {
		m.deltas.Add(1)
		m.replayed.Add(int64(res.Replayed))
	}
	if journaled && s.log != nil && s.log.Size() > m.cfg.Journal.CompactBytes() {
		// fold the log into one snapshot record; a failed compaction is
		// non-fatal — the long log is still a correct journal
		if snap, err := json.Marshal(m.snapshotLocked(s)); err == nil {
			_ = s.log.Compact(snap)
		}
	}
	return m.info(s, res, elapsed), nil
}

// Close removes a session. Closing an unknown id reports ErrNotFound. An
// in-flight delta on the session finishes safely (it owns its state); its
// result is simply no longer reachable.
func (m *Manager) Close(id string) error {
	s := m.lookup(id)
	if s == nil {
		return ErrNotFound
	}
	m.drop(s)
	return nil
}

// run executes the incremental scheduler for a session, panic-hardened the
// same way the serving path's compute is: a panicking heuristic becomes an
// ErrFault, and the session's Scratch is dropped for a fresh one (the dead
// run's reclaim may have restocked it with buffers a mid-fan-out panic
// left referenced by pool workers — dropping is the alias-free option).
// The produced schedule is re-validated before being trusted.
func (m *Manager) run(ctx context.Context, s *Session, prev *heuristics.PrevRun, dirty []bool) (res *heuristics.IncResult, elapsedNs int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.scratch = heuristics.NewScratch()
			res, err = nil, fmt.Errorf("%w: %v", ErrFault, r)
		}
	}()
	tune := &heuristics.Tuning{ProbeParallelism: s.par, Scratch: s.scratch, Ctx: ctx}
	began := time.Now()
	res, err = heuristics.RunIncremental(s.heur, s.g, s.pl, s.model, s.opts, tune, prev, dirty)
	elapsedNs = time.Since(began).Nanoseconds()
	if err != nil {
		return nil, 0, err
	}
	if verr := sched.Validate(s.g, s.pl, res.Schedule, s.model); verr != nil {
		return nil, 0, fmt.Errorf("%w: produced schedule failed validation: %v", ErrFault, verr)
	}
	return res, elapsedNs, nil
}

// lookup finds a session and refreshes its idle clock.
func (m *Manager) lookup(id string) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s != nil {
		s.lastUsed = m.cfg.Now()
	}
	return s
}

// drop removes a session from the table and releases its accounted bytes.
func (m *Manager) drop(s *Session) {
	m.mu.Lock()
	if _, ok := m.sessions[s.id]; ok {
		m.removeLocked(s)
	}
	m.mu.Unlock()
}

// removeLocked deletes a session from the table (caller holds m.mu),
// closing its journal log and removing the file: a dropped session has no
// acked state left to recover. Closing the log also fences any in-flight
// delta still holding s.mu — its append fails instead of acking into a
// removed session.
func (m *Manager) removeLocked(s *Session) {
	delete(m.sessions, s.id)
	m.bytes.Add(-atomic.LoadInt64(&s.bytes))
	if s.log != nil {
		s.log.Close()
		if m.cfg.Journal != nil {
			_ = m.cfg.Journal.Remove(s.id)
		}
	}
}

// sweepLocked evicts every session idle past the TTL. Caller holds m.mu.
// This is the LRU policy degenerate-cased on TTL: the least-recently-used
// sessions are exactly the longest-idle ones, and only those past the TTL
// may be reclaimed — an active session is never evicted to make room, the
// table answers ErrFull instead.
func (m *Manager) sweepLocked(now time.Time) {
	if m.cfg.TTL < 0 {
		return
	}
	//schedlint:allow detorder — every expired session is evicted; the set is order-free
	for _, s := range m.sessions {
		if now.Sub(s.lastUsed) > m.cfg.TTL {
			m.removeLocked(s)
			m.evictions.Add(1)
		}
	}
}

// RetryAfterSeconds estimates when an Open rejected with ErrFull is worth
// retrying: the seconds until the longest-idle session crosses the TTL
// (at least 1). With a non-expiring table it returns the default 1.
func (m *Manager) RetryAfterSeconds() int {
	if m.cfg.TTL < 0 {
		return 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	best := m.cfg.TTL
	//schedlint:allow detorder — min-fold over values; min is exact and commutative
	for _, s := range m.sessions {
		if left := m.cfg.TTL - now.Sub(s.lastUsed); left < best {
			best = left
		}
	}
	secs := int(best / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// account re-estimates a session's footprint (caller holds s.mu) and folds
// the difference into the Manager's gauge.
func (m *Manager) account(s *Session) {
	b := estimateBytes(s.g, s.prev)
	old := atomic.SwapInt64(&s.bytes, b)
	m.bytes.Add(b - old)
}

// estimateBytes roughly sizes the state a session pins: graph adjacency,
// and the recorded schedule + order kept for replay. Scratch and engine
// buffers are excluded — they are recycled capacity, not per-session
// growth. The estimate feeds the sessions_bytes gauge; it is deliberately
// cheap, not exact.
func estimateBytes(g *graph.Graph, prev *heuristics.PrevRun) int64 {
	b := int64(64)
	if g != nil {
		b += int64(g.NumNodes())*48 + int64(g.NumEdges())*64
	}
	if prev != nil && prev.Schedule != nil {
		b += int64(len(prev.Order)) * 8
		b += int64(len(prev.Schedule.Tasks)) * 40
		for i := range prev.Schedule.Comms {
			b += 48 + int64(len(prev.Schedule.Comms[i].Hops))*32
		}
	}
	return b
}

// Stats is the Manager's counter snapshot, folded into the service /stats.
type Stats struct {
	Open          int   `json:"sessions_open"`
	Bytes         int64 `json:"sessions_bytes"`
	Opened        int64 `json:"sessions_opened"`
	Deltas        int64 `json:"session_deltas"`
	Evictions     int64 `json:"session_evictions"`
	ReplayedTasks int64 `json:"session_replayed_tasks"`
	// Recovered counts sessions rebuilt from journals after a restart and
	// RecoveryFailed journals whose replay failed (kept on disk).
	// Imported/HandedOff count sessions that moved between replicas on a
	// drain (receiver/sender side respectively).
	Recovered      int64 `json:"sessions_recovered"`
	RecoveryFailed int64 `json:"session_recovery_failed"`
	Imported       int64 `json:"sessions_imported"`
	HandedOff      int64 `json:"sessions_handed_off"`
}

// StatsSnapshot returns the current counters.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	open := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		Open:           open,
		Bytes:          m.bytes.Load(),
		Opened:         m.opened.Load(),
		Deltas:         m.deltas.Load(),
		Evictions:      m.evictions.Load(),
		ReplayedTasks:  m.replayed.Load(),
		Recovered:      m.recovered.Load(),
		RecoveryFailed: m.recoverFailed.Load(),
		Imported:       m.imported.Load(),
		HandedOff:      m.handedOff.Load(),
	}
}

// info builds a RunInfo under s.mu.
func (m *Manager) info(s *Session, res *heuristics.IncResult, elapsedNs int64) *RunInfo {
	return &RunInfo{
		Schedule:  res.Schedule,
		Replayed:  res.Replayed,
		Deltas:    s.deltas,
		Tasks:     s.g.NumNodes(),
		Procs:     s.pl.NumProcs(),
		SeqTime:   s.pl.SequentialTime(s.g.TotalWeight()),
		ElapsedNs: elapsedNs,
	}
}

// newID returns a 128-bit random hex session id.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the process is unusable
	}
	return hex.EncodeToString(b[:])
}
