package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }

func openParams(g *graph.Graph, pl *platform.Platform, heur string) Params {
	return Params{Graph: g, Platform: pl, Heuristic: heur, Model: sched.OnePort, ProbePar: 1}
}

// sameJSON asserts two schedules are byte-identical through the wire
// encoding — the exact equality the subsystem promises to HTTP clients.
func sameJSON(t *testing.T, want, got *sched.Schedule) {
	t.Helper()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("schedules differ:\nwant %s\ngot  %s", wb, gb)
	}
}

func coldSchedule(t *testing.T, heur string, g *graph.Graph, pl *platform.Platform, model sched.Model) *sched.Schedule {
	t.Helper()
	f, err := heuristics.ByName(heur, heuristics.ILHAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := f(g, pl, model)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestSessionOracle drives a session through a chain of graph deltas and
// checks after each one that the warm incremental schedule is byte-identical
// to a cold /schedule-equivalent run on the same final graph.
func TestSessionOracle(t *testing.T) {
	for _, heur := range []string{"heft", "bil", "dls"} {
		t.Run(heur, func(t *testing.T) {
			m := NewManager(Config{})
			g, pl := testbeds.LU(8, 10), platform.Paper()
			id, info, err := m.Open(context.Background(), openParams(g, pl, heur))
			if err != nil {
				t.Fatal(err)
			}
			sameJSON(t, coldSchedule(t, heur, g, pl, sched.OnePort), info.Schedule)

			e := g.Edges()[g.NumEdges()/2]
			deltas := []Delta{
				{Graph: graph.Delta{{Op: "set_weight", Task: iptr(g.NumNodes() / 2), Weight: fptr(11)}}},
				{Graph: graph.Delta{{Op: "set_data", From: iptr(e.From), To: iptr(e.To), Data: fptr(e.Data + 4)}}},
				{Graph: graph.Delta{
					{Op: "add_task", Weight: fptr(6)},
					{Op: "add_edge", From: iptr(0), To: iptr(g.NumNodes()), Data: fptr(2)},
				}},
			}
			cur := g
			for di, d := range deltas {
				ng, _, err := d.Graph.Apply(cur)
				if err != nil {
					t.Fatalf("delta %d: %v", di, err)
				}
				info, err := m.Delta(context.Background(), id, d)
				if err != nil {
					t.Fatalf("delta %d: %v", di, err)
				}
				if info.Deltas != di+1 {
					t.Errorf("delta %d: Deltas = %d, want %d", di, info.Deltas, di+1)
				}
				sameJSON(t, coldSchedule(t, heur, ng, pl, sched.OnePort), info.Schedule)
				cur = ng
			}
			st := m.StatsSnapshot()
			if st.Open != 1 || st.Deltas != 3 || st.Opened != 1 {
				t.Errorf("stats = %+v, want 1 open / 3 deltas / 1 opened", st)
			}
			if heur == "heft" && st.ReplayedTasks == 0 {
				t.Error("heft session replayed no tasks across localized deltas")
			}
			if heur == "dls" && st.ReplayedTasks != 0 {
				t.Errorf("dls session claims %d replayed tasks, want 0 (full recompute fallback)", st.ReplayedTasks)
			}
			if st.Bytes <= 0 {
				t.Errorf("sessions_bytes = %d, want > 0", st.Bytes)
			}
		})
	}
}

// TestSessionPlatformDelta: a platform change invalidates everything — the
// next run replays nothing and matches a cold run on the grown platform.
func TestSessionPlatformDelta(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.ForkJoin(20, 10), platform.Paper()
	id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{Platform: platform.Delta{{Op: "add_proc", Cycle: fptr(8), Link: fptr(1)}}}
	npl, err := d.Platform.Apply(pl)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Delta(context.Background(), id, d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 {
		t.Errorf("platform delta replayed %d tasks, want 0", info.Replayed)
	}
	if info.Procs != npl.NumProcs() {
		t.Errorf("Procs = %d, want %d", info.Procs, npl.NumProcs())
	}
	sameJSON(t, coldSchedule(t, "heft", g, npl, sched.OnePort), info.Schedule)

	// and a follow-up graph delta on the new platform replays again
	d2 := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(g.NumNodes() - 1), Weight: fptr(9)}}}
	ng, _, err := d2.Graph.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	info, err = m.Delta(context.Background(), id, d2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed == 0 {
		t.Error("graph delta after platform delta replayed nothing")
	}
	sameJSON(t, coldSchedule(t, "heft", ng, npl, sched.OnePort), info.Schedule)
}

// TestSessionAdversarialDeltas: invalid deltas — cycles, dangling
// endpoints, duplicate edges, orphaning processor removals, empty batches —
// are rejected with errors, and the session keeps serving good deltas with
// unchanged state afterwards.
func TestSessionAdversarialDeltas(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.LU(6, 10), platform.Paper()
	id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		d    Delta
	}{
		{"empty", Delta{}},
		{"cycle", Delta{Graph: graph.Delta{{Op: "add_edge", From: iptr(g.NumNodes() - 1), To: iptr(0), Data: fptr(1)}}}},
		{"unknown task", Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(10_000), Weight: fptr(1)}}}},
		{"dangling edge", Delta{Graph: graph.Delta{{Op: "add_edge", From: iptr(0), To: iptr(10_000), Data: fptr(1)}}}},
		{"duplicate edge", Delta{Graph: graph.Delta{{Op: "add_edge", From: iptr(g.Edges()[0].From), To: iptr(g.Edges()[0].To), Data: fptr(1)}}}},
		{"unknown proc", Delta{Platform: platform.Delta{{Op: "set_cycle", Proc: iptr(99), Cycle: fptr(1)}}}},
		{"remove all procs", Delta{Platform: platform.Delta{
			{Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)},
			{Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)},
			{Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)}, {Op: "remove_proc", Proc: iptr(0)},
			{Op: "remove_proc", Proc: iptr(0)},
		}}},
		{"half bad batch", Delta{Graph: graph.Delta{
			{Op: "add_task", Weight: fptr(1)},
			{Op: "add_edge", From: iptr(g.NumNodes()), To: iptr(g.NumNodes()), Data: fptr(1)},
		}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Delta(context.Background(), id, tc.d); err == nil {
				t.Fatal("bad delta accepted")
			}
		})
	}
	// the session survives with its original state: a good delta still
	// produces the oracle schedule for original-graph + this-delta
	d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(1), Weight: fptr(5)}}}
	ng, _, err := d.Graph.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Delta(context.Background(), id, d)
	if err != nil {
		t.Fatalf("good delta after bad ones: %v", err)
	}
	if info.Deltas != 1 {
		t.Errorf("Deltas = %d, want 1 (failed deltas must not count)", info.Deltas)
	}
	sameJSON(t, coldSchedule(t, "heft", ng, pl, sched.OnePort), info.Schedule)
}

// TestSessionTableFull: a table at capacity with no expirable sessions
// rejects opens with ErrFull; closing a session frees the slot.
func TestSessionTableFull(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	id1, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); !errors.Is(err, ErrFull) {
		t.Fatalf("third open: err = %v, want ErrFull", err)
	}
	if s := m.RetryAfterSeconds(); s < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", s)
	}
	if err := m.Close(id1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := m.Close("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("close unknown: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Delta(context.Background(), id1, Delta{Graph: graph.Delta{{Op: "add_task", Weight: fptr(1)}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delta to closed session: err = %v, want ErrNotFound", err)
	}
}

// TestSessionTTLEviction drives the injected clock past the TTL and checks
// that Open sweeps idle sessions (and counts them), while a touched session
// survives.
func TestSessionTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	m := NewManager(Config{MaxSessions: 2, TTL: time.Minute, Now: clock})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	idle, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	// keep one session warm past the idle horizon, let the other go stale
	advance(40 * time.Second)
	if _, err := m.Delta(context.Background(), live, Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(2)}}}); err != nil {
		t.Fatal(err)
	}
	advance(40 * time.Second) // idle: 80s > TTL; live: 40s < TTL
	id3, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatalf("open should have evicted the stale session: %v", err)
	}
	st := m.StatsSnapshot()
	if st.Evictions != 1 || st.Open != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 open", st)
	}
	if _, err := m.Delta(context.Background(), idle, Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(3)}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delta to evicted session: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Delta(context.Background(), live, Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(4)}}}); err != nil {
		t.Fatalf("survivor session: %v", err)
	}
	_ = id3
}

// TestSessionNeverExpire: a negative TTL disables eviction entirely.
func TestSessionNeverExpire(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewManager(Config{MaxSessions: 1, TTL: -1, Now: func() time.Time { return now }})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull (no eviction with TTL < 0)", err)
	}
	if m.RetryAfterSeconds() < 1 {
		t.Error("RetryAfterSeconds < 1")
	}
}

// TestSessionCancellation: an already-expired context surfaces the
// heuristics cancellation error and leaves the session consistent.
func TestSessionCancellation(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.LU(10, 10), platform.Paper()
	id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(2)}}}
	if _, err := m.Delta(ctx, id, d); !errors.Is(err, heuristics.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// the session still answers with its pre-cancel state intact
	ng, _, err := d.Graph.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Delta(context.Background(), id, d)
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, coldSchedule(t, "heft", ng, pl, sched.OnePort), info.Schedule)
}

// TestSessionConcurrentDeltas hammers one session from many goroutines —
// the per-session mutex must serialize them (checked under -race), every
// delta must land, and the final state must equal the cold run on the graph
// with all deltas applied (the ops commute: distinct tasks re-weighted).
func TestSessionConcurrentDeltas(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.ForkJoin(30, 10), platform.Paper()
	id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(w + 1), Weight: fptr(float64(50 + w))}}}
			_, errs[w] = m.Delta(context.Background(), id, d)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// one more serialized delta so the compared result is deterministic
	final := g.Clone()
	for w := 0; w < workers; w++ {
		if err := final.SetWeight(w+1, float64(50+w)); err != nil {
			t.Fatal(err)
		}
	}
	d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(99)}}}
	if err := final.SetWeight(0, 99); err != nil {
		t.Fatal(err)
	}
	info, err := m.Delta(context.Background(), id, d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Deltas != workers+1 {
		t.Errorf("Deltas = %d, want %d", info.Deltas, workers+1)
	}
	sameJSON(t, coldSchedule(t, "heft", final, pl, sched.OnePort), info.Schedule)
}

// TestSessionConcurrentOpenCloseDelta races opens, deltas and closes across
// a small table — exercising sweep, lookup and drop interleavings under
// -race. Only invariants are checked: no panics, errors limited to the
// expected sentinels.
func TestSessionConcurrentOpenCloseDelta(t *testing.T) {
	m := NewManager(Config{MaxSessions: 4})
	g, pl := testbeds.ForkJoin(10, 10), platform.Paper()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
				if errors.Is(err, ErrFull) {
					continue
				}
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(i % g.NumNodes()), Weight: fptr(float64(2 + w))}}}
				if _, err := m.Delta(context.Background(), id, d); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("delta: %v", err)
					return
				}
				if err := m.Close(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("close: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := m.StatsSnapshot(); st.Open != 0 || st.Bytes != 0 {
		t.Errorf("after close-all: %+v, want 0 open / 0 bytes", st)
	}
}

// BenchmarkSessionDelta pins the subsystem's reason to exist: a small delta
// against a warm 300+-node session re-schedules via prefix replay, versus a
// cold full run of the same heuristic on the same graph.
func BenchmarkSessionDelta(b *testing.B) {
	// a fork-join with a short chain tail: every path runs through each
	// tail task, so re-weighting the last one shifts every bottom level
	// uniformly — the commit order is stable and everything except that
	// task replays — while the dirty task itself has in-degree 1, so its
	// re-probe is cheap. The cold run must re-probe all tasks, including
	// the 300-predecessor join.
	g := testbeds.ForkJoin(300, 10)
	for i := 0; i < 3; i++ {
		g.AddNode(10, "")
		g.MustEdge(g.NumNodes()-2, g.NumNodes()-1, 5)
	}
	pl := platform.Paper()
	n := g.NumNodes()
	if n < 300 {
		b.Fatalf("graph has %d nodes, want >= 300", n)
	}
	model := sched.OnePort

	b.Run("warm", func(b *testing.B) {
		m := NewManager(Config{})
		id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(n - 1), Weight: fptr(float64(10 + i%7))}}}
			info, err := m.Delta(context.Background(), id, d)
			if err != nil {
				b.Fatal(err)
			}
			if info.Replayed < n-1 {
				b.Fatalf("replayed %d of %d, want >= %d", info.Replayed, n, n-1)
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		tune := &heuristics.Tuning{ProbeParallelism: 1, Scratch: heuristics.NewScratch()}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ng := g.Clone()
			if err := ng.SetWeight(n-1, float64(10+i%7)); err != nil {
				b.Fatal(err)
			}
			res, err := heuristics.RunIncremental("heft", ng, pl, model, heuristics.ILHAOptions{}, tune, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Replayed != 0 {
				b.Fatal("cold run replayed tasks")
			}
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debug edits
