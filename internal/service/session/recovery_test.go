package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/service/journal"
	"oneport/internal/testbeds"
)

// journaled builds a Manager over a journal store on dir. SyncNone models a
// crash that keeps the page cache — which sharing the dir across Managers
// does — and keeps the tests fast; the sync path is covered in the journal
// package and the -race service suite.
func journaled(t *testing.T, dir string, compact int64) *Manager {
	t.Helper()
	st, err := journal.Open(journal.Config{Dir: dir, Policy: journal.SyncNone, CompactBytes: compact})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(Config{Journal: st})
}

// testDeltas is a small chain of graph/platform mutations exercised by
// every recovery test, ending on a platform delta so replay must handle
// both kinds.
func testDeltas(g *graph.Graph) []Delta {
	return []Delta{
		{Graph: graph.Delta{{Op: "set_weight", Task: iptr(g.NumNodes() / 2), Weight: fptr(11)}}},
		{Graph: graph.Delta{
			{Op: "add_task", Weight: fptr(6)},
			{Op: "add_edge", From: iptr(0), To: iptr(g.NumNodes()), Data: fptr(2)},
		}},
		{Platform: platform.Delta{{Op: "add_proc", Cycle: fptr(8), Link: fptr(1)}}},
	}
}

// applyAll mirrors a delta chain onto plain graph/platform values — the
// cold-oracle state a recovered session must reproduce.
func applyAll(t *testing.T, g *graph.Graph, pl *platform.Platform, deltas []Delta) (*graph.Graph, *platform.Platform) {
	t.Helper()
	for i, d := range deltas {
		if len(d.Graph) > 0 {
			ng, _, err := d.Graph.Apply(g)
			if err != nil {
				t.Fatalf("delta %d: %v", i, err)
			}
			g = ng
		}
		if len(d.Platform) > 0 {
			npl, err := d.Platform.Apply(pl)
			if err != nil {
				t.Fatalf("delta %d: %v", i, err)
			}
			pl = npl
		}
	}
	return g, pl
}

// TestRecoverByteIdentical is the tentpole pin: open + deltas, abandon the
// Manager (a crash keeps no in-memory state), rebuild from the same journal
// dir, and the recovered session must continue exactly where the dead one
// stopped — the next delta's schedule byte-identical to a cold run on the
// equivalent final state.
func TestRecoverByteIdentical(t *testing.T) {
	for _, heur := range []string{"heft", "dls"} { // replay and full-recompute paths
		t.Run(heur, func(t *testing.T) {
			dir := t.TempDir()
			m1 := journaled(t, dir, 0)
			g, pl := testbeds.LU(8, 10), platform.Paper()
			id, _, err := m1.Open(context.Background(), openParams(g, pl, heur))
			if err != nil {
				t.Fatal(err)
			}
			deltas := testDeltas(g)
			for i, d := range deltas {
				if _, err := m1.Delta(context.Background(), id, d); err != nil {
					t.Fatalf("delta %d: %v", i, err)
				}
			}
			// crash: m1 is simply never used again

			m2 := journaled(t, dir, 0)
			recovered, failed, err := m2.Recover(context.Background())
			if err != nil || recovered != 1 || failed != 0 {
				t.Fatalf("Recover = %d, %d, %v", recovered, failed, err)
			}

			// the 4th delta, applied to the RECOVERED session, must match a
			// cold schedule of the full final state
			extra := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(9)}}}
			info, err := m2.Delta(context.Background(), id, extra)
			if err != nil {
				t.Fatalf("post-recovery delta: %v", err)
			}
			if info.Deltas != len(deltas)+1 {
				t.Errorf("Deltas = %d, want %d (lifetime count must survive recovery)", info.Deltas, len(deltas)+1)
			}
			fg, fpl := applyAll(t, g, pl, append(append([]Delta{}, deltas...), extra))
			sameJSON(t, coldSchedule(t, heur, fg, fpl, sched.OnePort), info.Schedule)

			if st := m2.StatsSnapshot(); st.Recovered != 1 || st.Open != 1 {
				t.Errorf("stats = %+v, want 1 recovered / 1 open", st)
			}
		})
	}
}

// TestRecoverTornTail: a crash mid-append loses exactly the torn suffix.
// The journal's acked prefix recovers, and the client's normal retry of the
// un-acked delta lands the session back on the oracle state.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	m1 := journaled(t, dir, 0)
	g, pl := testbeds.LU(8, 10), platform.Paper()
	id, _, err := m1.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	deltas := testDeltas(g)[:2]
	for _, d := range deltas {
		if _, err := m1.Delta(context.Background(), id, d); err != nil {
			t.Fatal(err)
		}
	}
	// tear the last record's checksum: delta 1 was mid-write at the crash
	path := filepath.Join(dir, id+".wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := journaled(t, dir, 0)
	if recovered, failed, err := m2.Recover(context.Background()); err != nil || recovered != 1 || failed != 0 {
		t.Fatalf("Recover = %d, %d, %v", recovered, failed, err)
	}
	info, err := m2.Delta(context.Background(), id, deltas[1])
	if err != nil {
		t.Fatalf("re-apply after torn tail: %v", err)
	}
	fg, fpl := applyAll(t, g, pl, deltas)
	sameJSON(t, coldSchedule(t, "heft", fg, fpl, sched.OnePort), info.Schedule)
}

// TestRecoverAfterCompaction: sessions whose journal folded into a snapshot
// record recover from the snapshot exactly as from the raw log.
func TestRecoverAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	m1 := journaled(t, dir, 1) // compact after every delta
	g, pl := testbeds.LU(8, 10), platform.Paper()
	id, _, err := m1.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	deltas := testDeltas(g)
	for _, d := range deltas {
		if _, err := m1.Delta(context.Background(), id, d); err != nil {
			t.Fatal(err)
		}
	}
	if st := m1.cfg.Journal.StatsSnapshot(); st.Compactions == 0 {
		t.Fatal("no compaction ran with a 1-byte threshold")
	}

	m2 := journaled(t, dir, 1)
	if recovered, failed, err := m2.Recover(context.Background()); err != nil || recovered != 1 || failed != 0 {
		t.Fatalf("Recover = %d, %d, %v", recovered, failed, err)
	}
	extra := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(1), Weight: fptr(7)}}}
	info, err := m2.Delta(context.Background(), id, extra)
	if err != nil {
		t.Fatal(err)
	}
	if info.Deltas != len(deltas)+1 {
		t.Errorf("Deltas = %d, want %d (count must ride the snapshot record)", info.Deltas, len(deltas)+1)
	}
	fg, fpl := applyAll(t, g, pl, append(append([]Delta{}, deltas...), extra))
	sameJSON(t, coldSchedule(t, "heft", fg, fpl, sched.OnePort), info.Schedule)
}

// TestRecoverBadJournalKept: a journal that cannot replay (unknown
// heuristic) is counted as failed and LEFT on disk — evidence, not trash.
func TestRecoverBadJournalKept(t *testing.T) {
	dir := t.TempDir()
	m1 := journaled(t, dir, 0)
	g, pl := testbeds.LU(8, 10), platform.Paper()
	id, _, err := m1.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	// rewrite the open record with a semantically-bad snapshot (framing valid)
	path := filepath.Join(dir, id+".wal")
	st, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := st.Recover()
	if err != nil || len(reps) != 1 {
		t.Fatalf("pre-corrupt recover: %v, %d replays", err, len(reps))
	}
	var snap Snapshot
	if err := json.Unmarshal(reps[0].Open, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Heuristic = "no-such-heuristic"
	payload, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	reps[0].Log.Close()
	l, err := st.Create(id, payload)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	m2 := journaled(t, dir, 0)
	recovered, failed, err := m2.Recover(context.Background())
	if err != nil || recovered != 0 || failed != 1 {
		t.Fatalf("Recover = %d, %d, %v", recovered, failed, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("failed journal was deleted: %v", err)
	}
	if st := m2.StatsSnapshot(); st.RecoveryFailed != 1 || st.Open != 0 {
		t.Errorf("stats = %+v, want 1 recovery_failed / 0 open", st)
	}
}

// TestJournalCleanupOnCloseAndEvict: closing or evicting a session removes
// its journal — recovery must never resurrect a session the client ended.
func TestJournalCleanupOnCloseAndEvict(t *testing.T) {
	dir := t.TempDir()
	st, err := journal.Open(journal.Config{Dir: dir, Policy: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	m := NewManager(Config{Journal: st, TTL: time.Minute, Now: func() time.Time { return now }})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	id1, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(id1); err != nil {
		t.Fatal(err)
	}
	id2, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour) // the next open sweeps id2 — and its journal
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{id1, id2} {
		if _, err := os.Stat(filepath.Join(dir, id+".wal")); !os.IsNotExist(err) {
			t.Errorf("journal %s.wal survived close/evict (stat err %v)", id, err)
		}
	}
}

// TestExportImportHandoff moves a session between two Managers the way a
// drain does and pins the receiver's state to the sender's byte-for-byte —
// including the receiver journaling the import so it survives a crash there.
func TestExportImportHandoff(t *testing.T) {
	a := NewManager(Config{})
	bdir := t.TempDir()
	b := journaled(t, bdir, 0)
	g, pl := testbeds.LU(8, 10), platform.Paper()
	id, _, err := a.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	deltas := testDeltas(g)[:2]
	var last *RunInfo
	for _, d := range deltas {
		if last, err = a.Delta(context.Background(), id, d); err != nil {
			t.Fatal(err)
		}
	}

	sent := false
	err = a.Handoff(id, func(snap *Snapshot) error {
		sent = true
		// serialize through JSON like the wire does
		raw, err := json.Marshal(snap)
		if err != nil {
			return err
		}
		var back Snapshot
		if err := json.Unmarshal(raw, &back); err != nil {
			return err
		}
		gotID, info, err := b.Import(context.Background(), &back)
		if err != nil {
			return err
		}
		if gotID != id {
			return fmt.Errorf("import renamed the session: %s", gotID)
		}
		sameJSON(t, last.Schedule, info.Schedule) // receiver cold == sender warm
		if info.Deltas != len(deltas) {
			return fmt.Errorf("delta count %d did not survive the move", info.Deltas)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("send never ran")
	}
	// the sender no longer holds it; the receiver serves deltas on it
	if _, err := a.Delta(context.Background(), id, deltas[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sender still serves the session: %v", err)
	}
	extra := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(5)}}}
	if _, err := b.Delta(context.Background(), id, extra); err != nil {
		t.Fatalf("receiver rejects the imported session: %v", err)
	}
	// a crash on the receiver still recovers the moved session
	b2 := journaled(t, bdir, 0)
	if recovered, _, err := b2.Recover(context.Background()); err != nil || recovered != 1 {
		t.Fatalf("receiver-side recovery = %d, %v", recovered, err)
	}
	if sa, sb := a.StatsSnapshot(), b.StatsSnapshot(); sa.HandedOff != 1 || sb.Imported != 1 {
		t.Errorf("handoff counters: sender %+v receiver %+v", sa, sb)
	}
}

// TestHandoffFailedSendKeepsSession: a send that errors leaves the session
// live and serving on the sender — nothing closes on a failed handoff.
func TestHandoffFailedSendKeepsSession(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("peer down")
	if err := m.Handoff(id, func(*Snapshot) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Handoff = %v", err)
	}
	d := Delta{Graph: graph.Delta{{Op: "set_weight", Task: iptr(0), Weight: fptr(5)}}}
	if _, err := m.Delta(context.Background(), id, d); err != nil {
		t.Fatalf("session dead after failed handoff: %v", err)
	}
	if st := m.StatsSnapshot(); st.HandedOff != 0 || st.Open != 1 {
		t.Errorf("stats = %+v, want 0 handed_off / 1 open", st)
	}
}

// TestImportRejectsBadIDs: import ids must be exactly the 32-hex grammar
// newID emits — anything else could escape the journal directory.
func TestImportRejectsBadIDs(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	snap := &Snapshot{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport", ProbePar: 1}
	for _, id := range []string{
		"", "short", "../../../../etc/passwd00112233",
		"ABCDEF00112233445566778899aabbcc", // upper hex
		"00112233445566778899aabbccddee!!",
	} {
		snap.ID = id
		if _, _, err := m.Import(context.Background(), snap); err == nil {
			t.Errorf("Import accepted id %q", id)
		}
	}
}

// TestImportFullTable: unlike recovery, an import respects MaxSessions.
func TestImportFullTable(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	if _, _, err := m.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{ID: "00112233445566778899aabbccddeeff",
		Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport", ProbePar: 1}
	if _, _, err := m.Import(context.Background(), snap); !errors.Is(err, ErrFull) {
		t.Fatalf("Import on a full table = %v, want ErrFull", err)
	}
}

// TestRecoverPastCapacity: recovery admits every journaled session even
// past MaxSessions — they were all live and acked before the crash.
func TestRecoverPastCapacity(t *testing.T) {
	dir := t.TempDir()
	m1 := journaled(t, dir, 0)
	g, pl := testbeds.ForkJoin(5, 10), platform.Paper()
	for i := 0; i < 3; i++ {
		if _, _, err := m1.Open(context.Background(), openParams(g, pl, "heft")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := journal.Open(journal.Config{Dir: dir, Policy: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Config{Journal: st, MaxSessions: 1})
	if recovered, failed, err := m2.Recover(context.Background()); err != nil || recovered != 3 || failed != 0 {
		t.Fatalf("Recover = %d, %d, %v", recovered, failed, err)
	}
	if st := m2.StatsSnapshot(); st.Open != 3 {
		t.Errorf("open = %d, want 3 (recovery ignores MaxSessions)", st.Open)
	}
}
