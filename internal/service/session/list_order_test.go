package session

import (
	"context"
	"sort"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/testbeds"
)

// TestListSortedOrder pins that List returns session ids in sorted order
// regardless of how the sessions were opened. Drain iterates List, so a
// drain cut short by its deadline must ship a reproducible prefix of the
// session set — map iteration order would hand over a different random
// subset every run.
func TestListSortedOrder(t *testing.T) {
	m := NewManager(Config{})
	g, pl := testbeds.ForkJoin(6, 10), platform.Paper()

	opened := make(map[string]bool)
	for i := 0; i < 8; i++ {
		id, _, err := m.Open(context.Background(), openParams(g, pl, "heft"))
		if err != nil {
			t.Fatal(err)
		}
		opened[id] = true
	}

	for round := 0; round < 20; round++ {
		ids := m.List()
		if len(ids) != len(opened) {
			t.Fatalf("List returned %d ids, opened %d", len(ids), len(opened))
		}
		if !sort.StringsAreSorted(ids) {
			t.Fatalf("List not sorted: %q", ids)
		}
		for _, id := range ids {
			if !opened[id] {
				t.Fatalf("List returned unknown id %q", id)
			}
		}
	}
}
