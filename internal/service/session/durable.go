package session

// This file is the durability and mobility half of the Manager: the
// serialized session form (Snapshot), journal recovery after a restart,
// and the export/import/handoff path that moves live sessions between
// replicas when one drains. All of it leans on one invariant: rebuilding
// a session cold from its snapshot state reproduces the warm state
// byte-identically (the RunIncremental oracle suites pin warm == cold),
// so a session is fully described by what Snapshot carries.

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"strings"

	"oneport/internal/cli"
	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/service/journal"
)

// Snapshot is a session's complete serialized state: the journal's open
// and snapshot record payload, and the body of the peer export/import
// handoff. Graph and Platform are the CURRENT state (all applied deltas
// folded in), so a receiver rebuilds with one cold run, not a replay.
type Snapshot struct {
	ID        string             `json:"id,omitempty"`
	Graph     *graph.Graph       `json:"graph"`
	Platform  *platform.Platform `json:"platform"`
	Heuristic string             `json:"heuristic"`
	// Model is the canonical model name (cli.ModelName form).
	Model string `json:"model"`
	B     int    `json:"b,omitempty"`
	// ScanDepth is ILHA's Step-1 scan depth; ProbePar the clamped per-run
	// probe fan-out the session was opened with.
	ScanDepth int `json:"scan_depth,omitempty"`
	ProbePar  int `json:"probe_par,omitempty"`
	// Deltas is the session's lifetime delta count at snapshot time, so
	// the client-visible counter survives recovery and handoff.
	Deltas int `json:"deltas"`
}

// snapshotLocked serializes a session's current state (caller holds s.mu).
func (m *Manager) snapshotLocked(s *Session) *Snapshot {
	return &Snapshot{
		ID:        s.id,
		Graph:     s.g,
		Platform:  s.pl,
		Heuristic: s.heur,
		Model:     cli.ModelName(s.model),
		B:         s.opts.B,
		ScanDepth: s.opts.ScanDepth,
		ProbePar:  s.par,
		Deltas:    s.deltas,
	}
}

// sessionFromSnapshot validates a snapshot and builds the in-memory
// session (cold: no prev, fresh Scratch; the caller runs it).
func sessionFromSnapshot(id string, snap *Snapshot) (*Session, error) {
	if snap.ID != "" && snap.ID != id {
		return nil, fmt.Errorf("session: snapshot id %q does not match %q", snap.ID, id)
	}
	if snap.Graph == nil || snap.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("session: snapshot has no graph")
	}
	if snap.Platform == nil || snap.Platform.NumProcs() == 0 {
		return nil, fmt.Errorf("session: snapshot has no platform")
	}
	model, err := cli.ParseModel(snap.Model)
	if err != nil {
		return nil, err
	}
	if snap.Deltas < 0 {
		return nil, fmt.Errorf("session: snapshot delta count %d is negative", snap.Deltas)
	}
	return &Session{
		id:      id,
		g:       snap.Graph,
		pl:      snap.Platform,
		heur:    snap.Heuristic,
		model:   model,
		opts:    heuristics.ILHAOptions{B: snap.B, ScanDepth: snap.ScanDepth},
		par:     snap.ProbePar,
		scratch: heuristics.NewScratch(),
		deltas:  snap.Deltas,
	}, nil
}

// validImportID accepts exactly the ids newID generates — 32 lowercase hex
// digits — so an imported id can never escape the journal directory or
// collide with the id grammar clients rely on.
func validImportID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Recover rebuilds every journaled session after a restart: each journal's
// open/snapshot state runs cold, then the journaled deltas replay in order
// through the same path live deltas take — so the recovered warm state is
// byte-identical to the pre-crash state. Journals whose replay fails (an
// unknown heuristic after a downgrade, a payload that no longer validates)
// are kept on disk and counted, never deleted: the operator keeps the
// evidence. Recovered sessions are admitted even past MaxSessions — they
// were all live and acked before the crash; the table re-bounds itself
// through TTL eviction and Open's capacity check.
func (m *Manager) Recover(ctx context.Context) (recovered, failed int, err error) {
	if m.cfg.Journal == nil {
		return 0, 0, nil
	}
	replays, err := m.cfg.Journal.Recover()
	if err != nil {
		return 0, 0, err
	}
	for i := range replays {
		rp := &replays[i]
		if rerr := m.recoverOne(ctx, rp); rerr != nil {
			rp.Log.Close()
			m.recoverFailed.Add(1)
			failed++
			continue
		}
		m.recovered.Add(1)
		recovered++
	}
	return recovered, failed, nil
}

// recoverOne rebuilds one session from its journal replay.
func (m *Manager) recoverOne(ctx context.Context, rp *journal.Replay) error {
	var snap Snapshot
	if err := json.Unmarshal(rp.Open, &snap); err != nil {
		return fmt.Errorf("session: journal %s open record: %w", rp.ID, err)
	}
	s, err := sessionFromSnapshot(rp.ID, &snap)
	if err != nil {
		return err
	}
	s.log = rp.Log
	s.mu.Lock()
	defer s.mu.Unlock()
	res, _, err := m.run(ctx, s, nil, nil)
	if err != nil {
		return err
	}
	if res.Order != nil {
		s.prev = &heuristics.PrevRun{Order: res.Order, Schedule: res.Schedule}
	}
	for i, raw := range rp.Deltas {
		var d Delta
		if err := json.Unmarshal(raw, &d); err != nil {
			return fmt.Errorf("session: journal %s delta %d: %w", rp.ID, i, err)
		}
		if _, err := m.deltaLocked(ctx, s, d, false); err != nil {
			return fmt.Errorf("session: journal %s delta %d: %w", rp.ID, i, err)
		}
	}
	m.mu.Lock()
	s.lastUsed = m.cfg.Now()
	m.sessions[s.id] = s
	m.mu.Unlock()
	m.account(s)
	return nil
}

// Export serializes a live session for a peer to import. The returned
// Snapshot aliases the session's current graph/platform — both are
// replaced, never mutated in place, by later deltas, so the caller may
// marshal it without holding any lock.
func (m *Manager) Export(id string) (*Snapshot, error) {
	s := m.lookup(id)
	if s == nil {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrNotFound
	}
	return m.snapshotLocked(s), nil
}

// Import installs a session exported by another replica: cold-run the
// snapshot state (byte-identical to the exporter's warm state) and journal
// it as a fresh open. An existing session under the same id is replaced —
// the exporter serialized its copy under the session lock, so the incoming
// state is at least as fresh as anything this replica holds (a stale copy
// only exists here if an earlier import's ack was lost and the exporter
// retried). Unlike Recover, an import past capacity fails with ErrFull:
// the sender keeps the session journaled instead.
func (m *Manager) Import(ctx context.Context, snap *Snapshot) (string, *RunInfo, error) {
	if !validImportID(snap.ID) {
		return "", nil, fmt.Errorf("session: import id %q is not a 32-hex session id", snap.ID)
	}
	s, err := sessionFromSnapshot(snap.ID, snap)
	if err != nil {
		return "", nil, err
	}
	m.mu.Lock()
	now := m.cfg.Now()
	m.sweepLocked(now)
	if old := m.sessions[s.id]; old != nil {
		m.removeLocked(old)
	} else if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return "", nil, ErrFull
	}
	s.lastUsed = now
	m.sessions[s.id] = s
	m.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	res, elapsed, err := m.run(ctx, s, nil, nil)
	if err != nil {
		m.drop(s)
		return "", nil, err
	}
	if res.Order != nil {
		s.prev = &heuristics.PrevRun{Order: res.Order, Schedule: res.Schedule}
	}
	if err := m.journalCreate(s); err != nil {
		m.drop(s)
		return "", nil, err
	}
	m.account(s)
	m.imported.Add(1)
	return s.id, m.info(s, res, elapsed), nil
}

// Handoff ships one session to a peer and closes the local copy only once
// send reports the peer holds it. The session lock is held across the
// whole exchange, which is the no-lost-ack guarantee: no delta can be
// acked here after the exported state was serialized, and a delta blocked
// on the lock wakes to a closed session (ErrNotFound → the HTTP layer's
// 307 points the client at the new owner). A failed send leaves the
// session — and its journal — fully intact on this replica.
func (m *Manager) Handoff(id string, send func(*Snapshot) error) error {
	s := m.lookup(id)
	if s == nil {
		return ErrNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrNotFound
	}
	// The documented export-under-lock handoff: holding s.mu across the
	// peer import is exactly what guarantees no delta can be acked here
	// after the exported state was serialized (DESIGN.md "Session
	// durability & handoff"); only this one session's deltas wait, and
	// they wake to a 307 at the new owner.
	//schedlint:allow lockio — export-under-lock is the no-lost-ack guarantee
	if err := send(m.snapshotLocked(s)); err != nil {
		return err
	}
	s.closed = true
	m.drop(s)
	m.handedOff.Add(1)
	return nil
}

// List returns the live session ids in sorted order (drain iterates it;
// the set may change underneath, which Handoff tolerates per-id). The
// order is sorted, not map order, so a drain cut short by its context
// keeps and ships a reproducible set — chaos runs and handoff tests see
// the same partition every time.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SyncJournals flushes every live session's journal to disk regardless of
// fsync policy — the drain path calls it so even SyncNone sessions are
// durable before the process exits. Journals sync outside the lock, in
// sorted session order: when several journals fail, WHICH error is
// reported must not depend on map order.
func (m *Manager) SyncJournals() error {
	type entry struct {
		id  string
		log *journal.Log
	}
	m.mu.Lock()
	logs := make([]entry, 0, len(m.sessions))
	for id, s := range m.sessions {
		if s.log != nil {
			logs = append(logs, entry{id, s.log})
		}
	}
	m.mu.Unlock()
	slices.SortFunc(logs, func(a, b entry) int { return strings.Compare(a.id, b.id) })
	var first error
	for _, l := range logs {
		if err := l.log.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
