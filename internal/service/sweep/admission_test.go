package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"oneport/internal/service/admit"
	"oneport/internal/service/breaker"
)

func TestJobCost(t *testing.T) {
	if got := jobCost(Job{Kind: KindFigure, Size: 50}); got != 200 {
		t.Fatalf("figure job cost %v, want 200", got)
	}
	if got := jobCost(Job{Kind: KindBSweep, Size: 50}); got != 150 {
		t.Fatalf("bsweep job cost %v, want 150", got)
	}
	if got := jobCost(Job{Kind: KindBSweep}); got != 3 {
		t.Fatalf("zero-size job cost %v, want the floor", got)
	}
	jobs := []Job{{Kind: KindFigure, Size: 10}, {Kind: KindBSweep, Size: 10}}
	if got := shardCost(jobs); got != 70 {
		t.Fatalf("shard cost %v, want 70", got)
	}
}

// TestShardAdmissionGate: with a controller installed, a shard the quota
// rejects is shed as 503 + numeric Retry-After before any lane starts;
// removing the controller ungates the same shard.
func TestShardAdmissionGate(t *testing.T) {
	jobs := BSweepJobs("lu", 20, "oneport", 0, []int{4})
	cost := shardCost(jobs)
	// a sweep-tenant bucket too small for this shard: immediate rate shed
	EnableAdmission(admit.New(admit.Config{
		Slots:  2,
		Quotas: map[string]admit.Quota{sweepTenant: {Rate: 0.001, Burst: cost / 2}},
	}))
	t.Cleanup(func() { EnableAdmission(nil) })

	ts := httptest.NewServer(Handler())
	defer ts.Close()
	body, err := json.Marshal(&Shard{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweep/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated shard answered %d, want 503", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("shed Retry-After %q not a positive integer", resp.Header.Get("Retry-After"))
	}

	EnableAdmission(nil)
	resp, err = http.Post(ts.URL+"/sweep/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ungated shard answered %d, want 200", resp.StatusCode)
	}
}

// TestCoordinatorBacksOffOn503: a worker 503 is backpressure, not a fault.
// The coordinator waits out the Retry-After and retries the same worker —
// no requeue, no retirement, no breaker trip — and the sweep completes.
func TestCoordinatorBacksOffOn503(t *testing.T) {
	real := Handler()
	var calls atomic.Int32
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, &overloadError{worker: "self", retryAfter: time.Second, msg: "drill"})
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer worker.Close()

	br := breaker.NewSet(breaker.Config{})
	co := &Coordinator{Workers: []string{worker.URL}, Breakers: br}
	jobs := BSweepJobs("lu", 20, "oneport", 0, []int{2, 4})
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	if co.Stats.Backoffs != 1 {
		t.Fatalf("Backoffs = %d, want 1", co.Stats.Backoffs)
	}
	if co.Stats.Requeues != 0 {
		t.Fatalf("overload requeued a chunk: %+v", co.Stats)
	}
	if !br.Allow(worker.URL, time.Now()) {
		t.Fatal("a 503 tripped the worker's breaker")
	}
}
