package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"oneport/internal/platform"
)

// maxShardBytes bounds worker-side shard payloads.
const maxShardBytes = 16 << 20

// Handler returns the worker-side HTTP surface of the sweep protocol:
//
//	POST /sweep/run  Shard -> ShardResult
//
// cmd/schedserve mounts it next to the scheduling service's handler when
// started with -worker.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep/run", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBytes))
		dec.DisallowUnknownFields()
		var sh Shard
		if err := dec.Decode(&sh); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep: bad shard: %w", err))
			return
		}
		if len(sh.Jobs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep: empty shard"))
			return
		}
		res, err := RunShard(&sh)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	return mux
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Coordinator shards jobs across worker processes and gathers the partial
// results. The zero value is unusable; set Workers to the workers' base
// URLs (e.g. "http://host:8642").
type Coordinator struct {
	Workers []string
	// Client defaults to a client with a generous sweep-scale timeout.
	Client *http.Client
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

// Run partitions jobs round-robin into one shard per worker, dispatches the
// shards concurrently, and returns every job's result (order unspecified;
// the Merge* helpers sort by job id). pl selects the shard platform (nil:
// the paper platform). A shard whose worker fails is retried on the
// remaining workers, so the sweep survives losing all but one worker; it
// fails only when a shard is rejected by every worker.
func (c *Coordinator) Run(ctx context.Context, pl *platform.Platform, jobs []Job) ([]Result, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("sweep: coordinator has no workers")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sweep: no jobs")
	}
	shards := Partition(jobs, len(c.Workers))

	var mu sync.Mutex
	var all []Result
	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, shardJobs := range shards {
		wg.Add(1)
		go func(i int, shardJobs []Job) {
			defer wg.Done()
			sh := Shard{Platform: pl, Jobs: shardJobs}
			res, err := c.runShardWithFailover(ctx, i, &sh)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			all = append(all, res.Results...)
			mu.Unlock()
		}(i, shardJobs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return all, nil
}

// runShardWithFailover tries the shard's home worker first (shard index
// round-robins onto the worker list), then every other worker.
func (c *Coordinator) runShardWithFailover(ctx context.Context, shard int, sh *Shard) (*ShardResult, error) {
	var firstErr error
	for attempt := 0; attempt < len(c.Workers); attempt++ {
		worker := c.Workers[(shard+attempt)%len(c.Workers)]
		res, err := c.postShard(ctx, worker, sh)
		if err == nil {
			return res, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("sweep: shard %d failed on every worker: %w", shard, firstErr)
}

func (c *Coordinator) postShard(ctx context.Context, worker string, sh *Shard) (*ShardResult, error) {
	body, err := json.Marshal(sh)
	if err != nil {
		return nil, err
	}
	url := strings.TrimRight(worker, "/") + "/sweep/run"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return nil, fmt.Errorf("sweep: worker %s: %s", worker, e.Error)
	}
	var out ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("sweep: worker %s: bad response: %w", worker, err)
	}
	if len(out.Results) != len(sh.Jobs) {
		return nil, fmt.Errorf("sweep: worker %s answered %d results for %d jobs", worker, len(out.Results), len(sh.Jobs))
	}
	return &out, nil
}
