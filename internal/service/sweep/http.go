package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"oneport/internal/platform"
	"oneport/internal/service/breaker"
)

// maxShardBytes bounds worker-side shard payloads; maxShardRespBytes and
// maxShardErrorBytes bound how much of a worker's response the coordinator
// will read — it trusts workers for content, not for size.
const (
	maxShardBytes      = 16 << 20
	maxShardRespBytes  = 256 << 20
	maxShardErrorBytes = 1 << 20
)

// Handler returns the worker-side HTTP surface of the sweep protocol:
//
//	POST /sweep/run  Shard -> ShardResult
//
// cmd/schedserve mounts it next to the scheduling service's handler when
// started with -worker.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep/run", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBytes))
		dec.DisallowUnknownFields()
		var sh Shard
		if err := dec.Decode(&sh); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep: bad shard: %w", err))
			return
		}
		if len(sh.Jobs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep: empty shard"))
			return
		}
		local := r.Header.Get(sweepLocalHeader) != ""
		if local {
			// a ring fill from another worker: serve it only under the
			// same membership epoch it was routed by (the service's
			// no-cross-epoch-relay invariant), and never forward it again
			got, err := strconv.ParseUint(r.Header.Get(fleetEpochHeader), 10, 64)
			if cur := currentEpoch(); err != nil || got != cur {
				w.Header().Set(fleetEpochHeader, strconv.FormatUint(cur, 10))
				writeError(w, http.StatusConflict, fmt.Errorf(
					"sweep: ring epoch mismatch: fill tagged %q, serving epoch %d", r.Header.Get(fleetEpochHeader), cur))
				return
			}
		}
		release, ok := admitShard(w, r, sh.Jobs)
		if !ok {
			return // admitShard answered 503 + Retry-After
		}
		defer release()
		res, err := runShard(&sh, !local)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	return mux
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Coordinator feeds jobs to worker processes with work-stealing dispatch
// and gathers the results. The zero value is unusable; set Workers to the
// workers' base URLs (e.g. "http://host:8642").
type Coordinator struct {
	Workers []string
	// Client defaults to a client with a generous sweep-scale timeout.
	Client *http.Client
	// ChunkSize is the number of jobs per dispatch (default 1). Small
	// chunks maximize stealing — a worker that finishes early immediately
	// pulls more work — at one HTTP round-trip per chunk; raise it when
	// jobs are tiny relative to the round-trip.
	ChunkSize int
	// Breakers, when non-nil, gates dispatch on each worker's circuit
	// breaker (share the scheduling service's set so both paths agree on
	// peer health): a worker whose breaker is open retires from the run
	// without burning a round-trip, and every posted shard settles the
	// breaker with its outcome.
	Breakers *breaker.Set

	// Stats describes the last Run: populated on return, read-only
	// afterwards. Not synchronized — one Run per Coordinator at a time.
	Stats RunStats
}

// RunStats summarizes one coordinator Run.
type RunStats struct {
	Chunks    int // dispatched units of work
	Requeues  int // chunks re-fed to the queue after a worker failure
	Backoffs  int // 503 overload responses absorbed by waiting and retrying
	CacheHits int // jobs the workers served from their result caches
	RingFills int // jobs the workers filled from their ring owners
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

// wsChunk is one dispatchable unit of a work-stealing run.
type wsChunk struct {
	jobs   []Job
	failed int // distinct workers this chunk has failed on
}

// wsRun is the shared state of one work-stealing Run.
type wsRun struct {
	mu      sync.Mutex
	queue   chan *wsChunk
	pending int  // chunks not yet completed
	live    int  // workers still pulling
	closed  bool // queue closed (done or fatal)
	err     error
	all     []Result
	stats   RunStats
}

// finish closes the queue exactly once; call with r.mu held.
func (r *wsRun) finish(err error) {
	if r.closed {
		return
	}
	r.closed = true
	r.err = err
	close(r.queue)
}

// Run feeds the jobs to the workers as they finish — work-stealing dispatch:
// every worker pulls the next chunk the moment it completes the last, so a
// fast worker takes more of the sweep and a slow one never holds jobs it
// has not started — and returns every job's result (order unspecified; the
// Merge* helpers sort by job id). pl selects the shard platform (nil: the
// paper platform).
//
// Failover: a chunk whose worker fails is requeued for the remaining
// workers and the failing worker retires from this run, so the sweep
// survives losing all but one worker mid-sweep; it fails only when a chunk
// has been rejected by every worker (equivalently: when every worker has
// retired). Requeued jobs are re-executed from their job description —
// results are pure functions of (job, platform) — so the merged output is
// byte-identical whatever the dispatch or failure interleaving.
func (c *Coordinator) Run(ctx context.Context, pl *platform.Platform, jobs []Job) ([]Result, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("sweep: coordinator has no workers")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sweep: no jobs")
	}
	chunk := c.ChunkSize
	if chunk < 1 {
		chunk = 1
	}
	var chunks []*wsChunk
	for off := 0; off < len(jobs); off += chunk {
		end := off + chunk
		if end > len(jobs) {
			end = len(jobs)
		}
		chunks = append(chunks, &wsChunk{jobs: jobs[off:end]})
	}

	r := &wsRun{
		// every requeue retires a worker, so at most len(chunks) +
		// len(Workers) sends ever happen: the buffer makes requeues
		// non-blocking under the mutex
		queue:   make(chan *wsChunk, len(chunks)+len(c.Workers)),
		pending: len(chunks),
		live:    len(c.Workers),
	}
	r.stats.Chunks = len(chunks)
	for _, ch := range chunks {
		r.queue <- ch
	}

	var wg sync.WaitGroup
	for _, worker := range c.Workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			c.pullChunks(ctx, worker, pl, r)
		}(worker)
	}
	wg.Wait()

	c.Stats = r.stats
	if r.err != nil {
		return nil, r.err
	}
	return r.all, nil
}

// pullChunks is one worker's dispatch loop: pull, post, collect; on failure
// requeue the chunk and retire. A 503 is not a failure: the worker is
// shedding load, so the chunk waits out the advertised Retry-After and
// retries the same worker (bounded by maxWorkerBackoffs) before falling
// back to the failover path.
func (c *Coordinator) pullChunks(ctx context.Context, worker string, pl *platform.Platform, r *wsRun) {
	for ch := range r.queue {
		sh := &Shard{Platform: pl, Jobs: ch.jobs}
		res, err := c.dispatch(ctx, worker, sh)
		for backoffs := 0; err != nil && ctx.Err() == nil && backoffs < maxWorkerBackoffs; backoffs++ {
			var oe *overloadError
			if !errors.As(err, &oe) {
				break
			}
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				return
			}
			r.stats.Backoffs++
			r.mu.Unlock()
			select {
			case <-ctx.Done():
			case <-time.After(oe.backoff()):
			}
			res, err = c.dispatch(ctx, worker, sh)
		}
		if err == nil {
			r.mu.Lock()
			r.all = append(r.all, res.Results...)
			r.stats.CacheHits += res.CacheHits
			r.stats.RingFills += res.RingFills
			r.pending--
			if r.pending == 0 {
				r.finish(nil)
			}
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		if r.closed {
			// another worker already ended the run (fatal error or ctx
			// cancel); never send on the closed queue
			r.mu.Unlock()
			return
		}
		ch.failed++
		r.live--
		switch {
		case ctx.Err() != nil:
			r.finish(ctx.Err())
		case ch.failed >= len(c.Workers):
			r.finish(fmt.Errorf("sweep: chunk of %d jobs failed on every worker: %w", len(ch.jobs), err))
		case r.live == 0:
			r.finish(fmt.Errorf("sweep: every worker retired with %d chunks pending: %w", r.pending, err))
		default:
			r.stats.Requeues++
			r.queue <- ch // buffered; never blocks (see Run)
		}
		r.mu.Unlock()
		return // retire this worker for the rest of the run
	}
}

// dispatch is postShard behind the worker's circuit breaker: an open
// breaker fast-fails the chunk (requeue + retire, no round-trip), and a
// posted shard settles the breaker — Success on a clean result, Failure on
// anything else unless the coordinator's own ctx expired (no verdict).
func (c *Coordinator) dispatch(ctx context.Context, worker string, sh *Shard) (*ShardResult, error) {
	if c.Breakers == nil {
		return c.postShard(ctx, worker, sh)
	}
	if !c.Breakers.Allow(worker, time.Now()) {
		return nil, fmt.Errorf("sweep: worker %s: circuit breaker open", worker)
	}
	res, err := c.postShard(ctx, worker, sh)
	var oe *overloadError
	switch {
	case err == nil:
		c.Breakers.Success(worker)
	case ctx.Err() != nil:
		c.Breakers.Cancel(worker)
	case errors.As(err, &oe):
		// a 503 proves the worker alive and answering — overload is
		// backpressure, never a breaker fault
		c.Breakers.Success(worker)
	default:
		c.Breakers.Failure(worker, time.Now())
	}
	return res, err
}

func (c *Coordinator) postShard(ctx context.Context, worker string, sh *Shard) (*ShardResult, error) {
	body, err := json.Marshal(sh)
	if err != nil {
		return nil, err
	}
	url := strings.TrimRight(worker, "/") + "/sweep/run"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, maxShardErrorBytes)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			retry := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
			return nil, &overloadError{worker: worker, retryAfter: retry, msg: e.Error}
		}
		return nil, fmt.Errorf("sweep: worker %s: %s", worker, e.Error)
	}
	var out ShardResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardRespBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("sweep: worker %s: bad response: %w", worker, err)
	}
	if len(out.Results) != len(sh.Jobs) {
		return nil, fmt.Errorf("sweep: worker %s answered %d results for %d jobs", worker, len(out.Results), len(sh.Jobs))
	}
	return &out, nil
}
