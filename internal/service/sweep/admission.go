package sweep

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"oneport/internal/service/admit"
)

// Sweep traffic is the first class the scheduling service's brownout
// ladder sheds, and the worker surface enforces the same verdict: when an
// admission controller is installed (cmd/schedserve -worker -admission),
// every inbound shard acquires ONE Background ticket for its summed job
// cost before any lane starts. A shed answers 503 with a numeric
// Retry-After, which the coordinator treats as backpressure — back off
// and retry — never as a worker fault (no breaker trip, no retirement).

// sweepTenant is the accounting bucket all sweep-shard traffic charges;
// it keeps fill load visible (and quotable) separately from API tenants.
const sweepTenant = "sweep"

// admitGate is the installed controller; nil means shards run ungated.
var admitGate atomic.Pointer[admit.Controller]

// EnableAdmission installs (or with nil, removes) the admission controller
// gating this process's /sweep/run surface. cmd/schedserve passes the
// scheduling service's controller so shards and cold /schedule runs
// contend for the same slots under one brownout ladder.
func EnableAdmission(c *admit.Controller) { admitGate.Store(c) }

// jobCost mirrors the service's cost model (task count × heuristic
// weight) for sweep jobs: a figure job runs the HEFT-vs-ILHA bundle at
// Size tasks, a B-sweep job one ILHA run.
func jobCost(j Job) float64 {
	n := float64(j.Size)
	if n < 1 {
		n = 1
	}
	if j.Kind == KindFigure {
		return n * 4
	}
	return n * 3
}

func shardCost(jobs []Job) float64 {
	total := 0.0
	for _, j := range jobs {
		total += jobCost(j)
	}
	return total
}

// admitShard gates one inbound shard: returns a release func when
// admitted (possibly a no-op when no controller is installed), or writes
// the 503 + Retry-After itself and returns ok=false.
func admitShard(w http.ResponseWriter, r *http.Request, jobs []Job) (func(), bool) {
	c := admitGate.Load()
	if c == nil {
		return func() {}, true
	}
	tk, err := c.Acquire(r.Context(), sweepTenant, admit.Background, shardCost(jobs))
	if err != nil {
		retry := 1
		var se *admit.ShedError
		if errors.As(err, &se) {
			if secs := int(math.Ceil(se.RetryAfter.Seconds())); secs > retry {
				retry = secs
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("sweep: shard shed: %w", err))
		return nil, false
	}
	return tk.Release, true
}

// maxWorkerBackoffs bounds how many consecutive 503s the coordinator
// absorbs for one chunk on one worker before falling back to the normal
// failover path (requeue elsewhere, retire the worker for this run).
const maxWorkerBackoffs = 10

// maxBackoffSleep caps one overload back-off sleep regardless of what
// Retry-After the worker advertised.
const maxBackoffSleep = 30 * time.Second

// overloadError marks a worker 503: explicit backpressure from a live
// worker, carrying its Retry-After. It is deliberately NOT a breaker
// failure — overload must never masquerade as worker death.
type overloadError struct {
	worker     string
	retryAfter time.Duration
	msg        string
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("sweep: worker %s overloaded (retry after %s): %s", e.worker, e.retryAfter, e.msg)
}

// backoff is the sleep before retrying: the worker's hint, clamped.
func (e *overloadError) backoff() time.Duration {
	d := e.retryAfter
	if d < time.Second {
		d = time.Second
	}
	if d > maxBackoffSleep {
		d = maxBackoffSleep
	}
	return d
}
