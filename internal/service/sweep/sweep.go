// Package sweep shards the experiment harness across worker processes: the
// first multi-machine scaling path. A figure sweep (internal/exp, Figures
// 7–12) or a B-sweep (cmd/bsweep) is decomposed into independent jobs; a
// coordinator feeds the jobs to worker processes (schedserve -worker,
// endpoint /sweep/run) with work-stealing dispatch — each worker pulls the
// next chunk as it finishes the last, so fast workers take more of the
// sweep instead of waiting on a static partition — and the partial results
// are merged deterministically — sorted by job id with completeness checked
// — so a sharded sweep reproduces the single-process numbers exactly,
// regardless of worker count, scheduling order or which worker ran which
// job. Workers cache job results keyed by a content hash of (job fields,
// platform), so repeated or overlapping sweeps skip recomputation; cached
// results are the stored values of earlier runs of the same pure job, so
// the merge stays byte-identical.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// Job kinds.
const (
	KindFigure = "figure" // one (figure, size) point: HEFT vs ILHA
	KindBSweep = "bsweep" // one ILHA run at a single chunk size B
)

// Job is one independent unit of a sweep. Its result depends only on the
// job fields and the shard's platform — never on the process that runs it.
type Job struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	// Model names the communication model; empty means "oneport".
	Model string `json:"model,omitempty"`

	// KindFigure: one size of one figure.
	Figure string `json:"figure,omitempty"`
	Size   int    `json:"size"`

	// KindBSweep: one ILHA chunk size on one testbed instance (Size above).
	Testbed string `json:"testbed,omitempty"`
	B       int    `json:"b,omitempty"`
	Scan    int    `json:"scan,omitempty"`
}

// Result is the outcome of one job. Job is echoed back so merging never
// depends on coordinator-side bookkeeping beyond the id.
type Result struct {
	Job   Job        `json:"job"`
	Point *exp.Point `json:"point,omitempty"` // figure jobs
	// B-sweep jobs: the speedup and message count of the single ILHA run.
	Speedup float64 `json:"speedup,omitempty"`
	Comms   int     `json:"comms,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Shard is the wire payload a coordinator sends to one worker. Platform is
// optional; nil means the paper's 10-processor platform, and round-trips
// through the platform JSON codec otherwise (sparse topologies included).
type Shard struct {
	Platform *platform.Platform `json:"platform,omitempty"`
	Jobs     []Job              `json:"jobs"`
}

// ShardResult answers a Shard, one Result per job. CacheHits reports how
// many of the jobs were served from the worker's result cache instead of
// being recomputed; RingFills how many were filled from the owning worker
// across the fleet ring (a subset of the non-hits).
type ShardResult struct {
	Results   []Result `json:"results"`
	CacheHits int      `json:"cache_hits,omitempty"`
	RingFills int      `json:"ring_fills,omitempty"`
}

// FigureJobs decomposes a figure sweep into jobs, one per problem size.
func FigureJobs(fig exp.Figure, model string, sizes []int) []Job {
	jobs := make([]Job, len(sizes))
	for i, n := range sizes {
		jobs[i] = Job{ID: i, Kind: KindFigure, Model: model, Figure: fig.ID, Size: n}
	}
	return jobs
}

// BSweepJobs decomposes a B-sweep into jobs, one per chunk size.
func BSweepJobs(testbed string, size int, model string, scan int, bs []int) []Job {
	jobs := make([]Job, len(bs))
	for i, b := range bs {
		jobs[i] = Job{ID: i, Kind: KindBSweep, Model: model, Testbed: testbed, Size: size, B: b, Scan: scan}
	}
	return jobs
}

// Partition splits jobs round-robin into n shards (some possibly empty
// shards are dropped). Round-robin keeps shards balanced when job cost
// grows with the problem size, which it does for every figure sweep. The
// coordinator no longer partitions up front — it feeds jobs to workers as
// they finish (work-stealing; see Coordinator.Run) — but Partition remains
// for callers that want static shards, e.g. to POST /sweep/run directly.
func Partition(jobs []Job, n int) [][]Job {
	if n < 1 {
		n = 1
	}
	shards := make([][]Job, 0, n)
	buckets := make([][]Job, n)
	for i, j := range jobs {
		buckets[i%n] = append(buckets[i%n], j)
	}
	for _, b := range buckets {
		if len(b) > 0 {
			shards = append(shards, b)
		}
	}
	return shards
}

// RunShard executes a shard's jobs on this process, fanning them out across
// the CPUs with one pooled scheduler scratch per lane. Jobs whose content
// hash is in the worker result cache are served from it (counted in
// ShardResult.CacheHits); the rest are computed and inserted. Per-job
// failures are reported in Result.Err; the shard itself only fails on a
// malformed platform (which poisons every job anyway).
func RunShard(sh *Shard) (*ShardResult, error) {
	return runShard(sh, true)
}

// runShard is RunShard with the fleet switch explicit: ring fills received
// from other workers run with allowFleet false so a shard is never
// forwarded twice.
func runShard(sh *Shard, allowFleet bool) (*ShardResult, error) {
	pl := sh.Platform
	if pl == nil {
		pl = platform.Paper()
	}
	out := &ShardResult{Results: make([]Result, len(sh.Jobs))}
	lanes := runtime.GOMAXPROCS(0)
	if lanes > len(sh.Jobs) {
		lanes = len(sh.Jobs)
	}
	var next int
	var hits, ringFills atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// per-lane scratch: jobs on a lane run one after another, so
			// the one-run-at-a-time Tuning rule holds by construction.
			// ProbeParallelism 1: the lanes already saturate the CPUs, so
			// per-run probe fan-out would only add contention.
			tune := &heuristics.Tuning{ProbeParallelism: 1, Scratch: heuristics.NewScratch()}
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(sh.Jobs) {
					return
				}
				out.Results[i] = runJobCached(sh.Jobs[i], pl, tune, allowFleet, &hits, &ringFills)
			}
		}()
	}
	wg.Wait()
	out.CacheHits = int(hits.Load())
	out.RingFills = int(ringFills.Load())
	return out, nil
}

// runJobCached serves a job from the worker result cache when its content
// hash is present; on a miss it fills from the key's owning worker when a
// fleet ring is installed (adopting the owner's result into the local
// cache), and computes locally otherwise. Jobs are pure functions of (job
// fields, platform) — Result.Job.ID excluded — so a cached or fleet-filled
// value is the byte-identical outcome of re-running the job.
func runJobCached(job Job, pl *platform.Platform, tune *heuristics.Tuning, allowFleet bool, hits, ringFills *atomic.Int64) Result {
	key := jobKey(job, pl)
	if res, ok := workerCache.get(key, job); ok {
		hits.Add(1)
		return res
	}
	if allowFleet {
		if res, ok := fleetFill(key, job, pl); ok {
			ringFills.Add(1)
			workerCache.add(key, res)
			return res
		}
	}
	res := runJob(job, pl, tune)
	if res.Err == "" {
		workerCache.add(key, res)
	}
	return res
}

func runJob(job Job, pl *platform.Platform, tune *heuristics.Tuning) Result {
	res := Result{Job: job}
	modelName := job.Model
	if modelName == "" {
		modelName = "oneport"
	}
	model, err := cli.ParseModel(modelName)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	switch job.Kind {
	case KindFigure:
		fig, err := exp.FigureByID(job.Figure)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		p, err := exp.RunPointSpecTuned(exp.PointSpec{Figure: fig, Size: job.Size}, pl, model, tune)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Point = &p
	case KindBSweep:
		g, err := testbeds.ByName(job.Testbed, job.Size, exp.CommRatio)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		fn, err := heuristics.ByNameTuned("ilha", heuristics.ILHAOptions{B: job.B, ScanDepth: job.Scan}, tune)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		s, err := fn(g, pl, model)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		if err := sched.Validate(g, pl, s, model); err != nil {
			res.Err = fmt.Sprintf("B=%d: %v", job.B, err)
			return res
		}
		res.Speedup = pl.SequentialTime(g.TotalWeight()) / s.Makespan()
		res.Comms = s.CommCount()
	default:
		res.Err = fmt.Sprintf("sweep: unknown job kind %q", job.Kind)
	}
	return res
}

// mergeCheck sorts results by job id and verifies each expected id occurs
// exactly once with no error — the deterministic-merge precondition shared
// by MergeFigure and MergeBSweep.
func mergeCheck(results []Result, want int) ([]Result, error) {
	if len(results) != want {
		return nil, fmt.Errorf("sweep: merged %d results, want %d", len(results), want)
	}
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Job.ID < sorted[j].Job.ID })
	for i, r := range sorted {
		if r.Err != "" {
			return nil, fmt.Errorf("sweep: job %d failed: %s", r.Job.ID, r.Err)
		}
		if r.Job.ID != i {
			return nil, fmt.Errorf("sweep: job ids not contiguous: got %d at position %d", r.Job.ID, i)
		}
	}
	return sorted, nil
}

// MergeFigure reassembles figure-job results into the figure's Series,
// exactly as the single-process exp.Run would have produced it.
func MergeFigure(fig exp.Figure, model sched.Model, results []Result, wantJobs int) (*exp.Series, error) {
	sorted, err := mergeCheck(results, wantJobs)
	if err != nil {
		return nil, err
	}
	points := make([]exp.Point, 0, len(sorted))
	for _, r := range sorted {
		if r.Job.Kind != KindFigure || r.Point == nil {
			return nil, fmt.Errorf("sweep: job %d is not a figure result", r.Job.ID)
		}
		points = append(points, *r.Point)
	}
	return exp.AssembleSeries(fig, model, points)
}

// MergeBSweep reassembles B-sweep results into the exp.BSweep map shape:
// speedup per chunk size.
func MergeBSweep(results []Result, wantJobs int) (map[int]float64, error) {
	sorted, err := mergeCheck(results, wantJobs)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(sorted))
	for _, r := range sorted {
		if r.Job.Kind != KindBSweep {
			return nil, fmt.Errorf("sweep: job %d is not a bsweep result", r.Job.ID)
		}
		if _, dup := out[r.Job.B]; dup {
			return nil, fmt.Errorf("sweep: duplicate B=%d", r.Job.B)
		}
		out[r.Job.B] = r.Speedup
	}
	return out, nil
}
