package sweep

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"oneport/internal/platform"
	"oneport/internal/service/breaker"
)

// sweepLocalHeader marks a shard as a ring fill from another worker: the
// receiver must execute it locally and never forward again, so a
// misconfigured fleet cannot relay a job in circles.
const sweepLocalHeader = "X-Sweep-Local"

// fleetEpochHeader tags a ring fill with the membership epoch the sender
// routed by; the owner serves it only under the same epoch (409
// otherwise), mirroring the scheduling service's relay invariant.
const fleetEpochHeader = "X-Ring-Epoch"

// fleetFillTimeout bounds one ring fill end to end. A fill can legally
// take as long as the job itself (the owner computes on its own miss), but
// a hung owner must not stall a sweep lane indefinitely — past the bound
// the lane computes locally.
const fleetFillTimeout = 2 * time.Minute

// Fleet routes worker job-cache fills through the scheduling service's
// consistent ring, so overlapping sweeps across a fleet of workers share
// one logical job cache: a job whose content key is owned by another
// worker is filled from that worker (which computes at most once and
// caches) instead of being recomputed on every machine. All callbacks
// resolve against the service's live ring state, so a membership swap
// re-routes sweep fills the same instant it re-routes /schedule relays.
type Fleet struct {
	// Self is this worker's advertised base URL.
	Self string
	// Owner resolves a job content key to its owning worker under the
	// current epoch (the service's Server.RingOwner).
	Owner func(sum [sha256.Size]byte) (owner string, isSelf bool, epoch uint64, ok bool)
	// Epoch reports the membership epoch this worker is serving
	// (Server.RingEpoch); inbound fills tagged differently are rejected.
	Epoch func() uint64
	// Breakers is the per-peer circuit-breaker set shared with the
	// scheduling service's relay path, so both paths agree on peer
	// health. nil disables breaker gating (every fill is attempted).
	Breakers *breaker.Set
	// Client defaults to a client bounded by fleetFillTimeout.
	Client *http.Client
}

// fleetState is the installed Fleet; nil means fills stay local.
var fleetState atomic.Pointer[Fleet]

// EnableFleet installs (or with nil, removes) the fleet routing for this
// process's worker cache. cmd/schedserve calls it when a worker runs with
// ring peers configured.
func EnableFleet(f *Fleet) { fleetState.Store(f) }

func (f *Fleet) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return &http.Client{Timeout: fleetFillTimeout}
}

// currentEpoch is the epoch inbound fills are validated against: the
// installed fleet's, or 0 when this worker has none (so any tagged fill
// arriving at a fleet-less worker is rejected as skew).
func currentEpoch() uint64 {
	if f := fleetState.Load(); f != nil && f.Epoch != nil {
		return f.Epoch()
	}
	return 0
}

// fleetFill asks the key's owning worker to run one job, adopting its
// result. ok=false for any reason — no fleet, we own the key, breaker
// open, transport failure, epoch skew, owner-side job error — degrades to
// local compute. Breaker attribution mirrors the scheduling service:
// transport failures and owner 5xx/undecodable bodies are the owner's
// fault; epoch skew and owner 4xx prove it alive.
func fleetFill(key [sha256.Size]byte, job Job, pl *platform.Platform) (Result, bool) {
	f := fleetState.Load()
	if f == nil || f.Owner == nil {
		return Result{}, false
	}
	owner, isSelf, epoch, active := f.Owner(key)
	if !active || isSelf {
		return Result{}, false
	}
	if f.Breakers != nil && !f.Breakers.Allow(owner, time.Now()) {
		return Result{}, false
	}
	success := func() {
		if f.Breakers != nil {
			f.Breakers.Success(owner)
		}
	}
	failure := func() {
		if f.Breakers != nil {
			f.Breakers.Failure(owner, time.Now())
		}
	}
	body, err := json.Marshal(&Shard{Platform: pl, Jobs: []Job{job}})
	if err != nil {
		success() // our own encoding bug is not the owner's fault
		return Result{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), fleetFillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/sweep/run", bytes.NewReader(body))
	if err != nil {
		success()
		return Result{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(sweepLocalHeader, "1")
	req.Header.Set(fleetEpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := f.client().Do(req)
	if err != nil {
		failure()
		return Result{}, false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusConflict:
		success() // epoch skew: alive, just mid-membership-push
		return Result{}, false
	case resp.StatusCode >= 500:
		failure()
		return Result{}, false
	case resp.StatusCode != http.StatusOK:
		success() // 4xx: our shard's fault, not the owner's health
		return Result{}, false
	}
	var out ShardResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardRespBytes)).Decode(&out); err != nil || len(out.Results) != 1 {
		failure() // a 200 that does not decode to one result is an owner fault
		return Result{}, false
	}
	success()
	res := out.Results[0]
	if res.Err != "" {
		// the job itself failed on the owner; recompute locally so the
		// error (or a transient fix) is diagnosed here, and never cache it
		return Result{}, false
	}
	res.Job = job // rebind to the requesting job's identity (ID differs across sweeps)
	return res, true
}
