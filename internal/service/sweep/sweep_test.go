package sweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"oneport/internal/exp"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// twoWorkers starts two independent in-process workers (each serving the
// real /sweep/run handler, exactly what `schedserve -worker` mounts) and
// returns a coordinator over both.
func twoWorkers(t *testing.T) *Coordinator {
	t.Helper()
	w1 := httptest.NewServer(Handler())
	t.Cleanup(w1.Close)
	w2 := httptest.NewServer(Handler())
	t.Cleanup(w2.Close)
	return &Coordinator{Workers: []string{w1.URL, w2.URL}}
}

// TestShardedFigureMatchesSingleProcess is the acceptance criterion: a
// figure sweep sharded across two worker processes merges to exactly the
// numbers the single-process exp.Run (cmd/experiments) produces.
func TestShardedFigureMatchesSingleProcess(t *testing.T) {
	fig, err := exp.FigureByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	sizes := exp.QuickSizes()
	pl := platform.Paper()

	want, err := exp.Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	co := twoWorkers(t)
	jobs := FigureJobs(fig, "oneport", sizes)
	if got := len(Partition(jobs, len(co.Workers))); got != 2 {
		t.Fatalf("expected 2 shards, got %d", got)
	}
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Points) != len(want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got.Points[i], want.Points[i])
		}
	}
	if got.Table() != want.Table() {
		t.Fatal("rendered tables differ")
	}
}

// TestShardedBSweepMatchesSingleProcess shards a B-sweep and compares to
// the in-process exp.BSweep.
func TestShardedBSweepMatchesSingleProcess(t *testing.T) {
	pl := platform.Paper()
	bs := []int{1, 2, 4, 7, 10, 20, 38}
	want, err := exp.BSweep("lu", 20, pl, sched.OnePort, bs)
	if err != nil {
		t.Fatal(err)
	}

	co := twoWorkers(t)
	jobs := BSweepJobs("lu", 20, "oneport", 0, bs)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeBSweep(results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for b, sp := range want {
		if got[b] != sp {
			t.Fatalf("B=%d: %g vs %g", b, got[b], sp)
		}
	}
}

// TestCoordinatorFailover kills one worker: the sweep must still complete
// (the dead worker's shard fails over to the live one) and merge to the
// same series.
func TestCoordinatorFailover(t *testing.T) {
	fig, err := exp.FigureByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{20, 30, 40}
	pl := platform.Paper()
	want, err := exp.Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	live := httptest.NewServer(Handler())
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	defer dead.Close()

	co := &Coordinator{Workers: []string{dead.URL, live.URL}}
	jobs := FigureJobs(fig, "oneport", sizes)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs after failover", i)
		}
	}
}

// TestCoordinatorAllWorkersDown: when every worker rejects a shard the
// sweep fails with the underlying error, not a bogus partial merge.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer dead.Close()
	co := &Coordinator{Workers: []string{dead.URL}}
	fig, _ := exp.FigureByID("fig7")
	if _, err := co.Run(context.Background(), nil, FigureJobs(fig, "oneport", []int{20})); err == nil {
		t.Fatal("want error when every worker is down")
	}
}

// TestMergeRejectsIncomplete pins the determinism guard: a lost or
// duplicated job must fail the merge instead of silently skewing numbers.
func TestMergeRejectsIncomplete(t *testing.T) {
	fig, _ := exp.FigureByID("fig8")
	jobs := FigureJobs(fig, "oneport", []int{20, 40})
	sh := Shard{Jobs: jobs}
	res, err := RunShard(&sh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFigure(fig, sched.OnePort, res.Results[:1], len(jobs)); err == nil {
		t.Fatal("missing job must fail the merge")
	}
	dup := append(append([]Result(nil), res.Results...), res.Results[0])
	if _, err := MergeFigure(fig, sched.OnePort, dup, len(jobs)); err == nil {
		t.Fatal("duplicated job must fail the merge")
	}
	if _, err := MergeFigure(fig, sched.OnePort, dup, len(dup)); err == nil {
		t.Fatal("non-contiguous ids must fail the merge")
	}
}

// TestShardPlatformRoundTrip runs a shard on a non-default platform sent
// over the wire through the platform JSON codec.
func TestShardPlatformRoundTrip(t *testing.T) {
	small, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	fig, _ := exp.FigureByID("fig8")
	sizes := []int{20, 40}
	want, err := exp.Run(fig, small, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}
	co := twoWorkers(t)
	results, err := co.Run(context.Background(), small, FigureJobs(fig, "oneport", sizes))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(sizes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs on custom platform", i)
		}
	}
}
