package sweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"oneport/internal/exp"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// twoWorkers starts two independent in-process workers (each serving the
// real /sweep/run handler, exactly what `schedserve -worker` mounts) and
// returns a coordinator over both.
func twoWorkers(t *testing.T) *Coordinator {
	t.Helper()
	w1 := httptest.NewServer(Handler())
	t.Cleanup(w1.Close)
	w2 := httptest.NewServer(Handler())
	t.Cleanup(w2.Close)
	return &Coordinator{Workers: []string{w1.URL, w2.URL}}
}

// TestShardedFigureMatchesSingleProcess is the acceptance criterion: a
// figure sweep sharded across two worker processes merges to exactly the
// numbers the single-process exp.Run (cmd/experiments) produces.
func TestShardedFigureMatchesSingleProcess(t *testing.T) {
	fig, err := exp.FigureByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	sizes := exp.QuickSizes()
	pl := platform.Paper()

	want, err := exp.Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	co := twoWorkers(t)
	jobs := FigureJobs(fig, "oneport", sizes)
	if got := len(Partition(jobs, len(co.Workers))); got != 2 {
		t.Fatalf("expected 2 shards, got %d", got)
	}
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Points) != len(want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got.Points[i], want.Points[i])
		}
	}
	if got.Table() != want.Table() {
		t.Fatal("rendered tables differ")
	}
}

// TestShardedBSweepMatchesSingleProcess shards a B-sweep and compares to
// the in-process exp.BSweep.
func TestShardedBSweepMatchesSingleProcess(t *testing.T) {
	pl := platform.Paper()
	bs := []int{1, 2, 4, 7, 10, 20, 38}
	want, err := exp.BSweep("lu", 20, pl, sched.OnePort, bs)
	if err != nil {
		t.Fatal(err)
	}

	co := twoWorkers(t)
	jobs := BSweepJobs("lu", 20, "oneport", 0, bs)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeBSweep(results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for b, sp := range want {
		if got[b] != sp {
			t.Fatalf("B=%d: %g vs %g", b, got[b], sp)
		}
	}
}

// TestCoordinatorFailover kills one worker: the sweep must still complete
// (the dead worker's shard fails over to the live one) and merge to the
// same series.
func TestCoordinatorFailover(t *testing.T) {
	fig, err := exp.FigureByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{20, 30, 40}
	pl := platform.Paper()
	want, err := exp.Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	live := httptest.NewServer(Handler())
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	defer dead.Close()

	co := &Coordinator{Workers: []string{dead.URL, live.URL}}
	jobs := FigureJobs(fig, "oneport", sizes)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs after failover", i)
		}
	}
}

// TestCoordinatorAllWorkersDown: when every worker rejects a shard the
// sweep fails with the underlying error, not a bogus partial merge.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer dead.Close()
	co := &Coordinator{Workers: []string{dead.URL}}
	fig, _ := exp.FigureByID("fig7")
	if _, err := co.Run(context.Background(), nil, FigureJobs(fig, "oneport", []int{20})); err == nil {
		t.Fatal("want error when every worker is down")
	}
}

// TestMergeRejectsIncomplete pins the determinism guard: a lost or
// duplicated job must fail the merge instead of silently skewing numbers.
func TestMergeRejectsIncomplete(t *testing.T) {
	fig, _ := exp.FigureByID("fig8")
	jobs := FigureJobs(fig, "oneport", []int{20, 40})
	sh := Shard{Jobs: jobs}
	res, err := RunShard(&sh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFigure(fig, sched.OnePort, res.Results[:1], len(jobs)); err == nil {
		t.Fatal("missing job must fail the merge")
	}
	dup := append(append([]Result(nil), res.Results...), res.Results[0])
	if _, err := MergeFigure(fig, sched.OnePort, dup, len(jobs)); err == nil {
		t.Fatal("duplicated job must fail the merge")
	}
	if _, err := MergeFigure(fig, sched.OnePort, dup, len(dup)); err == nil {
		t.Fatal("non-contiguous ids must fail the merge")
	}
}

// TestShardPlatformRoundTrip runs a shard on a non-default platform sent
// over the wire through the platform JSON codec.
func TestShardPlatformRoundTrip(t *testing.T) {
	small, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	fig, _ := exp.FigureByID("fig8")
	sizes := []int{20, 40}
	want, err := exp.Run(fig, small, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}
	co := twoWorkers(t)
	results, err := co.Run(context.Background(), small, FigureJobs(fig, "oneport", sizes))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(sizes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs on custom platform", i)
		}
	}
}

// TestWorkStealingMidSweepFailure kills a worker mid-sweep: it serves its
// first chunk, then starts failing. The failed chunk must be requeued onto
// the surviving worker and the merged series must stay byte-identical to
// the single-process run — the failover acceptance criterion under
// work-stealing dispatch.
func TestWorkStealingMidSweepFailure(t *testing.T) {
	fig, err := exp.FigureByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{10, 20, 30, 40, 50}
	pl := platform.Paper()
	want, err := exp.Run(fig, pl, sched.OnePort, sizes)
	if err != nil {
		t.Fatal(err)
	}

	live := httptest.NewServer(Handler())
	defer live.Close()
	real := Handler()
	var served atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			http.Error(w, "worker crashed mid-sweep", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	co := &Coordinator{Workers: []string{flaky.URL, live.URL}}
	jobs := FigureJobs(fig, "oneport", sizes)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() < 2 {
		t.Fatal("flaky worker never got a second chunk; the failure path did not run")
	}
	if co.Stats.Requeues == 0 {
		t.Fatal("no chunk was requeued after the mid-sweep failure")
	}
	got, err := MergeFigure(fig, sched.OnePort, results, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs after mid-sweep failover:\n got %+v\nwant %+v", i, got.Points[i], want.Points[i])
		}
	}
	if got.Table() != want.Table() {
		t.Fatal("rendered tables differ after mid-sweep failover")
	}
}

// TestRepeatedSweepWorkerCacheHits runs the same sweep twice against the
// same workers: the second run must be served from the worker result caches
// (every job a hit) and still merge to the identical series.
func TestRepeatedSweepWorkerCacheHits(t *testing.T) {
	ResetWorkerCache()
	defer ResetWorkerCache()

	fig, err := exp.FigureByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{8, 12, 16}
	co := twoWorkers(t)
	jobs := FigureJobs(fig, "oneport", sizes)

	first, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if co.Stats.CacheHits != 0 {
		t.Fatalf("cold sweep reported %d cache hits", co.Stats.CacheHits)
	}
	wantSeries, err := MergeFigure(fig, sched.OnePort, first, len(jobs))
	if err != nil {
		t.Fatal(err)
	}

	second, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if co.Stats.CacheHits != len(jobs) {
		t.Fatalf("repeated sweep: %d cache hits, want %d", co.Stats.CacheHits, len(jobs))
	}
	gotSeries, err := MergeFigure(fig, sched.OnePort, second, len(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if gotSeries.Table() != wantSeries.Table() {
		t.Fatal("cached sweep merged to a different series")
	}

	// overlapping sweep: one shared size, one new — only the shared one hits
	overlap := FigureJobs(fig, "oneport", []int{12, 24})
	if _, err := co.Run(context.Background(), nil, overlap); err != nil {
		t.Fatal(err)
	}
	if co.Stats.CacheHits != 1 {
		t.Fatalf("overlapping sweep: %d cache hits, want 1", co.Stats.CacheHits)
	}
}

// TestWorkerCacheKeyedByContent pins the cache key: the job ID is excluded
// (the same point under a different ID hits) while every content field and
// the platform split it.
func TestWorkerCacheKeyedByContent(t *testing.T) {
	pl := platform.Paper()
	base := Job{ID: 0, Kind: KindFigure, Model: "oneport", Figure: "fig8", Size: 20}
	key := jobKey(base, pl)

	renumbered := base
	renumbered.ID = 7
	if jobKey(renumbered, pl) != key {
		t.Fatal("job ID changed the key")
	}
	for name, mut := range map[string]func(*Job){
		"kind":   func(j *Job) { j.Kind = KindBSweep },
		"model":  func(j *Job) { j.Model = "macro" },
		"figure": func(j *Job) { j.Figure = "fig9" },
		"size":   func(j *Job) { j.Size = 30 },
		"b":      func(j *Job) { j.B = 4 },
		"scan":   func(j *Job) { j.Scan = 2 },
	} {
		alt := base
		mut(&alt)
		if jobKey(alt, pl) == key {
			t.Fatalf("changing %s did not change the key", name)
		}
	}
	small, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	if jobKey(base, small) == key {
		t.Fatal("changing the platform did not change the key")
	}
}
