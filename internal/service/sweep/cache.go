package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"oneport/internal/lru"
	"oneport/internal/platform"
)

// jobKeySchema versions the job content encoding; bump on incompatible
// change so results cached by an older worker build can never be served.
const jobKeySchema = "oneport-sweepjob/v1"

// workerCacheSize bounds the worker-side result cache. Entries are a few
// hundred bytes (a Point or a speedup), so even a full cache is small; the
// cap exists so an unbounded stream of distinct sweeps cannot grow worker
// memory forever.
const workerCacheSize = 4096

// jobKey is the content hash identifying a job's result: the SHA-256 of
// (kind, model, figure/testbed, size, B, scan, platform). The job ID is
// deliberately excluded — it names the job's position inside one sweep, not
// its content — so overlapping sweeps (the same figure at a shared size,
// a re-run after a coordinator restart) hit the cache across sweep
// boundaries. The platform hashes as raw cycle-time and link float bits,
// exactly like the scheduling service's canonical request key.
func jobKey(j Job, pl *platform.Platform) [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	str(jobKeySchema)
	str(j.Kind)
	str(j.Model)
	str(j.Figure)
	str(j.Testbed)
	u64(uint64(j.Size))
	u64(uint64(j.B))
	u64(uint64(j.Scan))
	u64(uint64(pl.NumProcs()))
	for i := 0; i < pl.NumProcs(); i++ {
		u64(math.Float64bits(pl.CycleTime(i)))
	}
	for q := 0; q < pl.NumProcs(); q++ {
		for r := 0; r < pl.NumProcs(); r++ {
			u64(math.Float64bits(pl.Link(q, r)))
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// resultCache is a fixed-capacity LRU over job results keyed by content
// hash, the worker-side counterpart of the service's response cache (both
// run on the lru.Core mechanics). Stored results are immutable
// (Result.Point is never mutated after insertion); get returns a copy with
// the requesting job's identity spliced in, since the same content can
// appear under different IDs in different sweeps.
type resultCache struct {
	mu   sync.Mutex
	core *lru.Core[[sha256.Size]byte, Result]
}

// workerCache is the per-process result cache: one worker process, one
// cache, shared by every shard it serves.
var workerCache = newResultCache(workerCacheSize)

func newResultCache(max int) *resultCache {
	return &resultCache{core: lru.New[[sha256.Size]byte, Result](max)}
}

// get returns the cached result rebound to the requesting job, or false.
func (c *resultCache) get(key [sha256.Size]byte, job Job) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.core.Get(key)
	if !ok {
		return Result{}, false
	}
	res.Job = job
	return res, true
}

// add inserts a computed result, evicting the least recently used entry
// when full. The caller must not mutate res.Point afterwards.
func (c *resultCache) add(key [sha256.Size]byte, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.core.Add(key, res)
	for {
		if _, _, ok := c.core.EvictOver(); !ok {
			return
		}
	}
}

// ResetWorkerCache empties the worker result cache; tests asserting exact
// hit counts call it to start from a known state.
func ResetWorkerCache() {
	workerCache.mu.Lock()
	defer workerCache.mu.Unlock()
	workerCache.core.Reset()
}
