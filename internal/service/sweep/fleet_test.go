package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"oneport/internal/service/breaker"
)

// fleetStub is a fake ring owner: it records the fill protocol headers and
// answers according to its mode — a canned result (recognizable Speedup no
// real run could produce), an epoch-skew 409, or a 500.
type fleetStub struct {
	srv   *httptest.Server
	fills atomic.Int64
	mode  atomic.Value // "serve" | "skew" | "boom"
	local atomic.Value // last X-Sweep-Local header
	epoch atomic.Value // last X-Ring-Epoch header
}

const stubSpeedup = 42.5 // impossible for a real run (10 processors)

func newFleetStub(t *testing.T) *fleetStub {
	t.Helper()
	st := &fleetStub{}
	st.mode.Store("serve")
	st.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.fills.Add(1)
		st.local.Store(r.Header.Get(sweepLocalHeader))
		st.epoch.Store(r.Header.Get(fleetEpochHeader))
		switch st.mode.Load() {
		case "skew":
			w.WriteHeader(http.StatusConflict)
			return
		case "boom":
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var sh Shard
		if err := json.NewDecoder(r.Body).Decode(&sh); err != nil || len(sh.Jobs) != 1 {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		res := Result{Job: sh.Jobs[0], Speedup: stubSpeedup, Comms: 7}
		_ = json.NewEncoder(w).Encode(&ShardResult{Results: []Result{res}})
	}))
	t.Cleanup(st.srv.Close)
	return st
}

// TestFleetRingFill drives the full fleet-fill protocol against a stub
// owner: a cold job owned elsewhere is filled from the owner (tagged with
// the local flag and the routing epoch) and adopted into the local cache;
// epoch skew and owner faults degrade to local compute with the right
// breaker verdicts; and an open breaker keeps later fills off the wire.
func TestFleetRingFill(t *testing.T) {
	ResetWorkerCache()
	t.Cleanup(ResetWorkerCache)
	t.Cleanup(func() { EnableFleet(nil) })

	stub := newFleetStub(t)
	brk := breaker.NewSet(breaker.Config{Jitter: -1})
	EnableFleet(&Fleet{
		Self:     "http://self.invalid",
		Owner:    func([sha256.Size]byte) (string, bool, uint64, bool) { return stub.srv.URL, false, 7, true },
		Epoch:    func() uint64 { return 7 },
		Breakers: brk,
	})

	job := func(b int) Job { return Job{Kind: KindBSweep, Testbed: "lu", Size: 20, Model: "oneport", B: b} }
	run := func(j Job) (*ShardResult, Result) {
		t.Helper()
		out, err := RunShard(&Shard{Jobs: []Job{j}})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Results[0].Err; got != "" {
			t.Fatalf("job failed: %s", got)
		}
		return out, out.Results[0]
	}

	// cold job owned by the stub: filled, not computed
	out, res := run(job(4))
	if out.RingFills != 1 || res.Speedup != stubSpeedup {
		t.Fatalf("fill not adopted: ring_fills=%d speedup=%v", out.RingFills, res.Speedup)
	}
	if n := stub.fills.Load(); n != 1 {
		t.Fatalf("owner saw %d fills, want 1", n)
	}
	if stub.local.Load() != "1" || stub.epoch.Load() != "7" {
		t.Fatalf("fill protocol headers: local=%q epoch=%q, want 1/7", stub.local.Load(), stub.epoch.Load())
	}

	// the fill was adopted: the repeat is a local cache hit, no round-trip
	out, res = run(job(4))
	if out.CacheHits != 1 || out.RingFills != 0 || res.Speedup != stubSpeedup || stub.fills.Load() != 1 {
		t.Fatalf("adopted fill not cached: hits=%d fills=%d speedup=%v owner=%d",
			out.CacheHits, out.RingFills, res.Speedup, stub.fills.Load())
	}

	// epoch skew: the owner answers 409; the lane computes locally and the
	// breaker stays closed (a skewed peer is alive, not sick)
	stub.mode.Store("skew")
	out, res = run(job(5))
	if out.RingFills != 0 || res.Speedup == stubSpeedup {
		t.Fatalf("skewed fill was adopted: ring_fills=%d speedup=%v", out.RingFills, res.Speedup)
	}
	if got := brk.Get(stub.srv.URL).CurrentState(time.Now()); got != breaker.Closed {
		t.Fatalf("breaker %v after epoch skew, want closed", got)
	}

	// owner 5xx opens the breaker...
	stub.mode.Store("boom")
	if _, res = run(job(6)); res.Speedup == stubSpeedup {
		t.Fatal("5xx fill was adopted")
	}
	if got := brk.Get(stub.srv.URL).CurrentState(time.Now()); got != breaker.Open {
		t.Fatalf("breaker %v after owner 5xx, want open", got)
	}
	// ...so the next cold job computes locally without touching the wire
	before := stub.fills.Load()
	if _, res = run(job(7)); res.Speedup == stubSpeedup {
		t.Fatal("fill served through an open breaker")
	}
	if stub.fills.Load() != before {
		t.Fatalf("open breaker still sent a fill (owner saw %d, want %d)", stub.fills.Load(), before)
	}
}

// TestFleetInboundFillGuard pins the owner-side half of the protocol: a
// tagged fill is served only under the epoch it was routed by (409
// otherwise), and a served fill never forwards again, even when this
// worker's own ring would route the job elsewhere.
func TestFleetInboundFillGuard(t *testing.T) {
	ResetWorkerCache()
	t.Cleanup(ResetWorkerCache)
	t.Cleanup(func() { EnableFleet(nil) })

	// this worker's fleet routes everything to a stub that must never be hit
	stub := newFleetStub(t)
	EnableFleet(&Fleet{
		Self:  "http://self.invalid",
		Owner: func([sha256.Size]byte) (string, bool, uint64, bool) { return stub.srv.URL, false, 7, true },
		Epoch: func() uint64 { return 7 },
	})
	worker := httptest.NewServer(Handler())
	t.Cleanup(worker.Close)

	post := func(epoch string) *http.Response {
		t.Helper()
		body, err := json.Marshal(&Shard{Jobs: []Job{{Kind: KindBSweep, Testbed: "lu", Size: 20, Model: "oneport", B: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, worker.URL+"/sweep/run", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(sweepLocalHeader, "1")
		req.Header.Set(fleetEpochHeader, epoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// wrong epoch: rejected before any job runs, current epoch echoed back
	resp := post("99")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-epoch fill answered %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(fleetEpochHeader); got != "7" {
		t.Fatalf("409 echoed epoch %q, want 7", got)
	}
	resp.Body.Close()

	// matching epoch: served locally — computed here, never re-forwarded
	resp = post(strconv.FormatUint(7, 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching-epoch fill answered %d, want 200", resp.StatusCode)
	}
	var out ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Results[0].Err != "" {
		t.Fatalf("fill failed: %s", out.Results[0].Err)
	}
	if out.Results[0].Speedup == stubSpeedup || out.RingFills != 0 {
		t.Fatal("inbound fill was re-forwarded to this worker's own ring")
	}
	if stub.fills.Load() != 0 {
		t.Fatalf("stub owner saw %d fills from an inbound local shard, want 0", stub.fills.Load())
	}
}
