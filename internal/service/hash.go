package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// keySchema versions the canonical encoding; bump on incompatible change so
// stale cache entries (or cross-version worker fleets) can never collide.
const keySchema = "oneport-schedreq/v1"

// CanonicalKey returns the content hash identifying a request's result: the
// hex SHA-256 of a canonical binary encoding of (graph, platform,
// heuristic, model, options). Two requests get the same key iff they
// describe the same scheduling problem:
//
//   - graph edges are sorted by (from, to), so edge insertion order — a
//     construction artifact — does not split the cache;
//   - the platform encodes as raw cycle-time and link-matrix float bits
//     (+Inf wires included), so sparse topologies hash faithfully;
//   - Options.ProbeParallelism is excluded: it changes how fast the
//     schedule is computed, never the schedule itself.
//
// The model string is normalized through Request.normalize before hashing,
// so aliases ("macro" / "macrodataflow") share a key.
func CanonicalKey(r *Request) string {
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	str(keySchema)
	str(r.Heuristic)
	str(r.Model)
	u64(uint64(r.Options.B))
	u64(uint64(r.Options.ScanDepth))

	g := r.Graph
	u64(uint64(g.NumNodes()))
	for v := 0; v < g.NumNodes(); v++ {
		f64(g.Weight(v))
		str(g.Label(v))
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	u64(uint64(len(edges)))
	for _, e := range edges {
		u64(uint64(e.From))
		u64(uint64(e.To))
		f64(e.Data)
	}

	pl := r.Platform
	u64(uint64(pl.NumProcs()))
	for i := 0; i < pl.NumProcs(); i++ {
		f64(pl.CycleTime(i))
	}
	for q := 0; q < pl.NumProcs(); q++ {
		for rr := 0; rr < pl.NumProcs(); rr++ {
			f64(pl.Link(q, rr))
		}
	}

	return hex.EncodeToString(h.Sum(nil))
}
