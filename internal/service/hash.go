package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"slices"
	"sync"

	"oneport/internal/graph"
)

// keySchema versions the canonical encoding; bump on incompatible change so
// stale cache entries (or cross-version worker fleets) can never collide.
const keySchema = "oneport-schedreq/v1"

// keyScratch is the pooled canonicalization state of one CanonicalSum call:
// the canonical byte encoding under construction and the edge buffer it
// sorts. Pooling both keeps the steady-state key computation free of
// per-request allocations — the encoding is rebuilt in place and hashed
// with a one-shot sha256.Sum256.
type keyScratch struct {
	buf   []byte
	edges []graph.Edge
}

var keyPool = sync.Pool{New: func() any { return new(keyScratch) }}

// CanonicalSum returns the content hash identifying a request's result: the
// SHA-256 of a canonical binary encoding of (graph, platform, heuristic,
// model, options). Two requests get the same sum iff they describe the same
// scheduling problem:
//
//   - graph edges are sorted by (from, to), so edge insertion order — a
//     construction artifact — does not split the cache;
//   - the platform encodes as raw cycle-time and link-matrix float bits
//     (+Inf wires included), so sparse topologies hash faithfully;
//   - Options.ProbeParallelism is excluded: it changes how fast the
//     schedule is computed, never the schedule itself.
//
// The model string is normalized through Request.normalize before hashing,
// so aliases ("macro" / "macrodataflow") share a key.
func CanonicalSum(r *Request) (sum [sha256.Size]byte) {
	ks := keyPool.Get().(*keyScratch)
	// the release is deferred so even a panicking graph accessor cannot
	// leak the scratch out of the pool (the scratchpair invariant); the
	// grown buffers are stashed back on ks before the hash is taken, so
	// the deferred Put always returns the largest capacity seen
	defer keyPool.Put(ks)
	b := ks.buf[:0]
	u64 := func(v uint64) {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		b = append(b, s...)
	}

	str(keySchema)
	str(r.Heuristic)
	str(r.Model)
	u64(uint64(r.Options.B))
	u64(uint64(r.Options.ScanDepth))

	g := r.Graph
	u64(uint64(g.NumNodes()))
	for v := 0; v < g.NumNodes(); v++ {
		f64(g.Weight(v))
		str(g.Label(v))
	}
	edges := g.EdgesAppend(ks.edges[:0])
	slices.SortFunc(edges, func(a, e graph.Edge) int {
		if a.From != e.From {
			return a.From - e.From
		}
		return a.To - e.To
	})
	u64(uint64(len(edges)))
	for _, e := range edges {
		u64(uint64(e.From))
		u64(uint64(e.To))
		f64(e.Data)
	}

	pl := r.Platform
	u64(uint64(pl.NumProcs()))
	for i := 0; i < pl.NumProcs(); i++ {
		f64(pl.CycleTime(i))
	}
	for q := 0; q < pl.NumProcs(); q++ {
		for rr := 0; rr < pl.NumProcs(); rr++ {
			f64(pl.Link(q, rr))
		}
	}

	ks.buf = b
	ks.edges = edges
	return sha256.Sum256(b)
}

// CanonicalKey is the hex form of CanonicalSum — the cache key exposed in
// Response.Key and used by the result cache's canonical index.
func CanonicalKey(r *Request) string {
	sum := CanonicalSum(r)
	return hex.EncodeToString(sum[:])
}
