package service

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// ringUpdate is the payload of POST /ring: a strictly newer epoch number
// and the complete replica list of that epoch. The same update must be
// pushed to every replica; until it reaches all of them, cross-epoch
// relays are rejected (409) and both sides compute locally, so a
// half-propagated membership change degrades throughput, never
// correctness.
type ringUpdate struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// ringInfo is the reply of GET /ring and POST /ring: the epoch this
// replica is serving, its normalized member list, and this replica's own
// identity within it.
type ringInfo struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	Self    string   `json:"self"`
	// Swapped reports whether this POST installed a new epoch (false for
	// an idempotent replay of the current one, and for GET).
	Swapped bool `json:"swapped,omitempty"`
}

// adminError is the error body of the /ring surface.
type adminError struct {
	Error string `json:"error"`
	// Epoch is the epoch this replica is serving, echoed on rejected
	// updates so the admin can see how far ahead the fleet already is.
	Epoch uint64 `json:"epoch,omitempty"`
}

// authorizeAdmin gates the admin surface on Config.AdminToken: 403 when no
// token is configured (the surface is disabled, not open), 401 on a
// missing or wrong bearer token, 0 when authorized. The comparison is
// constant-time so the token cannot be probed byte by byte.
func (s *Server) authorizeAdmin(r *http.Request) (int, string) {
	if s.cfg.AdminToken == "" {
		return http.StatusForbidden, "service: admin endpoints disabled (no AdminToken configured)"
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.AdminToken)) != 1 {
		return http.StatusUnauthorized, "service: missing or invalid admin token"
	}
	return 0, ""
}

// handleRingGet serves the current membership epoch (admin-only: the
// replica list is operational topology, not client surface).
func (s *Server) handleRingGet(w http.ResponseWriter, r *http.Request) {
	if status, msg := s.authorizeAdmin(r); status != 0 {
		writeJSON(w, status, adminError{Error: msg})
		return
	}
	if s.peers == nil {
		writeJSON(w, http.StatusOK, ringInfo{})
		return
	}
	st := s.peers.state.Load()
	writeJSON(w, http.StatusOK, ringInfo{Epoch: st.epoch, Members: st.members(), Self: s.peers.self})
}

// handleRingPost is the live-membership admin endpoint: it atomically
// swaps this replica's ring to a strictly newer epoch. The swap is O(1) —
// no entry migration, no draining; keys whose owner changed are lazily
// re-filled on next use — and every in-flight fill keeps the state it
// loaded, protected end to end by the epoch tag on the relay.
func (s *Server) handleRingPost(w http.ResponseWriter, r *http.Request) {
	if status, msg := s.authorizeAdmin(r); status != 0 {
		writeJSON(w, status, adminError{Error: msg})
		return
	}
	if s.peers == nil {
		writeJSON(w, http.StatusBadRequest, adminError{Error: "service: replica has no Self address; it cannot join a ring"})
		return
	}
	var u ringUpdate
	if err := decodeJSON(w, r, &u); err != nil {
		writeJSON(w, http.StatusBadRequest, adminError{Error: err.Error()})
		return
	}
	st, swapped, err := s.peers.swap(u.Epoch, u.Members)
	if err != nil {
		status := http.StatusBadRequest
		if st != nil {
			status = http.StatusConflict // stale or conflicting epoch: tell the admin where we are
		}
		cur := uint64(0)
		if st != nil {
			cur = st.epoch
		}
		writeJSON(w, status, adminError{Error: err.Error(), Epoch: cur})
		return
	}
	writeJSON(w, http.StatusOK, ringInfo{Epoch: st.epoch, Members: st.members(), Self: s.peers.self, Swapped: swapped})
}
