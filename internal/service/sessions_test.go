package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/testbeds"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	hreq, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func openSession(t *testing.T, ts *httptest.Server, req Request) SessionResponse {
	t.Helper()
	hr, body := doJSON(t, ts, http.MethodPost, "/session", req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", hr.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SessionID == "" || sr.Error != "" {
		t.Fatalf("open: %+v", sr)
	}
	return sr
}

// scheduleJSON runs POST /schedule and returns the schedule's JSON bytes —
// the cold oracle the session surface is compared against.
func scheduleJSON(t *testing.T, ts *httptest.Server, req Request) []byte {
	t.Helper()
	hr, body := post(t, ts, "/schedule", req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/schedule: status %d: %s", hr.StatusCode, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(resp.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSessionHTTPOracle pins the surface's core contract: after a chain of
// deltas, the session's schedule is byte-identical to POST /schedule of the
// equivalent final graph on the same server.
func TestSessionHTTPOracle(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	pl := platform.Paper()
	g := testbeds.LU(8, 10)
	sr := openSession(t, ts, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
	if sr.Heuristic != "heft" || sr.Model != "oneport" || sr.Deltas != 0 {
		t.Fatalf("open reply: %+v", sr)
	}

	e := g.Edges()[3]
	deltas := []graph.Delta{
		{{Op: "set_weight", Task: intp(2), Weight: floatp(9)}},
		{{Op: "set_data", From: intp(e.From), To: intp(e.To), Data: floatp(e.Data + 2)}},
		{
			{Op: "add_task", Weight: floatp(4)},
			{Op: "add_edge", From: intp(1), To: intp(g.NumNodes()), Data: floatp(3)},
		},
	}
	// mirror the same ops onto a plain graph for the cold reference
	cur := g
	for di, d := range deltas {
		ng, _, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("delta %d: %v", di, err)
		}
		hr, body := doJSON(t, ts, http.MethodPost, "/session/"+sr.SessionID+"/delta",
			[]byte(`{"graph":`+mustJSON(t, d)+`}`))
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d: %s", di, hr.StatusCode, body)
		}
		var dr SessionResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.SessionID != sr.SessionID || dr.Deltas != di+1 || dr.Error != "" {
			t.Fatalf("delta %d reply: %+v", di, dr)
		}
		got, err := json.Marshal(dr.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		want := scheduleJSON(t, ts, Request{Graph: ng, Platform: pl, Heuristic: "heft", Model: "oneport"})
		if !bytes.Equal(got, want) {
			t.Fatalf("delta %d: session schedule differs from cold /schedule:\n %s\nvs %s", di, got, want)
		}
		cur = ng
	}

	// the deltas and replayed work show up in /stats
	st := statsSnapshot(t, ts)
	if st.SessionsOpen != 1 || st.SessionDeltas != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.SessionReplayedTasks == 0 {
		t.Fatal("stats: no replayed tasks recorded for localized deltas")
	}

	// close; the id is gone
	hr, _ := doJSON(t, ts, http.MethodDelete, "/session/"+sr.SessionID, nil)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", hr.StatusCode)
	}
	hr, _ = doJSON(t, ts, http.MethodPost, "/session/"+sr.SessionID+"/delta", []byte(`{"graph":[{"op":"add_task","weight":1}]}`))
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("delta after close: status %d, want 404", hr.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func statsSnapshot(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSessionHTTPAdversarial drives the delta endpoint with hostile
// payloads: each must come back 4xx with a JSON error, and the session must
// keep serving correct schedules afterwards.
func TestSessionHTTPAdversarial(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	pl := platform.Paper()
	g := testbeds.LU(6, 10)
	sr := openSession(t, ts, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})
	n := g.NumNodes()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"graph":[{`, http.StatusBadRequest},
		{"unknown field", `{"graph":[],"frobnicate":1}`, http.StatusBadRequest},
		{"empty delta", `{}`, http.StatusBadRequest},
		{"cycle", fmt.Sprintf(`{"graph":[{"op":"add_edge","from":%d,"to":0,"data":1}]}`, n-1), http.StatusBadRequest},
		{"unknown task", `{"graph":[{"op":"set_weight","task":9999,"weight":1}]}`, http.StatusBadRequest},
		{"unknown proc", `{"platform":[{"op":"set_cycle","proc":99,"cycle":1}]}`, http.StatusBadRequest},
		{"duplicate edge", fmt.Sprintf(`{"graph":[{"op":"add_edge","from":%d,"to":%d,"data":1}]}`, g.Edges()[0].From, g.Edges()[0].To), http.StatusBadRequest},
		{"nan weight", `{"graph":[{"op":"set_weight","task":0,"weight":"NaN"}]}`, http.StatusBadRequest},
		{"orphaning removal", `{"platform":[{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hr, body := doJSON(t, ts, http.MethodPost, "/session/"+sr.SessionID+"/delta", []byte(tc.body))
			if hr.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", hr.StatusCode, tc.status, body)
			}
			var resp Response
			if err := json.Unmarshal(body, &resp); err != nil || resp.Error == "" {
				t.Fatalf("error body: %s (%v)", body, err)
			}
		})
	}
	// unknown session id on the same surface
	hr, _ := doJSON(t, ts, http.MethodPost, "/session/feedbead/delta", []byte(`{"graph":[{"op":"add_task","weight":1}]}`))
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", hr.StatusCode)
	}

	// after all of it: a good delta, checked against cold /schedule
	d := graph.Delta{{Op: "set_weight", Task: intp(1), Weight: floatp(7)}}
	ng, _, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	hr, body := doJSON(t, ts, http.MethodPost, "/session/"+sr.SessionID+"/delta", []byte(`{"graph":`+mustJSON(t, d)+`}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("good delta: status %d: %s", hr.StatusCode, body)
	}
	var dr SessionResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(dr.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if want := scheduleJSON(t, ts, Request{Graph: ng, Platform: pl, Heuristic: "heft", Model: "oneport"}); !bytes.Equal(got, want) {
		t.Fatalf("post-adversarial schedule differs from cold run")
	}
}

func intp(v int) *int           { return &v }
func floatp(v float64) *float64 { return &v }

// TestSessionHTTPFull: a table at capacity answers 503 with a Retry-After
// hint; closing a session admits the next open.
func TestSessionHTTPFull(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxSessions: 1, SessionTTL: -1}).Handler())
	defer ts.Close()
	req := Request{Graph: testbeds.ForkJoin(5, 10), Platform: platform.Paper(), Heuristic: "heft", Model: "oneport"}
	sr := openSession(t, ts, req)
	hr, body := doJSON(t, ts, http.MethodPost, "/session", req)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", hr.StatusCode, body)
	}
	if ra, err := strconv.Atoi(hr.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", hr.Header.Get("Retry-After"))
	}
	if hr, _ := doJSON(t, ts, http.MethodDelete, "/session/"+sr.SessionID, nil); hr.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", hr.StatusCode)
	}
	openSession(t, ts, req)
}

// TestSessionHTTPOpenErrors: invalid open payloads are 400s and never
// consume a session slot.
func TestSessionHTTPOpenErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxSessions: 1}).Handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"malformed":         `{"graph":`,
		"unknown field":     `{"graph":null,"zap":1}`,
		"missing graph":     `{"platform":null}`,
		"unknown heuristic": mustJSON(t, Request{Graph: testbeds.ForkJoin(4, 10), Platform: platform.Paper(), Heuristic: "nope"}),
		"bad model":         mustJSON(t, Request{Graph: testbeds.ForkJoin(4, 10), Platform: platform.Paper(), Model: "wormhole"}),
	} {
		hr, rb := doJSON(t, ts, http.MethodPost, "/session", []byte(body))
		if hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, hr.StatusCode, rb)
		}
	}
	// table still has its slot
	openSession(t, ts, Request{Graph: testbeds.ForkJoin(4, 10), Platform: platform.Paper(), Heuristic: "heft"})
}

// TestSessionHTTPStreaming is the PR's streaming regression: a session
// response whose estimate exceeds Config.StreamBytes must take the
// streaming path — stream mark on the wire, no pooled staging — and still
// carry the full, decodable session payload. Small responses must stay
// unmarked.
func TestSessionHTTPStreaming(t *testing.T) {
	ts := httptest.NewServer(New(Config{StreamBytes: 2048}).Handler())
	defer ts.Close()
	pl := platform.Paper()
	big := testbeds.LU(10, 10) // 66 tasks: estimate ~6k+ > 2048
	sr := openSession(t, ts, Request{Graph: big, Platform: pl, Heuristic: "heft", Model: "oneport"})

	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta",
		bytes.NewReader([]byte(`{"graph":[{"op":"set_weight","task":1,"weight":8}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	if hr.Header.Get(streamMarkHeader) == "" {
		t.Fatalf("big session response missing %s header (did not stream)", streamMarkHeader)
	}
	var dr SessionResponse
	if err := json.NewDecoder(hr.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.SessionID != sr.SessionID || dr.Schedule == nil || len(dr.Schedule.Tasks) != big.NumNodes() {
		t.Fatalf("streamed reply incomplete: %+v", dr)
	}

	// a small session on the same server stays buffered (no stream mark)
	small := openSession(t, ts, Request{Graph: testbeds.ForkJoin(3, 10), Platform: pl, Heuristic: "heft", Model: "oneport"})
	hr2, _ := doJSON(t, ts, http.MethodPost, "/session/"+small.SessionID+"/delta",
		[]byte(`{"graph":[{"op":"set_weight","task":0,"weight":2}]}`))
	if hr2.Header.Get(streamMarkHeader) != "" {
		t.Fatal("small session response unexpectedly stream-marked")
	}
}

// TestSessionHTTPConcurrentDeltas fires concurrent deltas at one session
// over HTTP (run under -race in CI): all must succeed, and the final
// serialized state must match the cold run of the fully-deltaed graph.
func TestSessionHTTPConcurrentDeltas(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	pl := platform.Paper()
	g := testbeds.ForkJoin(24, 10)
	sr := openSession(t, ts, Request{Graph: g, Platform: pl, Heuristic: "heft", Model: "oneport"})

	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"graph":[{"op":"set_weight","task":%d,"weight":%d}]}`, w+1, 40+w)
			hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta", bytes.NewReader([]byte(body)))
			if err != nil {
				errs[w] = err
				return
			}
			hr, err := ts.Client().Do(hreq)
			if err != nil {
				errs[w] = err
				return
			}
			defer hr.Body.Close()
			if hr.StatusCode != http.StatusOK {
				errs[w] = fmt.Errorf("status %d", hr.StatusCode)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	final := g.Clone()
	for w := 0; w < workers; w++ {
		if err := final.SetWeight(w+1, float64(40+w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := final.SetWeight(0, 77); err != nil {
		t.Fatal(err)
	}
	hr, body := doJSON(t, ts, http.MethodPost, "/session/"+sr.SessionID+"/delta",
		[]byte(`{"graph":[{"op":"set_weight","task":0,"weight":77}]}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("final delta: status %d: %s", hr.StatusCode, body)
	}
	var dr SessionResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Deltas != workers+1 {
		t.Fatalf("Deltas = %d, want %d", dr.Deltas, workers+1)
	}
	got, err := json.Marshal(dr.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if want := scheduleJSON(t, ts, Request{Graph: final, Platform: pl, Heuristic: "heft", Model: "oneport"}); !bytes.Equal(got, want) {
		t.Fatal("concurrent-delta end state differs from cold run")
	}
}

// TestSessionHTTPTimeout: with a vanishingly small RequestTimeout a session
// run aborts cooperatively and answers 503 + Retry-After.
func TestSessionHTTPTimeout(t *testing.T) {
	ts := httptest.NewServer(New(Config{RequestTimeout: time.Nanosecond}).Handler())
	defer ts.Close()
	req := Request{Graph: testbeds.LU(10, 10), Platform: platform.Paper(), Heuristic: "heft", Model: "oneport"}
	hr, body := doJSON(t, ts, http.MethodPost, "/session", req)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", hr.StatusCode, body)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// the failed open released its table slot
	st := statsSnapshot(t, ts)
	if st.SessionsOpen != 0 {
		t.Fatalf("sessions_open = %d after aborted open, want 0", st.SessionsOpen)
	}
	if st.Timeouts == 0 {
		t.Fatal("timeout not counted")
	}
}
