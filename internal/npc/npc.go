// Package npc implements the paper's two NP-completeness constructions and
// the exact solvers used to cross-check them:
//
//   - Theorem 1 (FORK-SCHED): scheduling a fork graph on an unlimited number
//     of same-speed processors under the one-port model, reduced from
//     2-PARTITION;
//   - Theorem 2 (COMM-SCHED, appendix): scheduling only the communications
//     of a bipartite graph whose allocation is fixed, also reduced from
//     2-PARTITION.
//
// The builders emit real graph/platform/schedule objects, so the reductions
// are exercised end-to-end by the validators, and the exact solvers verify
// both directions of each reduction on small instances.
package npc

import (
	"fmt"
	"math"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// TwoPartition solves 2-PARTITION exactly by subset enumeration: it returns
// a subset A1 of indices with sum equal to half the total, and whether one
// exists. Intended for the small instances used in tests (n <= ~20).
func TwoPartition(a []int) ([]int, bool) {
	total := 0
	for _, x := range a {
		total += x
	}
	if total%2 != 0 {
		return nil, false
	}
	half := total / 2
	n := len(a)
	for mask := 0; mask < 1<<n; mask++ {
		sum := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += a[i]
			}
		}
		if sum == half {
			var set []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					set = append(set, i)
				}
			}
			return set, true
		}
	}
	return nil, false
}

// ForkInstance is an instance of the FORK-SCHED decision problem: a fork
// graph, an unlimited pool of same-speed processors (one per task suffices)
// and a time bound.
type ForkInstance struct {
	G *graph.Graph       // fork graph: node 0 is the parent
	P *platform.Platform // N+1 unit-speed processors, unit links
	T float64            // time bound
}

// BuildForkSched constructs the Theorem 1 instance from a 2-PARTITION input.
// With M = max a_i and m = min a_i:
//
//	w_0 = 0; w_i = 10(M + a_i + 1) for 1 <= i <= n;
//	w_{n+1} = w_{n+2} = w_{n+3} = 10(M+m)+1 = w_min; d_i = w_i;
//	T = ½·Σ_{i<=n} w_i + 2·w_min.
//
// The instance has a schedule of makespan <= T iff the a_i admit a perfect
// partition.
func BuildForkSched(a []int) (*ForkInstance, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("npc: empty 2-PARTITION instance")
	}
	for _, x := range a {
		if x <= 0 {
			return nil, fmt.Errorf("npc: 2-PARTITION values must be positive, got %d", x)
		}
	}
	M, m := a[0], a[0]
	for _, x := range a {
		if x > M {
			M = x
		}
		if x < m {
			m = x
		}
	}
	wmin := float64(10*(M+m) + 1)
	weights := make([]float64, n+3)
	var sumN float64
	for i := 0; i < n; i++ {
		weights[i] = float64(10 * (M + a[i] + 1))
		sumN += weights[i]
	}
	weights[n], weights[n+1], weights[n+2] = wmin, wmin, wmin
	data := append([]float64(nil), weights...) // d_i = w_i
	g, err := testbeds.Fork(0, weights, data)
	if err != nil {
		return nil, err
	}
	pl, err := platform.Homogeneous(n + 4) // one processor per task
	if err != nil {
		return nil, err
	}
	return &ForkInstance{G: g, P: pl, T: sumN/2 + 2*wmin}, nil
}

// SolveFork computes the exact optimal one-port makespan of an arbitrary
// fork graph on an unlimited pool of unit-speed processors with unit links
// (the setting of Theorem 1). It enumerates the subset of children kept on
// the parent's processor; the remote children are each given their own
// processor and their messages are sent in Jackson order (non-increasing
// child weight), which is optimal for minimizing the latest completion.
// Exponential in the child count: use on small instances only.
func SolveFork(g *graph.Graph) (float64, error) {
	if len(g.Sources()) != 1 {
		return 0, fmt.Errorf("npc: not a fork graph (sources = %v)", g.Sources())
	}
	parent := g.Sources()[0]
	if g.InDegree(parent) != 0 || g.NumEdges() != g.NumNodes()-1 {
		return 0, fmt.Errorf("npc: not a fork graph")
	}
	type child struct{ w, d float64 }
	var children []child
	for _, adj := range g.Succ(parent) {
		if g.OutDegree(adj.Node) != 0 {
			return 0, fmt.Errorf("npc: not a fork graph (child %d has successors)", adj.Node)
		}
		children = append(children, child{w: g.Weight(adj.Node), d: adj.Data})
	}
	w0 := g.Weight(parent)
	n := len(children)
	if n > 24 {
		return 0, fmt.Errorf("npc: %d children exceed the exact solver's limit", n)
	}
	best := math.Inf(1)
	remote := make([]child, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		var local float64
		remote = remote[:0]
		for i, ch := range children {
			if mask&(1<<i) != 0 {
				local += ch.w
			} else {
				remote = append(remote, ch)
			}
		}
		// Jackson's rule: send to the child with the largest weight first.
		sort.Slice(remote, func(i, j int) bool { return remote[i].w > remote[j].w })
		span := w0 + local
		t := w0
		for _, ch := range remote {
			t += ch.d
			if f := t + ch.w; f > span {
				span = f
			}
		}
		if span < best {
			best = span
		}
	}
	return best, nil
}

// ForkScheduleFromPartition materializes the proof's "if" direction: given
// A1 (indices into the original 2-PARTITION values, 0-based) it builds the
// schedule in which P0 runs the parent, the A1 children and two of the
// three w_min children, every other child gets its own processor, and P0
// sends the remaining messages by increasing index with the last w_min
// child served last. The resulting schedule meets the bound T exactly.
func ForkScheduleFromPartition(inst *ForkInstance, a1 []int) *sched.Schedule {
	g := inst.G
	n := g.NumNodes() - 4 // children 1..n+3, tasks 0..n+3
	s := sched.NewSchedule(g.NumNodes(), inst.P.NumProcs())
	onP0 := make(map[int]bool, len(a1)+3)
	onP0[0] = true
	for _, i := range a1 {
		onP0[i+1] = true // child node ids are 1-based
	}
	onP0[n+1] = true // two of the three w_min children stay local
	onP0[n+2] = true

	// P0: parent at time 0 (weight 0), then its local children back to back.
	t := g.Weight(0)
	s.SetTask(0, 0, 0, t)
	for v := 1; v <= n+3; v++ {
		if !onP0[v] {
			continue
		}
		w := g.Weight(v)
		s.SetTask(v, 0, t, t+w)
		t += w
	}
	// remote children: message i by increasing index (v_{n+3} is last by
	// construction), each to its own processor.
	send := g.Weight(0)
	proc := 1
	for v := 1; v <= n+3; v++ {
		if onP0[v] {
			continue
		}
		d, _ := g.EdgeData(0, v)
		s.AddComm(sched.CommEvent{FromTask: 0, ToTask: v, Data: d,
			Hops: []sched.Hop{{FromProc: 0, ToProc: proc, Start: send, Finish: send + d}}})
		s.SetTask(v, proc, send+d, send+d+g.Weight(v))
		send += d
		proc++
	}
	return s
}

// CommInstance is an instance of the COMM-SCHED decision problem
// (Theorem 2): a bipartite graph with a fixed allocation; only the
// communications remain to be scheduled.
type CommInstance struct {
	G     *graph.Graph
	P     *platform.Platform
	Alloc []int   // fixed processor of every task
	T     float64 // time bound
	N     int     // size of the originating 2-PARTITION instance
	S     float64 // half sum of the 2-PARTITION values
}

// BuildCommSched constructs the Theorem 2 instance: 3n+1 zero-weight tasks —
// a fork v_0 → v_1..v_n with data a_i, and n separate pairs
// v_{2n+i} → v_{n+i} with data S — on 2n+1 unit processors with the fixed
// allocation alloc(v_0) = P_0, alloc(v_i) = alloc(v_{n+i}) = P_i,
// alloc(v_{2n+i}) = P_{n+i}.
//
// The time bound is Σa_i = 2S: P_0 must send for 2S time units in total, so
// a schedule meeting the bound leaves P_0 no idle time, and each P_i must
// fit its length-S pair message entirely before or entirely after its fork
// message — possible iff the a_i split into two halves of sum S. (The
// paper's text prints the bound as "T = S" with 2S = Σa_i defined earlier;
// the consistent reading, used here, is T = Σa_i.)
func BuildCommSched(a []int) (*CommInstance, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("npc: empty 2-PARTITION instance")
	}
	total := 0
	for _, x := range a {
		if x <= 0 {
			return nil, fmt.Errorf("npc: 2-PARTITION values must be positive, got %d", x)
		}
		total += x
	}
	S := float64(total) / 2
	g := graph.New(3*n + 1)
	v0 := g.AddNode(0, "v0")
	for i := 1; i <= n; i++ {
		g.AddNode(0, fmt.Sprintf("v%d", i))
	}
	for i := 1; i <= n; i++ {
		g.AddNode(0, fmt.Sprintf("v%d", n+i))
	}
	for i := 1; i <= n; i++ {
		g.AddNode(0, fmt.Sprintf("v%d", 2*n+i))
	}
	for i := 1; i <= n; i++ {
		g.MustEdge(v0, i, float64(a[i-1]))
		g.MustEdge(2*n+i, n+i, S)
	}
	pl, err := platform.Homogeneous(2*n + 1)
	if err != nil {
		return nil, err
	}
	alloc := make([]int, 3*n+1)
	alloc[0] = 0
	for i := 1; i <= n; i++ {
		alloc[i] = i
		alloc[n+i] = i
		alloc[2*n+i] = n + i
	}
	return &CommInstance{G: g, P: pl, Alloc: alloc, T: float64(total), N: n, S: S}, nil
}

// Feasible decides exactly whether the COMM-SCHED instance admits a valid
// one-port schedule with makespan at most inst.T, by trying every
// permutation of P_0's messages and greedily placing each pair message in
// the larger free window of its receiver. Factorial in n: small instances
// only.
func (inst *CommInstance) Feasible() bool {
	n := inst.N
	if n > 9 {
		panic("npc: Feasible limited to n <= 9")
	}
	durs := make([]float64, n)
	for i := 1; i <= n; i++ {
		d, _ := inst.G.EdgeData(0, i)
		durs[i-1] = d
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var try func(k int) bool
	var feasible func() bool
	feasible = func() bool {
		// fork message to child perm[j] occupies P_{perm[j]+1}'s receive
		// port during [prefix, prefix+dur); the pair message (length S)
		// must fit before or after it within [0, T].
		t := 0.0
		for _, idx := range perm {
			start, end := t, t+durs[idx]
			if !(start >= inst.S-1e-9 || end <= inst.T-inst.S+1e-9) {
				return false
			}
			t = end
		}
		return t <= inst.T+1e-9
	}
	try = func(k int) bool {
		if k == n {
			return feasible()
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(0)
}

// CommScheduleFromPartition materializes the proof's "if" direction for
// COMM-SCHED: fork messages of A1 go out during [0,S), those of A2 during
// [S,2S); the pair message of an A1 processor arrives during [S,2S) and
// vice versa. The schedule meets the bound exactly.
func CommScheduleFromPartition(inst *CommInstance, a1 []int) *sched.Schedule {
	n, S := inst.N, inst.S
	s := sched.NewSchedule(inst.G.NumNodes(), inst.P.NumProcs())
	inA1 := make(map[int]bool, len(a1))
	for _, i := range a1 {
		inA1[i] = true // 0-based index into a; child node is i+1
	}
	s.SetTask(0, 0, 0, 0)
	sendA1, sendA2 := 0.0, S
	for i := 1; i <= n; i++ {
		d, _ := inst.G.EdgeData(0, i)
		var at float64
		if inA1[i-1] {
			at = sendA1
			sendA1 += d
		} else {
			at = sendA2
			sendA2 += d
		}
		s.AddComm(sched.CommEvent{FromTask: 0, ToTask: i, Data: d,
			Hops: []sched.Hop{{FromProc: 0, ToProc: i, Start: at, Finish: at + d}}})
		s.SetTask(i, i, at+d, at+d)

		// the pair message v_{2n+i} -> v_{n+i} takes the other half-window
		var pairAt float64
		if inA1[i-1] {
			pairAt = S
		} else {
			pairAt = 0
		}
		s.SetTask(2*n+i, n+i, 0, 0)
		s.AddComm(sched.CommEvent{FromTask: 2*n + i, ToTask: n + i, Data: S,
			Hops: []sched.Hop{{FromProc: n + i, ToProc: i, Start: pairAt, Finish: pairAt + S}}})
		s.SetTask(n+i, i, pairAt+S, pairAt+S)
	}
	return s
}

// GreedyCommSched is the greedy heuristic the paper suggests for the
// NP-complete third step of ILHA: messages sorted by non-increasing
// duration, each placed at the earliest common free window of its sender's
// send port and receiver's receive port. Tasks (all zero weight in
// COMM-SCHED instances) start once their inputs arrive. It returns the
// resulting schedule (valid, but not necessarily meeting inst.T).
func GreedyCommSched(inst *CommInstance) *sched.Schedule {
	g := inst.G
	s := sched.NewSchedule(g.NumNodes(), inst.P.NumProcs())
	sendPort := make([]*sched.Intervals, inst.P.NumProcs())
	recvPort := make([]*sched.Intervals, inst.P.NumProcs())
	for i := range sendPort {
		sendPort[i] = &sched.Intervals{}
		recvPort[i] = &sched.Intervals{}
	}
	type msg struct {
		u, v int
		d    float64
	}
	var msgs []msg
	for _, e := range g.Edges() {
		if inst.Alloc[e.From] != inst.Alloc[e.To] {
			msgs = append(msgs, msg{u: e.From, v: e.To, d: e.Data})
		}
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].d > msgs[j].d })
	arrival := make([]float64, g.NumNodes())
	for _, m := range msgs {
		q, r := inst.Alloc[m.u], inst.Alloc[m.v]
		at := sched.EarliestGap(0, m.d, sched.View{Base: sendPort[q]}, sched.View{Base: recvPort[r]})
		sendPort[q].Add(at, at+m.d)
		recvPort[r].Add(at, at+m.d)
		s.AddComm(sched.CommEvent{FromTask: m.u, ToTask: m.v, Data: m.d,
			Hops: []sched.Hop{{FromProc: q, ToProc: r, Start: at, Finish: at + m.d}}})
		if at+m.d > arrival[m.v] {
			arrival[m.v] = at + m.d
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		s.SetTask(v, inst.Alloc[v], arrival[v], arrival[v])
	}
	return s
}
