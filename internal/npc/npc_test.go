package npc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestTwoPartition(t *testing.T) {
	cases := []struct {
		a    []int
		want bool
	}{
		{[]int{1, 1}, true},
		{[]int{1, 2}, false},
		{[]int{3, 1, 2, 2}, true},
		{[]int{1, 2, 3}, true}, // {1,2} vs {3}
		{[]int{5}, false},
		{[]int{2, 2, 2, 2, 3, 3, 2}, true}, // sum 16: {3,3,2},{2,2,2,2}
		{[]int{7, 1, 1, 1, 1, 1}, false},   // sum 12, no subset hits 6... {1*5}=5, {7..}=7+
	}
	for _, c := range cases {
		set, ok := TwoPartition(c.a)
		if ok != c.want {
			t.Errorf("TwoPartition(%v) = %v, want %v", c.a, ok, c.want)
			continue
		}
		if ok {
			sum, total := 0, 0
			in := map[int]bool{}
			for _, i := range set {
				sum += c.a[i]
				in[i] = true
			}
			for i, x := range c.a {
				total += x
				_ = i
			}
			if 2*sum != total {
				t.Errorf("TwoPartition(%v) returned subset %v with sum %d, total %d", c.a, set, sum, total)
			}
		}
	}
}

func TestBuildForkSchedStructure(t *testing.T) {
	a := []int{3, 1, 2, 2}
	inst, err := BuildForkSched(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	if inst.G.NumNodes() != n+4 {
		t.Fatalf("nodes = %d, want %d", inst.G.NumNodes(), n+4)
	}
	if inst.G.Weight(0) != 0 {
		t.Errorf("parent weight = %g, want 0", inst.G.Weight(0))
	}
	M, m := 3, 1
	wmin := float64(10*(M+m) + 1)
	for i := 1; i <= n; i++ {
		want := float64(10 * (M + a[i-1] + 1))
		if inst.G.Weight(i) != want {
			t.Errorf("w_%d = %g, want %g", i, inst.G.Weight(i), want)
		}
		if d, _ := inst.G.EdgeData(0, i); d != want {
			t.Errorf("d_%d = %g, want w_%d = %g", i, d, i, want)
		}
	}
	for i := n + 1; i <= n+3; i++ {
		if inst.G.Weight(i) != wmin {
			t.Errorf("w_%d = %g, want wmin = %g", i, inst.G.Weight(i), wmin)
		}
	}
	// T = ½Σw_i + 2wmin = 5n(M+1) + 10S + 20(M+m) + 2  (paper's closed form)
	S := 4.0
	wantT := 5*float64(n)*float64(M+1) + 10*S + 20*float64(M+m) + 2
	if math.Abs(inst.T-wantT) > 1e-9 {
		t.Errorf("T = %g, want %g", inst.T, wantT)
	}
	// wmin <= w_i <= 2wmin for the first n children (paper's remark)
	for i := 1; i <= n; i++ {
		w := inst.G.Weight(i)
		if w < wmin || w > 2*wmin {
			t.Errorf("w_%d = %g outside [wmin, 2wmin] = [%g, %g]", i, w, wmin, 2*wmin)
		}
	}
	if _, err := BuildForkSched(nil); err == nil {
		t.Error("expected error for empty instance")
	}
	if _, err := BuildForkSched([]int{0}); err == nil {
		t.Error("expected error for non-positive value")
	}
}

func TestForkScheduleFromPartitionMeetsBound(t *testing.T) {
	// {3,1,2,2}: balanced partition {3,1} / {2,2}
	a := []int{3, 1, 2, 2}
	inst, err := BuildForkSched(a)
	if err != nil {
		t.Fatal(err)
	}
	s := ForkScheduleFromPartition(inst, []int{0, 1}) // indices of {3,1}
	if err := sched.Validate(inst.G, inst.P, s, sched.OnePort); err != nil {
		t.Fatalf("constructed schedule invalid: %v", err)
	}
	if math.Abs(s.Makespan()-inst.T) > 1e-9 {
		t.Errorf("makespan = %g, want exactly T = %g", s.Makespan(), inst.T)
	}
}

func TestSolveForkMatchesBoundIffPartition(t *testing.T) {
	cases := []struct {
		a        []int
		feasible bool
	}{
		{[]int{3, 1, 2, 2}, true},  // balanced partition exists
		{[]int{1, 1}, true},        // {1},{1}
		{[]int{1, 2}, false},       // odd total
		{[]int{1, 1, 1, 5}, false}, // sum 8, need {x,y} summing 4 with equal... no balanced split
		{[]int{2, 2, 3, 3}, true},  // {2,3},{2,3}
	}
	for _, c := range cases {
		inst, err := BuildForkSched(c.a)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SolveFork(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		got := opt <= inst.T+1e-9
		if got != c.feasible {
			t.Errorf("a=%v: optimal %g vs T %g -> feasible=%v, want %v",
				c.a, opt, inst.T, got, c.feasible)
		}
	}
}

func TestPropertyForkSchedEquivalence(t *testing.T) {
	// The instance admits a schedule of makespan <= T iff the transformed
	// weights w_1..w_n (integers) admit an equal-sum split — which, by the
	// padding 10(M+1), encodes the balanced 2-PARTITION of the a_i.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := make([]int, n)
		for i := range a {
			a[i] = 1 + r.Intn(6)
		}
		inst, err := BuildForkSched(a)
		if err != nil {
			return false
		}
		opt, err := SolveFork(inst.G)
		if err != nil {
			return false
		}
		w := make([]int, n)
		for i := 1; i <= n; i++ {
			w[i-1] = int(inst.G.Weight(i))
		}
		_, partitionable := TwoPartition(w)
		feasible := opt <= inst.T+1e-9
		if feasible != partitionable {
			t.Logf("a=%v opt=%g T=%g partitionable=%v", a, opt, inst.T, partitionable)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveForkRejectsNonForks(t *testing.T) {
	g := testbeds.ForkJoin(3, 1) // has a sink: not a fork
	if _, err := SolveFork(g); err == nil {
		t.Fatal("expected error for non-fork graph")
	}
}

func TestSolveForkSimple(t *testing.T) {
	// Figure 1's example: 6 unit children, unit data, w0 = 1: optimal 5.
	g, err := testbeds.Fork(1,
		[]float64{1, 1, 1, 1, 1, 1},
		[]float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveFork(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 5 {
		t.Errorf("optimal = %g, want 5 (paper §2.3)", opt)
	}
}

func TestBuildCommSchedStructure(t *testing.T) {
	a := []int{1, 2, 3}
	inst, err := BuildCommSched(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	if inst.G.NumNodes() != 3*n+1 {
		t.Fatalf("nodes = %d, want %d", inst.G.NumNodes(), 3*n+1)
	}
	if inst.P.NumProcs() != 2*n+1 {
		t.Fatalf("procs = %d, want %d", inst.P.NumProcs(), 2*n+1)
	}
	if inst.T != 6 || inst.S != 3 {
		t.Fatalf("T = %g S = %g, want 6 and 3", inst.T, inst.S)
	}
	// every task has zero weight
	for v := 0; v < inst.G.NumNodes(); v++ {
		if inst.G.Weight(v) != 0 {
			t.Errorf("task %d weight %g, want 0", v, inst.G.Weight(v))
		}
	}
	// allocation: v_i and v_{n+i} share P_i; v_{2n+i} on P_{n+i}
	for i := 1; i <= n; i++ {
		if inst.Alloc[i] != i || inst.Alloc[n+i] != i || inst.Alloc[2*n+i] != n+i {
			t.Fatalf("allocation wrong at i=%d: %v", i, inst.Alloc)
		}
	}
	if _, err := BuildCommSched(nil); err == nil {
		t.Error("expected error for empty instance")
	}
	if _, err := BuildCommSched([]int{-1, 2}); err == nil {
		t.Error("expected error for non-positive value")
	}
}

func TestCommScheduleFromPartitionMeetsBound(t *testing.T) {
	a := []int{1, 2, 3} // partition {1,2} / {3}
	inst, err := BuildCommSched(a)
	if err != nil {
		t.Fatal(err)
	}
	s := CommScheduleFromPartition(inst, []int{0, 1})
	if err := sched.Validate(inst.G, inst.P, s, sched.OnePort); err != nil {
		t.Fatalf("constructed schedule invalid: %v", err)
	}
	if s.Makespan() > inst.T+1e-9 {
		t.Errorf("makespan = %g exceeds T = %g", s.Makespan(), inst.T)
	}
}

func TestPropertyCommSchedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := make([]int, n)
		for i := range a {
			a[i] = 1 + r.Intn(8)
		}
		inst, err := BuildCommSched(a)
		if err != nil {
			return false
		}
		_, partitionable := TwoPartition(a)
		if inst.Feasible() != partitionable {
			t.Logf("a=%v feasible=%v partitionable=%v", a, inst.Feasible(), partitionable)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCommSchedValidAndSometimesSuboptimal(t *testing.T) {
	// the greedy heuristic always yields a valid schedule; on a solvable
	// instance it may or may not reach T (the problem is NP-complete).
	a := []int{1, 2, 3, 4}
	inst, err := BuildCommSched(a)
	if err != nil {
		t.Fatal(err)
	}
	s := GreedyCommSched(inst)
	if err := sched.Validate(inst.G, inst.P, s, sched.OnePort); err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
	if s.Makespan() < inst.T-1e-9 {
		t.Errorf("greedy makespan %g beat the proven optimum %g", s.Makespan(), inst.T)
	}
	// allocation must be respected
	for v := 0; v < inst.G.NumNodes(); v++ {
		if s.Proc(v) != inst.Alloc[v] {
			t.Errorf("greedy moved task %d to %d, allocation says %d", v, s.Proc(v), inst.Alloc[v])
		}
	}
}

func TestGreedyCommSchedLowerBound(t *testing.T) {
	// P0 sends Σa_i time units of messages: no schedule beats that.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := make([]int, n)
		total := 0
		for i := range a {
			a[i] = 1 + r.Intn(8)
			total += a[i]
		}
		inst, err := BuildCommSched(a)
		if err != nil {
			return false
		}
		s := GreedyCommSched(inst)
		if err := sched.Validate(inst.G, inst.P, s, sched.OnePort); err != nil {
			t.Logf("a=%v: %v", a, err)
			return false
		}
		return s.Makespan() >= float64(total)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
