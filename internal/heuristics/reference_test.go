package heuristics

import (
	"fmt"
	"math"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// This file preserves the pre-frontier-engine implementations of DLS, BIL
// and the Exhaustive search verbatim (modulo renamed ready-list plumbing) as
// test oracles: the engine-backed implementations must produce byte-identical
// schedules, and the *_Reference benchmarks in frontier_bench_test.go keep
// the before/after performance ratio visible. One deliberate deviation: the
// pre-engine Exhaustive could report completion after a mid-search budget
// cutoff (the post-recursion return never set the exhausted flag); that bug
// fix is mirrored here — it moves the budget check to the top of each
// expansion without changing the traversal — so the determinism suites can
// still compare the flag.

// dlsReference is the original DLS loop: at every step it re-probes every
// (ready task, processor) pair from scratch with the sequential probe path.
func dlsReference(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, &Tuning{ProbeParallelism: 1})
	if err != nil {
		return nil, err
	}
	sl, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ef := pl.AvgExecFactor()
	rel := newReleaser(g)
	readySet := map[int]bool{}
	for _, v := range rel.initial() {
		readySet[v] = true
	}
	for len(readySet) > 0 {
		bestV, bestDL := -1, math.Inf(-1)
		var bestPl placement
		// deterministic iteration: ascending task id
		ids := make([]int, 0, len(readySet))
		for v := range readySet {
			ids = append(ids, v)
		}
		sort.Ints(ids)
		for _, v := range ids {
			preds := s.preds(v)
			for q := 0; q < pl.NumProcs(); q++ {
				cand := s.probe(v, q, preds)
				delta := g.Weight(v)*ef - pl.ExecTime(g.Weight(v), q)
				dl := sl[v] - cand.start + delta
				if dl > bestDL {
					bestV, bestDL, bestPl = v, dl, s.stash(cand)
				}
			}
		}
		s.commit(bestV, bestPl)
		delete(readySet, bestV)
		for _, nv := range rel.release(bestV) {
			readySet[nv] = true
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// bilReference is the original BIL loop: level computation plus a plain
// sequential bestEFT per popped task.
func bilReference(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, &Tuning{ProbeParallelism: 1})
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := pl.NumProcs()
	lbar := pl.AvgLinkFactor()
	bil := make([][]float64, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		bil[v] = make([]float64, p)
		for q := 0; q < p; q++ {
			maxSucc := 0.0
			for _, a := range g.Succ(v) {
				stay := bil[a.Node][q]
				move := math.Inf(1)
				for r := 0; r < p; r++ {
					if r == q {
						continue
					}
					if c := bil[a.Node][r] + a.Data*lbar; c < move {
						move = c
					}
				}
				best := stay
				if move < best {
					best = move
				}
				if best > maxSucc {
					maxSucc = best
				}
			}
			bil[v][q] = pl.ExecTime(g.Weight(v), q) + maxSucc
		}
	}
	prio := make([]float64, g.NumNodes())
	for v := range prio {
		m := math.Inf(-1)
		for q := 0; q < p; q++ {
			if bil[v][q] > m {
				m = bil[v][q]
			}
		}
		prio[v] = m
	}

	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		best := s.bestEFT(v, nil)
		s.commit(v, best)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// exhaustiveReference is the original branch-and-bound: every (ready, proc)
// pair is probed from scratch at every DFS node.
func exhaustiveReference(g *graph.Graph, pl *platform.Platform, model sched.Model, nodeBudget int) (*sched.Schedule, bool, error) {
	if nodeBudget <= 0 {
		nodeBudget = 200000
	}
	s, err := newState(g, pl, model, &Tuning{ProbeParallelism: 1})
	if err != nil {
		return nil, false, err
	}
	tmin := pl.CycleTime(pl.FastestProc())
	blw, err := g.BottomLevels(tmin, 0)
	if err != nil {
		return nil, false, err
	}

	n := g.NumNodes()
	indeg := make([]int, n)
	var ready []int
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(v)
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}

	var best *sched.Schedule
	bestSpan := math.Inf(1)
	nodes := 0
	exhausted := false

	var dfs func(st *state, ready []int, placed int, curMax float64)
	dfs = func(st *state, ready []int, placed int, curMax float64) {
		if nodes >= nodeBudget {
			exhausted = true
			return
		}
		nodes++
		if placed == n {
			if curMax < bestSpan {
				bestSpan = curMax
				cp := *st.sch
				cp.Tasks = append([]sched.TaskEvent(nil), st.sch.Tasks...)
				cp.Comms = append([]sched.CommEvent(nil), st.sch.Comms...)
				best = &cp
			}
			return
		}
		for ri, v := range ready {
			preds := st.preds(v)
			for q := 0; q < pl.NumProcs(); q++ {
				plc := st.probe(v, q, preds)
				if plc.start+blw[v] >= bestSpan {
					continue
				}
				if nodes >= nodeBudget {
					exhausted = true
					return
				}
				child := st.clone()
				child.commit(v, plc)
				nm := curMax
				if plc.finish > nm {
					nm = plc.finish
				}
				next := make([]int, 0, len(ready)+2)
				next = append(next, ready[:ri]...)
				next = append(next, ready[ri+1:]...)
				for _, a := range g.Succ(v) {
					indeg[a.Node]--
					if indeg[a.Node] == 0 {
						next = append(next, a.Node)
					}
				}
				dfs(child, next, placed+1, nm)
				for _, a := range g.Succ(v) {
					indeg[a.Node]++
				}
			}
		}
	}
	dfs(s, ready, 0, 0)
	if best == nil {
		return nil, false, fmt.Errorf("heuristics: exhaustive search found no schedule within budget %d", nodeBudget)
	}
	return best, !exhausted, nil
}

// cpopReference is the original CPOP loop: critical-path tasks probe their
// pinned processor, every other popped task runs a plain sequential bestEFT
// over all processors — no caching, no bound skipping.
func cpopReference(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, &Tuning{ProbeParallelism: 1})
	if err != nil {
		return nil, err
	}
	ef, cf := pl.AvgExecFactor(), pl.AvgLinkFactor()
	bl, err := g.BottomLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	tl, err := g.TopLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	prio := make([]float64, g.NumNodes())
	cpLen := 0.0
	for v := range prio {
		prio[v] = tl[v] + bl[v]
		if prio[v] > cpLen {
			cpLen = prio[v]
		}
	}
	onCP := make([]bool, g.NumNodes())
	cur := -1
	for _, v := range g.Sources() {
		if almost(prio[v], cpLen) && (cur == -1 || prio[v] > prio[cur]) {
			cur = v
		}
	}
	var cpTasks []int
	for cur >= 0 {
		onCP[cur] = true
		cpTasks = append(cpTasks, cur)
		next := -1
		for _, a := range g.Succ(cur) {
			if almost(prio[a.Node], cpLen) && (next == -1 || prio[a.Node] > prio[next]) {
				next = a.Node
			}
		}
		cur = next
	}
	cpProc, best := 0, math.Inf(1)
	for q := 0; q < pl.NumProcs(); q++ {
		var sum float64
		for _, v := range cpTasks {
			sum += pl.ExecTime(g.Weight(v), q)
		}
		if sum < best {
			cpProc, best = q, sum
		}
	}

	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		var pl0 placement
		if onCP[v] {
			pl0 = s.probe(v, cpProc, s.preds(v))
		} else {
			pl0 = s.bestEFT(v, nil)
		}
		s.commit(v, pl0)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}
