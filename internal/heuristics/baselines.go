package heuristics

import (
	"math"
	"math/rand"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// This file implements the heuristics the paper's prior work [3] compared
// ILHA against: CPOP (Topcuoglu–Hariri–Wu), the generalized dynamic level
// heuristic GDL/DLS (Sih–Lee), BIL (Oh–Ha) and PCT (Maheswaran–Siegel),
// plus two naive controls. All were designed for the macro-dataflow model;
// here each runs under either model by reusing the shared communication
// placement machinery, which is exactly how the paper ports HEFT (§4.3).
// Where the original papers leave freedom, we note the adaptation in the
// doc comment.

// CPOP implements the Critical-Path-on-a-Processor heuristic: priorities are
// tlevel+blevel; the tasks of one critical path are all pinned to the single
// processor minimizing the path's total execution time; every other task is
// placed by earliest finish time.
func CPOP(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return cpopRun(g, pl, model, nil)
}

func cpopRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	ef, cf := pl.AvgExecFactor(), pl.AvgLinkFactor()
	bl, err := g.BottomLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	tl, err := g.TopLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	prio := make([]float64, g.NumNodes())
	cpLen := 0.0
	for v := range prio {
		prio[v] = tl[v] + bl[v]
		if prio[v] > cpLen {
			cpLen = prio[v]
		}
	}
	// walk one critical path: start from the entry task with maximal
	// priority, repeatedly follow the successor with maximal priority.
	onCP := make([]bool, g.NumNodes())
	cur := -1
	for _, v := range g.Sources() {
		if almost(prio[v], cpLen) && (cur == -1 || prio[v] > prio[cur]) {
			cur = v
		}
	}
	var cpTasks []int
	for cur >= 0 {
		onCP[cur] = true
		cpTasks = append(cpTasks, cur)
		next := -1
		for _, a := range g.Succ(cur) {
			if almost(prio[a.Node], cpLen) && (next == -1 || prio[a.Node] > prio[next]) {
				next = a.Node
			}
		}
		cur = next
	}
	// the processor executing the whole critical path fastest
	cpProc, best := 0, math.Inf(1)
	for q := 0; q < pl.NumProcs(); q++ {
		var sum float64
		for _, v := range cpTasks {
			sum += pl.ExecTime(g.Weight(v), q)
		}
		if sum < best {
			cpProc, best = q, sum
		}
	}

	// CPOP's processor scan runs on the frontier engine like BIL's: each
	// popped off-path task's row goes through the cached scan with the
	// monotone-bound stale-skip (stale finishes lower-bound true finishes,
	// so most pairs a commit invalidated are disposed of without a probe),
	// and critical-path tasks probe only their pinned processor. The
	// engine-backed scan is byte-identical to the pre-engine bestEFT loop
	// (cpopReference; TestCPOPFrontierDeterminism).
	f := attachFrontier(s)
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		var best placement
		if onCP[v] {
			best = s.probe(v, cpProc, s.preds(v))
		} else {
			best = f.bestInRow(v)
		}
		s.commit(v, best)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// DLS implements Sih and Lee's dynamic level scheduling (the paper cites it
// as GDL, the generalized dynamic level heuristic): at every step, over all
// (ready task, processor) pairs, maximize
//
//	DL(v,p) = SL(v) − EST(v,p) + Δ(v,p)
//
// where SL is the static level (bottom level with averaged costs), EST the
// earliest start time of v on p given current timelines and the
// communication model, and Δ(v,p) = w̄(v) − w(v)·t_p rewards processors
// faster than average on the task. Ties go to the lower task id, then the
// lower processor index.
func DLS(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return dlsRun(g, pl, model, nil)
}

func dlsRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	sl, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ef := pl.AvgExecFactor()
	f := attachFrontier(s)
	rel := newReleaser(g)
	ready := newReadyList(sl)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	np := pl.NumProcs()
	lazy := s.par <= 1
	// heavy marks frontiers where the bound pass barely skips anything (a
	// fork-join chunk: every pair's communication crosses the same source
	// port, so each commit re-inflates every stale bound); there a single
	// refresh-as-you-scan sweep avoids the second pass. Re-sampled
	// periodically in case the frontier's shape changes. Both modes (and
	// the parallel ensure) compute the exact same argmax.
	heavy := false
	step := 0
	for !ready.empty() {
		step++
		useBound := lazy && (!heavy || step%16 == 0)
		if !lazy {
			// parallel budget: revalidate the whole frontier through the
			// worker pool — only the pairs the last commit perturbed are
			// re-probed — then reduce over exact scores
			f.ensure(ready.items())
		}
		// argmax over every (ready task, processor) pair by the total order
		// (DL desc, task id asc, proc id asc) — exactly the pair the former
		// ascending-id strict-improvement scan kept
		bestV, bestP, bestDL := -1, -1, math.Inf(-1)
		better := func(dl float64, v, q int) bool {
			return dl > bestDL || (dl == bestDL && (v < bestV || (v == bestV && q < bestP)))
		}
		// exact pass: cached and compute-refreshed entries (every entry when
		// the parallel ensure ran; heavy mode re-probes stale pairs inline)
		for _, v := range ready.items() {
			row := f.row(v)
			w := g.Weight(v)
			var preds []predInfo
			havePreds := false
			for q := 0; q < np; q++ {
				e := &row[q]
				if lazy {
					switch f.staleKind(v, q, e) {
					case staleCompute:
						f.fastRefresh(v, q, e)
					case staleFull:
						if useBound {
							continue // bound pass below
						}
						if !havePreds {
							preds = s.preds(v)
							havePreds = true
						}
						f.refresh(v, q, preds)
					}
				}
				delta := w*ef - pl.ExecTime(w, q)
				dl := sl[v] - e.start + delta
				if better(dl, v, q) {
					bestV, bestP, bestDL = v, q, dl
				}
			}
		}
		if useBound {
			// bound pass: committed reservations only ever grow the
			// timelines, so a stale cached start is a lower bound on the
			// true start and sl − start + Δ an upper bound on the true DL.
			// A stale pair whose bound cannot beat the incumbent (under the
			// full tie-break) can never be the argmax and is skipped without
			// a probe; the rest are re-probed exactly once.
			cand, refreshed := 0, 0
			for _, v := range ready.items() {
				row := f.row(v)
				w := g.Weight(v)
				var preds []predInfo
				havePreds := false
				for q := 0; q < np; q++ {
					e := &row[q]
					if f.staleKind(v, q, e) != staleFull {
						continue
					}
					cand++
					delta := w*ef - pl.ExecTime(w, q)
					if bound := sl[v] - f.boundStart(e) + delta; !better(bound, v, q) {
						continue
					}
					if !havePreds {
						preds = s.preds(v)
						havePreds = true
					}
					refreshed++
					f.refresh(v, q, preds)
					dl := sl[v] - e.start + delta
					if better(dl, v, q) {
						bestV, bestP, bestDL = v, q, dl
					}
				}
			}
			heavy = cand >= 64 && refreshed*4 >= cand*3
		}
		s.commit(bestV, f.placementFor(bestV, bestP))
		ready.remove(bestV)
		for _, nv := range rel.release(bestV) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// BIL implements the core of Oh and Ha's Basic Imaginary Level heuristic.
// The basic imaginary level of task v on processor p is
//
//	BIL(v,p) = w(v)·t_p + max_{s ∈ succ(v)} min( BIL(s,p),
//	                        min_{q≠p} BIL(s,q) + data(v,s)·l̄ )
//
// computed bottom-up (l̄ is the harmonic-mean link cost). Task priority is
// the maximum BIL over processors; the selected task goes to the processor
// minimizing its earliest finish time, the adaptation matching how the
// other list heuristics are ported to the one-port model.
func BIL(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return bilRun(g, pl, model, nil)
}

func bilRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := bilPriorities(g, pl)
	if err != nil {
		return nil, err
	}

	// BIL's level scan runs on the frontier engine like DLS and Exhaustive:
	// each popped task's processor row is probed through the shared cached +
	// parallel scan machinery, and the earliest-finish reduction (ties to
	// the lowest processor index) is identical to bestEFT's.
	f := attachFrontier(s)
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		s.commit(v, f.bestInRow(v))
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// bilPriorities computes the BIL task priorities: the bottom-up imaginary
// level matrix, reduced to max over processors per task. Shared by bilRun
// and the incremental runner, which needs the priorities alone to simulate
// BIL's commit order.
func bilPriorities(g *graph.Graph, pl *platform.Platform) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := pl.NumProcs()
	lbar := pl.AvgLinkFactor()
	bil := make([][]float64, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		bil[v] = make([]float64, p)
		for q := 0; q < p; q++ {
			maxSucc := 0.0
			for _, a := range g.Succ(v) {
				// cheapest continuation: stay on q, or move anywhere paying
				// an average communication
				stay := bil[a.Node][q]
				move := math.Inf(1)
				for r := 0; r < p; r++ {
					if r == q {
						continue
					}
					if c := bil[a.Node][r] + a.Data*lbar; c < move {
						move = c
					}
				}
				best := stay
				if move < best {
					best = move
				}
				if best > maxSucc {
					maxSucc = best
				}
			}
			bil[v][q] = pl.ExecTime(g.Weight(v), q) + maxSucc
		}
	}
	prio := make([]float64, g.NumNodes())
	for v := range prio {
		m := math.Inf(-1)
		for q := 0; q < p; q++ {
			if bil[v][q] > m {
				m = bil[v][q]
			}
		}
		prio[v] = m
	}
	return prio, nil
}

// PCT implements the minimum Partial Completion Time static priority
// heuristic (Maheswaran–Siegel): static priorities are the averaged bottom
// levels; the selected ready task goes to the processor minimizing the
// partial completion time, i.e. its finish time given all previous
// decisions. Structurally it is HEFT with the original paper's framing; it
// serves as an independent implementation cross-check in tests.
func PCT(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return HEFT(g, pl, model)
}

// RoundRobin is a control heuristic: tasks in bottom-level order are dealt
// to processors cyclically; communications are still scheduled correctly
// under the model. It shows how much EFT-style mapping buys.
func RoundRobin(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return roundRobinRun(g, pl, model, nil)
}

func roundRobinRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	next := 0
	for !ready.empty() {
		v := ready.pop()
		pl0 := s.probe(v, next, s.preds(v))
		s.commit(v, pl0)
		next = (next + 1) % pl.NumProcs()
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// Random is a control heuristic mapping each task to a uniformly random
// processor (deterministic for a given seed).
func Random(g *graph.Graph, pl *platform.Platform, model sched.Model, seed int64) (*sched.Schedule, error) {
	return randomRun(g, pl, model, seed, nil)
}

func randomRun(g *graph.Graph, pl *platform.Platform, model sched.Model, seed int64, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		pl0 := s.probe(v, r.Intn(pl.NumProcs()), s.preds(v))
		s.commit(v, pl0)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
