package heuristics

import (
	"math"
	"math/rand"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// This file implements the heuristics the paper's prior work [3] compared
// ILHA against: CPOP (Topcuoglu–Hariri–Wu), the generalized dynamic level
// heuristic GDL/DLS (Sih–Lee), BIL (Oh–Ha) and PCT (Maheswaran–Siegel),
// plus two naive controls. All were designed for the macro-dataflow model;
// here each runs under either model by reusing the shared communication
// placement machinery, which is exactly how the paper ports HEFT (§4.3).
// Where the original papers leave freedom, we note the adaptation in the
// doc comment.

// CPOP implements the Critical-Path-on-a-Processor heuristic: priorities are
// tlevel+blevel; the tasks of one critical path are all pinned to the single
// processor minimizing the path's total execution time; every other task is
// placed by earliest finish time.
func CPOP(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return cpopRun(g, pl, model, nil)
}

func cpopRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	ef, cf := pl.AvgExecFactor(), pl.AvgLinkFactor()
	bl, err := g.BottomLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	tl, err := g.TopLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	prio := make([]float64, g.NumNodes())
	cpLen := 0.0
	for v := range prio {
		prio[v] = tl[v] + bl[v]
		if prio[v] > cpLen {
			cpLen = prio[v]
		}
	}
	// walk one critical path: start from the entry task with maximal
	// priority, repeatedly follow the successor with maximal priority.
	onCP := make([]bool, g.NumNodes())
	cur := -1
	for _, v := range g.Sources() {
		if almost(prio[v], cpLen) && (cur == -1 || prio[v] > prio[cur]) {
			cur = v
		}
	}
	var cpTasks []int
	for cur >= 0 {
		onCP[cur] = true
		cpTasks = append(cpTasks, cur)
		next := -1
		for _, a := range g.Succ(cur) {
			if almost(prio[a.Node], cpLen) && (next == -1 || prio[a.Node] > prio[next]) {
				next = a.Node
			}
		}
		cur = next
	}
	// the processor executing the whole critical path fastest
	cpProc, best := 0, math.Inf(1)
	for q := 0; q < pl.NumProcs(); q++ {
		var sum float64
		for _, v := range cpTasks {
			sum += pl.ExecTime(g.Weight(v), q)
		}
		if sum < best {
			cpProc, best = q, sum
		}
	}

	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		var best placement
		if onCP[v] {
			best = s.probe(v, cpProc, s.preds(v))
		} else {
			best = s.bestEFT(v, nil)
		}
		s.commit(v, best)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// DLS implements Sih and Lee's dynamic level scheduling (the paper cites it
// as GDL, the generalized dynamic level heuristic): at every step, over all
// (ready task, processor) pairs, maximize
//
//	DL(v,p) = SL(v) − EST(v,p) + Δ(v,p)
//
// where SL is the static level (bottom level with averaged costs), EST the
// earliest start time of v on p given current timelines and the
// communication model, and Δ(v,p) = w̄(v) − w(v)·t_p rewards processors
// faster than average on the task. Ties go to the lower task id, then the
// lower processor index.
func DLS(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return dlsRun(g, pl, model, nil)
}

func dlsRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	sl, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ef := pl.AvgExecFactor()
	rel := newReleaser(g)
	readySet := map[int]bool{}
	for _, v := range rel.initial() {
		readySet[v] = true
	}
	for len(readySet) > 0 {
		bestV, bestDL := -1, math.Inf(-1)
		var bestPl placement
		// deterministic iteration: ascending task id
		ids := make([]int, 0, len(readySet))
		for v := range readySet {
			ids = append(ids, v)
		}
		sortInts(ids)
		for _, v := range ids {
			preds := s.preds(v)
			for q := 0; q < pl.NumProcs(); q++ {
				cand := s.probe(v, q, preds)
				delta := g.Weight(v)*ef - pl.ExecTime(g.Weight(v), q)
				dl := sl[v] - cand.start + delta
				if dl > bestDL {
					// cand's comms live in probe scratch; stash them so the
					// held best survives the remaining probes of this step
					bestV, bestDL, bestPl = v, dl, s.stash(cand)
				}
			}
		}
		s.commit(bestV, bestPl)
		delete(readySet, bestV)
		for _, nv := range rel.release(bestV) {
			readySet[nv] = true
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// BIL implements the core of Oh and Ha's Basic Imaginary Level heuristic.
// The basic imaginary level of task v on processor p is
//
//	BIL(v,p) = w(v)·t_p + max_{s ∈ succ(v)} min( BIL(s,p),
//	                        min_{q≠p} BIL(s,q) + data(v,s)·l̄ )
//
// computed bottom-up (l̄ is the harmonic-mean link cost). Task priority is
// the maximum BIL over processors; the selected task goes to the processor
// minimizing its earliest finish time, the adaptation matching how the
// other list heuristics are ported to the one-port model.
func BIL(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return bilRun(g, pl, model, nil)
}

func bilRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := pl.NumProcs()
	lbar := pl.AvgLinkFactor()
	bil := make([][]float64, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		bil[v] = make([]float64, p)
		for q := 0; q < p; q++ {
			maxSucc := 0.0
			for _, a := range g.Succ(v) {
				// cheapest continuation: stay on q, or move anywhere paying
				// an average communication
				stay := bil[a.Node][q]
				move := math.Inf(1)
				for r := 0; r < p; r++ {
					if r == q {
						continue
					}
					if c := bil[a.Node][r] + a.Data*lbar; c < move {
						move = c
					}
				}
				best := stay
				if move < best {
					best = move
				}
				if best > maxSucc {
					maxSucc = best
				}
			}
			bil[v][q] = pl.ExecTime(g.Weight(v), q) + maxSucc
		}
	}
	prio := make([]float64, g.NumNodes())
	for v := range prio {
		m := math.Inf(-1)
		for q := 0; q < p; q++ {
			if bil[v][q] > m {
				m = bil[v][q]
			}
		}
		prio[v] = m
	}

	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		best := s.bestEFT(v, nil)
		s.commit(v, best)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// PCT implements the minimum Partial Completion Time static priority
// heuristic (Maheswaran–Siegel): static priorities are the averaged bottom
// levels; the selected ready task goes to the processor minimizing the
// partial completion time, i.e. its finish time given all previous
// decisions. Structurally it is HEFT with the original paper's framing; it
// serves as an independent implementation cross-check in tests.
func PCT(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return HEFT(g, pl, model)
}

// RoundRobin is a control heuristic: tasks in bottom-level order are dealt
// to processors cyclically; communications are still scheduled correctly
// under the model. It shows how much EFT-style mapping buys.
func RoundRobin(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return roundRobinRun(g, pl, model, nil)
}

func roundRobinRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	next := 0
	for !ready.empty() {
		v := ready.pop()
		pl0 := s.probe(v, next, s.preds(v))
		s.commit(v, pl0)
		next = (next + 1) % pl.NumProcs()
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// Random is a control heuristic mapping each task to a uniformly random
// processor (deterministic for a given seed).
func Random(g *graph.Graph, pl *platform.Platform, model sched.Model, seed int64) (*sched.Schedule, error) {
	return randomRun(g, pl, model, seed, nil)
}

func randomRun(g *graph.Graph, pl *platform.Platform, model sched.Model, seed int64, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		pl0 := s.probe(v, r.Intn(pl.NumProcs()), s.preds(v))
		s.commit(v, pl0)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
