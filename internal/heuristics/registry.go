package heuristics

import (
	"fmt"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// Func is the common shape of every scheduling heuristic in the package.
type Func func(*graph.Graph, *platform.Platform, sched.Model) (*sched.Schedule, error)

// ByName returns the heuristic registered under name. ILHA options are bound
// from opts (other heuristics ignore them). Known names: heft, heft-append,
// ilha, ilha-levels, dsc, cpop, dls, gdl (alias of dls), bil, pct,
// roundrobin, random.
func ByName(name string, opts ILHAOptions) (Func, error) {
	switch name {
	case "heft":
		return HEFT, nil
	case "heft-append":
		return HEFTAppend, nil
	case "dsc":
		return DSC, nil
	case "ilha-levels":
		return ILHALevels, nil
	case "ilha":
		return func(g *graph.Graph, pl *platform.Platform, m sched.Model) (*sched.Schedule, error) {
			return ILHA(g, pl, m, opts)
		}, nil
	case "cpop":
		return CPOP, nil
	case "dls", "gdl":
		return DLS, nil
	case "bil":
		return BIL, nil
	case "pct":
		return PCT, nil
	case "roundrobin":
		return RoundRobin, nil
	case "random":
		return func(g *graph.Graph, pl *platform.Platform, m sched.Model) (*sched.Schedule, error) {
			return Random(g, pl, m, 1)
		}, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q (known: %v)", name, Names())
	}
}

// Names lists the registered heuristic names.
func Names() []string {
	names := []string{"heft", "heft-append", "ilha", "ilha-levels", "dsc", "cpop", "dls", "bil", "pct", "roundrobin", "random"}
	sort.Strings(names)
	return names
}
