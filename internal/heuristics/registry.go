package heuristics

import (
	"fmt"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// Func is the common shape of every scheduling heuristic in the package.
type Func func(*graph.Graph, *platform.Platform, sched.Model) (*sched.Schedule, error)

// ByName returns the heuristic registered under name. ILHA options are bound
// from opts (other heuristics ignore them). Known names: heft, heft-append,
// ilha, ilha-levels, dsc, cpop, dls, gdl (alias of dls), bil, pct,
// roundrobin, random.
func ByName(name string, opts ILHAOptions) (Func, error) {
	return ByNameTuned(name, opts, nil)
}

// ByNameTuned is ByName with a per-run Tuning bound into the returned Func:
// every invocation runs with the Tuning's probe parallelism and scratch
// instead of the process-wide defaults. The same one-run-at-a-time rule as
// Tuning applies to the returned Func when the Tuning carries a Scratch.
func ByNameTuned(name string, opts ILHAOptions, tune *Tuning) (Func, error) {
	run := func(f func(*graph.Graph, *platform.Platform, sched.Model, *Tuning) (*sched.Schedule, error)) Func {
		return func(g *graph.Graph, pl *platform.Platform, m sched.Model) (sch *sched.Schedule, err error) {
			// ByNameTuned is the boundary where a Tuning.Ctx expiry —
			// raised as a runCanceled panic at the commit cancellation
			// point — becomes an ordinary ErrCanceled error. Any other
			// panic keeps propagating: the service's compute recovery owns
			// those.
			defer func() {
				if r := recover(); r != nil {
					rc, ok := r.(runCanceled)
					if !ok {
						panic(r)
					}
					sch, err = nil, fmt.Errorf("%w: %v", ErrCanceled, rc.err)
				}
			}()
			return f(g, pl, m, tune)
		}
	}
	switch name {
	case "heft", "pct": // PCT's port is structurally HEFT; see its doc comment
		return run(func(g *graph.Graph, pl *platform.Platform, m sched.Model, t *Tuning) (*sched.Schedule, error) {
			return heftRun(g, pl, m, false, t)
		}), nil
	case "heft-append":
		return run(func(g *graph.Graph, pl *platform.Platform, m sched.Model, t *Tuning) (*sched.Schedule, error) {
			return heftRun(g, pl, m, true, t)
		}), nil
	case "dsc":
		return run(dscRun), nil
	case "ilha-levels":
		return run(ilhaLevelsRun), nil
	case "ilha":
		return run(func(g *graph.Graph, pl *platform.Platform, m sched.Model, t *Tuning) (*sched.Schedule, error) {
			return ilhaRun(g, pl, m, opts, t)
		}), nil
	case "cpop":
		return run(cpopRun), nil
	case "dls", "gdl":
		return run(dlsRun), nil
	case "bil":
		return run(bilRun), nil
	case "roundrobin":
		return run(roundRobinRun), nil
	case "random":
		return run(func(g *graph.Graph, pl *platform.Platform, m sched.Model, t *Tuning) (*sched.Schedule, error) {
			return randomRun(g, pl, m, 1, t)
		}), nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q (known: %v)", name, Names())
	}
}

// Names lists the registered heuristic names.
func Names() []string {
	names := []string{"heft", "heft-append", "ilha", "ilha-levels", "dsc", "cpop", "dls", "bil", "pct", "roundrobin", "random"}
	sort.Strings(names)
	return names
}
