package heuristics

import (
	"fmt"

	"oneport/internal/graph"
	"oneport/internal/loadbalance"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// ILHAOptions tunes the Iso-Level Heterogeneous Allocation heuristic.
type ILHAOptions struct {
	// B is the maximal number of ready tasks considered per decision step.
	// B = 0 selects the platform's perfect-balance count (38 for the paper
	// platform) when the cycle-times are integers, or the processor count
	// otherwise. The paper requires B >= number of processors; smaller
	// positive values are clamped up.
	B int

	// ScanDepth is the number of communications Step 1 tolerates when
	// grouping a task with its predecessors. The paper's Step 1 uses 0
	// (only tasks all of whose parents live on one processor); §4.4 suggests
	// "another scan for tasks that can be scheduled at the price of a single
	// communication, and so on" — ScanDepth = k accepts tasks with at most
	// k predecessors away from the chosen processor.
	ScanDepth int

	// CapStep2 additionally enforces the load-balancing capacities during
	// Step 2: a processor whose accumulated chunk workload has reached its
	// share is skipped (unless every processor is saturated, in which case
	// all are considered to guarantee progress). The paper's one-port Step 2
	// is plain earliest-finish-time, so the default is false.
	CapStep2 bool

	// RescheduleComms enables the third step discussed in §4.4: after Steps
	// 1 and 2 fix the chunk's allocation, all placements of the chunk are
	// discarded and the tasks are rescheduled (in priority order, with the
	// known allocation) so communications can be re-packed. The underlying
	// problem, COMM-SCHED, is NP-complete (paper appendix); this greedy
	// pass is the suggested heuristic.
	RescheduleComms bool
}

// ILHA implements the paper's Iso-Level Heterogeneous Allocation heuristic
// under the given communication model (§4.2 for macro-dataflow, §4.4 for the
// one-port adaptation):
//
//   - ready tasks are kept sorted by decreasing bottom level and consumed in
//     chunks of B;
//   - Step 1 scans the chunk and places every task whose parents all sit on
//     one processor onto that processor — generating no communication —
//     provided the processor has not exceeded its load-balancing share
//     c_i·W of the chunk's total weight W;
//   - Step 2 places the remaining tasks HEFT-style, on the processor giving
//     the earliest finish time with communications serialized under the
//     one-port constraint.
func ILHA(g *graph.Graph, pl *platform.Platform, model sched.Model, opts ILHAOptions) (*sched.Schedule, error) {
	return ilhaRun(g, pl, model, opts, nil)
}

func ilhaRun(g *graph.Graph, pl *platform.Platform, model sched.Model, opts ILHAOptions, tune *Tuning) (*sched.Schedule, error) {
	b := opts.B
	if b == 0 {
		if pb, err := pl.PerfectBalanceCount(); err == nil {
			b = pb
		} else {
			b = pl.NumProcs()
		}
	}
	if b < 0 {
		return nil, fmt.Errorf("heuristics: ILHA B = %d must be non-negative", b)
	}
	if b == 0 {
		b = 1
	}
	// The paper remarks that B "must be at least equal to the number of
	// processors, otherwise some processors would be kept idle", yet its own
	// best LU configuration is B = 4 on 10 processors (§5.3): a small chunk
	// only restricts the *grouping* horizon, Step 2 still spreads tasks over
	// every processor across successive chunks. We therefore accept any
	// B >= 1 rather than clamping.
	if opts.ScanDepth < 0 {
		return nil, fmt.Errorf("heuristics: ILHA ScanDepth = %d must be non-negative", opts.ScanDepth)
	}

	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}

	for !ready.empty() {
		chunk := ready.popN(b)
		var st *state
		if opts.RescheduleComms {
			// decide the allocation on a scratch copy, then re-place the
			// chunk on the real state with the allocation fixed
			st = s.clone()
		} else {
			st = s
		}
		alloc := scheduleChunk(st, chunk, opts)
		if opts.RescheduleComms {
			rescheduleChunk(s, chunk, alloc)
		}
		for _, v := range chunk {
			for _, nv := range rel.release(v) {
				ready.push(nv)
			}
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// scheduleChunk runs Steps 1 and 2 on the given state and returns the
// resulting allocation (task -> processor).
func scheduleChunk(s *state, chunk []int, opts ILHAOptions) map[int]int {
	p := s.pl.NumProcs()
	var w float64
	for _, v := range chunk {
		w += s.g.Weight(v)
	}
	caps := loadbalance.Caps(w, s.pl.CycleTimes())
	load := make([]float64, p)
	alloc := make(map[int]int, len(chunk))

	// Step 1: no-communication (or <= ScanDepth communications) grouping.
	// Scans run in priority order (the chunk is already sorted).
	remaining := make([]int, 0, len(chunk))
	for _, v := range chunk {
		proc, ncomms := dominantPredProc(s, v)
		if proc < 0 || ncomms > opts.ScanDepth {
			remaining = append(remaining, v)
			continue
		}
		if load[proc] >= caps[proc]-1e-9 {
			// §4.4 Step 1: assign "provided that the current workload of Pi
			// does not exceed the fraction ciW"; the check is on the
			// workload *before* the assignment, so a processor may overshoot
			// its share by at most one task (tasks are indivisible).
			remaining = append(remaining, v)
			continue
		}
		pl := s.probe(v, proc, s.preds(v))
		s.commit(v, pl)
		load[proc] += s.g.Weight(v)
		alloc[v] = proc
	}

	// Step 2: HEFT-style earliest finish time for the rest.
	for _, v := range remaining {
		var candidates []int
		if opts.CapStep2 {
			for q := 0; q < p; q++ {
				if load[q] < caps[q]-1e-9 {
					candidates = append(candidates, q)
				}
			}
			// all saturated: fall back to every processor so the task is
			// still placed
		}
		best := s.bestEFT(v, candidates)
		s.commit(v, best)
		load[best.proc] += s.g.Weight(v)
		alloc[v] = best.proc
	}
	return alloc
}

// dominantPredProc returns the processor hosting the largest number of v's
// predecessors (ties to the lowest processor index) and the number of
// communications an assignment of v to that processor would require (the
// number of predecessors living elsewhere). Tasks without predecessors
// return (-1, 0): there is no processor to group with.
func dominantPredProc(s *state, v int) (proc, comms int) {
	adj := s.g.Pred(v)
	if len(adj) == 0 {
		return -1, 0
	}
	// processor-indexed counting on state scratch: O(preds + touched procs),
	// allocation-free after the first call, and safe for wide fan-ins (the
	// fork-join join task has hundreds of predecessors)
	counts := s.predCount
	if len(counts) < s.pl.NumProcs() {
		counts = make([]int, s.pl.NumProcs())
		s.predCount = counts
	}
	// incremental argmax: a processor wins the moment it reaches a higher
	// count, ties to the lower index — the same (max count, lowest proc)
	// winner the counting map produced
	best, bestCount := -1, -1
	for _, a := range adj {
		q := s.sch.Tasks[a.Node].Proc
		counts[q]++
		if c := counts[q]; c > bestCount || (c == bestCount && q < best) {
			best, bestCount = q, c
		}
	}
	for _, a := range adj {
		counts[s.sch.Tasks[a.Node].Proc] = 0
	}
	return best, len(adj) - bestCount
}

// rescheduleChunk re-places an already-allocated chunk on the real state:
// tasks keep their allocation but all timings (including communications) are
// recomputed greedily in priority order. This is the "third step" of §4.4.
func rescheduleChunk(s *state, chunk []int, alloc map[int]int) {
	for _, v := range chunk {
		pl := s.probe(v, alloc[v], s.preds(v))
		s.commit(v, pl)
	}
}
