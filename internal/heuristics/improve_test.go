package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestFixedAllocRespectsAllocation(t *testing.T) {
	g := chainForkMix(t)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	alloc := []int{0, 1, 2, 0, 1, 2}
	s, err := FixedAlloc(g, pl, sched.OnePort, alloc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	for v, p := range alloc {
		if s.Proc(v) != p {
			t.Errorf("task %d on %d, want %d", v, s.Proc(v), p)
		}
	}
}

func TestFixedAllocValidation(t *testing.T) {
	g := chainForkMix(t)
	pl, _ := platform.Homogeneous(2)
	if _, err := FixedAlloc(g, pl, sched.OnePort, []int{0}, nil); err == nil {
		t.Error("expected error for short alloc")
	}
	if _, err := FixedAlloc(g, pl, sched.OnePort, []int{0, 0, 0, 0, 0, 9}, nil); err == nil {
		t.Error("expected error for invalid processor")
	}
	if _, err := FixedAlloc(g, pl, sched.OnePort, []int{0, 0, 0, 0, 0, 1}, []float64{1}); err == nil {
		t.Error("expected error for short prio")
	}
}

func TestImproveNeverWorseAndKeepsAllocation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 20)
		pl := randomPlatform(r)
		s, err := HEFT(g, pl, sched.OnePort)
		if err != nil {
			return false
		}
		better, err := Improve(g, pl, sched.OnePort, s, 8, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := sched.Validate(g, pl, better, sched.OnePort); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if better.Makespan() > s.Makespan()+1e-9 {
			t.Logf("seed %d: improved makespan %g worse than original %g",
				seed, better.Makespan(), s.Makespan())
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			if better.Proc(v) != s.Proc(v) {
				t.Logf("seed %d: task %d moved", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestImproveRejectsIncompleteSchedule(t *testing.T) {
	g := chainForkMix(t)
	pl, _ := platform.Homogeneous(2)
	s := sched.NewSchedule(g.NumNodes(), 2)
	if _, err := Improve(g, pl, sched.OnePort, s, 2, 1); err == nil {
		t.Fatal("expected error for incomplete schedule")
	}
}

func TestImproveDeterministicPerSeed(t *testing.T) {
	g := chainForkMix(t)
	pl := platform.Paper()
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Improve(g, pl, sched.OnePort, s, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Improve(g, pl, sched.OnePort, s, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan() != b.Makespan() {
		t.Fatalf("same seed, different results: %g vs %g", a.Makespan(), b.Makespan())
	}
}
