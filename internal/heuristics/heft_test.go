package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// fig1Fork builds the example of the paper's Figure 1: a fork with parent v0
// and six children, all weights 1, all data volumes 1, scheduled on five
// same-speed processors with unit links.
func fig1Fork(t *testing.T) (*graph.Graph, *platform.Platform) {
	t.Helper()
	g := graph.New(7)
	v0 := g.AddNode(1, "v0")
	for i := 1; i <= 6; i++ {
		vi := g.AddNode(1, "v")
		g.MustEdge(v0, vi, 1)
	}
	pl, err := platform.Homogeneous(5)
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

func TestFigure1Example(t *testing.T) {
	g, pl := fig1Fork(t)

	macro, err := HEFT(g, pl, sched.MacroDataflow)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, macro, sched.MacroDataflow); err != nil {
		t.Fatalf("macro schedule invalid: %v", err)
	}
	// §2.3: under macro-dataflow the makespan is 3
	if macro.Makespan() != 3 {
		t.Errorf("macro-dataflow HEFT makespan = %g, want 3", macro.Makespan())
	}

	oneport, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, oneport, sched.OnePort); err != nil {
		t.Fatalf("one-port schedule invalid: %v", err)
	}
	// §2.3: the optimal one-port makespan is 5 (macro allocation gives >= 6);
	// serializing the sends makes the parent the bottleneck.
	if oneport.Makespan() != 5 {
		t.Errorf("one-port HEFT makespan = %g, want optimal 5", oneport.Makespan())
	}
}

// toyExample builds the DAG of the paper's Figure 3: two sources a0 and b0;
// a0 feeds a1,a2,a3,ab1,ab2; b0 feeds b1,b2,b3,ab1,ab2; all computation and
// communication costs 1; two same-speed processors.
func toyExample(t *testing.T) (*graph.Graph, *platform.Platform) {
	t.Helper()
	g := graph.New(10)
	a0 := g.AddNode(1, "a0")
	a1 := g.AddNode(1, "a1")
	a2 := g.AddNode(1, "a2")
	a3 := g.AddNode(1, "a3")
	ab1 := g.AddNode(1, "ab1")
	ab2 := g.AddNode(1, "ab2")
	b0 := g.AddNode(1, "b0")
	b1 := g.AddNode(1, "b1")
	b2 := g.AddNode(1, "b2")
	b3 := g.AddNode(1, "b3")
	for _, c := range []int{a1, a2, a3, ab1, ab2} {
		g.MustEdge(a0, c, 1)
	}
	for _, c := range []int{b1, b2, b3, ab1, ab2} {
		g.MustEdge(b0, c, 1)
	}
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

func TestToyExampleILHAvsHEFT(t *testing.T) {
	g, pl := toyExample(t)
	heft, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	ilha, err := ILHA(g, pl, sched.OnePort, ILHAOptions{B: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*sched.Schedule{heft, ilha} {
		if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
			t.Fatalf("invalid schedule: %v", err)
		}
	}
	// §4.4: ILHA's global view groups the a-children on a0's processor and
	// the b-children on b0's, cutting communications; the makespan is no
	// worse.
	if ilha.CommCount() >= heft.CommCount() {
		t.Errorf("ILHA comms = %d, HEFT comms = %d: want strictly fewer",
			ilha.CommCount(), heft.CommCount())
	}
	if ilha.Makespan() > heft.Makespan() {
		t.Errorf("ILHA makespan = %g > HEFT makespan = %g", ilha.Makespan(), heft.Makespan())
	}
}

func TestHEFTSingleProcessorIsSequential(t *testing.T) {
	g := chain(t, 5)
	pl, err := platform.Uniform([]float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	if want := g.TotalWeight() * 2; s.Makespan() != want {
		t.Errorf("makespan = %g, want %g", s.Makespan(), want)
	}
	if s.CommCount() != 0 {
		t.Errorf("single processor produced %d comms", s.CommCount())
	}
}

// chain builds a linear chain of n unit tasks with unit data edges.
func chain(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	prev := g.AddNode(1, "t0")
	for i := 1; i < n; i++ {
		v := g.AddNode(1, "t")
		g.MustEdge(prev, v, 1)
		prev = v
	}
	return g
}

func TestHEFTChainStaysOnOneProcessor(t *testing.T) {
	// with communication cost comparable to execution, a chain should never
	// migrate: EFT keeps it on the processor holding the predecessor.
	g := chain(t, 10)
	pl := platform.Paper()
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Proc(0)
	if first != pl.FastestProc() {
		t.Errorf("chain starts on processor %d, want fastest %d", first, pl.FastestProc())
	}
	for v := 1; v < g.NumNodes(); v++ {
		if s.Proc(v) != first {
			t.Errorf("chain task %d migrated to %d", v, s.Proc(v))
		}
	}
	if s.CommCount() != 0 {
		t.Errorf("chain produced %d communications", s.CommCount())
	}
}

func TestHEFTHeterogeneousPrefersFasterProc(t *testing.T) {
	// independent tasks, no comms: EFT spreads by speed
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(1, "t")
	}
	pl, err := platform.Uniform([]float64{1, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	// finishing times on P0 alone: 1,2,3,4; on P1 a task takes 10.
	// so all four tasks go to P0.
	for v := 0; v < 4; v++ {
		if s.Proc(v) != 0 {
			t.Errorf("task %d on %d, want 0", v, s.Proc(v))
		}
	}
	if s.Makespan() != 4 {
		t.Errorf("makespan = %g, want 4", s.Makespan())
	}
}

func TestHEFTRejectsCyclicGraph(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(1, "")
	b := g.AddNode(1, "")
	g.MustEdge(a, b, 1)
	g.MustEdge(b, a, 1)
	pl, _ := platform.Homogeneous(2)
	if _, err := HEFT(g, pl, sched.OnePort); err == nil {
		t.Fatal("expected error on cyclic graph")
	}
	if _, err := ILHA(g, pl, sched.OnePort, ILHAOptions{}); err == nil {
		t.Fatal("expected ILHA error on cyclic graph")
	}
}

// randomLayeredDAG builds a random DAG for property testing.
func randomLayeredDAG(r *rand.Rand, maxNodes int) *graph.Graph {
	n := 2 + r.Intn(maxNodes)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(float64(1+r.Intn(5)), "")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(3) == 0 {
				g.MustEdge(u, v, float64(r.Intn(8)))
			}
		}
	}
	return g
}

func randomPlatform(r *rand.Rand) *platform.Platform {
	p := 1 + r.Intn(5)
	cycles := make([]float64, p)
	for i := range cycles {
		cycles[i] = float64(1 + r.Intn(6))
	}
	pl, err := platform.Uniform(cycles, float64(1+r.Intn(4)))
	if err != nil {
		panic(err)
	}
	return pl
}

func TestPropertyHEFTSchedulesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 30)
		pl := randomPlatform(r)
		for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
			s, err := HEFT(g, pl, model)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := sched.Validate(g, pl, s, model); err != nil {
				t.Logf("seed %d model %v: %v", seed, model, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyILHASchedulesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 30)
		pl := randomPlatform(r)
		opts := ILHAOptions{
			B:               1 + r.Intn(12),
			ScanDepth:       r.Intn(2),
			CapStep2:        r.Intn(2) == 0,
			RescheduleComms: r.Intn(3) == 0,
		}
		for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
			s, err := ILHA(g, pl, model, opts)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := sched.Validate(g, pl, s, model); err != nil {
				t.Logf("seed %d model %v opts %+v: %v", seed, model, opts, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMakespanLowerBound(t *testing.T) {
	// any valid schedule's makespan is at least the critical path weight
	// divided by the fastest speed, and at least total weight / Σ(1/t_i)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 25)
		pl := randomPlatform(r)
		s, err := HEFT(g, pl, sched.OnePort)
		if err != nil {
			return false
		}
		cp, err := g.CriticalPathWeight()
		if err != nil {
			return false
		}
		lb1 := cp * pl.CycleTime(pl.FastestProc())
		lb2 := g.TotalWeight() / pl.InvSpeedSum()
		m := s.Makespan()
		return m >= lb1-1e-9 && m >= lb2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestILHAOptionValidation(t *testing.T) {
	g := chain(t, 3)
	pl, _ := platform.Homogeneous(2)
	if _, err := ILHA(g, pl, sched.OnePort, ILHAOptions{B: -1}); err == nil {
		t.Error("expected error for negative B")
	}
	if _, err := ILHA(g, pl, sched.OnePort, ILHAOptions{ScanDepth: -1}); err == nil {
		t.Error("expected error for negative ScanDepth")
	}
	// B smaller than proc count is clamped, not an error
	if _, err := ILHA(g, pl, sched.OnePort, ILHAOptions{B: 1}); err != nil {
		t.Errorf("B=1 should be clamped, got %v", err)
	}
}

func TestILHADefaultBUsesPerfectBalance(t *testing.T) {
	// on the paper platform the default B is 38; just exercise the default
	// path end to end on a small graph.
	g, _ := toyExample(t)
	pl := platform.Paper()
	s, err := ILHA(g, pl, sched.OnePort, ILHAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
}

func TestILHARescheduleCommsKeepsAllocation(t *testing.T) {
	g, pl := toyExample(t)
	base, err := ILHA(g, pl, sched.OnePort, ILHAOptions{B: 8})
	if err != nil {
		t.Fatal(err)
	}
	resch, err := ILHA(g, pl, sched.OnePort, ILHAOptions{B: 8, RescheduleComms: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, resch, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if base.Proc(v) != resch.Proc(v) {
			t.Errorf("task %d allocation changed by rescheduling: %d vs %d",
				v, base.Proc(v), resch.Proc(v))
		}
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	// every registered heuristic is a pure function of its inputs: two runs
	// on the same graph and platform produce identical schedules.
	g := testbedGraphForDeterminism(t)
	pl := platform.Paper()
	for _, name := range Names() {
		f, err := ByName(name, ILHAOptions{B: 7, ScanDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		a, err := f(g, pl, sched.OnePort)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f(g, pl, sched.OnePort)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Makespan() != b.Makespan() || a.CommCount() != b.CommCount() {
			t.Errorf("%s: nondeterministic (%g/%d vs %g/%d)",
				name, a.Makespan(), a.CommCount(), b.Makespan(), b.CommCount())
		}
		for v := 0; v < g.NumNodes(); v++ {
			if a.Proc(v) != b.Proc(v) || a.Tasks[v].Start != b.Tasks[v].Start {
				t.Errorf("%s: task %d differs between runs", name, v)
				break
			}
		}
	}
}

func testbedGraphForDeterminism(t *testing.T) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	return randomLayeredDAG(r, 24)
}
