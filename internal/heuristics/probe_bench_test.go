package heuristics

import (
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// BenchmarkProbeMicro isolates one probe call — the innermost unit of every
// heuristic's hot loop — on a half-scheduled mid-size LU instance, so the
// zero-allocation claim of the scratch-buffer probe path is directly visible
// in allocs/op.
func BenchmarkProbeMicro(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(30, 10)
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Schedule the first half HEFT-style so the probed task has committed
	// predecessors spread over several processors and busy timelines to
	// search; then benchmark probing the next ready task.
	prio, err := priorities(g, pl)
	if err != nil {
		b.Fatal(err)
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	target := -1
	for !ready.empty() {
		v := ready.pop()
		if rl := rel.placed; rl > g.NumNodes()/2 && len(s.preds(v)) >= 2 {
			target = v
			break
		}
		s.commit(v, s.bestEFT(v, nil))
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if target < 0 {
		b.Fatal("no suitable half-scheduled task found")
	}
	preds := s.preds(target)
	buf := s.buf(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.probeWith(buf, target, i%pl.NumProcs(), preds)
	}
}
