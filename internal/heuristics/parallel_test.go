package heuristics

import (
	"fmt"
	"reflect"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// TestParallelBestEFTDeterminism is the safety net of the parallel probe
// path: for every communication model, HEFT and ILHA must produce schedules
// identical — task starts, processors, and every communication hop — to a
// sequential reference run. Candidate probes are pure functions of the
// committed timelines, so the parallel fan-out with its (finish, candidate
// position) reduction must be bit-for-bit equivalent to the sequential loop.
// Run under -race this also exercises the data-sharing argument.
func TestParallelBestEFTDeterminism(t *testing.T) {
	pl := platform.Paper()
	graphs := map[string]*graph.Graph{
		// fork-join has a join task with many cross-processor predecessors,
		// guaranteeing the fan-out actually engages above the grain cut-over
		"forkjoin": testbeds.ForkJoin(40, 10),
		"lu":       testbeds.LU(12, 10),
		"stencil":  testbeds.Stencil(10, 10),
	}

	oldGrain := probeParallelGrain
	probeParallelGrain = 2 // force the parallel path onto nearly every task
	defer func() { probeParallelGrain = oldGrain }()

	for name, g := range graphs {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", name, model), func(t *testing.T) {

				old := SetProbeParallelism(1)
				seqH, errH := HEFT(g, pl, model)
				seqI, errI := ILHA(g, pl, model, ILHAOptions{B: 7})
				SetProbeParallelism(8)
				parH, errPH := HEFT(g, pl, model)
				parI, errPI := ILHA(g, pl, model, ILHAOptions{B: 7})
				SetProbeParallelism(old)

				for _, err := range []error{errH, errI, errPH, errPI} {
					if err != nil {
						t.Fatal(err)
					}
				}
				compareSchedules(t, "HEFT", seqH, parH)
				compareSchedules(t, "ILHA", seqI, parI)
			})
		}
	}
}

// compareSchedules requires exact equality: same task events (start, finish,
// processor) and the same comm events with the same hops in the same order.
func compareSchedules(t *testing.T, label string, seq, par *sched.Schedule) {
	t.Helper()
	if !reflect.DeepEqual(seq.Tasks, par.Tasks) {
		for i := range seq.Tasks {
			if !reflect.DeepEqual(seq.Tasks[i], par.Tasks[i]) {
				t.Fatalf("%s: task %d differs: seq %+v, par %+v", label, i, seq.Tasks[i], par.Tasks[i])
			}
		}
		t.Fatalf("%s: task events differ", label)
	}
	if len(seq.Comms) != len(par.Comms) {
		t.Fatalf("%s: comm count differs: seq %d, par %d", label, len(seq.Comms), len(par.Comms))
	}
	for i := range seq.Comms {
		if !reflect.DeepEqual(seq.Comms[i], par.Comms[i]) {
			t.Fatalf("%s: comm %d differs: seq %+v, par %+v", label, i, seq.Comms[i], par.Comms[i])
		}
	}
}
