package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/npc"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestExhaustiveFigure1Optimum(t *testing.T) {
	// Figure 1's fork: exhaustive search must find the optimal one-port
	// makespan 5 and the macro-dataflow optimum 3. The fork needs ~10⁶ DFS
	// expansions to *prove* optimality; the default 200 000 budget used to
	// appear sufficient only because a mid-search cutoff silently reported
	// completion (the flag bug fixed alongside the frontier engine), so the
	// budget is now explicit.
	g, pl := fig1Fork(t)
	s, complete, err := Exhaustive(g, pl, sched.OnePort, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("search did not complete within the budget")
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 5 {
		t.Errorf("one-port optimum = %g, want 5", s.Makespan())
	}
	m, complete, err := Exhaustive(g, pl, sched.MacroDataflow, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	if !complete || m.Makespan() != 3 {
		t.Errorf("macro optimum = %g (complete=%v), want 3", m.Makespan(), complete)
	}
}

func TestExhaustiveMatchesForkSolver(t *testing.T) {
	// cross-validation of two independent exact solvers on random forks
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		weights := make([]float64, n)
		data := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + r.Intn(5))
			data[i] = float64(1 + r.Intn(5))
		}
		g, err := testbeds.Fork(float64(r.Intn(3)), weights, data)
		if err != nil {
			return false
		}
		pl, err := platform.Homogeneous(n + 1)
		if err != nil {
			return false
		}
		want, err := npc.SolveFork(g)
		if err != nil {
			return false
		}
		got, complete, err := Exhaustive(g, pl, sched.OnePort, 500000)
		if err != nil || !complete {
			t.Logf("seed %d: err=%v complete=%v", seed, err, complete)
			return false
		}
		if got.Makespan() != want {
			t.Logf("seed %d: exhaustive %g vs fork solver %g (w=%v d=%v)",
				seed, got.Makespan(), want, weights, data)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveLowerBoundsHeuristics(t *testing.T) {
	// on tiny random DAGs the exact optimum never exceeds any heuristic
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 6)
		pl, err := platform.Uniform([]float64{1, 2}, float64(1+r.Intn(2)))
		if err != nil {
			return false
		}
		for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
			opt, complete, err := Exhaustive(g, pl, model, 400000)
			if err != nil || !complete {
				return true // budget blown: skip this seed, not a failure
			}
			if err := sched.Validate(g, pl, opt, model); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			h, err := HEFT(g, pl, model)
			if err != nil {
				return false
			}
			i, err := ILHA(g, pl, model, ILHAOptions{B: 4})
			if err != nil {
				return false
			}
			if opt.Makespan() > h.Makespan()+1e-9 || opt.Makespan() > i.Makespan()+1e-9 {
				t.Logf("seed %d %v: optimum %g beats heuristics %g/%g?!",
					seed, model, opt.Makespan(), h.Makespan(), i.Makespan())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveBudgetCutoff(t *testing.T) {
	g := testbeds.Laplace(3, 2)
	pl, _ := platform.Homogeneous(3)
	s, complete, err := Exhaustive(g, pl, sched.OnePort, 50)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("a 50-node budget cannot complete a 9-task search over 3 procs")
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatalf("cut-off search returned invalid schedule: %v", err)
	}
}

func TestExhaustiveTinyBudgetError(t *testing.T) {
	g := chain(t, 4)
	pl, _ := platform.Homogeneous(2)
	if _, _, err := Exhaustive(g, pl, sched.OnePort, 2); err == nil {
		t.Fatal("expected failure when no complete schedule fits the budget")
	}
}
