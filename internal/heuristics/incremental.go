package heuristics

import (
	"fmt"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// This file implements the incremental re-schedule entry point used by the
// scheduling-session subsystem: after a graph delta, re-run only the
// invalidated suffix of a previous run instead of the whole heuristic.
//
// The key observation is that for the static-priority list heuristics —
// HEFT/PCT (bottom levels), HEFT-append, and BIL (imaginary levels) — the
// COMMIT ORDER is a pure function of (graph, priorities): the ready list
// pops by (priority desc, id asc) and the releaser tracks in-degrees, none
// of which depend on where tasks were placed. The order can therefore be
// simulated without a single probe. A task's PLACEMENT, in turn, is a pure
// function of its own probe inputs (weight, incoming edges, platform) and
// the committed timelines, which are determined by the placements before
// it. So after a delta, the longest prefix of the new commit order that
// (a) matches the previous order position by position and (b) contains no
// task whose own probe inputs the delta touched, commits to placements
// byte-identical to the previous run's — by induction over commits — and
// can be replayed verbatim from the recorded schedule, rebuilding the
// timelines without probing. Only the suffix runs the real probe loop, on
// warm state.
//
// "Rollback" is deliberately implemented as replay-forward: committed
// Intervals merge adjacent reservations, so un-committing is not defined —
// instead the state is rebuilt from zero by cheap verbatim commits
// (interval inserts, no probes), which is both simpler and sound under
// every communication model (commit applies the same recorded hops the
// cold run would re-derive).
//
// Dynamic-selection heuristics (DLS picks the next task from live probe
// scores; CPOP pins a globally-chosen critical path; ILHA/DSC build
// chunks/clusters from global structure) have no placement-independent
// order, so they fall back to a full recompute — still on the warm Scratch,
// just without a replayed prefix.

// PrevRun carries what the previous run of a session recorded: the commit
// order and the resulting schedule. Both are owned by the caller and only
// read here.
type PrevRun struct {
	Order    []int
	Schedule *sched.Schedule
}

// IncResult is the outcome of an incremental run. Order is the commit order
// of this run (nil when the heuristic has no simulable order — the next
// delta then recomputes in full), to be handed back as the next PrevRun.
// Replayed counts the prefix commits that were replayed without probing.
type IncResult struct {
	Schedule *sched.Schedule
	Order    []int
	Replayed int
}

// SupportsIncremental reports whether the named heuristic has a
// placement-independent commit order, i.e. whether RunIncremental can
// replay a prefix for it. Other registry names still run through
// RunIncremental — as full recomputes.
func SupportsIncremental(name string) bool {
	switch name {
	case "heft", "heft-append", "pct", "bil":
		return true
	}
	return false
}

// RunIncremental schedules g on pl under model with the named heuristic,
// replaying from prev the longest valid prefix of commits. dirty[v] marks
// tasks whose own probe inputs the delta changed (a new or re-costed
// incoming edge, a changed weight); tasks beyond len(dirty) are treated as
// clean, and new tasks cap the prefix by order mismatch anyway. Pass a nil
// prev (or nil dirty after a platform change — probes read every
// processor's speed, links and timelines, so no prefix survives one; the
// caller signals that by dropping prev) to run cold while still recording
// the order for the next delta.
//
// The result is byte-identical to a cold run of the same heuristic on
// (g, pl, model): the replayed prefix is byte-identical by the induction
// above, and the suffix runs the heuristic's own probe loop on identical
// committed state. Cancellation mirrors ByNameTuned: an expired Tuning.Ctx
// surfaces as an error satisfying errors.Is(err, ErrCanceled).
func RunIncremental(name string, g *graph.Graph, pl *platform.Platform, model sched.Model, opts ILHAOptions, tune *Tuning, prev *PrevRun, dirty []bool) (res *IncResult, err error) {
	if !SupportsIncremental(name) {
		f, err := ByNameTuned(name, opts, tune)
		if err != nil {
			return nil, err
		}
		sch, err := f(g, pl, model)
		if err != nil {
			return nil, err
		}
		return &IncResult{Schedule: sch}, nil
	}
	// the same cancellation boundary as ByNameTuned: commit raises a
	// runCanceled panic when Tuning.Ctx expires (including during replay —
	// replay commits pass the same cancellation point)
	defer func() {
		if r := recover(); r != nil {
			rc, ok := r.(runCanceled)
			if !ok {
				panic(r)
			}
			res, err = nil, fmt.Errorf("%w: %v", ErrCanceled, rc.err)
		}
	}()
	var prio []float64
	switch name {
	case "bil":
		prio, err = bilPriorities(g, pl)
	default:
		prio, err = priorities(g, pl)
	}
	if err != nil {
		return nil, err
	}
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	s.appendOnly = name == "heft-append"

	order, err := simulateOrder(g, prio)
	if err != nil {
		return nil, err
	}
	keep := validPrefix(order, prev, pl.NumProcs(), dirty)

	var f *frontier
	if name == "bil" {
		// attached before replay, exactly where bilRun attaches it: replay
		// commits stamp the engine the same way real commits do
		f = attachFrontier(s)
	}
	// replay: the previous run's comm events are recorded in commit order,
	// each commit's events grouped consecutively under ToTask = the
	// committed task, so the prefix consumes a prefix of prev Comms with a
	// single forward cursor. commit re-reserves the recorded hops on the
	// fresh timelines and copies them into this schedule.
	cur := 0
	for k := 0; k < keep; k++ {
		v := order[k]
		ev := &prev.Schedule.Tasks[v]
		lo := cur
		for cur < len(prev.Schedule.Comms) && prev.Schedule.Comms[cur].ToTask == v {
			cur++
		}
		s.commit(v, placement{
			proc:   ev.Proc,
			ready:  ev.Start,
			start:  ev.Start,
			finish: ev.Finish,
			comms:  prev.Schedule.Comms[lo:cur],
		})
	}
	// suffix: the heuristic's own probe loop; the simulated order already is
	// the exact pop sequence, so no ready list is needed
	for _, v := range order[keep:] {
		if f != nil {
			s.commit(v, f.bestInRow(v))
		} else {
			s.commit(v, s.bestEFT(v, nil))
		}
	}
	return &IncResult{Schedule: s.sch, Order: order, Replayed: keep}, nil
}

// simulateOrder runs the ready-list/releaser machinery of the static
// list-scheduling loop without probing or committing, returning the exact
// pop sequence the real loop produces for these priorities.
func simulateOrder(g *graph.Graph, prio []float64) ([]int, error) {
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	order := make([]int, 0, g.NumNodes())
	for !ready.empty() {
		v := ready.pop()
		order = append(order, v)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return order, nil
}

// validPrefix returns the number of leading commits of order that can be
// replayed from prev: the position-wise common prefix of the two orders,
// stopping at the first dirty task or at any inconsistency in the recorded
// run (missing placement, processor-count mismatch — then nothing replays).
// New tasks never extend the prefix: their ids exceed every id in the
// previous order, so they mismatch positionally.
func validPrefix(order []int, prev *PrevRun, procs int, dirty []bool) int {
	if prev == nil || prev.Schedule == nil || prev.Schedule.Procs != procs {
		return 0
	}
	n := len(prev.Order)
	if len(order) < n {
		n = len(order)
	}
	keep := 0
	for keep < n {
		v := order[keep]
		if v != prev.Order[keep] || (v < len(dirty) && dirty[v]) {
			break
		}
		if v >= len(prev.Schedule.Tasks) || !prev.Schedule.Tasks[v].Done {
			break
		}
		keep++
	}
	return keep
}
