package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestPropertyBaselineSchedulesAreValid(t *testing.T) {
	type namedFunc struct {
		name string
		f    Func
	}
	funcs := []namedFunc{
		{"cpop", CPOP},
		{"dls", DLS},
		{"bil", BIL},
		{"pct", PCT},
		{"roundrobin", RoundRobin},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 20)
		pl := randomPlatform(r)
		for _, nf := range funcs {
			for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
				s, err := nf.f(g, pl, model)
				if err != nil {
					t.Logf("seed %d %s: %v", seed, nf.name, err)
					return false
				}
				if err := sched.Validate(g, pl, s, model); err != nil {
					t.Logf("seed %d %s %v: %v", seed, nf.name, model, err)
					return false
				}
			}
		}
		// Random with a couple of seeds
		for s0 := int64(0); s0 < 2; s0++ {
			s, err := Random(g, pl, sched.OnePort, s0)
			if err != nil {
				return false
			}
			if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
				t.Logf("seed %d random: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCPOPPinsCriticalPath(t *testing.T) {
	// a chain is its own critical path: CPOP must put all of it on one
	// processor (the fastest).
	g := chain(t, 6)
	pl := platform.Paper()
	s, err := CPOP(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if s.Proc(v) != pl.FastestProc() {
			t.Errorf("critical-path task %d on %d, want %d", v, s.Proc(v), pl.FastestProc())
		}
	}
}

func TestDLSPrefersFastProcessorForSingleTask(t *testing.T) {
	g := graph.New(1)
	g.AddNode(4, "only")
	pl, err := platform.Uniform([]float64{3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc(0) != 1 {
		t.Errorf("task on %d, want fastest 1", s.Proc(0))
	}
}

func TestBILSingleChainMatchesHEFT(t *testing.T) {
	// on a chain all list heuristics coincide: one processor, no comms.
	g := chain(t, 8)
	pl := platform.Paper()
	sb, err := BIL(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Makespan() != sh.Makespan() {
		t.Errorf("BIL makespan %g != HEFT %g", sb.Makespan(), sh.Makespan())
	}
}

func TestRoundRobinUsesAllProcessors(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddNode(1, "t")
	}
	pl, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RoundRobin(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for v := 0; v < 8; v++ {
		used[s.Proc(v)]++
	}
	for p := 0; p < 4; p++ {
		if used[p] != 2 {
			t.Errorf("proc %d got %d tasks, want 2", p, used[p])
		}
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	g := chainForkMix(t)
	pl, _ := platform.Homogeneous(3)
	a, err := Random(g, pl, sched.OnePort, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(g, pl, sched.OnePort, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if a.Proc(v) != b.Proc(v) {
			t.Fatalf("same seed produced different mapping at task %d", v)
		}
	}
}

// chainForkMix is a small mixed DAG used by a few tests.
func chainForkMix(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	a := g.AddNode(1, "a")
	b := g.AddNode(2, "b")
	c := g.AddNode(1, "c")
	d := g.AddNode(3, "d")
	e := g.AddNode(1, "e")
	f := g.AddNode(2, "f")
	g.MustEdge(a, b, 2)
	g.MustEdge(a, c, 1)
	g.MustEdge(b, d, 1)
	g.MustEdge(c, d, 4)
	g.MustEdge(c, e, 1)
	g.MustEdge(d, f, 2)
	g.MustEdge(e, f, 1)
	return g
}

func TestByNameRegistry(t *testing.T) {
	g := chainForkMix(t)
	pl, _ := platform.Homogeneous(2)
	for _, name := range Names() {
		f, err := ByName(name, ILHAOptions{B: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := f(g, pl, sched.OnePort)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", ILHAOptions{}); err == nil {
		t.Fatal("expected error for unknown heuristic")
	}
}

func TestHeuristicsBeatRandomOnAverage(t *testing.T) {
	// sanity: on a communication-heavy DAG HEFT should not lose to the
	// random control by more than noise; we require HEFT <= Random makespan
	// across a few seeds (Random very rarely wins by luck on this graph;
	// assert on the average).
	g := chainForkMix(t)
	pl := platform.Paper()
	h, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 8
	for s0 := int64(0); s0 < trials; s0++ {
		r, err := Random(g, pl, sched.OnePort, s0)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.Makespan()
	}
	if avg := sum / trials; h.Makespan() > avg {
		t.Errorf("HEFT makespan %g worse than random average %g", h.Makespan(), avg)
	}
}
