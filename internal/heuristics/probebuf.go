package heuristics

import (
	"oneport/internal/sched"
)

// probeBuf owns every piece of scratch memory one probe needs: the tentative
// overlay reservations (flat slices indexed by processor, replacing the old
// per-probe maps), the gap-search cursors into the committed timelines, and
// the comm-event/hop storage of the placement being built. A state keeps one
// probeBuf per probe worker; buffers are reset — never reallocated — between
// probes, so the steady-state probe path performs no allocation.
//
// A probeBuf is owned by exactly one goroutine at a time. During parallel
// bestEFT probing (and the frontier engine's pair fan-out) each worker uses
// its own buf; everything a probe reads from the shared state (committed
// timelines, routes, the graph) is read-only for the duration of the
// fan-out. A buf is not otherwise tied to the state that grew it: a probe
// fully resets the buf, so strictly sequential users may share one set
// across many states — the Exhaustive search points every cloned state at
// its root's buffers instead of lazily growing thousands of copies.
type probeBuf struct {
	// tentative overlay reservations by processor index, each kept sorted
	// by start (sched.AddExtra); emptied via the touched lists below
	send, recv, compute    [][]sched.Interval
	sendT, recvT, computeT []int // processors with a non-empty overlay

	// gap-search cursors into the committed timelines. Cursors are only
	// meaningful within one probe (commits mutate the timelines between
	// probes), so instead of walking and invalidating them on reset, each
	// carries the generation it was last used in and is lazily invalidated
	// on first use in a newer generation.
	sendCur, recvCur, computeCur []gapCursor
	gen                          uint64

	// wire overlays (LinkContention only): a short linear list of slots,
	// reused — with their interval storage — across probes
	wires []wireSlot
	nw    int // live slots in wires

	// comm events of the placement being built; Hops slices are recycled
	comms []sched.CommEvent

	// stash for the best placement found so far by this buf's owner: comm
	// events copied out of comms so later probes can safely clobber it
	best []sched.CommEvent
}

// gapCursor pairs a sched.Cursor with the probe generation it belongs to.
type gapCursor struct {
	c   sched.Cursor
	gen uint64
}

// wireSlot is one wire's tentative reservations during a probe.
type wireSlot struct {
	key [2]int
	iv  []sched.Interval
}

// newProbeBuf sizes a buf for a platform with p processors.
func newProbeBuf(p int) *probeBuf {
	return &probeBuf{
		send:       make([][]sched.Interval, p),
		recv:       make([][]sched.Interval, p),
		compute:    make([][]sched.Interval, p),
		sendCur:    make([]gapCursor, p),
		recvCur:    make([]gapCursor, p),
		computeCur: make([]gapCursor, p),
	}
}

// reset clears the overlays, cursors, wires and comm events, retaining all
// capacity. It is O(resources touched by the previous probe).
func (b *probeBuf) reset() {
	for _, p := range b.sendT {
		b.send[p] = b.send[p][:0]
	}
	for _, p := range b.recvT {
		b.recv[p] = b.recv[p][:0]
	}
	for _, p := range b.computeT {
		b.compute[p] = b.compute[p][:0]
	}
	b.sendT, b.recvT, b.computeT = b.sendT[:0], b.recvT[:0], b.computeT[:0]
	b.gen++ // lazily invalidates every cursor
	b.nw = 0
	b.comms = b.comms[:0]
}

// cur returns the sched.Cursor for cs[p], invalidating it first if it was
// last used by an earlier probe.
func (b *probeBuf) cur(cs []gapCursor, p int) *sched.Cursor {
	gc := &cs[p]
	if gc.gen != b.gen {
		gc.gen = b.gen
		gc.c.Invalidate()
	}
	return &gc.c
}

func (b *probeBuf) addSend(p int, start, end float64) {
	if len(b.send[p]) == 0 {
		b.sendT = append(b.sendT, p)
	}
	b.send[p] = sched.AddExtra(b.send[p], start, end)
}

func (b *probeBuf) addRecv(p int, start, end float64) {
	if len(b.recv[p]) == 0 {
		b.recvT = append(b.recvT, p)
	}
	b.recv[p] = sched.AddExtra(b.recv[p], start, end)
}

func (b *probeBuf) addCompute(p int, start, end float64) {
	if len(b.compute[p]) == 0 {
		b.computeT = append(b.computeT, p)
	}
	b.compute[p] = sched.AddExtra(b.compute[p], start, end)
}

// wireExtra returns the overlay of wire k, or nil when untouched.
func (b *probeBuf) wireExtra(k [2]int) []sched.Interval {
	for i := 0; i < b.nw; i++ {
		if b.wires[i].key == k {
			return b.wires[i].iv
		}
	}
	return nil
}

func (b *probeBuf) addWire(k [2]int, start, end float64) {
	for i := 0; i < b.nw; i++ {
		if b.wires[i].key == k {
			b.wires[i].iv = sched.AddExtra(b.wires[i].iv, start, end)
			return
		}
	}
	if b.nw < len(b.wires) {
		b.wires[b.nw].key = k
		b.wires[b.nw].iv = sched.AddExtra(b.wires[b.nw].iv[:0], start, end)
	} else {
		b.wires = append(b.wires, wireSlot{key: k, iv: []sched.Interval{{Start: start, End: end}}})
	}
	b.nw++
}

// appendComm starts a new comm event in the buf, recycling the Hops slice of
// whatever event previously occupied the slot, and returns a pointer valid
// until the next append.
func (b *probeBuf) appendComm(u, v int, data float64) *sched.CommEvent {
	if len(b.comms) < cap(b.comms) {
		b.comms = b.comms[:len(b.comms)+1]
		c := &b.comms[len(b.comms)-1]
		c.FromTask, c.ToTask, c.Data = u, v, data
		c.Hops = c.Hops[:0]
		return c
	}
	b.comms = append(b.comms, sched.CommEvent{FromTask: u, ToTask: v, Data: data})
	return &b.comms[len(b.comms)-1]
}

// stashPlacement copies pl's comm events — which live in a probe buffer
// about to be clobbered by the next probe — into dst, recycling dst's hop
// storage, and returns the placement re-pointed at the stable copy. pl.comms
// must not alias *dst.
func stashPlacement(dst *[]sched.CommEvent, pl placement) placement {
	out := (*dst)[:0]
	for i := range pl.comms {
		c := &pl.comms[i]
		if len(out) < cap(out) {
			out = out[:len(out)+1]
			s := &out[len(out)-1]
			s.FromTask, s.ToTask, s.Data = c.FromTask, c.ToTask, c.Data
			s.Hops = append(s.Hops[:0], c.Hops...)
		} else {
			out = append(out, sched.CommEvent{
				FromTask: c.FromTask, ToTask: c.ToTask, Data: c.Data,
				Hops: append([]sched.Hop(nil), c.Hops...),
			})
		}
	}
	*dst = out
	pl.comms = out
	return pl
}
