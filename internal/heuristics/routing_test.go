package heuristics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// linePlatform builds a path topology P0 - P1 - ... - P(p-1) with unit
// wires: any non-adjacent communication must be routed hop by hop. Inputs
// are valid by construction, so errors panic.
func linePlatform(p int) *platform.Platform {
	inf := math.Inf(1)
	link := make([][]float64, p)
	for q := range link {
		link[q] = make([]float64, p)
		for r := range link[q] {
			switch {
			case q == r:
				link[q][r] = 0
			case q == r+1 || r == q+1:
				link[q][r] = 1
			default:
				link[q][r] = inf
			}
		}
	}
	pl, err := platform.New(onesSlice(p), link)
	if err != nil {
		panic(err)
	}
	return pl
}

func onesSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestHEFTOnLineTopologyProducesMultiHopComms(t *testing.T) {
	// force a cross-line communication: heavy independent branches pull
	// tasks apart, then a join requires routed messages.
	g := graph.New(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(6, "b")
	c := g.AddNode(6, "c")
	d := g.AddNode(1, "d")
	g.MustEdge(a, b, 1)
	g.MustEdge(a, c, 1)
	g.MustEdge(b, d, 1)
	g.MustEdge(c, d, 1)
	pl := linePlatform(4)
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatalf("routed schedule invalid: %v", err)
	}
}

func TestPropertyRoutedSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 18)
		pl := linePlatform(2 + r.Intn(4))
		for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
			for _, name := range []string{"heft", "ilha"} {
				f0, err := ByName(name, ILHAOptions{B: 1 + r.Intn(8)})
				if err != nil {
					return false
				}
				s, err := f0(g, pl, model)
				if err != nil {
					t.Logf("seed %d %s: %v", seed, name, err)
					return false
				}
				if err := sched.Validate(g, pl, s, model); err != nil {
					t.Logf("seed %d %s %v: %v", seed, name, model, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutedCommTakesLongerThanDirect(t *testing.T) {
	// a 2-task chain forced across a 3-processor line: if producer ends on
	// P0 and consumer must use P2, the message pays both wires.
	g := graph.New(2)
	u := g.AddNode(1, "u")
	v := g.AddNode(1, "v")
	g.MustEdge(u, v, 5)
	pl := linePlatform(3)
	s, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	// EFT keeps the chain local (no comm at all) — verify that is what
	// happens and that it beats any routed alternative.
	if s.CommCount() != 0 {
		t.Errorf("chain migrated unnecessarily: %d comms", s.CommCount())
	}
	if s.Makespan() != 2 {
		t.Errorf("makespan = %g, want 2", s.Makespan())
	}
}

func TestDisconnectedPlatformErrors(t *testing.T) {
	inf := math.Inf(1)
	link := [][]float64{
		{0, inf},
		{inf, 0},
	}
	pl, err := platform.New([]float64{1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(2)
	a := g.AddNode(1, "")
	b := g.AddNode(1, "")
	g.MustEdge(a, b, 1)
	if _, err := HEFT(g, pl, sched.OnePort); err == nil {
		t.Fatal("expected error on disconnected platform")
	}
}
