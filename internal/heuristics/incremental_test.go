package heuristics

import (
	"fmt"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }

// incCases are the (graph, platform) instances the incremental oracle runs
// on: the dense paper platform and the routed line topology, where replayed
// comms carry multi-hop chains.
func incCases() []struct {
	name string
	g    *graph.Graph
	pl   *platform.Platform
} {
	return []struct {
		name string
		g    *graph.Graph
		pl   *platform.Platform
	}{
		{"forkjoin40", testbeds.ForkJoin(40, 10), platform.Paper()},
		{"lu10", testbeds.LU(10, 10), platform.Paper()},
		{"lu8-line4", testbeds.LU(8, 10), linePlatform(4)},
	}
}

// incDeltas builds a chain of deltas exercising every graph op against g:
// a weight change, an edge re-cost, and a new task wired below an existing
// one. Each entry is applied on top of the previous entry's result.
func incDeltas(g *graph.Graph) []graph.Delta {
	e := g.Edges()[g.NumEdges()/2]
	mid := g.NumNodes() / 2
	return []graph.Delta{
		{{Op: "set_weight", Task: iptr(mid), Weight: fptr(g.Weight(mid)*2 + 1)}},
		{{Op: "set_data", From: iptr(e.From), To: iptr(e.To), Data: fptr(e.Data + 5)}},
		{
			{Op: "add_task", Weight: fptr(7), Label: "inc"},
			{Op: "add_edge", From: iptr(0), To: iptr(g.NumNodes()), Data: fptr(3)},
		},
	}
}

// TestIncrementalOracle pins the subsystem's core guarantee: after every
// delta in a chain, RunIncremental — replayed prefix plus probed suffix,
// warm Scratch carried across deltas like a session does — produces a
// schedule byte-identical to a cold full run of the same heuristic on the
// final graph, for every supported heuristic and communication model.
func TestIncrementalOracle(t *testing.T) {
	for _, c := range incCases() {
		for _, name := range []string{"heft", "heft-append", "bil"} {
			for _, model := range sched.Models() {
				t.Run(fmt.Sprintf("%s/%s/%s", c.name, name, model), func(t *testing.T) {
					tune := &Tuning{Scratch: NewScratch()}
					res, err := RunIncremental(name, c.g, c.pl, model, ILHAOptions{}, tune, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					g := c.g
					for di, d := range incDeltas(c.g) {
						ng, eff, err := d.Apply(g)
						if err != nil {
							t.Fatalf("delta %d: %v", di, err)
						}
						dirty := make([]bool, ng.NumNodes())
						for _, v := range eff.Dirty {
							dirty[v] = true
						}
						prev := &PrevRun{Order: res.Order, Schedule: res.Schedule}
						res, err = RunIncremental(name, ng, c.pl, model, ILHAOptions{}, tune, prev, dirty)
						if err != nil {
							t.Fatalf("delta %d: %v", di, err)
						}
						cold, err := ByName(name, ILHAOptions{})
						if err != nil {
							t.Fatal(err)
						}
						want, err := cold(ng, c.pl, model)
						if err != nil {
							t.Fatalf("delta %d cold: %v", di, err)
						}
						if err := sameSchedule(want, res.Schedule); err != nil {
							t.Fatalf("delta %d (replayed %d/%d): %v", di, res.Replayed, ng.NumNodes(), err)
						}
						g = ng
					}
				})
			}
		}
	}
}

// TestIncrementalFullReplay: with no delta at all, the entire previous run
// replays — every task, zero probes — and reproduces it byte-identically.
func TestIncrementalFullReplay(t *testing.T) {
	g, pl := testbeds.LU(10, 10), platform.Paper()
	for _, name := range []string{"heft", "bil"} {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", name, model), func(t *testing.T) {
				tune := &Tuning{Scratch: NewScratch()}
				base, err := RunIncremental(name, g, pl, model, ILHAOptions{}, tune, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				prev := &PrevRun{Order: base.Order, Schedule: base.Schedule}
				res, err := RunIncremental(name, g, pl, model, ILHAOptions{}, tune, prev, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Replayed != g.NumNodes() {
					t.Fatalf("replayed %d of %d tasks, want all", res.Replayed, g.NumNodes())
				}
				if err := sameSchedule(base.Schedule, res.Schedule); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestIncrementalReplayProgress asserts the prefix is genuinely long for a
// localized delta: re-weighting the sink of a fork-join shifts every bottom
// level uniformly, so the commit order is unchanged and everything except
// the sink itself replays.
func TestIncrementalReplayProgress(t *testing.T) {
	g, pl := testbeds.ForkJoin(40, 10), platform.Paper()
	n := g.NumNodes()
	sink := n - 1
	if g.OutDegree(sink) != 0 {
		t.Fatalf("expected node %d to be the fork-join sink", sink)
	}
	for _, model := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
		tune := &Tuning{Scratch: NewScratch()}
		base, err := RunIncremental("heft", g, pl, model, ILHAOptions{}, tune, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := graph.Delta{{Op: "set_weight", Task: iptr(sink), Weight: fptr(g.Weight(sink) + 3)}}
		ng, eff, err := d.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		dirty := make([]bool, ng.NumNodes())
		for _, v := range eff.Dirty {
			dirty[v] = true
		}
		res, err := RunIncremental("heft", ng, pl, model, ILHAOptions{}, tune,
			&PrevRun{Order: base.Order, Schedule: base.Schedule}, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if res.Replayed < n-1 {
			t.Errorf("%s: replayed %d of %d, want >= %d", model, res.Replayed, n, n-1)
		}
		cold, err := HEFT(ng, pl, model)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(cold, res.Schedule); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIncrementalFallback: heuristics without a simulable commit order run
// as full recomputes through the same entry point — correct result, no
// recorded order, nothing replayed.
func TestIncrementalFallback(t *testing.T) {
	g, pl := testbeds.LU(8, 10), platform.Paper()
	if SupportsIncremental("dls") {
		t.Fatal("dls must not claim incremental support (dynamic selection)")
	}
	tune := &Tuning{Scratch: NewScratch()}
	res, err := RunIncremental("dls", g, pl, sched.OnePort, ILHAOptions{}, tune, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order != nil || res.Replayed != 0 {
		t.Fatalf("fallback leaked order/replay: %d order entries, %d replayed", len(res.Order), res.Replayed)
	}
	want, err := DLS(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSchedule(want, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalPrefixGuards: a processor-count change or an inconsistent
// recorded run must disable replay entirely (keep = 0), never index out of
// bounds, and still produce the correct schedule.
func TestIncrementalPrefixGuards(t *testing.T) {
	g := testbeds.ForkJoin(10, 10)
	plA := platform.Paper()
	plB, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	tune := &Tuning{Scratch: NewScratch()}
	base, err := RunIncremental("heft", g, plA, sched.OnePort, ILHAOptions{}, tune, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// same graph, different platform: probes read every processor, so the
	// recorded run (whose Procs differs) must not replay at all
	res, err := RunIncremental("heft", g, plB, sched.OnePort, ILHAOptions{}, tune,
		&PrevRun{Order: base.Order, Schedule: base.Schedule}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 0 {
		t.Errorf("platform change replayed %d tasks, want 0", res.Replayed)
	}
	want, err := HEFT(g, plB, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSchedule(want, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// a previous run with un-Done placements (claimed by Order but absent
	// from the schedule) stops the prefix instead of replaying garbage
	broken := &PrevRun{Order: base.Order, Schedule: sched.NewSchedule(g.NumNodes(), plA.NumProcs())}
	res, err = RunIncremental("heft", g, plA, sched.OnePort, ILHAOptions{}, tune, broken, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 0 {
		t.Errorf("inconsistent prev replayed %d tasks, want 0", res.Replayed)
	}
	if err := sameSchedule(base.Schedule, res.Schedule); err != nil {
		t.Fatal(err)
	}
}
