package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// TestPropertyAllModelsProduceValidSchedules is the central model-spectrum
// invariant: HEFT and ILHA yield schedules that pass the model's own
// validator under every communication model, on dense and sparse platforms.
func TestPropertyAllModelsProduceValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 22)
		platforms := []*platform.Platform{
			randomPlatform(r),
			linePlatform(2 + r.Intn(3)),
		}
		for _, pl := range platforms {
			for _, model := range sched.Models() {
				hs, err := HEFT(g, pl, model)
				if err != nil {
					t.Logf("seed %d HEFT %v: %v", seed, model, err)
					return false
				}
				if err := sched.Validate(g, pl, hs, model); err != nil {
					t.Logf("seed %d HEFT %v: %v", seed, model, err)
					return false
				}
				is, err := ILHA(g, pl, model, ILHAOptions{B: 1 + r.Intn(8), ScanDepth: r.Intn(2)})
				if err != nil {
					t.Logf("seed %d ILHA %v: %v", seed, model, err)
					return false
				}
				if err := sched.Validate(g, pl, is, model); err != nil {
					t.Logf("seed %d ILHA %v: %v", seed, model, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestModelSpectrumOnForkGraph pins the fork example of Figure 1 across the
// spectrum: each additional restriction can only lengthen (or keep) the
// fork's makespan, and the known anchor points hold.
func TestModelSpectrumOnForkGraph(t *testing.T) {
	g, pl := fig1Fork(t)
	makespans := map[sched.Model]float64{}
	for _, m := range sched.Models() {
		s, err := HEFT(g, pl, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, pl, s, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		makespans[m] = s.Makespan()
	}
	// anchors from the paper's §2.3 example
	if makespans[sched.MacroDataflow] != 3 {
		t.Errorf("macro makespan = %g, want 3", makespans[sched.MacroDataflow])
	}
	if makespans[sched.OnePort] != 5 {
		t.Errorf("one-port makespan = %g, want 5", makespans[sched.OnePort])
	}
	// on a fully-connected platform link contention only separates
	// same-pair messages: the fork sends to distinct children, so it
	// behaves like macro-dataflow here
	if makespans[sched.LinkContention] != makespans[sched.MacroDataflow] {
		t.Errorf("link-contention makespan = %g, want macro's %g",
			makespans[sched.LinkContention], makespans[sched.MacroDataflow])
	}
	// the fork's children never send, so uni-port adds nothing over
	// one-port for this graph
	if makespans[sched.UniPort] != makespans[sched.OnePort] {
		t.Errorf("uni-port makespan = %g, want one-port's %g",
			makespans[sched.UniPort], makespans[sched.OnePort])
	}
	// forbidding comm/compute overlap can only hurt
	if makespans[sched.OnePortNoOverlap] < makespans[sched.OnePort] {
		t.Errorf("no-overlap makespan = %g beat one-port's %g",
			makespans[sched.OnePortNoOverlap], makespans[sched.OnePort])
	}
}

func TestNoOverlapChainAccountsForCommInCompute(t *testing.T) {
	// chain u -> v with data 2 on 2 unit processors: staying local costs
	// 2 (both tasks); splitting costs 1 + 2 + 1 = 4 plus blocked windows.
	// EFT must keep the chain local under every model, but under no-overlap
	// the probing itself must not corrupt timelines — regression guard.
	g := graph.New(2)
	u := g.AddNode(1, "u")
	v := g.AddNode(1, "v")
	g.MustEdge(u, v, 2)
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := HEFT(g, pl, sched.OnePortNoOverlap)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePortNoOverlap); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 2 {
		t.Errorf("makespan = %g, want 2 (local chain)", s.Makespan())
	}
}

func TestUniPortRelayIsSlower(t *testing.T) {
	// two crossing transfers through a middle processor: P1 must receive
	// a->b and send x->y. Under one-port these overlap; under uni-port they
	// serialize, so with identical allocations the uni-port makespan is
	// at least the one-port one. HEFT may re-allocate, so compare weakly.
	g := graph.New(4)
	a := g.AddNode(4, "a")
	b := g.AddNode(4, "b")
	x := g.AddNode(4, "x")
	y := g.AddNode(4, "y")
	g.MustEdge(a, b, 6)
	g.MustEdge(x, y, 6)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	op, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	up, err := HEFT(g, pl, sched.UniPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, up, sched.UniPort); err != nil {
		t.Fatal(err)
	}
	if up.Makespan() < op.Makespan()-1e-9 {
		t.Errorf("uni-port makespan %g beat one-port %g", up.Makespan(), op.Makespan())
	}
}
