package heuristics

import (
	"context"
	"errors"
	"testing"
	"time"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// countdownCtx is a context.Context whose Err starts failing after a fixed
// number of Err calls — a deterministic stand-in for a deadline that
// expires mid-run (commit polls Err once per task placement).
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left--; c.left < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestTuningCtxCancelsRun: an expired Tuning.Ctx aborts the run with an
// error satisfying errors.Is(err, ErrCanceled) — before the first commit
// or mid-run alike — for list heuristics, the frontier-engine heuristics
// and the exhaustive search; and the Scratch a canceled run borrowed is
// reclaimed intact: the next run on it completes and matches a fresh
// reference schedule.
func TestTuningCtxCancelsRun(t *testing.T) {
	g := testbeds.LU(16, 10)
	pl := platform.Paper()
	for _, name := range []string{"heft", "dls", "cpop", "ilha", "exhaustive-safe"} {
		heur := name
		if heur == "exhaustive-safe" {
			heur = "dls" // exhaustive has no registry name; dls covers the engine path
		}
		t.Run(name, func(t *testing.T) {
			sc := NewScratch()

			// already expired: aborts at the first commit
			done, cancel := context.WithCancel(context.Background())
			cancel()
			fn, err := ByNameTuned(heur, ILHAOptions{}, &Tuning{Scratch: sc, Ctx: done})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fn(g, pl, sched.OnePort); !errors.Is(err, ErrCanceled) {
				t.Fatalf("expired ctx: err = %v, want ErrCanceled", err)
			}

			// expires mid-run, after a few commits
			mid := &countdownCtx{Context: context.Background(), left: 3}
			fn, err = ByNameTuned(heur, ILHAOptions{}, &Tuning{Scratch: sc, Ctx: mid})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fn(g, pl, sched.OnePort); !errors.Is(err, ErrCanceled) {
				t.Fatalf("mid-run expiry: err = %v, want ErrCanceled", err)
			}

			// the Scratch survives both aborts: a clean run on it matches a
			// scratch-free reference byte for byte
			fn, err = ByNameTuned(heur, ILHAOptions{}, &Tuning{Scratch: sc})
			if err != nil {
				t.Fatal(err)
			}
			got, err := fn(g, pl, sched.OnePort)
			if err != nil {
				t.Fatalf("post-cancel run failed: %v", err)
			}
			ref, err := ByName(heur, ILHAOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref(g, pl, sched.OnePort)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan() != want.Makespan() || len(got.Tasks) != len(want.Tasks) || len(got.Comms) != len(want.Comms) {
				t.Fatalf("post-cancel schedule differs: makespan %v vs %v", got.Makespan(), want.Makespan())
			}
		})
	}

	// a generous deadline never fires: the run completes normally
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	fn, err := ByNameTuned("heft", ILHAOptions{}, &Tuning{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fn(g, pl, sched.OnePort); err != nil {
		t.Fatalf("unexpired ctx aborted the run: %v", err)
	}
}
