package heuristics

import (
	"math/rand"
	"sort"
	"testing"
)

// sortedReadyList is the pre-heap readyList kept verbatim as the ordering
// oracle: a slice sorted by (priority desc, task id asc) with O(n) insertion
// and front pops.
type sortedReadyList struct {
	prio  []float64
	tasks []int
}

func (r *sortedReadyList) less(a, b int) bool {
	if r.prio[a] != r.prio[b] {
		return r.prio[a] > r.prio[b]
	}
	return a < b
}

func (r *sortedReadyList) push(v int) {
	pos := sort.Search(len(r.tasks), func(i int) bool { return r.less(v, r.tasks[i]) })
	r.tasks = append(r.tasks, 0)
	copy(r.tasks[pos+1:], r.tasks[pos:])
	r.tasks[pos] = v
}

func (r *sortedReadyList) pop() int {
	v := r.tasks[0]
	r.tasks = r.tasks[1:]
	return v
}

func (r *sortedReadyList) popN(n int) []int {
	if n > len(r.tasks) {
		n = len(r.tasks)
	}
	out := append([]int(nil), r.tasks[:n]...)
	r.tasks = r.tasks[n:]
	return out
}

// TestReadyListMatchesSortedReference drives the indexed heap and the old
// sorted-slice implementation through identical random push/pop/popN
// sequences — with heavy priority ties, the case where only the task-id
// tie-break keeps the order total — and requires identical pops throughout.
func TestReadyListMatchesSortedReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(60)
		prio := make([]float64, n)
		for i := range prio {
			prio[i] = float64(r.Intn(5)) // few distinct values: many ties
		}
		heap := newReadyList(prio)
		ref := &sortedReadyList{prio: prio}
		next := 0
		for op := 0; op < 4*n; op++ {
			switch {
			case heap.len() == 0 && next >= n:
				// nothing left to push or pop
			case next < n && (heap.len() == 0 || r.Intn(3) > 0):
				heap.push(next)
				ref.push(next)
				next++
			case r.Intn(4) == 0:
				k := 1 + r.Intn(3)
				got, want := heap.popN(k), ref.popN(k)
				if len(got) != len(want) {
					t.Fatalf("trial %d: popN(%d) lengths %d vs %d", trial, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: popN(%d)[%d] = %d, reference %d", trial, k, i, got[i], want[i])
					}
				}
			default:
				if got, want := heap.pop(), ref.pop(); got != want {
					t.Fatalf("trial %d: pop = %d, reference %d", trial, got, want)
				}
			}
			if heap.len() != len(ref.tasks) {
				t.Fatalf("trial %d: len %d vs reference %d", trial, heap.len(), len(ref.tasks))
			}
		}
		// drain: the tails must agree too
		for heap.len() > 0 {
			if got, want := heap.pop(), ref.pop(); got != want {
				t.Fatalf("trial %d drain: pop = %d, reference %d", trial, got, want)
			}
		}
	}
}

// TestReadyListRemove checks the indexed removal DLS relies on: removing an
// arbitrary subset must leave exactly the remaining tasks, still popping in
// (priority desc, id asc) order.
func TestReadyListRemove(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(40)
		prio := make([]float64, n)
		for i := range prio {
			prio[i] = float64(r.Intn(4))
		}
		heap := newReadyList(prio)
		for v := 0; v < n; v++ {
			heap.push(v)
		}
		keep := map[int]bool{}
		for v := 0; v < n; v++ {
			keep[v] = true
		}
		for _, v := range r.Perm(n)[:n/2] {
			heap.remove(v)
			delete(keep, v)
		}
		ref := &sortedReadyList{prio: prio}
		for v := 0; v < n; v++ {
			if keep[v] {
				ref.push(v)
			}
		}
		if heap.len() != len(ref.tasks) {
			t.Fatalf("trial %d: %d tasks left, want %d", trial, heap.len(), len(ref.tasks))
		}
		for ref.len() > 0 {
			if got, want := heap.pop(), ref.pop(); got != want {
				t.Fatalf("trial %d: pop = %d, reference %d", trial, got, want)
			}
		}
	}
}

func (r *sortedReadyList) len() int { return len(r.tasks) }
