package heuristics

// Tuning carries per-run scheduler settings. Every heuristic historically
// read the process-wide SetProbeParallelism knob, which is a hazard once
// several schedulers run concurrently (a long-running service): one caller
// flipping the global changes the fan-out of every in-flight request. A
// Tuning scopes those settings to a single scheduler run; the zero value
// (and a nil *Tuning) keeps the historical behaviour of sampling the
// globals.
//
// A Tuning must not be shared by two runs at the same time when it carries
// a Scratch: the scratch buffers are handed to the running state and only
// returned when the run completes.
type Tuning struct {
	// ProbeParallelism caps the candidate-probe fan-out of this run
	// (clamped to at least 1; 1 forces the sequential reference path).
	// 0 uses the process-wide default set by SetProbeParallelism.
	ProbeParallelism int

	// Scratch, when non-nil, donates reusable probe buffers to the run and
	// receives them back when the run finishes, so a worker loop scheduling
	// many graphs on the same platform stays near-zero-alloc in steady
	// state instead of re-growing probe scratch per request.
	Scratch *Scratch
}

// Scratch owns the probe scratch memory (per-worker probe buffers, the
// predecessor buffer and the parallel-reduction slots) that a scheduler
// state grows during a run. Reusing one Scratch across successive runs on
// platforms of the same size avoids re-allocating all of it every time.
// A Scratch may only feed one run at a time; see Tuning.
type Scratch struct {
	procs   int // processor count the buffers are sized for
	bufs    []*probeBuf
	predBuf []predInfo
	results []workerBest
}

// NewScratch returns an empty Scratch; buffers are grown by the first run
// that uses it and recycled by every run after that.
func NewScratch() *Scratch { return &Scratch{} }

// lend moves the scratch buffers into a freshly created state. Ownership
// transfers: the Scratch is emptied so that a second state created while
// the first is still running can never alias the same buffers (it simply
// grows fresh ones). Buffers sized for a different processor count are
// dropped — probeBuf slices are indexed by processor.
func (sc *Scratch) lend(s *state) {
	if sc.procs == s.pl.NumProcs() && sc.bufs != nil {
		s.bufs = sc.bufs
		s.predBuf = sc.predBuf[:0]
		s.results = sc.results[:0]
	}
	sc.bufs, sc.predBuf, sc.results = nil, nil, nil
}

// reclaim returns a finished state's (possibly grown) scratch buffers to
// the Tuning's Scratch. nil-safe on every level so runners can defer it
// unconditionally. Safe to call even on error paths: the state's buffers
// are no longer referenced once the run returns (committed schedules own
// copies of every hop).
func (t *Tuning) reclaim(s *state) {
	if t == nil || t.Scratch == nil || s == nil {
		return
	}
	sc := t.Scratch
	sc.procs = s.pl.NumProcs()
	sc.bufs = s.bufs
	sc.predBuf = s.predBuf
	sc.results = s.results
}

// par returns the run's probe parallelism: the Tuning's setting when
// positive, otherwise the process-wide default.
func (t *Tuning) par() int {
	if t != nil && t.ProbeParallelism > 0 {
		return t.ProbeParallelism
	}
	return int(probeWorkers.Load())
}
