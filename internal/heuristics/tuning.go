package heuristics

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrCanceled marks a run aborted because its Tuning.Ctx expired (deadline
// exceeded or canceled). Callers detect it with errors.Is; the wrapped
// error carries the context's own verdict.
var ErrCanceled = errors.New("heuristics: run canceled")

// runCanceled carries a context expiry from state.commit — the per-task
// cancellation point — up to the ByNameTuned boundary, where it is
// recovered into an ErrCanceled error. It is a distinct type so genuine
// probe-code panics are never mistaken for cancellations.
type runCanceled struct{ err error }

// defaultProbePar is the probe parallelism of the process-wide default
// Tuning: the fan-out used by runs that neither carry their own Tuning nor
// set ProbeParallelism. It exists only as the delegation target of the
// deprecated SetProbeParallelism; new code should pass a Tuning instead.
var defaultProbePar atomic.Int64

func init() {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	defaultProbePar.Store(int64(w))
}

// SetProbeParallelism sets the process-wide default number of concurrent
// probe workers (clamped to at least 1; n = 1 forces the sequential
// reference path) and returns the previous value.
//
// Deprecated: SetProbeParallelism mutates state shared by every scheduler in
// the process, so one caller flipping it changes the fan-out of every
// concurrent run that relies on the default. It is kept as a delegate that
// sets the default Tuning's ProbeParallelism; concurrent schedulers should
// pass a per-run Tuning{ProbeParallelism: n} instead, which this global can
// never override.
func SetProbeParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(defaultProbePar.Swap(int64(n)))
}

// Tuning carries per-run scheduler settings. Every heuristic historically
// read the process-wide SetProbeParallelism knob, which is a hazard once
// several schedulers run concurrently (a long-running service): one caller
// flipping the global changes the fan-out of every in-flight request. A
// Tuning scopes those settings to a single scheduler run; the zero value
// (and a nil *Tuning) keeps the historical behaviour of sampling the
// globals.
//
// A Tuning must not be shared by two runs at the same time when it carries
// a Scratch: the scratch buffers are handed to the running state and only
// returned when the run completes.
type Tuning struct {
	// ProbeParallelism caps the candidate-probe fan-out of this run
	// (clamped to at least 1; 1 forces the sequential reference path).
	// 0 uses the process-wide default set by SetProbeParallelism.
	ProbeParallelism int

	// Scratch, when non-nil, donates reusable probe buffers to the run and
	// receives them back when the run finishes, so a worker loop scheduling
	// many graphs on the same platform stays near-zero-alloc in steady
	// state instead of re-growing probe scratch per request.
	Scratch *Scratch

	// Ctx, when non-nil, bounds the run: its expiry (deadline or cancel)
	// aborts the run at the next task commit — once per placement, on the
	// dispatching goroutine between probe fan-out barriers, so the abort
	// is quiescent and the Scratch is reclaimed normally. Funcs obtained
	// through ByName/ByNameTuned then return an error satisfying
	// errors.Is(err, ErrCanceled). The check is one atomic load per
	// commit; nil keeps runs unbounded (the historical behaviour).
	Ctx context.Context
}

// Scratch owns the probe scratch memory (per-worker probe buffers, the
// predecessor buffer, the parallel-reduction slots and, for the heuristics
// that use one, the frontier-probe engine) that a scheduler state grows
// during a run. Reusing one Scratch across successive runs on platforms of
// the same size avoids re-allocating all of it every time.
// A Scratch may only feed one run at a time; see Tuning.
type Scratch struct {
	procs    int // processor count the buffers are sized for
	bufs     []*probeBuf
	predBuf  []predInfo
	results  []workerBest
	frontier *frontier
}

// NewScratch returns an empty Scratch; buffers are grown by the first run
// that uses it and recycled by every run after that.
func NewScratch() *Scratch { return &Scratch{} }

// lend moves the scratch buffers into a freshly created state. Ownership
// transfers: the Scratch is emptied so that a second state created while
// the first is still running can never alias the same buffers (it simply
// grows fresh ones). Buffers sized for a different processor count are
// dropped — probeBuf slices are indexed by processor. The frontier engine
// sizes itself to any (graph, platform) pair, so it is always handed over.
func (sc *Scratch) lend(s *state) {
	if sc.procs == s.pl.NumProcs() && sc.bufs != nil {
		s.bufs = sc.bufs
		s.predBuf = sc.predBuf[:0]
		s.results = sc.results[:0]
	}
	s.fmem = sc.frontier
	sc.bufs, sc.predBuf, sc.results, sc.frontier = nil, nil, nil, nil
}

// reclaim returns a finished state's (possibly grown) scratch buffers to
// the Tuning's Scratch. nil-safe on every level so runners can defer it
// unconditionally. Safe to call even on error paths: the state's buffers
// are no longer referenced once the run returns (committed schedules own
// copies of every hop).
func (t *Tuning) reclaim(s *state) {
	if t == nil || t.Scratch == nil || s == nil {
		return
	}
	sc := t.Scratch
	sc.procs = s.pl.NumProcs()
	sc.bufs = s.bufs
	sc.predBuf = s.predBuf
	sc.results = s.results
	// the run either attached the lent engine (s.frontier) or never touched
	// it (still parked in s.fmem); recover whichever is live, unbinding the
	// dead state so a pooled Scratch does not pin its timelines and schedule
	if s.frontier != nil {
		sc.frontier = s.frontier
	} else {
		sc.frontier = s.fmem
	}
	if sc.frontier != nil {
		sc.frontier.s = nil
	}
}

// runCtx returns the run's cancellation context, nil-safe.
func (t *Tuning) runCtx() context.Context {
	if t == nil {
		return nil
	}
	return t.Ctx
}

// par returns the run's probe parallelism: the Tuning's setting when
// positive, otherwise the process-wide default.
func (t *Tuning) par() int {
	if t != nil && t.ProbeParallelism > 0 {
		return t.ProbeParallelism
	}
	return int(defaultProbePar.Load())
}
