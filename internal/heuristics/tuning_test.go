package heuristics

import (
	"fmt"
	"sync"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// TestConcurrentSchedulersTuned is the safety net of the per-run Tuning:
// many schedulers run concurrently, each with a different per-run probe
// parallelism, while another goroutine keeps flipping the process-wide
// default. Every run must produce a schedule identical to the sequential
// reference — per-run settings must neither race (run under -race in CI)
// nor leak across concurrent runs the way the global knob did.
func TestConcurrentSchedulersTuned(t *testing.T) {
	pl := platform.Paper()
	g := testbeds.ForkJoin(40, 10)
	lu := testbeds.LU(12, 10)

	oldGrain := probeParallelGrain
	probeParallelGrain = 2
	defer func() { probeParallelGrain = oldGrain }()

	refH, err := heftRun(g, pl, sched.OnePort, false, &Tuning{ProbeParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	refI, err := ilhaRun(lu, pl, sched.OnePort, ILHAOptions{B: 7}, &Tuning{ProbeParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	// churn the global default while the tuned runs are in flight: per-run
	// tunings must be immune to it
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
				SetProbeParallelism(1 + n%8)
				n++
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tune := &Tuning{ProbeParallelism: 1 + i%6, Scratch: NewScratch()}
			for rep := 0; rep < 3; rep++ {
				h, err := heftRun(g, pl, sched.OnePort, false, tune)
				if err != nil {
					errs <- err
					return
				}
				if err := sameSchedule(refH, h); err != nil {
					errs <- fmt.Errorf("worker %d rep %d HEFT (par %d): %w", i, rep, tune.ProbeParallelism, err)
					return
				}
				s, err := ilhaRun(lu, pl, sched.OnePort, ILHAOptions{B: 7}, tune)
				if err != nil {
					errs <- err
					return
				}
				if err := sameSchedule(refI, s); err != nil {
					errs <- fmt.Errorf("worker %d rep %d ILHA (par %d): %w", i, rep, tune.ProbeParallelism, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	SetProbeParallelism(8)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// sameSchedule reports the first difference between two schedules, nil when
// identical (task events, comm events, hops — exact float equality).
func sameSchedule(a, b *sched.Schedule) error {
	if len(a.Tasks) != len(b.Tasks) || len(a.Comms) != len(b.Comms) {
		return fmt.Errorf("shape differs: %d/%d tasks, %d/%d comms",
			len(a.Tasks), len(b.Tasks), len(a.Comms), len(b.Comms))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			return fmt.Errorf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	for i := range a.Comms {
		ca, cb := &a.Comms[i], &b.Comms[i]
		if ca.FromTask != cb.FromTask || ca.ToTask != cb.ToTask || ca.Data != cb.Data || len(ca.Hops) != len(cb.Hops) {
			return fmt.Errorf("comm %d differs: %+v vs %+v", i, ca, cb)
		}
		for j := range ca.Hops {
			if ca.Hops[j] != cb.Hops[j] {
				return fmt.Errorf("comm %d hop %d differs: %+v vs %+v", i, j, ca.Hops[j], cb.Hops[j])
			}
		}
	}
	return nil
}

// TestScratchReuse checks that one Scratch recycled across runs keeps
// producing identical schedules, including across a platform-size change
// (mismatched buffers must be dropped, not reused out of bounds).
func TestScratchReuse(t *testing.T) {
	pl := platform.Paper()
	small, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	g := testbeds.LU(10, 10)
	want, err := HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	wantSmall, err := HEFT(g, small, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}

	tune := &Tuning{Scratch: NewScratch()}
	for rep := 0; rep < 3; rep++ {
		got, err := heftRun(g, pl, sched.OnePort, false, tune)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(want, got); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		gotSmall, err := heftRun(g, small, sched.OnePort, false, tune)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(wantSmall, gotSmall); err != nil {
			t.Fatalf("rep %d (small platform): %v", rep, err)
		}
	}
}
