package heuristics

import (
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// Benchmarks for the frontier-probe engine at the fig7/fig8 benchmark
// scales (FORK-JOIN 300, LU 60). The *_Reference variants run the preserved
// pre-engine loops from reference_test.go, so the engine's win — cached
// pairs plus parallel re-probing — stays measurable in one binary:
//
//	go test -bench 'DLS|BIL|Exhaustive' -benchtime 2x ./internal/heuristics
func benchGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"lu60":        testbeds.LU(60, 10),        // fig8 scale
		"forkjoin300": testbeds.ForkJoin(300, 10), // fig7 scale
	}
}

func BenchmarkDLS(b *testing.B) {
	pl := platform.Paper()
	for name, g := range benchGraphs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DLS(g, pl, sched.OnePort); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDLSReference(b *testing.B) {
	pl := platform.Paper()
	for name, g := range benchGraphs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dlsReference(g, pl, sched.OnePort); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBIL(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(60, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BIL(g, pl, sched.OnePort); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBILReference(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(60, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bilReference(g, pl, sched.OnePort); err != nil {
			b.Fatal(err)
		}
	}
}

// exhaustiveBenchBudget caps the branch-and-bound benchmarks: the work per
// op is exactly this many DFS expansions (the searches never complete), so
// reference and engine run the identical tree.
const exhaustiveBenchBudget = 4000

func BenchmarkExhaustive(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Exhaustive(g, pl, sched.OnePort, exhaustiveBenchBudget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveReference(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exhaustiveReference(g, pl, sched.OnePort, exhaustiveBenchBudget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontierScanCached isolates the engine's steady-state frontier
// scan: on a half-scheduled LU instance with a fully warm cache, one ensure
// over the whole ready frontier is a pure validity sweep — the per-step cost
// the caching saves compared to |ready| × procs probes.
func BenchmarkFrontierScanCached(b *testing.B) {
	pl := platform.Paper()
	g := testbeds.LU(30, 10)
	prio, err := priorities(g, pl)
	if err != nil {
		b.Fatal(err)
	}
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := attachFrontier(s)
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for rel.placed < g.NumNodes()/2 {
		v := ready.pop()
		s.commit(v, f.bestInRow(v))
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	f.ensure(ready.items()) // warm every pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ensure(ready.items())
	}
}
