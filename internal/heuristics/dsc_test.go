package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestDSCChainClustersTogether(t *testing.T) {
	// a chain is one linear cluster: all tasks on one (fastest) processor,
	// no communications.
	g := chain(t, 8)
	pl := platform.Paper()
	s, err := DSC(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	if s.CommCount() != 0 {
		t.Errorf("chain produced %d communications", s.CommCount())
	}
	first := s.Proc(0)
	for v := 1; v < g.NumNodes(); v++ {
		if s.Proc(v) != first {
			t.Errorf("chain task %d left cluster: proc %d vs %d", v, s.Proc(v), first)
		}
	}
}

func TestDSCIndependentTasksSpread(t *testing.T) {
	// independent equal tasks must use more than one processor
	g := graph.New(12)
	for i := 0; i < 12; i++ {
		g.AddNode(4, "t")
	}
	pl, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DSC(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for v := 0; v < 12; v++ {
		used[s.Proc(v)] = true
	}
	if len(used) != 4 {
		t.Errorf("DSC used %d processors, want 4", len(used))
	}
	if s.Makespan() != 12 {
		t.Errorf("makespan = %g, want 12 (3 tasks x 4 per proc)", s.Makespan())
	}
}

func TestDSCCutsCommunicationVsRoundRobin(t *testing.T) {
	// on a comm-heavy layered graph, clustering should produce far fewer
	// messages than a round-robin mapping
	g := chainForkMix(t)
	pl := platform.Paper()
	dsc, err := DSC(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if dsc.CommCount() >= rr.CommCount() {
		t.Errorf("DSC comms %d not below round-robin %d", dsc.CommCount(), rr.CommCount())
	}
}

func TestILHALevelsStencilLevels(t *testing.T) {
	// ILHALevels must produce valid schedules and, on a level-structured
	// graph, balance whole rows at once
	g := chain(t, 3)
	pl, err := platform.Uniform([]float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ILHALevels(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, s, sched.OnePort); err != nil {
		t.Fatal(err)
	}
	// a chain has one task per level: everything follows its parent, no comm
	if s.CommCount() != 0 {
		t.Errorf("chain produced %d comms", s.CommCount())
	}
}

func TestPropertyDSCAndILHALevelsValidAllModels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 20)
		pl := randomPlatform(r)
		for _, model := range sched.Models() {
			for _, h := range []Func{DSC, ILHALevels, HEFTAppend} {
				s, err := h(g, pl, model)
				if err != nil {
					t.Logf("seed %d %v: %v", seed, model, err)
					return false
				}
				if err := sched.Validate(g, pl, s, model); err != nil {
					t.Logf("seed %d %v: %v", seed, model, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHEFTAppendNeverBeatsInsertionHEFT(t *testing.T) {
	// insertion can only help: on a batch of random graphs, append-only
	// HEFT must not win by more than float noise... in fact insertion can
	// occasionally lose globally (greedy), so assert the aggregate.
	var insWins, appWins int
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 25)
		pl := randomPlatform(r)
		ins, err := HEFT(g, pl, sched.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		app, err := HEFTAppend(g, pl, sched.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, pl, app, sched.OnePort); err != nil {
			t.Fatal(err)
		}
		if ins.Makespan() < app.Makespan()-1e-9 {
			insWins++
		}
		if app.Makespan() < ins.Makespan()-1e-9 {
			appWins++
		}
	}
	if appWins > insWins {
		t.Errorf("append-only won %d times vs insertion's %d: insertion should dominate",
			appWins, insWins)
	}
}
