package heuristics

import (
	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// HEFT implements the Heterogeneous Earliest Finish Time heuristic of
// Topcuoglu, Hariri and Wu, extended to the bi-directional one-port model as
// described in §4.3 of the paper:
//
//   - bottom levels (computed with the harmonic-mean averaging of §4.1)
//     give static task priorities;
//   - at each step the highest-priority ready task is selected;
//   - the task goes to the processor giving the earliest finish time, where
//     the finish time accounts for scheduling every incoming communication
//     greedily, as early as possible, under the one-port constraint: a
//     message needs a common free window on the sender's send port and the
//     receiver's receive port (and, on sparse platforms, on every routed
//     hop in sequence);
//   - compute and port timelines use insertion (gaps between existing
//     reservations are reused).
//
// With model == sched.MacroDataflow the same code degenerates to classical
// HEFT: communications are pure delays and ports are unlimited.
func HEFT(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return heftRun(g, pl, model, false, nil)
}

// HEFTAppend is HEFT with the insertion policy disabled: a task always goes
// after the last reservation of its processor, never into an earlier hole.
// It exists to quantify what insertion buys (an ablation DESIGN.md calls
// out); classic HEFT's insertion is usually a few percent better.
func HEFTAppend(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return heftRun(g, pl, model, true, nil)
}

func heftRun(g *graph.Graph, pl *platform.Platform, model sched.Model, appendOnly bool, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	s.appendOnly = appendOnly
	prio, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		best := s.bestEFT(v, nil)
		s.commit(v, best)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}
