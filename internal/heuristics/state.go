// Package heuristics implements the scheduling heuristics of the paper —
// the one-port adaptations of HEFT and ILHA (with every §4.4 design
// variant) — together with their classical macro-dataflow counterparts,
// the literature baselines the authors compared against (CPOP, DLS/GDL,
// BIL, PCT), a DSC-style clusterer, naive controls, a fixed-allocation
// rescheduler with a stochastic improvement pass, and an exhaustive
// branch-and-bound search used as ground truth on small instances.
//
// Every heuristic runs under any communication model in sched.Models();
// the model only changes how communications are placed, which is factored
// into the shared scheduler state below.
package heuristics

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// probeParallelGrain is the minimum probe work — len(preds) × candidate
// count — below which bestEFT (and the frontier engine's ensure) stays on
// the sequential path: for small batches the goroutine fan-out costs more
// than the probes themselves. Probes are deterministic either way, so the
// cut-over is invisible in the output.
var probeParallelGrain = 64

// state carries the incremental resource timelines during list scheduling.
type state struct {
	g      *graph.Graph
	pl     *platform.Platform
	model  sched.Model
	routes *platform.Routes // non-nil only for sparse platforms
	ctx    context.Context  // run deadline/cancellation; nil: never canceled

	// appendOnly disables insertion: tasks are placed after the last busy
	// interval of the processor instead of in the earliest adequate gap.
	// Communications always use gap search (ports are shared resources).
	appendOnly bool

	compute []*sched.Intervals          // per-processor execution timeline
	send    []*sched.Intervals          // send-port timeline (the combined port under UniPort)
	recv    []*sched.Intervals          // receive-port timeline
	wires   map[[2]int]*sched.Intervals // per-wire timeline (LinkContention)

	sch *sched.Schedule

	// probe scratch, all lazily created and reused across probes: one buf
	// per worker (bufs[0] doubles as the sequential buf), the predecessor
	// buffer, the per-worker reduction slots and job records of a parallel
	// bestEFT.
	par       int // max probe workers for this state
	bufs      []*probeBuf
	wg        sync.WaitGroup
	fault     atomic.Pointer[poolFault] // first panic from a pool worker, re-raised by refault
	predBuf   []predInfo
	results   []workerBest
	jobs      []probeJob
	predCount []int // per-proc counting scratch (ILHA Step 1)

	// frontier, when non-nil, is the frontier-probe engine attached by the
	// whole-frontier heuristics (DLS, Exhaustive, BIL); commit notifies it
	// so cached probe entries are invalidated. fmem parks an engine lent by
	// a Scratch until (unless) the run attaches it.
	frontier *frontier
	fmem     *frontier

	// hopArena chunks the committed hop copies handed to the schedule, so a
	// commit costs one allocation per arena chunk instead of one per comm
	// event. Carved slices are capacity-limited, so later arena appends can
	// never write into a slice the schedule already owns.
	hopArena []sched.Hop
}

// workerBest is one worker's contribution to a parallel bestEFT reduction.
type workerBest struct {
	pl  placement
	pos int // candidate position of pl, -1 when the worker saw none
}

// poolJob is one unit of probe work dispatched to the shared worker pool.
// Implementations are reused structs owned by the dispatching state or
// engine, sent by pointer so dispatch allocates nothing. abort is called
// instead of normal completion when run panics: it must release the job's
// completion latch (so the dispatcher's Wait never deadlocks) and record
// the fault for the dispatcher to re-raise.
type poolJob interface {
	run()
	abort(fault any)
}

// poolFault boxes a panic value recovered on a pool worker so the
// dispatching goroutine can re-raise it after the fan-out barrier.
type poolFault struct{ val any }

// probeJob is one stripe of a parallel bestEFT, dispatched to a pool worker.
type probeJob struct {
	s          *state
	v          int
	candidates []int
	preds      []predInfo
	n, w, wi   int
	res        []workerBest
	done       *sync.WaitGroup
}

func (j *probeJob) run() {
	j.res[j.wi] = j.s.probeStripe(j.v, j.candidates, j.preds, j.n, j.w, j.wi)
	j.done.Done()
}

// abort releases the completion latch after run panicked, recording the
// fault on the dispatching state.
func (j *probeJob) abort(fault any) {
	j.s.noteFault(fault)
	j.done.Done()
}

// The probe worker pool is shared by every state in the process: workers are
// stateless (each job carries the state, stripe and result slot it needs),
// so one bounded set of goroutines serves any number of concurrent
// schedulers without per-state spawn cost or lifecycle management. It is
// started lazily by the first fan-out that crosses the parallel grain and
// sized to the machine, not to any state's par setting — a state asking for
// more stripes than there are workers just queues; the reductions are
// positional, so worker count never affects the schedule. Both bestEFT's
// candidate stripes and the frontier engine's pair slices run on it.
var (
	probePoolOnce sync.Once
	probeJobs     chan poolJob
)

func poolJobs() chan poolJob {
	probePoolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0) - 1
		if workers < 1 {
			workers = 1
		}
		if workers > 8 {
			workers = 8
		}
		probeJobs = make(chan poolJob, 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for j := range probeJobs {
					runPoolJob(j)
				}
			}()
		}
	})
	return probeJobs
}

// runPoolJob executes one job, converting a panic in probe code into a
// recorded fault: the job's completion latch still releases (the
// dispatcher's Wait never deadlocks), the worker goroutine survives for
// the next job, and the dispatcher re-raises the fault after its barrier
// (state.refault) — so a probe bug fails that one scheduler run, whose
// caller may recover (the scheduling service does), instead of killing
// the whole process.
func runPoolJob(j poolJob) {
	defer func() {
		if r := recover(); r != nil {
			j.abort(r)
		}
	}()
	j.run()
}

// noteFault records the first panic recovered on a pool worker running
// this state's jobs; later faults lose the swap and are dropped (one is
// enough to fail the run).
func (s *state) noteFault(fault any) {
	s.fault.CompareAndSwap(nil, &poolFault{val: fault})
}

// refault re-raises a recorded worker fault on the dispatching goroutine.
// It runs after wg.Wait, so every worker touching this state's buffers has
// finished: the run fails quiescently, and unwinding (including the
// Tuning.reclaim defer) sees buffers no goroutine still writes.
func (s *state) refault() {
	if f := s.fault.Load(); f != nil {
		s.fault.Store(nil)
		panic(f.val)
	}
}

// wire returns the timeline of the undirected wire {a,b}, creating it (and
// the wire map itself) on first use. Only commit may call it: probes must
// use wireBase, which never mutates the map and is therefore safe under
// parallel probing (reads of a nil map are fine).
func (s *state) wire(a, b int) *sched.Intervals {
	if a > b {
		a, b = b, a
	}
	k := [2]int{a, b}
	w := s.wires[k]
	if w == nil {
		if s.wires == nil {
			s.wires = make(map[[2]int]*sched.Intervals)
		}
		w = &sched.Intervals{}
		s.wires[k] = w
	}
	return w
}

// wireBase returns the committed timeline of wire {a,b}, or nil when the
// wire has never carried a message (a nil View.Base is treated as empty).
func (s *state) wireBase(a, b int) *sched.Intervals {
	if a > b {
		a, b = b, a
	}
	return s.wires[[2]int{a, b}]
}

// buf returns the i-th probe buffer, creating it on first use.
func (s *state) buf(i int) *probeBuf {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, newProbeBuf(s.pl.NumProcs()))
	}
	return s.bufs[i]
}

func newState(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*state, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s := &state{
		g:       g,
		pl:      pl,
		model:   model,
		ctx:     tune.runCtx(),
		compute: make([]*sched.Intervals, pl.NumProcs()),
		send:    make([]*sched.Intervals, pl.NumProcs()),
		recv:    make([]*sched.Intervals, pl.NumProcs()),
		sch:     sched.NewSchedule(g.NumNodes(), pl.NumProcs()),
		par:     tune.par(),
	}
	if tune != nil && tune.Scratch != nil {
		tune.Scratch.lend(s)
	}
	for i := 0; i < pl.NumProcs(); i++ {
		s.compute[i] = &sched.Intervals{}
		s.send[i] = &sched.Intervals{}
		s.recv[i] = &sched.Intervals{}
	}
	if pl.Sparse() {
		rt, err := pl.ComputeRoutes()
		if err != nil {
			return nil, err
		}
		s.routes = rt
	}
	return s, nil
}

// clone deep-copies the state (used by the ILHA communication-rescheduling
// variant to undo a chunk's tentative placement, and by the Exhaustive
// search per branch). Probe scratch is not shared: the clone lazily grows
// its own buffers. Timeline storage is slab-allocated — one Intervals array
// and one busy-interval arena for all 3·procs (+ wires) timelines — because
// the branch-and-bound clones thousands of states and per-timeline clones
// dominated its profile.
func (s *state) clone() *state {
	n := len(s.compute)
	c := &state{
		g:          s.g,
		pl:         s.pl,
		model:      s.model,
		routes:     s.routes,
		ctx:        s.ctx,
		appendOnly: s.appendOnly,
		par:        s.par,
		compute:    make([]*sched.Intervals, n),
		send:       make([]*sched.Intervals, n),
		recv:       make([]*sched.Intervals, n),
		sch: &sched.Schedule{
			Tasks: append([]sched.TaskEvent(nil), s.sch.Tasks...),
			Comms: append([]sched.CommEvent(nil), s.sch.Comms...),
			Procs: s.sch.Procs,
		},
	}
	total := 0
	for i := 0; i < n; i++ {
		total += s.compute[i].Len() + s.send[i].Len() + s.recv[i].Len()
	}
	//schedlint:allow detorder — integer size sum; Len() is a pure getter
	for _, w := range s.wires {
		total += w.Len()
	}
	arena := make([]sched.Interval, 0, total)
	base := make([]sched.Intervals, 3*n+len(s.wires))
	for i := 0; i < n; i++ {
		base[3*i] = s.compute[i].CloneUsing(&arena)
		base[3*i+1] = s.send[i].CloneUsing(&arena)
		base[3*i+2] = s.recv[i].CloneUsing(&arena)
		c.compute[i] = &base[3*i]
		c.send[i] = &base[3*i+1]
		c.recv[i] = &base[3*i+2]
	}
	if len(s.wires) > 0 {
		c.wires = make(map[[2]int]*sched.Intervals, len(s.wires))
		wi := 3 * n
		// each wire clones into its own keyed entry; map order only decides
		// arena layout, which no schedule output ever observes
		//schedlint:allow detorder — per-key clone, order decides layout only
		for k, w := range s.wires {
			base[wi] = w.CloneUsing(&arena)
			c.wires[k] = &base[wi]
			wi++
		}
	}
	if s.frontier != nil {
		c.frontier = s.frontier.cloneFor(c)
	}
	return c
}

// placement is the result of probing one candidate processor for one task.
// comms points into scratch storage owned by the state: it stays valid until
// the next probe cycle, so callers must commit (or stash) a placement before
// probing again. ready is the earliest start the incoming communications
// allow, before the compute-gap search (the frontier engine caches it: while
// the ports a probe read stay untouched, a changed compute timeline only
// requires redoing the final gap search from ready).
type placement struct {
	proc          int
	ready         float64
	start, finish float64
	comms         []sched.CommEvent
}

// path returns the processor chain a message from q to r traverses.
func (s *state) path(q, r int) []int {
	if s.routes != nil {
		return s.routes.Path(q, r)
	}
	return []int{q, r}
}

// placeComm finds, without committing, the hop chain for moving data items
// from proc q (available at time ready) to proc r, honouring the model, the
// committed timelines and the buf's tentative overlay. It appends the comm
// event and its reservations to the buf and returns the arrival time.
func (s *state) placeComm(b *probeBuf, u, v int, data float64, q, r int, ready float64) float64 {
	ev := b.appendComm(u, v, data)
	t := ready
	procs := s.path(q, r)
	for i := 0; i+1 < len(procs); i++ {
		pa, pb := procs[i], procs[i+1]
		dur := s.pl.CommTime(data, pa, pb)
		var start float64
		switch s.model {
		case sched.OnePort:
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.recv[pb], Extra: b.recv[pb], Cur: b.cur(b.recvCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addRecv(pb, start, start+dur)
		case sched.UniPort:
			// a single half-duplex port per processor: every hop occupies
			// the (combined) port of both endpoints, stored in send[].
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.send[pb], Extra: b.send[pb], Cur: b.cur(b.sendCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addSend(pb, start, start+dur)
		case sched.OnePortNoOverlap:
			// one-port rules and the hop blocks computation on both ends
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.recv[pb], Extra: b.recv[pb], Cur: b.cur(b.recvCur, pb)},
				sched.View{Base: s.compute[pa], Extra: b.compute[pa], Cur: b.cur(b.computeCur, pa)},
				sched.View{Base: s.compute[pb], Extra: b.compute[pb], Cur: b.cur(b.computeCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addRecv(pb, start, start+dur)
			b.addCompute(pa, start, start+dur)
			b.addCompute(pb, start, start+dur)
		case sched.LinkContention:
			k := wireKey(pa, pb)
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.wireBase(pa, pb), Extra: b.wireExtra(k)})
			b.addWire(k, start, start+dur)
		default: // MacroDataflow: ports are unlimited
			start = t
		}
		ev.Hops = append(ev.Hops, sched.Hop{FromProc: pa, ToProc: pb, Start: start, Finish: start + dur})
		t = start + dur
	}
	return t
}

// wireKey canonicalizes an unordered processor pair.
func wireKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// predInfo is one incoming dependency of the task being probed.
type predInfo struct {
	node   int
	data   float64
	proc   int
	finish float64
}

// preds gathers the (already scheduled) predecessors of v sorted by
// ascending finish time (ties by node id), the greedy order in which their
// messages are serialized. The returned slice is scratch owned by the state
// and stays valid until the next preds call.
func (s *state) preds(v int) []predInfo {
	out := s.predsInto(s.predBuf[:0], v)
	s.predBuf = out
	return out
}

// predsInto appends v's placed predecessors to buf, sorted by ascending
// finish time (ties by node id), and returns the extended slice. It is the
// arena-friendly form of preds: the frontier engine packs the pred lists of
// a whole scan batch back to back so parallel workers can read them without
// touching the state's shared predBuf.
func (s *state) predsInto(buf []predInfo, v int) []predInfo {
	base := len(buf)
	for _, a := range s.g.Pred(v) {
		ev := &s.sch.Tasks[a.Node]
		if !ev.Done {
			panic(fmt.Sprintf("heuristics: task %d probed before predecessor %d", v, a.Node))
		}
		buf = append(buf, predInfo{node: a.Node, data: a.Data, proc: ev.Proc, finish: ev.Finish})
	}
	// insertion sort: pred lists are short and often nearly sorted, and this
	// avoids the sort.Slice closure allocation on the hot path
	out := buf[base:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && predLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return buf
}

func predLess(a, b predInfo) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.node < b.node
}

// probe computes the placement of task v on processor proc using the
// sequential scratch buffer. See probeWith for the contract.
func (s *state) probe(v, proc int, preds []predInfo) placement {
	return s.probeWith(s.buf(0), v, proc, preds)
}

// probeWith computes the placement of task v on processor proc: it
// tentatively schedules every incoming communication as early as possible
// (in pred finish-time order, honouring the one-port constraint when the
// model asks for it) and then finds the earliest compute gap. Nothing is
// committed; all tentative reservations live in b, and the returned
// placement's comms point into b (valid until b's next probe).
func (s *state) probeWith(b *probeBuf, v, proc int, preds []predInfo) placement {
	b.reset()
	ready := 0.0
	for _, p := range preds {
		if p.proc == proc {
			if p.finish > ready {
				ready = p.finish
			}
			continue
		}
		arrival := s.placeComm(b, p.node, v, p.data, p.proc, proc, p.finish)
		if arrival > ready {
			ready = arrival
		}
	}
	commReady := ready
	dur := s.pl.ExecTime(s.g.Weight(v), proc)
	if s.appendOnly && s.compute[proc].LastEnd() > ready {
		ready = s.compute[proc].LastEnd()
	}
	// under OnePortNoOverlap the task's own incoming messages also reserved
	// the processor's compute timeline (b.compute), so include the overlay
	start := sched.EarliestGap(ready, dur,
		sched.View{Base: s.compute[proc], Extra: b.compute[proc], Cur: b.cur(b.computeCur, proc)})
	return placement{proc: proc, ready: commReady, start: start, finish: start + dur, comms: b.comms}
}

// stash copies a placement's comm events out of the probe scratch into the
// sequential buf's stable stash, so the placement survives later probes.
// Callers that keep a placement across probe cycles (DLS) must stash it.
func (s *state) stash(pl placement) placement {
	return stashPlacement(&s.buf(0).best, pl)
}

// commit applies a placement: communication hops are reserved on the port
// timelines, the task occupies its compute window, and the schedule records
// both. The schedule takes ownership of a fresh copy of each event's hops
// (the placement's hop storage is probe scratch that will be recycled).
//
// commit is also the run's cancellation point: it executes once per task
// placement (per branch expansion in the exhaustive search), always on the
// dispatching goroutine between probe fan-out barriers — so when the run's
// Tuning.Ctx has expired, aborting here is quiescent: no pool worker still
// touches this state's buffers, and unwinding (including Tuning.reclaim)
// is safe. The abort travels as a runCanceled panic recovered at the
// ByNameTuned boundary into an ErrCanceled error.
func (s *state) commit(v int, pl placement) {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			panic(runCanceled{err})
		}
	}
	for _, c := range pl.comms {
		for _, h := range c.Hops {
			switch s.model {
			case sched.OnePort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
			case sched.UniPort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.send[h.ToProc].Add(h.Start, h.Finish)
			case sched.OnePortNoOverlap:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
				s.compute[h.FromProc].Add(h.Start, h.Finish)
				s.compute[h.ToProc].Add(h.Start, h.Finish)
			case sched.LinkContention:
				s.wire(h.FromProc, h.ToProc).Add(h.Start, h.Finish)
			}
		}
		c.Hops = s.ownHops(c.Hops)
		s.sch.AddComm(c)
	}
	s.compute[pl.proc].Add(pl.start, pl.finish)
	s.sch.SetTask(v, pl.proc, pl.start, pl.finish)
	if s.frontier != nil {
		s.frontier.onCommit(v, pl)
	}
}

// ownHops copies probe-scratch hops into the state's arena and returns a
// stable, capacity-limited slice the schedule can own. Chunks grow
// geometrically (64 up to 1024): a long list-scheduling run converges on
// one allocation per ~1024 hops, while the branch-and-bound's short-lived
// clones, which commit a single task each, no longer pay a 1024-hop chunk
// for a handful of hops.
func (s *state) ownHops(hops []sched.Hop) []sched.Hop {
	if cap(s.hopArena)-len(s.hopArena) < len(hops) {
		n := 2 * cap(s.hopArena)
		if n < 64 {
			n = 64
		}
		if n > 1024 {
			n = 1024
		}
		if len(hops) > n {
			n = len(hops)
		}
		s.hopArena = make([]sched.Hop, 0, n)
	}
	n0 := len(s.hopArena)
	s.hopArena = append(s.hopArena, hops...)
	return s.hopArena[n0:len(s.hopArena):len(s.hopArena)]
}

// bestEFT probes every processor in candidates (all processors when nil) and
// returns the placement with the earliest finish time, breaking ties by the
// lowest candidate position — with ascending candidates that is the lowest
// processor index, the paper's convention.
//
// When the probe work is large enough, candidates are probed concurrently by
// a small worker fan-out. This is safe because probes only read the
// committed timelines and write worker-private scratch, and it is exact:
// every candidate's placement is a pure function of the committed state, so
// the (finish, position)-minimum reduction returns byte-identical schedules
// to the sequential loop.
func (s *state) bestEFT(v int, candidates []int) placement {
	preds := s.preds(v)
	n := len(candidates)
	if candidates == nil {
		n = s.pl.NumProcs()
	}
	w := s.par
	if w > n {
		w = n
	}
	if w > 1 && (len(preds)+1)*n >= probeParallelGrain {
		return s.bestEFTParallel(v, candidates, preds, n, w)
	}
	// sequential reference path: allocation-free in steady state
	b := s.buf(0)
	best := placement{proc: -1}
	for j := 0; j < n; j++ {
		p := j
		if candidates != nil {
			p = candidates[j]
		}
		pl := s.probeWith(b, v, p, preds)
		if best.proc == -1 || pl.finish < best.finish {
			best = stashPlacement(&b.best, pl)
		}
	}
	return best
}

// bestEFTParallel fans the candidate probes of one task out to w workers.
// Worker wi probes candidates wi, wi+w, wi+2w, … in ascending position order
// and keeps its local best under the same strict earliest-finish comparison
// as the sequential loop; the final reduction takes the minimum by (finish,
// candidate position), which is exactly the placement the sequential loop
// would have kept.
func (s *state) bestEFTParallel(v int, candidates []int, preds []predInfo, n, w int) placement {
	for len(s.results) < w {
		s.results = append(s.results, workerBest{})
	}
	res := s.results[:w]
	s.buf(w - 1) // materialize every worker buf before the fan-out
	for len(s.jobs) < w {
		s.jobs = append(s.jobs, probeJob{})
	}
	jobs := poolJobs()
	s.wg.Add(w - 1)
	for wi := 1; wi < w; wi++ {
		s.jobs[wi] = probeJob{
			s: s, v: v, candidates: candidates, preds: preds,
			n: n, w: w, wi: wi, res: res, done: &s.wg,
		}
		jobs <- &s.jobs[wi]
	}
	res[0] = s.probeStripe(v, candidates, preds, n, w, 0)
	s.wg.Wait()
	s.refault()
	best := workerBest{pos: -1}
	for _, r := range res {
		if r.pos < 0 {
			continue
		}
		if best.pos < 0 || r.pl.finish < best.pl.finish ||
			(r.pl.finish == best.pl.finish && r.pos < best.pos) {
			best = r
		}
	}
	return best.pl
}

// probeStripe probes candidates wi, wi+w, wi+2w, … of task v and returns the
// stripe's best placement under the strict earliest-finish comparison,
// stashed into the stripe's own buf.
func (s *state) probeStripe(v int, candidates []int, preds []predInfo, n, w, wi int) workerBest {
	b := s.bufs[wi]
	lb := workerBest{pos: -1}
	for j := wi; j < n; j += w {
		p := j
		if candidates != nil {
			p = candidates[j]
		}
		pl := s.probeWith(b, v, p, preds)
		if lb.pos < 0 || pl.finish < lb.pl.finish {
			lb = workerBest{pl: stashPlacement(&b.best, pl), pos: j}
		}
	}
	return lb
}

// priorities computes the paper's bottom levels: task weights scaled by the
// harmonic-mean cycle-time, edge volumes scaled by the harmonic-mean link
// cost (§4.1).
func priorities(g *graph.Graph, pl *platform.Platform) ([]float64, error) {
	return g.BottomLevels(pl.AvgExecFactor(), pl.AvgLinkFactor())
}

// readyList maintains the set of ready tasks ordered by decreasing priority
// (ties by increasing node id). It is an indexed binary max-heap: push, pop
// and remove are O(log n) instead of the former sorted slice's O(n)
// insertion shuffle, and the position index lets the frontier heuristics
// (DLS) remove an arbitrary selected task. The comparison is a total order
// — priority desc, task id asc — so the pop sequence is exactly the sorted
// order the old implementation produced, whatever the heap's internal
// layout (TestReadyListMatchesSortedReference pins this).
type readyList struct {
	prio []float64
	heap []int
	pos  []int // task id -> heap index, -1 when absent
}

func newReadyList(prio []float64) *readyList {
	pos := make([]int, len(prio))
	for i := range pos {
		pos[i] = -1
	}
	return &readyList{prio: prio, pos: pos}
}

func (r *readyList) less(a, b int) bool {
	if r.prio[a] != r.prio[b] {
		return r.prio[a] > r.prio[b]
	}
	return a < b
}

// push inserts a task.
func (r *readyList) push(v int) {
	r.heap = append(r.heap, v)
	r.pos[v] = len(r.heap) - 1
	r.up(len(r.heap) - 1)
}

// pop removes and returns the highest-priority task.
func (r *readyList) pop() int {
	v := r.heap[0]
	r.removeAt(0)
	return v
}

// popN removes and returns up to n highest-priority tasks, in order.
func (r *readyList) popN(n int) []int {
	if n > len(r.heap) {
		n = len(r.heap)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.pop())
	}
	return out
}

// remove deletes task v (which must be present) from the set.
func (r *readyList) remove(v int) { r.removeAt(r.pos[v]) }

// items returns the live tasks in unspecified (heap) order. The slice is the
// heap's own storage: read-only, valid until the next mutation.
func (r *readyList) items() []int { return r.heap }

func (r *readyList) empty() bool { return len(r.heap) == 0 }
func (r *readyList) len() int    { return len(r.heap) }

func (r *readyList) removeAt(i int) {
	n := len(r.heap) - 1
	r.pos[r.heap[i]] = -1
	if i != n {
		moved := r.heap[n]
		r.heap[i] = moved
		r.pos[moved] = i
		r.heap = r.heap[:n]
		if !r.down(i) {
			r.up(i)
		}
	} else {
		r.heap = r.heap[:n]
	}
}

func (r *readyList) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !r.less(r.heap[i], r.heap[parent]) {
			return
		}
		r.swap(i, parent)
		i = parent
	}
}

func (r *readyList) down(i int) bool {
	moved := false
	for {
		c := 2*i + 1
		if c >= len(r.heap) {
			return moved
		}
		if rc := c + 1; rc < len(r.heap) && r.less(r.heap[rc], r.heap[c]) {
			c = rc
		}
		if !r.less(r.heap[c], r.heap[i]) {
			return moved
		}
		r.swap(i, c)
		i = c
		moved = true
	}
}

func (r *readyList) swap(i, j int) {
	r.heap[i], r.heap[j] = r.heap[j], r.heap[i]
	r.pos[r.heap[i]] = i
	r.pos[r.heap[j]] = j
}

// releaser tracks remaining in-degrees and reports which tasks become ready
// once a task completes.
type releaser struct {
	g      *graph.Graph
	indeg  []int
	placed int
	out    []int // scratch returned by release, reused across calls
}

func newReleaser(g *graph.Graph) *releaser {
	ind := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		ind[v] = g.InDegree(v)
	}
	return &releaser{g: g, indeg: ind}
}

// initial returns the entry tasks.
func (rl *releaser) initial() []int {
	var out []int
	for v, d := range rl.indeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// release marks v scheduled and returns the tasks that become ready. The
// returned slice is scratch reused by the next release call.
func (rl *releaser) release(v int) []int {
	rl.placed++
	out := rl.out[:0]
	for _, a := range rl.g.Succ(v) {
		rl.indeg[a.Node]--
		if rl.indeg[a.Node] == 0 {
			out = append(out, a.Node)
		}
	}
	rl.out = out
	return out
}

// done reports whether every task has been scheduled.
func (rl *releaser) done() bool { return rl.placed == rl.g.NumNodes() }
