// Package heuristics implements the scheduling heuristics of the paper —
// the one-port adaptations of HEFT and ILHA (with every §4.4 design
// variant) — together with their classical macro-dataflow counterparts,
// the literature baselines the authors compared against (CPOP, DLS/GDL,
// BIL, PCT), a DSC-style clusterer, naive controls, a fixed-allocation
// rescheduler with a stochastic improvement pass, and an exhaustive
// branch-and-bound search used as ground truth on small instances.
//
// Every heuristic runs under any communication model in sched.Models();
// the model only changes how communications are placed, which is factored
// into the shared scheduler state below.
package heuristics

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// probeWorkers is the number of goroutines bestEFT fans candidate probes out
// to; 1 disables parallel probing. It is sampled when a state is created.
var probeWorkers atomic.Int64

// probeParallelGrain is the minimum probe work — len(preds) × candidate
// count — below which bestEFT stays on the sequential path: for small tasks
// the goroutine fan-out costs more than the probes themselves. Probes are
// deterministic either way, so the cut-over is invisible in the output.
var probeParallelGrain = 64

func init() {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	probeWorkers.Store(int64(w))
}

// SetProbeParallelism sets the process-wide default number of concurrent
// probe workers bestEFT uses (clamped to at least 1; n = 1 forces the
// sequential reference path) and returns the previous value. It applies to
// states created afterwards that do not carry their own Tuning; concurrent
// schedulers should prefer the per-run Tuning.ProbeParallelism, which this
// global only provides the default for.
func SetProbeParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(probeWorkers.Swap(int64(n)))
}

// state carries the incremental resource timelines during list scheduling.
type state struct {
	g      *graph.Graph
	pl     *platform.Platform
	model  sched.Model
	routes *platform.Routes // non-nil only for sparse platforms

	// appendOnly disables insertion: tasks are placed after the last busy
	// interval of the processor instead of in the earliest adequate gap.
	// Communications always use gap search (ports are shared resources).
	appendOnly bool

	compute []*sched.Intervals          // per-processor execution timeline
	send    []*sched.Intervals          // send-port timeline (the combined port under UniPort)
	recv    []*sched.Intervals          // receive-port timeline
	wires   map[[2]int]*sched.Intervals // per-wire timeline (LinkContention)

	sch *sched.Schedule

	// probe scratch, all lazily created and reused across probes: one buf
	// per worker (bufs[0] doubles as the sequential buf), the predecessor
	// buffer, and the per-worker reduction slots of a parallel bestEFT.
	par     int // max probe workers for this state
	bufs    []*probeBuf
	wg      sync.WaitGroup
	predBuf []predInfo
	results []workerBest

	// hopArena chunks the committed hop copies handed to the schedule, so a
	// commit costs one allocation per arena chunk instead of one per comm
	// event. Carved slices are capacity-limited, so later arena appends can
	// never write into a slice the schedule already owns.
	hopArena []sched.Hop
}

// workerBest is one worker's contribution to a parallel bestEFT reduction.
type workerBest struct {
	pl  placement
	pos int // candidate position of pl, -1 when the worker saw none
}

// probeJob is one stripe of a parallel bestEFT, dispatched to a pool worker.
type probeJob struct {
	s          *state
	v          int
	candidates []int
	preds      []predInfo
	n, w, wi   int
	res        []workerBest
	done       *sync.WaitGroup
}

// The probe worker pool is shared by every state in the process: workers are
// stateless (each job carries the state, stripe and result slot it needs),
// so one bounded set of goroutines serves any number of concurrent
// schedulers without per-state spawn cost or lifecycle management. It is
// started lazily by the first bestEFT that crosses the parallel grain and
// sized to the machine, not to any state's par setting — a state asking for
// more stripes than there are workers just queues; the reduction is
// positional, so worker count never affects the schedule.
var (
	probePoolOnce sync.Once
	probeJobs     chan probeJob
)

func poolJobs() chan probeJob {
	probePoolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0) - 1
		if workers < 1 {
			workers = 1
		}
		if workers > 8 {
			workers = 8
		}
		probeJobs = make(chan probeJob, 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for j := range probeJobs {
					j.res[j.wi] = j.s.probeStripe(j.v, j.candidates, j.preds, j.n, j.w, j.wi)
					j.done.Done()
				}
			}()
		}
	})
	return probeJobs
}

// wire returns the timeline of the undirected wire {a,b}, creating it on
// first use. Only commit may call it: probes must use wireBase, which never
// mutates the map and is therefore safe under parallel probing.
func (s *state) wire(a, b int) *sched.Intervals {
	if a > b {
		a, b = b, a
	}
	k := [2]int{a, b}
	w := s.wires[k]
	if w == nil {
		w = &sched.Intervals{}
		s.wires[k] = w
	}
	return w
}

// wireBase returns the committed timeline of wire {a,b}, or nil when the
// wire has never carried a message (a nil View.Base is treated as empty).
func (s *state) wireBase(a, b int) *sched.Intervals {
	if a > b {
		a, b = b, a
	}
	return s.wires[[2]int{a, b}]
}

// buf returns the i-th probe buffer, creating it on first use.
func (s *state) buf(i int) *probeBuf {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, newProbeBuf(s.pl.NumProcs()))
	}
	return s.bufs[i]
}

func newState(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*state, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s := &state{
		g:       g,
		pl:      pl,
		model:   model,
		compute: make([]*sched.Intervals, pl.NumProcs()),
		send:    make([]*sched.Intervals, pl.NumProcs()),
		recv:    make([]*sched.Intervals, pl.NumProcs()),
		wires:   make(map[[2]int]*sched.Intervals),
		sch:     sched.NewSchedule(g.NumNodes(), pl.NumProcs()),
		par:     tune.par(),
	}
	if tune != nil && tune.Scratch != nil {
		tune.Scratch.lend(s)
	}
	for i := 0; i < pl.NumProcs(); i++ {
		s.compute[i] = &sched.Intervals{}
		s.send[i] = &sched.Intervals{}
		s.recv[i] = &sched.Intervals{}
	}
	if pl.Sparse() {
		rt, err := pl.ComputeRoutes()
		if err != nil {
			return nil, err
		}
		s.routes = rt
	}
	return s, nil
}

// clone deep-copies the state (used by the ILHA communication-rescheduling
// variant, which needs to undo a chunk's tentative placement). Probe scratch
// is not shared: the clone lazily grows its own buffers.
func (s *state) clone() *state {
	c := &state{
		g:          s.g,
		pl:         s.pl,
		model:      s.model,
		routes:     s.routes,
		appendOnly: s.appendOnly,
		par:        s.par,
		compute:    make([]*sched.Intervals, len(s.compute)),
		send:       make([]*sched.Intervals, len(s.send)),
		recv:       make([]*sched.Intervals, len(s.recv)),
		wires:      make(map[[2]int]*sched.Intervals, len(s.wires)),
		sch: &sched.Schedule{
			Tasks: append([]sched.TaskEvent(nil), s.sch.Tasks...),
			Comms: append([]sched.CommEvent(nil), s.sch.Comms...),
			Procs: s.sch.Procs,
		},
	}
	for i := range s.compute {
		c.compute[i] = s.compute[i].Clone()
		c.send[i] = s.send[i].Clone()
		c.recv[i] = s.recv[i].Clone()
	}
	for k, w := range s.wires {
		c.wires[k] = w.Clone()
	}
	return c
}

// placement is the result of probing one candidate processor for one task.
// comms points into scratch storage owned by the state: it stays valid until
// the next probe cycle, so callers must commit (or stash) a placement before
// probing again.
type placement struct {
	proc          int
	start, finish float64
	comms         []sched.CommEvent
}

// path returns the processor chain a message from q to r traverses.
func (s *state) path(q, r int) []int {
	if s.routes != nil {
		return s.routes.Path(q, r)
	}
	return []int{q, r}
}

// placeComm finds, without committing, the hop chain for moving data items
// from proc q (available at time ready) to proc r, honouring the model, the
// committed timelines and the buf's tentative overlay. It appends the comm
// event and its reservations to the buf and returns the arrival time.
func (s *state) placeComm(b *probeBuf, u, v int, data float64, q, r int, ready float64) float64 {
	ev := b.appendComm(u, v, data)
	t := ready
	procs := s.path(q, r)
	for i := 0; i+1 < len(procs); i++ {
		pa, pb := procs[i], procs[i+1]
		dur := s.pl.CommTime(data, pa, pb)
		var start float64
		switch s.model {
		case sched.OnePort:
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.recv[pb], Extra: b.recv[pb], Cur: b.cur(b.recvCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addRecv(pb, start, start+dur)
		case sched.UniPort:
			// a single half-duplex port per processor: every hop occupies
			// the (combined) port of both endpoints, stored in send[].
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.send[pb], Extra: b.send[pb], Cur: b.cur(b.sendCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addSend(pb, start, start+dur)
		case sched.OnePortNoOverlap:
			// one-port rules and the hop blocks computation on both ends
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[pa], Extra: b.send[pa], Cur: b.cur(b.sendCur, pa)},
				sched.View{Base: s.recv[pb], Extra: b.recv[pb], Cur: b.cur(b.recvCur, pb)},
				sched.View{Base: s.compute[pa], Extra: b.compute[pa], Cur: b.cur(b.computeCur, pa)},
				sched.View{Base: s.compute[pb], Extra: b.compute[pb], Cur: b.cur(b.computeCur, pb)})
			b.addSend(pa, start, start+dur)
			b.addRecv(pb, start, start+dur)
			b.addCompute(pa, start, start+dur)
			b.addCompute(pb, start, start+dur)
		case sched.LinkContention:
			k := wireKey(pa, pb)
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.wireBase(pa, pb), Extra: b.wireExtra(k)})
			b.addWire(k, start, start+dur)
		default: // MacroDataflow: ports are unlimited
			start = t
		}
		ev.Hops = append(ev.Hops, sched.Hop{FromProc: pa, ToProc: pb, Start: start, Finish: start + dur})
		t = start + dur
	}
	return t
}

// wireKey canonicalizes an unordered processor pair.
func wireKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// predInfo is one incoming dependency of the task being probed.
type predInfo struct {
	node   int
	data   float64
	proc   int
	finish float64
}

// preds gathers the (already scheduled) predecessors of v sorted by
// ascending finish time (ties by node id), the greedy order in which their
// messages are serialized. The returned slice is scratch owned by the state
// and stays valid until the next preds call.
func (s *state) preds(v int) []predInfo {
	adj := s.g.Pred(v)
	out := s.predBuf[:0]
	for _, a := range adj {
		ev := &s.sch.Tasks[a.Node]
		if !ev.Done {
			panic(fmt.Sprintf("heuristics: task %d probed before predecessor %d", v, a.Node))
		}
		out = append(out, predInfo{node: a.Node, data: a.Data, proc: ev.Proc, finish: ev.Finish})
	}
	// insertion sort: pred lists are short and often nearly sorted, and this
	// avoids the sort.Slice closure allocation on the hot path
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && predLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	s.predBuf = out
	return out
}

func predLess(a, b predInfo) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.node < b.node
}

// probe computes the placement of task v on processor proc using the
// sequential scratch buffer. See probeWith for the contract.
func (s *state) probe(v, proc int, preds []predInfo) placement {
	return s.probeWith(s.buf(0), v, proc, preds)
}

// probeWith computes the placement of task v on processor proc: it
// tentatively schedules every incoming communication as early as possible
// (in pred finish-time order, honouring the one-port constraint when the
// model asks for it) and then finds the earliest compute gap. Nothing is
// committed; all tentative reservations live in b, and the returned
// placement's comms point into b (valid until b's next probe).
func (s *state) probeWith(b *probeBuf, v, proc int, preds []predInfo) placement {
	b.reset()
	ready := 0.0
	for _, p := range preds {
		if p.proc == proc {
			if p.finish > ready {
				ready = p.finish
			}
			continue
		}
		arrival := s.placeComm(b, p.node, v, p.data, p.proc, proc, p.finish)
		if arrival > ready {
			ready = arrival
		}
	}
	dur := s.pl.ExecTime(s.g.Weight(v), proc)
	if s.appendOnly && s.compute[proc].LastEnd() > ready {
		ready = s.compute[proc].LastEnd()
	}
	// under OnePortNoOverlap the task's own incoming messages also reserved
	// the processor's compute timeline (b.compute), so include the overlay
	start := sched.EarliestGap(ready, dur,
		sched.View{Base: s.compute[proc], Extra: b.compute[proc], Cur: b.cur(b.computeCur, proc)})
	return placement{proc: proc, start: start, finish: start + dur, comms: b.comms}
}

// stash copies a placement's comm events out of the probe scratch into the
// sequential buf's stable stash, so the placement survives later probes.
// Callers that keep a placement across probe cycles (DLS) must stash it.
func (s *state) stash(pl placement) placement {
	return stashPlacement(&s.buf(0).best, pl)
}

// commit applies a placement: communication hops are reserved on the port
// timelines, the task occupies its compute window, and the schedule records
// both. The schedule takes ownership of a fresh copy of each event's hops
// (the placement's hop storage is probe scratch that will be recycled).
func (s *state) commit(v int, pl placement) {
	for _, c := range pl.comms {
		for _, h := range c.Hops {
			switch s.model {
			case sched.OnePort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
			case sched.UniPort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.send[h.ToProc].Add(h.Start, h.Finish)
			case sched.OnePortNoOverlap:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
				s.compute[h.FromProc].Add(h.Start, h.Finish)
				s.compute[h.ToProc].Add(h.Start, h.Finish)
			case sched.LinkContention:
				s.wire(h.FromProc, h.ToProc).Add(h.Start, h.Finish)
			}
		}
		c.Hops = s.ownHops(c.Hops)
		s.sch.AddComm(c)
	}
	s.compute[pl.proc].Add(pl.start, pl.finish)
	s.sch.SetTask(v, pl.proc, pl.start, pl.finish)
}

// ownHops copies probe-scratch hops into the state's arena and returns a
// stable, capacity-limited slice the schedule can own.
func (s *state) ownHops(hops []sched.Hop) []sched.Hop {
	if cap(s.hopArena)-len(s.hopArena) < len(hops) {
		n := 1024
		if len(hops) > n {
			n = len(hops)
		}
		s.hopArena = make([]sched.Hop, 0, n)
	}
	n0 := len(s.hopArena)
	s.hopArena = append(s.hopArena, hops...)
	return s.hopArena[n0:len(s.hopArena):len(s.hopArena)]
}

// bestEFT probes every processor in candidates (all processors when nil) and
// returns the placement with the earliest finish time, breaking ties by the
// lowest candidate position — with ascending candidates that is the lowest
// processor index, the paper's convention.
//
// When the probe work is large enough, candidates are probed concurrently by
// a small worker fan-out. This is safe because probes only read the
// committed timelines and write worker-private scratch, and it is exact:
// every candidate's placement is a pure function of the committed state, so
// the (finish, position)-minimum reduction returns byte-identical schedules
// to the sequential loop.
func (s *state) bestEFT(v int, candidates []int) placement {
	preds := s.preds(v)
	n := len(candidates)
	if candidates == nil {
		n = s.pl.NumProcs()
	}
	w := s.par
	if w > n {
		w = n
	}
	if w > 1 && (len(preds)+1)*n >= probeParallelGrain {
		return s.bestEFTParallel(v, candidates, preds, n, w)
	}
	// sequential reference path: allocation-free in steady state
	b := s.buf(0)
	best := placement{proc: -1}
	for j := 0; j < n; j++ {
		p := j
		if candidates != nil {
			p = candidates[j]
		}
		pl := s.probeWith(b, v, p, preds)
		if best.proc == -1 || pl.finish < best.finish {
			best = stashPlacement(&b.best, pl)
		}
	}
	return best
}

// bestEFTParallel fans the candidate probes of one task out to w workers.
// Worker wi probes candidates wi, wi+w, wi+2w, … in ascending position order
// and keeps its local best under the same strict earliest-finish comparison
// as the sequential loop; the final reduction takes the minimum by (finish,
// candidate position), which is exactly the placement the sequential loop
// would have kept.
func (s *state) bestEFTParallel(v int, candidates []int, preds []predInfo, n, w int) placement {
	for len(s.results) < w {
		s.results = append(s.results, workerBest{})
	}
	res := s.results[:w]
	s.buf(w - 1) // materialize every worker buf before the fan-out
	jobs := poolJobs()
	s.wg.Add(w - 1)
	for wi := 1; wi < w; wi++ {
		jobs <- probeJob{
			s: s, v: v, candidates: candidates, preds: preds,
			n: n, w: w, wi: wi, res: res, done: &s.wg,
		}
	}
	res[0] = s.probeStripe(v, candidates, preds, n, w, 0)
	s.wg.Wait()
	best := workerBest{pos: -1}
	for _, r := range res {
		if r.pos < 0 {
			continue
		}
		if best.pos < 0 || r.pl.finish < best.pl.finish ||
			(r.pl.finish == best.pl.finish && r.pos < best.pos) {
			best = r
		}
	}
	return best.pl
}

// probeStripe probes candidates wi, wi+w, wi+2w, … of task v and returns the
// stripe's best placement under the strict earliest-finish comparison,
// stashed into the stripe's own buf.
func (s *state) probeStripe(v int, candidates []int, preds []predInfo, n, w, wi int) workerBest {
	b := s.bufs[wi]
	lb := workerBest{pos: -1}
	for j := wi; j < n; j += w {
		p := j
		if candidates != nil {
			p = candidates[j]
		}
		pl := s.probeWith(b, v, p, preds)
		if lb.pos < 0 || pl.finish < lb.pl.finish {
			lb = workerBest{pl: stashPlacement(&b.best, pl), pos: j}
		}
	}
	return lb
}

// priorities computes the paper's bottom levels: task weights scaled by the
// harmonic-mean cycle-time, edge volumes scaled by the harmonic-mean link
// cost (§4.1).
func priorities(g *graph.Graph, pl *platform.Platform) ([]float64, error) {
	return g.BottomLevels(pl.AvgExecFactor(), pl.AvgLinkFactor())
}

// readyList maintains the set of ready tasks ordered by decreasing priority
// (ties by increasing node id). It is a simple ordered slice: every use in
// the package pops from the front; insertion keeps the order.
type readyList struct {
	prio  []float64
	tasks []int // sorted: prio desc, id asc
}

func newReadyList(prio []float64) *readyList { return &readyList{prio: prio} }

func (r *readyList) less(a, b int) bool {
	if r.prio[a] != r.prio[b] {
		return r.prio[a] > r.prio[b]
	}
	return a < b
}

// push inserts a task keeping the order.
func (r *readyList) push(v int) {
	pos := sort.Search(len(r.tasks), func(i int) bool { return r.less(v, r.tasks[i]) })
	r.tasks = append(r.tasks, 0)
	copy(r.tasks[pos+1:], r.tasks[pos:])
	r.tasks[pos] = v
}

// pop removes and returns the highest-priority task.
func (r *readyList) pop() int {
	v := r.tasks[0]
	r.tasks = r.tasks[1:]
	return v
}

// popN removes and returns up to n highest-priority tasks.
func (r *readyList) popN(n int) []int {
	if n > len(r.tasks) {
		n = len(r.tasks)
	}
	out := append([]int(nil), r.tasks[:n]...)
	r.tasks = r.tasks[n:]
	return out
}

func (r *readyList) empty() bool { return len(r.tasks) == 0 }
func (r *readyList) len() int    { return len(r.tasks) }

// releaser tracks remaining in-degrees and reports which tasks become ready
// once a task completes.
type releaser struct {
	g      *graph.Graph
	indeg  []int
	placed int
	out    []int // scratch returned by release, reused across calls
}

func newReleaser(g *graph.Graph) *releaser {
	ind := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		ind[v] = g.InDegree(v)
	}
	return &releaser{g: g, indeg: ind}
}

// initial returns the entry tasks.
func (rl *releaser) initial() []int {
	var out []int
	for v, d := range rl.indeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// release marks v scheduled and returns the tasks that become ready. The
// returned slice is scratch reused by the next release call.
func (rl *releaser) release(v int) []int {
	rl.placed++
	out := rl.out[:0]
	for _, a := range rl.g.Succ(v) {
		rl.indeg[a.Node]--
		if rl.indeg[a.Node] == 0 {
			out = append(out, a.Node)
		}
	}
	rl.out = out
	return out
}

// done reports whether every task has been scheduled.
func (rl *releaser) done() bool { return rl.placed == rl.g.NumNodes() }
