// Package heuristics implements the scheduling heuristics of the paper —
// the one-port adaptations of HEFT and ILHA (with every §4.4 design
// variant) — together with their classical macro-dataflow counterparts,
// the literature baselines the authors compared against (CPOP, DLS/GDL,
// BIL, PCT), a DSC-style clusterer, naive controls, a fixed-allocation
// rescheduler with a stochastic improvement pass, and an exhaustive
// branch-and-bound search used as ground truth on small instances.
//
// Every heuristic runs under any communication model in sched.Models();
// the model only changes how communications are placed, which is factored
// into the shared scheduler state below.
package heuristics

import (
	"fmt"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// state carries the incremental resource timelines during list scheduling.
type state struct {
	g      *graph.Graph
	pl     *platform.Platform
	model  sched.Model
	routes *platform.Routes // non-nil only for sparse platforms

	// appendOnly disables insertion: tasks are placed after the last busy
	// interval of the processor instead of in the earliest adequate gap.
	// Communications always use gap search (ports are shared resources).
	appendOnly bool

	compute []*sched.Intervals          // per-processor execution timeline
	send    []*sched.Intervals          // send-port timeline (the combined port under UniPort)
	recv    []*sched.Intervals          // receive-port timeline
	wires   map[[2]int]*sched.Intervals // per-wire timeline (LinkContention)

	sch *sched.Schedule
}

// wire returns the timeline of the undirected wire {a,b}, creating it on
// first use.
func (s *state) wire(a, b int) *sched.Intervals {
	if a > b {
		a, b = b, a
	}
	k := [2]int{a, b}
	w := s.wires[k]
	if w == nil {
		w = &sched.Intervals{}
		s.wires[k] = w
	}
	return w
}

func newState(g *graph.Graph, pl *platform.Platform, model sched.Model) (*state, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s := &state{
		g:       g,
		pl:      pl,
		model:   model,
		compute: make([]*sched.Intervals, pl.NumProcs()),
		send:    make([]*sched.Intervals, pl.NumProcs()),
		recv:    make([]*sched.Intervals, pl.NumProcs()),
		wires:   make(map[[2]int]*sched.Intervals),
		sch:     sched.NewSchedule(g.NumNodes(), pl.NumProcs()),
	}
	for i := 0; i < pl.NumProcs(); i++ {
		s.compute[i] = &sched.Intervals{}
		s.send[i] = &sched.Intervals{}
		s.recv[i] = &sched.Intervals{}
	}
	if pl.Sparse() {
		rt, err := pl.ComputeRoutes()
		if err != nil {
			return nil, err
		}
		s.routes = rt
	}
	return s, nil
}

// clone deep-copies the state (used by the ILHA communication-rescheduling
// variant, which needs to undo a chunk's tentative placement).
func (s *state) clone() *state {
	c := &state{
		g:          s.g,
		pl:         s.pl,
		model:      s.model,
		routes:     s.routes,
		appendOnly: s.appendOnly,
		compute:    make([]*sched.Intervals, len(s.compute)),
		send:       make([]*sched.Intervals, len(s.send)),
		recv:       make([]*sched.Intervals, len(s.recv)),
		wires:      make(map[[2]int]*sched.Intervals, len(s.wires)),
		sch: &sched.Schedule{
			Tasks: append([]sched.TaskEvent(nil), s.sch.Tasks...),
			Comms: append([]sched.CommEvent(nil), s.sch.Comms...),
			Procs: s.sch.Procs,
		},
	}
	for i := range s.compute {
		c.compute[i] = s.compute[i].Clone()
		c.send[i] = s.send[i].Clone()
		c.recv[i] = s.recv[i].Clone()
	}
	for k, w := range s.wires {
		c.wires[k] = w.Clone()
	}
	return c
}

// placement is the result of probing one candidate processor for one task.
type placement struct {
	proc          int
	start, finish float64
	comms         []sched.CommEvent
}

// overlay holds the tentative resource reservations accumulated while
// probing a candidate placement, keyed by processor (or wire). It never
// touches the committed timelines.
type overlay struct {
	send    map[int][]sched.Interval
	recv    map[int][]sched.Interval
	compute map[int][]sched.Interval    // OnePortNoOverlap only
	wire    map[[2]int][]sched.Interval // LinkContention only
}

func newOverlay() *overlay {
	return &overlay{
		send:    make(map[int][]sched.Interval),
		recv:    make(map[int][]sched.Interval),
		compute: make(map[int][]sched.Interval),
		wire:    make(map[[2]int][]sched.Interval),
	}
}

func (o *overlay) addSend(p int, start, end float64) {
	o.send[p] = sched.AddExtra(o.send[p], start, end)
}
func (o *overlay) addRecv(p int, start, end float64) {
	o.recv[p] = sched.AddExtra(o.recv[p], start, end)
}
func (o *overlay) addCompute(p int, start, end float64) {
	o.compute[p] = sched.AddExtra(o.compute[p], start, end)
}
func (o *overlay) addWire(k [2]int, start, end float64) {
	o.wire[k] = sched.AddExtra(o.wire[k], start, end)
}

// path returns the processor chain a message from q to r traverses.
func (s *state) path(q, r int) []int {
	if s.routes != nil {
		return s.routes.Path(q, r)
	}
	return []int{q, r}
}

// placeComm finds, without committing, the hop chain for moving data items
// from proc q (available at time ready) to proc r, honouring the model, the
// committed timelines and the overlay. It records its reservations in the
// overlay and returns the comm event and the arrival time.
func (s *state) placeComm(u, v int, data float64, q, r int, ready float64, o *overlay) (sched.CommEvent, float64) {
	ev := sched.CommEvent{FromTask: u, ToTask: v, Data: data}
	t := ready
	procs := s.path(q, r)
	for i := 0; i+1 < len(procs); i++ {
		a, b := procs[i], procs[i+1]
		dur := s.pl.CommTime(data, a, b)
		var start float64
		switch s.model {
		case sched.OnePort:
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[a], Extra: o.send[a]},
				sched.View{Base: s.recv[b], Extra: o.recv[b]})
			o.addSend(a, start, start+dur)
			o.addRecv(b, start, start+dur)
		case sched.UniPort:
			// a single half-duplex port per processor: every hop occupies
			// the (combined) port of both endpoints, stored in send[].
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[a], Extra: o.send[a]},
				sched.View{Base: s.send[b], Extra: o.send[b]})
			o.addSend(a, start, start+dur)
			o.addSend(b, start, start+dur)
		case sched.OnePortNoOverlap:
			// one-port rules and the hop blocks computation on both ends
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.send[a], Extra: o.send[a]},
				sched.View{Base: s.recv[b], Extra: o.recv[b]},
				sched.View{Base: s.compute[a], Extra: o.compute[a]},
				sched.View{Base: s.compute[b], Extra: o.compute[b]})
			o.addSend(a, start, start+dur)
			o.addRecv(b, start, start+dur)
			o.addCompute(a, start, start+dur)
			o.addCompute(b, start, start+dur)
		case sched.LinkContention:
			k := wireKey(a, b)
			start = sched.EarliestGap(t, dur,
				sched.View{Base: s.wire(a, b), Extra: o.wire[k]})
			o.addWire(k, start, start+dur)
		default: // MacroDataflow: ports are unlimited
			start = t
		}
		ev.Hops = append(ev.Hops, sched.Hop{FromProc: a, ToProc: b, Start: start, Finish: start + dur})
		t = start + dur
	}
	return ev, t
}

// wireKey canonicalizes an unordered processor pair.
func wireKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// predInfo is one incoming dependency of the task being probed.
type predInfo struct {
	node   int
	data   float64
	proc   int
	finish float64
}

// preds gathers the (already scheduled) predecessors of v sorted by
// ascending finish time (ties by node id), the greedy order in which their
// messages are serialized.
func (s *state) preds(v int) []predInfo {
	adj := s.g.Pred(v)
	out := make([]predInfo, 0, len(adj))
	for _, a := range adj {
		ev := &s.sch.Tasks[a.Node]
		if !ev.Done {
			panic(fmt.Sprintf("heuristics: task %d probed before predecessor %d", v, a.Node))
		}
		out = append(out, predInfo{node: a.Node, data: a.Data, proc: ev.Proc, finish: ev.Finish})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].finish != out[j].finish {
			return out[i].finish < out[j].finish
		}
		return out[i].node < out[j].node
	})
	return out
}

// probe computes the placement of task v on processor proc: it tentatively
// schedules every incoming communication as early as possible (in pred
// finish-time order, honouring the one-port constraint when the model asks
// for it) and then finds the earliest compute gap. Nothing is committed.
func (s *state) probe(v, proc int, preds []predInfo) placement {
	o := newOverlay()
	ready := 0.0
	var comms []sched.CommEvent
	for _, p := range preds {
		if p.proc == proc {
			if p.finish > ready {
				ready = p.finish
			}
			continue
		}
		ev, arrival := s.placeComm(p.node, v, p.data, p.proc, proc, p.finish, o)
		comms = append(comms, ev)
		if arrival > ready {
			ready = arrival
		}
	}
	dur := s.pl.ExecTime(s.g.Weight(v), proc)
	if s.appendOnly && s.compute[proc].LastEnd() > ready {
		ready = s.compute[proc].LastEnd()
	}
	// under OnePortNoOverlap the task's own incoming messages also reserved
	// the processor's compute timeline (o.compute), so include the overlay
	start := sched.EarliestGap(ready, dur, sched.View{Base: s.compute[proc], Extra: o.compute[proc]})
	return placement{proc: proc, start: start, finish: start + dur, comms: comms}
}

// commit applies a placement: communication hops are reserved on the port
// timelines, the task occupies its compute window, and the schedule records
// both.
func (s *state) commit(v int, pl placement) {
	for _, c := range pl.comms {
		for _, h := range c.Hops {
			switch s.model {
			case sched.OnePort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
			case sched.UniPort:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.send[h.ToProc].Add(h.Start, h.Finish)
			case sched.OnePortNoOverlap:
				s.send[h.FromProc].Add(h.Start, h.Finish)
				s.recv[h.ToProc].Add(h.Start, h.Finish)
				s.compute[h.FromProc].Add(h.Start, h.Finish)
				s.compute[h.ToProc].Add(h.Start, h.Finish)
			case sched.LinkContention:
				s.wire(h.FromProc, h.ToProc).Add(h.Start, h.Finish)
			}
		}
		s.sch.AddComm(c)
	}
	s.compute[pl.proc].Add(pl.start, pl.finish)
	s.sch.SetTask(v, pl.proc, pl.start, pl.finish)
}

// bestEFT probes every processor in candidates (all processors when nil) and
// returns the placement with the earliest finish time, breaking ties by the
// lowest processor index — the paper's convention.
func (s *state) bestEFT(v int, candidates []int) placement {
	preds := s.preds(v)
	best := placement{proc: -1}
	try := func(p int) {
		pl := s.probe(v, p, preds)
		if best.proc == -1 || pl.finish < best.finish {
			best = pl
		}
	}
	if candidates == nil {
		for p := 0; p < s.pl.NumProcs(); p++ {
			try(p)
		}
	} else {
		for _, p := range candidates {
			try(p)
		}
	}
	return best
}

// priorities computes the paper's bottom levels: task weights scaled by the
// harmonic-mean cycle-time, edge volumes scaled by the harmonic-mean link
// cost (§4.1).
func priorities(g *graph.Graph, pl *platform.Platform) ([]float64, error) {
	return g.BottomLevels(pl.AvgExecFactor(), pl.AvgLinkFactor())
}

// readyList maintains the set of ready tasks ordered by decreasing priority
// (ties by increasing node id). It is a simple ordered slice: every use in
// the package pops from the front; insertion keeps the order.
type readyList struct {
	prio  []float64
	tasks []int // sorted: prio desc, id asc
}

func newReadyList(prio []float64) *readyList { return &readyList{prio: prio} }

func (r *readyList) less(a, b int) bool {
	if r.prio[a] != r.prio[b] {
		return r.prio[a] > r.prio[b]
	}
	return a < b
}

// push inserts a task keeping the order.
func (r *readyList) push(v int) {
	pos := sort.Search(len(r.tasks), func(i int) bool { return r.less(v, r.tasks[i]) })
	r.tasks = append(r.tasks, 0)
	copy(r.tasks[pos+1:], r.tasks[pos:])
	r.tasks[pos] = v
}

// pop removes and returns the highest-priority task.
func (r *readyList) pop() int {
	v := r.tasks[0]
	r.tasks = r.tasks[1:]
	return v
}

// popN removes and returns up to n highest-priority tasks.
func (r *readyList) popN(n int) []int {
	if n > len(r.tasks) {
		n = len(r.tasks)
	}
	out := append([]int(nil), r.tasks[:n]...)
	r.tasks = r.tasks[n:]
	return out
}

func (r *readyList) empty() bool { return len(r.tasks) == 0 }
func (r *readyList) len() int    { return len(r.tasks) }

// releaser tracks remaining in-degrees and reports which tasks become ready
// once a task completes.
type releaser struct {
	g      *graph.Graph
	indeg  []int
	placed int
}

func newReleaser(g *graph.Graph) *releaser {
	ind := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		ind[v] = g.InDegree(v)
	}
	return &releaser{g: g, indeg: ind}
}

// initial returns the entry tasks.
func (rl *releaser) initial() []int {
	var out []int
	for v, d := range rl.indeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// release marks v scheduled and returns the tasks that become ready.
func (rl *releaser) release(v int) []int {
	rl.placed++
	var out []int
	for _, a := range rl.g.Succ(v) {
		rl.indeg[a.Node]--
		if rl.indeg[a.Node] == 0 {
			out = append(out, a.Node)
		}
	}
	return out
}

// done reports whether every task has been scheduled.
func (rl *releaser) done() bool { return rl.placed == rl.g.NumNodes() }
