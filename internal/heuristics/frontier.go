package heuristics

import (
	"math/bits"
	"sync"

	"oneport/internal/sched"
)

// This file implements the frontier-probe engine: an incremental, cached and
// parallel evaluator of the (ready task × processor) probe matrix that the
// whole-frontier heuristics scan at every scheduling step. DLS maximizes a
// dynamic level over all pairs, the Exhaustive branch-and-bound expands
// every pair, and BIL's level scan minimizes finish time over one task's
// row; before the engine each of them re-probed every pair from scratch at
// every step, an O(ready·procs) rescan per commit even though one commit
// only perturbs one processor's compute timeline, the ports/wires on the
// committed communication paths, and the placed task's successors.
//
// The engine caches each pair's probe *scores* (start and finish time) and
// invalidates them with fine granularity:
//
//   - a per-processor compute-timeline stamp and a per-processor port stamp
//     (ports and incident wires), bumped for exactly the processors whose
//     resources a commit reserved under the run's communication model;
//   - a per-task predecessor stamp, bumped for every successor of the
//     committed task (its probe inputs now include a new placed pred);
//   - each cached entry records the stamp clock it was computed at and the
//     exact processor sets its probe read: the candidate's compute timeline
//     plus, model-dependent, the ports/wires (and for the no-overlap model
//     the compute timelines) of every processor on the communication path
//     from each remote predecessor.
//
// An entry is served only while none of the resources it read and the
// task's pred set changed since it was computed. Probes are pure functions
// of the committed timelines, so a cache hit is bit-for-bit the placement a
// fresh probe would produce, and schedules are byte-identical to the
// uncached sequential implementations. The remaining invalid pairs of a
// step are fanned out across the shared probe worker pool (each worker owns
// its probeBuf and writes disjoint entries), which is equally exact: every
// pair is a pure function of the committed state and the reductions below
// use total orders — (score, task id, proc id) — that do not depend on
// evaluation order. See DESIGN.md, "Frontier engine".
type frontier struct {
	s  *state
	np int // processor count

	// maskW is the word count of one read-set mask: ceil(np/64). Platforms
	// with at most 64 processors use one word — the same single-mask walk as
	// before — and larger platforms get as many words as they need, so a
	// 100-proc frontier keeps fine-grained invalidation instead of the old
	// degrade-to-invalidate-on-any-commit fallback.
	maskW int

	// clock is the logical commit counter; stamps hold clock values. The
	// clock is monotone across runs of a reused (Scratch-lent) engine:
	// epoch is the clock value this run started at, and any entry or stamp
	// written before it — asOf < epoch — is dead history. That makes the
	// warm reset O(1): bumping the epoch invalidates every old entry and
	// outdates every old stamp at once, with no zeroing sweep over the
	// nodes×procs matrix.
	//
	// The three stamp arrays share one slab so the Exhaustive per-branch
	// clone is a single allocation: computeStamp = stamps[:np] (compute
	// timelines), portStamp = stamps[np:2np] (ports and incident wires),
	// predStamp = stamps[2np:] (per task: last gained a placed pred).
	clock  uint64
	epoch  uint64
	stamps []uint64

	// entries is the flat probe matrix, entries[v*np+p] for pair (v, p).
	// readsC/readsP hold the per-entry read-set masks, maskW words each, at
	// word offset (v*np+p)*maskW. Mask words are only read for entries
	// probed in the current run (asOf >= epoch), so stale words from a
	// previous run never need clearing.
	entries        []frontierEntry
	readsC, readsP []uint64

	// scan is the ensure/materialize scratch. The DFS of the Exhaustive
	// search runs strictly sequentially, so every cloned state along one
	// search shares its root's scratch instead of growing its own.
	scan *frontierScan
}

// frontierEntry caches the scores of one (task, processor) probe. Scores are
// enough for every reduction the heuristics need (dynamic level, earliest
// finish, branch-and-bound pruning); only a winning pair's communication
// placement is materialized, by re-running that single probe. ready is the
// communication-determined earliest start, so an entry stale only in its
// compute timeline is refreshed by a single gap search instead of a probe.
// The read-set masks live in the engine's readsC/readsP arenas.
type frontierEntry struct {
	asOf          uint64 // clock the probe ran at; < epoch = never probed this run
	ready         float64
	start, finish float64
}

// frontierScan is the reusable scratch of one engine scan, shared by every
// clone along one Exhaustive search.
type frontierScan struct {
	pairs     []probePair
	predArena []predInfo
	jobs      []frontierJob
	best      []sched.CommEvent // stash for bestInRow's running best
	free      []*frontier       // recycled per-branch clones (Exhaustive)
	one       [1]int
	wg        sync.WaitGroup
}

// probePair is one invalid (task, processor) pair queued for re-probing;
// the task's predecessors live at predArena[off : off+n].
type probePair struct {
	v, p   int32
	off, n int32
}

// frontierJob is one worker's share of a parallel ensure, dispatched to the
// shared probe pool.
type frontierJob struct {
	f     *frontier
	wi, w int
}

func (j *frontierJob) run() {
	j.f.probeSlice(j.wi, j.w)
	j.f.scan.wg.Done()
}

// abort releases the scan latch after run panicked, recording the fault on
// the engine's bound state for the dispatcher to re-raise.
func (j *frontierJob) abort(fault any) {
	j.f.s.noteFault(fault)
	j.f.scan.wg.Done()
}

// attachFrontier creates (or, when the state carries lent scratch, revives)
// the frontier engine for st and hooks it into st.commit so every commit
// bumps the invalidation stamps.
func attachFrontier(st *state) *frontier {
	f := st.fmem
	st.fmem = nil
	if f == nil {
		f = &frontier{}
	}
	f.resetFor(st)
	st.frontier = f
	return f
}

// resetFor rebinds the engine to a state. A reused (Scratch-lent) engine
// whose arrays still fit resets in O(1): the clock keeps counting across
// runs, so advancing the epoch past every previously written clock value
// invalidates all old entries and outdates all old stamps without touching
// them — the per-request cost of warming an engine across service requests
// is a few slice reslices, not a nodes×procs zeroing sweep. Arrays that no
// longer fit are reallocated (fresh zeroes sit below the epoch too).
func (f *frontier) resetFor(st *state) {
	f.s = st
	f.np = st.pl.NumProcs()
	f.maskW = (f.np + 63) / 64
	f.epoch = f.clock + 1
	f.clock = f.epoch
	f.stamps = resizeU64(f.stamps, 2*f.np+st.g.NumNodes())
	n := st.g.NumNodes() * f.np
	if cap(f.entries) < n {
		f.entries = make([]frontierEntry, n)
	} else {
		f.entries = f.entries[:n]
	}
	f.readsC = resizeU64(f.readsC, n*f.maskW)
	f.readsP = resizeU64(f.readsP, n*f.maskW)
	if f.scan == nil {
		f.scan = &frontierScan{}
	}
}

// resizeU64 reslices s to n words, reallocating only when the capacity is
// exceeded. Contents are NOT zeroed: every consumer treats values written
// before the engine's epoch as absent.
func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func (f *frontier) computeStamp() []uint64 { return f.stamps[:f.np] }
func (f *frontier) portStamp() []uint64    { return f.stamps[f.np : 2*f.np] }
func (f *frontier) predStamp() []uint64    { return f.stamps[2*f.np:] }

// cloneFor deep-copies the engine for a cloned state (the Exhaustive search
// clones the scheduler state per branch; inheriting the parent's cache lets
// a child re-probe only the pairs its one extra commit invalidated). The
// scan scratch is shared, not copied: the search is sequential, so at most
// one scan is live at a time. Clones come from (and return to, via recycle)
// the scan's freelist, so a deep DFS allocates a handful of clones total.
func (f *frontier) cloneFor(c *state) *frontier {
	var nf *frontier
	if n := len(f.scan.free); n > 0 {
		nf = f.scan.free[n-1]
		f.scan.free = f.scan.free[:n-1]
	} else {
		nf = &frontier{}
	}
	nf.s = c
	nf.np = f.np
	nf.maskW = f.maskW
	nf.clock = f.clock
	nf.epoch = f.epoch
	nf.stamps = append(nf.stamps[:0], f.stamps...)
	nf.entries = append(nf.entries[:0], f.entries...)
	nf.readsC = append(nf.readsC[:0], f.readsC...)
	nf.readsP = append(nf.readsP[:0], f.readsP...)
	nf.scan = f.scan
	return nf
}

// recycle returns a no-longer-referenced clone's storage to the freelist.
// The caller must guarantee the clone's state is dead.
func (sc *frontierScan) recycle(f *frontier) {
	f.s = nil
	sc.free = append(sc.free, f)
}

// onCommit is called by state.commit after the placement's reservations are
// applied: it advances the clock and stamps exactly the resources the
// commit reserved — the computing processor's compute timeline, the
// port/wire stamps of both endpoints of every communication hop under the
// port models (plus their compute stamps under the no-overlap model), and
// the pred stamp of every successor of the placed task. MacroDataflow
// communications reserve no timeline at all, so there only the compute
// stamp moves.
func (f *frontier) onCommit(v int, pl placement) {
	f.clock++
	c := f.clock
	f.computeStamp()[pl.proc] = c
	if f.s.model != sched.MacroDataflow {
		ps := f.portStamp()
		cs := f.computeStamp()
		noOverlap := f.s.model == sched.OnePortNoOverlap
		for i := range pl.comms {
			for _, h := range pl.comms[i].Hops {
				ps[h.FromProc] = c
				ps[h.ToProc] = c
				if noOverlap {
					cs[h.FromProc] = c
					cs[h.ToProc] = c
				}
			}
		}
	}
	preds := f.predStamp()
	for _, a := range f.s.g.Succ(v) {
		preds[a.Node] = c
	}
}

// Staleness classes of a cached entry.
const (
	staleNone    = iota // entry is valid as is
	staleCompute        // only the candidate's compute timeline changed
	staleFull           // a port/wire, a pred, or (no-overlap) a path compute changed
)

// staleKind classifies the entry of pair (v, p). staleNone entries are
// served directly. staleCompute entries — the task's pred set and every port
// the probe read are untouched, only the candidate processor's own compute
// timeline moved — keep their communication layout: the probe's ready time
// still holds, and a single compute-gap search restores the scores
// (fastRefresh). Everything else needs a full re-probe. Under
// OnePortNoOverlap communication placement itself reads compute timelines,
// so there readsC beyond the candidate forces staleFull, never staleCompute.
func (f *frontier) staleKind(v, p int, e *frontierEntry) int {
	if e.asOf < f.epoch || f.predStamp()[v] > e.asOf {
		return staleFull
	}
	base := (v*f.np + p) * f.maskW
	ps := f.portStamp()
	for wi := 0; wi < f.maskW; wi++ {
		for m := f.readsP[base+wi]; m != 0; m &= m - 1 {
			if ps[wi<<6+bits.TrailingZeros64(m)] > e.asOf {
				return staleFull
			}
		}
	}
	cs := f.computeStamp()
	kind := staleNone
	multi := -1 // lazily computed: does readsC hold more than one processor?
	for wi := 0; wi < f.maskW; wi++ {
		for m := f.readsC[base+wi]; m != 0; m &= m - 1 {
			q := wi<<6 + bits.TrailingZeros64(m)
			if cs[q] > e.asOf {
				if multi < 0 {
					multi = 0
					total := 0
					for wj := 0; wj < f.maskW; wj++ {
						total += bits.OnesCount64(f.readsC[base+wj])
					}
					if total > 1 {
						multi = 1
					}
				}
				if multi == 1 {
					// more than one compute timeline read (no-overlap model):
					// the communication layout may shift, re-probe fully
					return staleFull
				}
				kind = staleCompute
			}
		}
	}
	return kind
}

// valid reports whether the entry of pair (v, p) may be served as is.
func (f *frontier) valid(v, p int) bool {
	return f.staleKind(v, p, &f.entries[v*f.np+p]) == staleNone
}

// boundStart returns a sound lower bound on the true start of the pair
// backing e: the cached start when e was probed in this run (committed
// reservations only grow the timelines, so stale starts lower-bound true
// starts), else 0 — an entry from before the epoch scored a different run
// and bounds nothing, and 0 lower-bounds every start. Every monotone-bound
// consumer (the DLS bound pass, the Exhaustive prune, bestInRow's skip)
// must read stale scores through these helpers, never e.start directly.
func (f *frontier) boundStart(e *frontierEntry) float64 {
	if e.asOf >= f.epoch {
		return e.start
	}
	return 0
}

// boundFinish is boundStart for the finish score.
func (f *frontier) boundFinish(e *frontierEntry) float64 {
	if e.asOf >= f.epoch {
		return e.finish
	}
	return 0
}

// fastRefresh restores a staleCompute entry: the communication layout (and
// with it the ready time and the read sets) is untouched, so only the final
// compute-gap search reruns against the candidate's current timeline —
// exactly the tail of probeWith, at a fraction of a probe's cost.
func (f *frontier) fastRefresh(v, p int, e *frontierEntry) {
	s := f.s
	after := e.ready
	if s.appendOnly {
		if le := s.compute[p].LastEnd(); le > after {
			after = le
		}
	}
	dur := s.pl.ExecTime(s.g.Weight(v), p)
	start := s.compute[p].EarliestGap(after, dur)
	e.start, e.finish = start, start+dur
	e.asOf = f.clock
}

// ensure makes every (task, processor) entry of the given ready tasks valid,
// re-probing the invalid pairs — in parallel across the shared worker pool
// when the run allows it and the batch is large enough. Tasks must be ready
// (all preds placed).
func (f *frontier) ensure(tasks []int) { f.ensureFiltered(tasks, nil) }

// ensureFiltered is ensure with a pair filter: pairs for which keep returns
// false are left stale (the caller has proven, e.g. from the monotone lower
// bound a stale score provides, that it will never read them fresh).
func (f *frontier) ensureFiltered(tasks []int, keep func(v, p int, e *frontierEntry) bool) {
	s := f.s
	sc := f.scan
	sc.pairs = sc.pairs[:0]
	sc.predArena = sc.predArena[:0]
	work := 0
	for _, v := range tasks {
		row := f.entries[v*f.np : (v+1)*f.np]
		off, n := int32(-1), int32(0)
		for p := range row {
			switch f.staleKind(v, p, &row[p]) {
			case staleNone:
				continue
			case staleCompute:
				f.fastRefresh(v, p, &row[p])
				continue
			}
			if keep != nil && !keep(v, p, &row[p]) {
				continue
			}
			if off < 0 {
				off = int32(len(sc.predArena))
				sc.predArena = s.predsInto(sc.predArena, v)
				n = int32(len(sc.predArena)) - off
			}
			sc.pairs = append(sc.pairs, probePair{v: int32(v), p: int32(p), off: off, n: n})
			work += int(n) + 1
		}
	}
	if len(sc.pairs) == 0 {
		return
	}
	w := s.par
	if w > len(sc.pairs) {
		w = len(sc.pairs)
	}
	if w <= 1 || work < probeParallelGrain {
		s.buf(0)
		f.probeSlice(0, 1)
		return
	}
	s.buf(w - 1) // materialize every worker buf before the fan-out
	for len(sc.jobs) < w {
		sc.jobs = append(sc.jobs, frontierJob{})
	}
	jobs := poolJobs()
	sc.wg.Add(w - 1)
	for wi := 1; wi < w; wi++ {
		sc.jobs[wi] = frontierJob{f: f, wi: wi, w: w}
		jobs <- &sc.jobs[wi]
	}
	f.probeSlice(0, w)
	sc.wg.Wait()
	s.refault()
}

// probeSlice re-probes pairs wi, wi+w, wi+2w, … with worker wi's probeBuf,
// recording scores and read sets into the pairs' (disjoint) entries. During
// a fan-out everything it reads — committed timelines, pairs, the pred
// arena, routes — is frozen, so slices race with nothing.
func (f *frontier) probeSlice(wi, w int) {
	s := f.s
	b := s.bufs[wi]
	for k := wi; k < len(f.scan.pairs); k += w {
		pr := &f.scan.pairs[k]
		preds := f.scan.predArena[pr.off : pr.off+pr.n]
		pl := s.probeWith(b, int(pr.v), int(pr.p), preds)
		f.record(int(pr.v), int(pr.p), preds, pl)
	}
}

// record refreshes the entry of pair (v, p) from a just-run probe.
func (f *frontier) record(v, p int, preds []predInfo, pl placement) {
	idx := v*f.np + p
	e := &f.entries[idx]
	e.ready = pl.ready
	e.start, e.finish = pl.start, pl.finish
	f.recordReads(idx*f.maskW, p, preds)
	e.asOf = f.clock
}

// refresh probes pair (v, p) with the sequential buf, records its entry and
// returns the full placement (comms in probe scratch: commit or copy it
// before the next probe on this state). It is the lazy, one-pair analogue
// of ensure used by the branch-and-bound, which can often prune a pair on
// cached scores without ever probing it.
func (f *frontier) refresh(v, p int, preds []predInfo) placement {
	pl := f.s.probeWith(f.s.buf(0), v, p, preds)
	f.record(v, p, preds, pl)
	return pl
}

// recordReads writes the resource sets a probe of (·, p) with the given
// placed predecessors read into the mask slot at word offset base. The
// compute mask always holds the candidate processor (the final gap search
// and the append-only horizon); remote predecessors add, per communication
// model: nothing for MacroDataflow (communications never consult a
// timeline), the ports of every processor on the path for the port models
// and LinkContention (a wire maps to the port stamps of its two endpoints),
// plus the path compute timelines for OnePortNoOverlap, whose hops block
// computation on both endpoints.
func (f *frontier) recordReads(base, p int, preds []predInfo) {
	rc := f.readsC[base : base+f.maskW]
	rp := f.readsP[base : base+f.maskW]
	for wi := range rp {
		rc[wi], rp[wi] = 0, 0
	}
	rc[p>>6] = uint64(1) << uint(p&63)
	if f.s.model == sched.MacroDataflow {
		return
	}
	for i := range preds {
		q := preds[i].proc
		if q == p {
			continue
		}
		for _, r := range f.s.path(q, p) {
			rp[r>>6] |= uint64(1) << uint(r&63)
		}
	}
	if f.s.model == sched.OnePortNoOverlap {
		for wi := range rc {
			rc[wi] |= rp[wi]
		}
	}
}

// row returns task v's entry row; entries are only meaningful after ensure
// (or per-pair refresh).
func (f *frontier) row(v int) []frontierEntry {
	return f.entries[v*f.np : (v+1)*f.np]
}

// placementFor materializes the full placement of one (typically winning)
// pair by re-running its probe. Probes are pure, so the result carries
// exactly the scores the cached entry holds. The placement's comms live in
// the state's sequential probe scratch: commit (or copy) it before the next
// probe on this state.
func (f *frontier) placementFor(v, p int) placement {
	s := f.s
	return s.probeWith(s.buf(0), v, p, s.preds(v))
}

// bestInRow returns the earliest-finish placement of task v over every
// processor, ties to the lowest processor index — the frontier-engine
// equivalent of bestEFT(v, nil).
//
// With a sequential budget it walks the row directly: cached entries are
// served, invalid ones probed exactly once, and the running best placement
// is stashed as it goes (like bestEFT), so a fresh row costs not a single
// probe more than the pre-engine scan. With a parallel budget it ensures
// the row through the pool and materializes the winner.
func (f *frontier) bestInRow(v int) placement {
	if f.s.par > 1 {
		f.scan.one[0] = v
		f.ensure(f.scan.one[:])
		row := f.row(v)
		best := 0
		for p := 1; p < len(row); p++ {
			if row[p].finish < row[best].finish {
				best = p
			}
		}
		return f.placementFor(v, best)
	}
	s := f.s
	b := s.buf(0)
	preds := s.preds(v)
	row := f.row(v)
	best, cached := -1, false
	var bestPl placement
	for p := 0; p < f.np; p++ {
		e := &row[p]
		switch f.staleKind(v, p, e) {
		case staleNone:
		case staleCompute:
			f.fastRefresh(v, p, e)
		default:
			// monotone-bound stale-skip: committed reservations only ever
			// grow the timelines, so a stale cached finish lower-bounds the
			// true finish. A stale pair whose bound cannot strictly beat the
			// incumbent (ties go to the lower index, which the incumbent
			// holds) can never win the row and is skipped probe-free.
			if best >= 0 && f.boundFinish(e) >= row[best].finish {
				continue
			}
			pl := s.probeWith(b, v, p, preds)
			f.record(v, p, preds, pl)
			if best < 0 || e.finish < row[best].finish {
				best, cached = p, false
				bestPl = stashPlacement(&f.scan.best, pl)
			}
			continue
		}
		if best < 0 || e.finish < row[best].finish {
			best, cached = p, true
		}
	}
	if cached {
		return f.placementFor(v, best)
	}
	return bestPl
}
