package heuristics

import (
	"fmt"
	"math"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// Exhaustive searches the space of *active* schedules by branch-and-bound:
// at every step it branches over each (ready task, processor) pair,
// committing the task with the same greedy-earliest placement machinery the
// heuristics use, and keeps the best complete schedule. An active schedule
// never inserts idle time that no resource constraint forces; the DFS
// explores every commitment order and every mapping, so the result is the
// exact minimum over that (large) class. It is the ground-truth generator
// for small instances: heuristic results are compared against it in tests
// and ablation tables.
//
// The (ready task × processor) expansion scores come from the frontier-probe
// engine: each DFS node revalidates only the pairs its parent's one commit
// perturbed (a cloned child inherits the parent's cache) and probes them in
// parallel, while pruning and expansion order — and therefore the result and
// the completion flag — are byte-identical to the uncached sequential
// search.
//
// The search is exponential; nodeBudget caps the number of DFS expansions.
// The returned flag reports whether the search ran to completion (true) or
// was cut off, in which case the schedule is the best found so far.
func Exhaustive(g *graph.Graph, pl *platform.Platform, model sched.Model, nodeBudget int) (*sched.Schedule, bool, error) {
	return ExhaustiveTuned(g, pl, model, nodeBudget, nil)
}

// ExhaustiveTuned is Exhaustive with a per-run Tuning: ProbeParallelism
// caps (1 forces off) the frontier engine's probe fan-out, and a Scratch is
// recycled like in every other tuned runner.
func ExhaustiveTuned(g *graph.Graph, pl *platform.Platform, model sched.Model, nodeBudget int, tune *Tuning) (*sched.Schedule, bool, error) {
	if nodeBudget <= 0 {
		nodeBudget = 200000
	}
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, false, err
	}
	defer tune.reclaim(s)
	attachFrontier(s)
	// remaining pure-computation bottom level at the fastest speed: a lower
	// bound on the time between a task's start and the makespan
	tmin := pl.CycleTime(pl.FastestProc())
	blw, err := g.BottomLevels(tmin, 0)
	if err != nil {
		return nil, false, err
	}

	n := g.NumNodes()
	np := pl.NumProcs()
	indeg := make([]int, n)
	var ready []int
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(v)
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}

	var best *sched.Schedule
	bestSpan := math.Inf(1)
	nodes := 0
	exhausted := false

	var dfs func(st *state, ready []int, placed int, curMax float64)
	dfs = func(st *state, ready []int, placed int, curMax float64) {
		if nodes >= nodeBudget {
			exhausted = true
			return
		}
		nodes++
		if placed == n {
			if curMax < bestSpan {
				bestSpan = curMax
				cp := *st.sch
				cp.Tasks = append([]sched.TaskEvent(nil), st.sch.Tasks...)
				cp.Comms = append([]sched.CommEvent(nil), st.sch.Comms...)
				best = &cp
			}
			return
		}
		// Score every (ready, proc) pair: cache hits for everything the path
		// to this node left untouched. Committed reservations only ever grow
		// the timelines, so even a stale cached start is a lower bound on
		// the pair's true start — a pair the bound prunes on a stale score
		// is pruned without ever re-probing it (the reference search, seeing
		// the only-larger true start, prunes it too). With a parallel budget
		// the surviving invalid pairs are swept up front through the worker
		// pool; sequentially the walk is lazy and each survivor is probed
		// exactly once (the refreshing probe doubles as the expansion's
		// placement).
		batch := st.par > 1
		if batch {
			f := st.frontier
			f.ensureFiltered(ready, func(v, p int, e *frontierEntry) bool {
				return f.boundStart(e)+blw[v] < bestSpan
			})
		}
		for ri, v := range ready {
			// preds are only needed by the lazy staleFull refreshes below;
			// a row served from cache or bound-pruned never fetches them
			var preds []predInfo
			havePreds := false
			row := st.frontier.row(v)
			for q := 0; q < np; q++ {
				e := &row[q]
				// prune on the (possibly stale, hence lower-bound) score
				if st.frontier.boundStart(e)+blw[v] >= bestSpan {
					continue
				}
				var plc placement
				haveComms := false
				if !batch {
					switch st.frontier.staleKind(v, q, e) {
					case staleCompute:
						st.frontier.fastRefresh(v, q, e)
					case staleFull:
						if !havePreds {
							preds = st.preds(v)
							havePreds = true
						}
						plc = st.frontier.refresh(v, q, preds)
						haveComms = true
					}
					// re-check the bound against the now-exact score
					if e.start+blw[v] >= bestSpan {
						continue
					}
				}
				// the pair would expand: only now may the budget cut it off,
				// and doing so means the search did not run to completion —
				// the pre-engine code returned here silently, letting a
				// mid-search cutoff masquerade as a completed (provably
				// optimal) search, while pairs the bound disposes of are
				// legitimately finished work at any node count
				if nodes >= nodeBudget {
					exhausted = true
					return
				}
				if !haveComms {
					plc = st.frontier.placementFor(v, q)
				}
				child := st.clone()
				// the DFS is strictly sequential and probes fully reset
				// their buffer, so the whole search shares one buffer set
				// instead of lazily growing one per cloned state
				child.bufs = st.bufs
				child.commit(v, plc)
				nm := curMax
				if plc.finish > nm {
					nm = plc.finish
				}
				// next ready set: drop v, add newly released successors
				next := make([]int, 0, len(ready)+2)
				next = append(next, ready[:ri]...)
				next = append(next, ready[ri+1:]...)
				for _, a := range g.Succ(v) {
					indeg[a.Node]--
					if indeg[a.Node] == 0 {
						next = append(next, a.Node)
					}
				}
				dfs(child, next, placed+1, nm)
				for _, a := range g.Succ(v) {
					indeg[a.Node]++
				}
				// the child subtree is fully explored: recycle its engine
				// clone for the next branch
				st.frontier.scan.recycle(child.frontier)
			}
		}
	}
	dfs(s, ready, 0, 0)
	if best == nil {
		return nil, false, fmt.Errorf("heuristics: exhaustive search found no schedule within budget %d", nodeBudget)
	}
	return best, !exhausted, nil
}
