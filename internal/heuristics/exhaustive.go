package heuristics

import (
	"fmt"
	"math"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// Exhaustive searches the space of *active* schedules by branch-and-bound:
// at every step it branches over each (ready task, processor) pair,
// committing the task with the same greedy-earliest placement machinery the
// heuristics use, and keeps the best complete schedule. An active schedule
// never inserts idle time that no resource constraint forces; the DFS
// explores every commitment order and every mapping, so the result is the
// exact minimum over that (large) class. It is the ground-truth generator
// for small instances: heuristic results are compared against it in tests
// and ablation tables.
//
// The search is exponential; nodeBudget caps the number of DFS expansions.
// The returned flag reports whether the search ran to completion (true) or
// was cut off, in which case the schedule is the best found so far.
func Exhaustive(g *graph.Graph, pl *platform.Platform, model sched.Model, nodeBudget int) (*sched.Schedule, bool, error) {
	if nodeBudget <= 0 {
		nodeBudget = 200000
	}
	s, err := newState(g, pl, model, nil)
	if err != nil {
		return nil, false, err
	}
	// remaining pure-computation bottom level at the fastest speed: a lower
	// bound on the time between a task's start and the makespan
	tmin := pl.CycleTime(pl.FastestProc())
	blw, err := g.BottomLevels(tmin, 0)
	if err != nil {
		return nil, false, err
	}

	n := g.NumNodes()
	indeg := make([]int, n)
	var ready []int
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(v)
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}

	var best *sched.Schedule
	bestSpan := math.Inf(1)
	nodes := 0
	exhausted := false

	var dfs func(st *state, ready []int, placed int, curMax float64)
	dfs = func(st *state, ready []int, placed int, curMax float64) {
		if nodes >= nodeBudget {
			exhausted = true
			return
		}
		nodes++
		if placed == n {
			if curMax < bestSpan {
				bestSpan = curMax
				cp := *st.sch
				cp.Tasks = append([]sched.TaskEvent(nil), st.sch.Tasks...)
				cp.Comms = append([]sched.CommEvent(nil), st.sch.Comms...)
				best = &cp
			}
			return
		}
		for ri, v := range ready {
			preds := st.preds(v)
			for q := 0; q < pl.NumProcs(); q++ {
				plc := st.probe(v, q, preds)
				// bound: the task's own remaining bottom level must still run
				if plc.start+blw[v] >= bestSpan {
					continue
				}
				child := st.clone()
				child.commit(v, plc)
				nm := curMax
				if plc.finish > nm {
					nm = plc.finish
				}
				// next ready set: drop v, add newly released successors
				next := make([]int, 0, len(ready)+2)
				next = append(next, ready[:ri]...)
				next = append(next, ready[ri+1:]...)
				for _, a := range g.Succ(v) {
					indeg[a.Node]--
					if indeg[a.Node] == 0 {
						next = append(next, a.Node)
					}
				}
				dfs(child, next, placed+1, nm)
				for _, a := range g.Succ(v) {
					indeg[a.Node]++
				}
				if nodes >= nodeBudget {
					return
				}
			}
		}
	}
	dfs(s, ready, 0, 0)
	if best == nil {
		return nil, false, fmt.Errorf("heuristics: exhaustive search found no schedule within budget %d", nodeBudget)
	}
	return best, !exhausted, nil
}
