package heuristics

import (
	"sync"
	"testing"

	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// boomJob is a poolJob whose run panics, standing in for a probe-code bug.
type boomJob struct {
	mu      sync.Mutex
	faults  []any
	done    sync.WaitGroup
	payload string
}

func (b *boomJob) run() { panic(b.payload) }
func (b *boomJob) abort(fault any) {
	b.mu.Lock()
	b.faults = append(b.faults, fault)
	b.mu.Unlock()
	b.done.Done()
}

// TestPoolWorkerPanicContained pins the pool's fault contract: a job that
// panics must release its completion latch through abort (no deadlocked
// dispatcher), must not kill the worker goroutine — the shared pool keeps
// serving every scheduler in the process — and must hand the dispatcher
// the panic value to re-raise.
func TestPoolWorkerPanicContained(t *testing.T) {
	jobs := poolJobs()
	b := &boomJob{payload: "probe bug"}
	const n = 4
	b.done.Add(n)
	for i := 0; i < n; i++ {
		jobs <- b
	}
	b.done.Wait() // deadlocks here if abort is not called on panic
	if len(b.faults) != n {
		t.Fatalf("abort ran %d times for %d panicking jobs", len(b.faults), n)
	}
	for _, f := range b.faults {
		if f != "probe bug" {
			t.Fatalf("abort received %v, want the panic value", f)
		}
	}

	// the pool must still be fully operational: run a join-heavy graph with
	// forced fan-out through the same workers and match the sequential run
	g := testbeds.ForkJoin(120, 10)
	pl := platform.Paper()
	run := func(par int) *sched.Schedule {
		t.Helper()
		fn, err := ByNameTuned("heft", ILHAOptions{}, &Tuning{ProbeParallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		s, err := fn(g, pl, sched.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq, par := run(1), run(4)
	if seq.Makespan() != par.Makespan() || seq.CommCount() != par.CommCount() {
		t.Fatalf("pool damaged after worker panics: seq %v/%d vs par %v/%d",
			seq.Makespan(), seq.CommCount(), par.Makespan(), par.CommCount())
	}
}

// TestRefaultSurfacesWorkerPanic pins the dispatcher half: a fault noted by
// abort re-raises on the goroutine that owns the state, exactly once.
func TestRefaultSurfacesWorkerPanic(t *testing.T) {
	s := &state{}
	s.noteFault("first")
	s.noteFault("second") // loses the race; one fault is enough to fail a run
	recovered := func() (r any) {
		defer func() { r = recover() }()
		s.refault()
		return nil
	}()
	if recovered != "first" {
		t.Fatalf("refault raised %v, want the first recorded fault", recovered)
	}
	s.refault() // cleared: must not panic again
}
