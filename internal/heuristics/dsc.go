package heuristics

import (
	"math"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/loadbalance"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// DSC implements a clustering scheduler in the spirit of Yang and
// Gerasoulis' Dominant Sequence Clustering (the paper's reference [27]),
// adapted to a bounded heterogeneous platform in three phases:
//
//  1. clustering on a virtual homogeneous machine (averaged costs): tasks
//     are visited in topological order by decreasing tlevel+blevel priority;
//     a task joins the cluster of one of its predecessors when appending it
//     there (zeroing that edge) lowers its estimated start time, otherwise
//     it opens a new cluster;
//  2. cluster mapping: clusters sorted by total work are placed LPT-style
//     on the physical processors, each going to the processor minimizing
//     its completion estimate (load + work)·t_p, which generalizes LPT to
//     different-speed processors (same criterion as the paper's optimal
//     distribution step);
//  3. final scheduling: with the allocation fixed, tasks are placed in
//     bottom-level order by the shared machinery, so all communications are
//     serialized according to the requested model.
//
// Phases 1–2 are estimates only; correctness (validated schedules under any
// model) comes entirely from phase 3.
func DSC(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return dscRun(g, pl, model, nil)
}

func dscRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	ef, cf := pl.AvgExecFactor(), pl.AvgLinkFactor()
	bl, err := g.BottomLevels(ef, cf)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// phase 1: clustering with estimated start times on unlimited
	// homogeneous processors
	n := g.NumNodes()
	cluster := make([]int, n) // cluster id per task
	clusterEnd := make([]float64, 0, n)
	clusterWork := make([]float64, 0, n)
	est := make([]float64, n) // estimated start
	eft := make([]float64, n) // estimated finish
	// visit order: topological, and among independents the higher priority
	// (bottom level) first — approximating the dominant sequence
	byPrio := append([]int(nil), order...)
	sort.SliceStable(byPrio, func(i, j int) bool {
		// stable sort by descending blevel but never violating topo order:
		// sorting the whole topo order by blevel is safe because blevels
		// strictly decrease along edges with positive weights; for zero
		// weights stability keeps the topological relation
		return bl[byPrio[i]] > bl[byPrio[j]]
	})
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// guard: if the blevel sort broke the topological order (possible with
	// zero-weight tasks), fall back to plain topological order
	ok := true
	seen := make([]bool, n)
	for _, v := range byPrio {
		for _, a := range g.Pred(v) {
			if !seen[a.Node] {
				ok = false
			}
		}
		seen[v] = true
		if !ok {
			break
		}
	}
	if !ok {
		byPrio = order
	}

	for _, v := range byPrio {
		w := g.Weight(v) * ef
		// alone in a fresh cluster: pay every incoming communication
		aloneStart := 0.0
		for _, a := range g.Pred(v) {
			if c := eft[a.Node] + a.Data*cf; c > aloneStart {
				aloneStart = c
			}
		}
		bestC, bestStart := -1, aloneStart
		// joining a predecessor's cluster zeroes that edge but the task
		// must wait for the cluster to drain
		for _, a := range g.Pred(v) {
			c := cluster[a.Node]
			start := clusterEnd[c]
			for _, b := range g.Pred(v) {
				arr := eft[b.Node]
				if cluster[b.Node] != c {
					arr += b.Data * cf
				}
				if arr > start {
					start = arr
				}
			}
			if start < bestStart {
				bestC, bestStart = c, start
			}
		}
		if bestC == -1 {
			bestC = len(clusterEnd)
			clusterEnd = append(clusterEnd, 0)
			clusterWork = append(clusterWork, 0)
		}
		cluster[v] = bestC
		est[v] = bestStart
		eft[v] = bestStart + w
		clusterEnd[bestC] = eft[v]
		clusterWork[bestC] += g.Weight(v)
	}

	// phase 2: map clusters to processors, heaviest first
	ids := make([]int, len(clusterWork))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(i, j int) bool { return clusterWork[ids[i]] > clusterWork[ids[j]] })
	procLoad := make([]float64, pl.NumProcs())
	clusterProc := make([]int, len(ids))
	for _, c := range ids {
		best, bestCost := 0, math.Inf(1)
		for q := 0; q < pl.NumProcs(); q++ {
			if cost := (procLoad[q] + clusterWork[c]) * pl.CycleTime(q); cost < bestCost {
				best, bestCost = q, cost
			}
		}
		clusterProc[c] = best
		procLoad[best] += clusterWork[c]
	}

	// phase 3: fixed-allocation list scheduling under the real model
	ready := newReadyList(bl)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		plc := s.probe(v, clusterProc[cluster[v]], s.preds(v))
		s.commit(v, plc)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// ILHALevels is the "first version" of ILHA described in §4.2: the graph is
// split into iso-levels of independent tasks by dependence depth; each
// level is distributed with the optimal load-balancing counts, tasks whose
// parents share a processor go back there when capacity remains, and the
// rest fill the fastest non-saturated processors. Unlike the final ILHA
// there is no bottom-level chunking (no parameter B): whole levels are
// placed at once.
func ILHALevels(g *graph.Graph, pl *platform.Platform, model sched.Model) (*sched.Schedule, error) {
	return ilhaLevelsRun(g, pl, model, nil)
}

func ilhaLevelsRun(g *graph.Graph, pl *platform.Platform, model sched.Model, tune *Tuning) (*sched.Schedule, error) {
	s, err := newState(g, pl, model, tune)
	if err != nil {
		return nil, err
	}
	defer tune.reclaim(s)
	levels, err := g.DepthLevels()
	if err != nil {
		return nil, err
	}
	bl, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	for _, level := range levels {
		// priority order inside the level
		tasks := append([]int(nil), level...)
		sort.SliceStable(tasks, func(i, j int) bool {
			if bl[tasks[i]] != bl[tasks[j]] {
				return bl[tasks[i]] > bl[tasks[j]]
			}
			return tasks[i] < tasks[j]
		})
		var w float64
		for _, v := range tasks {
			w += g.Weight(v)
		}
		caps := loadbalance.Caps(w, pl.CycleTimes())
		load := make([]float64, pl.NumProcs())
		var rest []int
		for _, v := range tasks {
			proc, ncomms := dominantPredProc(s, v)
			if proc < 0 || ncomms > 0 || load[proc] >= caps[proc]-1e-9 {
				rest = append(rest, v)
				continue
			}
			plc := s.probe(v, proc, s.preds(v))
			s.commit(v, plc)
			load[proc] += g.Weight(v)
		}
		speedOrder := pl.ProcsBySpeed()
		for _, v := range rest {
			// "allocate the task to the fastest processor that is not yet
			// saturated"; when all are saturated, earliest finish time
			proc := -1
			for _, q := range speedOrder {
				if load[q] < caps[q]-1e-9 {
					proc = q
					break
				}
			}
			var plc placement
			if proc >= 0 {
				plc = s.probe(v, proc, s.preds(v))
			} else {
				plc = s.bestEFT(v, nil)
			}
			s.commit(v, plc)
			load[plc.proc] += g.Weight(v)
		}
	}
	return s.sch, nil
}
