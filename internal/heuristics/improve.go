package heuristics

import (
	"fmt"
	"math/rand"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// This file implements the §4.4 suggestion that after an allocation is
// fixed, "we could use greedy-like heuristics to improve the scheduling"
// — the full problem being the NP-complete COMM-SCHED. FixedAlloc is the
// greedy rescheduler; Improve wraps it in a stochastic search over task
// orderings.

// FixedAlloc schedules g with a predetermined task-to-processor allocation:
// tasks are placed in decreasing priority order (defaulting to the paper's
// averaged bottom levels) on their fixed processor, with every
// communication serialized greedily under the model. It returns an error if
// alloc has the wrong length or names an invalid processor.
func FixedAlloc(g *graph.Graph, pl *platform.Platform, model sched.Model, alloc []int, prio []float64) (*sched.Schedule, error) {
	if len(alloc) != g.NumNodes() {
		return nil, fmt.Errorf("heuristics: alloc has %d entries, graph has %d tasks", len(alloc), g.NumNodes())
	}
	for v, p := range alloc {
		if p < 0 || p >= pl.NumProcs() {
			return nil, fmt.Errorf("heuristics: task %d allocated to invalid processor %d", v, p)
		}
	}
	s, err := newState(g, pl, model, nil)
	if err != nil {
		return nil, err
	}
	if prio == nil {
		prio, err = priorities(g, pl)
		if err != nil {
			return nil, err
		}
	} else if len(prio) != g.NumNodes() {
		return nil, fmt.Errorf("heuristics: prio has %d entries, graph has %d tasks", len(prio), g.NumNodes())
	}
	ready := newReadyList(prio)
	rel := newReleaser(g)
	for _, v := range rel.initial() {
		ready.push(v)
	}
	for !ready.empty() {
		v := ready.pop()
		plc := s.probe(v, alloc[v], s.preds(v))
		s.commit(v, plc)
		for _, nv := range rel.release(v) {
			ready.push(nv)
		}
	}
	if !rel.done() {
		return nil, graph.ErrCycle
	}
	return s.sch, nil
}

// Improve takes any complete schedule and searches for a better one with
// the *same allocation* by rescheduling under randomly perturbed task
// priorities (COMM-SCHED is NP-complete, so this is a heuristic search).
// It runs iters rescheduling rounds and returns the best schedule found —
// never worse than a plain FixedAlloc greedy pass and never changing a
// task's processor. Deterministic for a fixed seed.
func Improve(g *graph.Graph, pl *platform.Platform, model sched.Model, s *sched.Schedule, iters int, seed int64) (*sched.Schedule, error) {
	alloc := make([]int, g.NumNodes())
	for v := range alloc {
		alloc[v] = s.Proc(v)
		if alloc[v] < 0 {
			return nil, fmt.Errorf("heuristics: Improve needs a complete schedule (task %d unscheduled)", v)
		}
	}
	base, err := priorities(g, pl)
	if err != nil {
		return nil, err
	}
	best, err := FixedAlloc(g, pl, model, alloc, base)
	if err != nil {
		return nil, err
	}
	if s.Makespan() < best.Makespan() {
		best = s
	}
	if iters <= 0 {
		return best, nil
	}
	r := rand.New(rand.NewSource(seed))
	scale := 0.0
	for _, b := range base {
		if b > scale {
			scale = b
		}
	}
	prio := make([]float64, len(base))
	for it := 0; it < iters; it++ {
		// jitter priorities by up to ±10% of the largest bottom level;
		// precedence feasibility is preserved by the ready-list mechanism,
		// only the tie-breaking and interleaving change
		for v := range prio {
			prio[v] = base[v] + (r.Float64()-0.5)*0.2*scale
		}
		cand, err := FixedAlloc(g, pl, model, alloc, prio)
		if err != nil {
			return nil, err
		}
		if cand.Makespan() < best.Makespan() {
			best = cand
		}
	}
	return best, nil
}
