package heuristics

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// frontierCases are the graph × platform instances the engine determinism
// suites run on: dense paper platform plus the routed line topology, where
// communications traverse multi-hop placeComm routes and invalidation must
// track every intermediate processor.
func frontierCases() []struct {
	name string
	g    *graph.Graph
	pl   *platform.Platform
} {
	wide, err := platform.Homogeneous(65)
	if err != nil {
		panic(err)
	}
	wide100, err := platform.Homogeneous(100)
	if err != nil {
		panic(err)
	}
	return []struct {
		name string
		g    *graph.Graph
		pl   *platform.Platform
	}{
		{"forkjoin40", testbeds.ForkJoin(40, 10), platform.Paper()},
		{"lu12", testbeds.LU(12, 10), platform.Paper()},
		{"stencil8", testbeds.Stencil(8, 10), platform.Paper()},
		{"lu10-line4", testbeds.LU(10, 10), linePlatform(4)},
		// more than 64 processors: read sets span multiple mask words, so
		// these exercise the multi-word staleness walk (the old engine
		// degraded to invalidate-on-any-commit here) at the word boundary
		// (65) and well past it (100)
		{"lu6-wide65", testbeds.LU(6, 10), wide},
		{"lu6-wide100", testbeds.LU(6, 10), wide100},
	}
}

// TestDLSFrontierDeterminism pins the tentpole guarantee: the engine-backed
// DLS — cached scores, fine-grained invalidation, parallel re-probing —
// produces schedules byte-identical to the pre-engine reference loop, for
// every communication model, on dense and routed platforms, sequential and
// parallel. Run under -race this also exercises the fan-out's data-sharing
// argument.
func TestDLSFrontierDeterminism(t *testing.T) {
	oldGrain := probeParallelGrain
	probeParallelGrain = 2 // force the parallel path onto nearly every step
	defer func() { probeParallelGrain = oldGrain }()

	for _, c := range frontierCases() {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", c.name, model), func(t *testing.T) {
				ref, err := dlsReference(c.g, c.pl, model)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 8} {
					got, err := dlsRun(c.g, c.pl, model, &Tuning{ProbeParallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					if err := sameSchedule(ref, got); err != nil {
						t.Fatalf("par %d: %v", par, err)
					}
				}
			})
		}
	}
}

// TestBILFrontierDeterminism is the same pin for BIL's level scan.
func TestBILFrontierDeterminism(t *testing.T) {
	oldGrain := probeParallelGrain
	probeParallelGrain = 2
	defer func() { probeParallelGrain = oldGrain }()

	for _, c := range frontierCases() {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", c.name, model), func(t *testing.T) {
				ref, err := bilReference(c.g, c.pl, model)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 8} {
					got, err := bilRun(c.g, c.pl, model, &Tuning{ProbeParallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					if err := sameSchedule(ref, got); err != nil {
						t.Fatalf("par %d: %v", par, err)
					}
				}
			})
		}
	}
}

// TestCPOPFrontierDeterminism is the same pin for CPOP, whose off-path
// processor scan now runs on the engine with the monotone-bound stale-skip
// (a stale cached finish lower-bounds the true finish, so a pair that
// cannot beat the incumbent is disposed of probe-free).
func TestCPOPFrontierDeterminism(t *testing.T) {
	oldGrain := probeParallelGrain
	probeParallelGrain = 2
	defer func() { probeParallelGrain = oldGrain }()

	for _, c := range frontierCases() {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", c.name, model), func(t *testing.T) {
				ref, err := cpopReference(c.g, c.pl, model)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 8} {
					got, err := cpopRun(c.g, c.pl, model, &Tuning{ProbeParallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					if err := sameSchedule(ref, got); err != nil {
						t.Fatalf("par %d: %v", par, err)
					}
				}
			})
		}
	}
}

// TestExhaustiveFrontierDeterminism pins the branch-and-bound: with the
// engine (inherited caches, parallel probing) the search must visit the same
// tree — same best schedule, byte for byte, and the same completion flag —
// as the reference, exhaustively on small instances and under a budget
// cutoff.
func TestExhaustiveFrontierDeterminism(t *testing.T) {
	oldGrain := probeParallelGrain
	probeParallelGrain = 2
	defer func() { probeParallelGrain = oldGrain }()

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(r, 6)
		pl, err := platform.Uniform([]float64{1, 2, 1}, float64(1+r.Intn(2)))
		if err != nil {
			return false
		}
		budgets := []int{300000, 400} // complete search and a mid-search cutoff
		for _, model := range sched.Models() {
			for _, budget := range budgets {
				ref, refDone, err := exhaustiveReference(g, pl, model, budget)
				if err != nil {
					continue // tiny budget found nothing: also true for the engine
				}
				for _, par := range []int{1, 8} {
					got, gotDone, err := ExhaustiveTuned(g, pl, model, budget, &Tuning{ProbeParallelism: par})
					if err != nil {
						t.Logf("seed %d %v budget %d: %v", seed, model, budget, err)
						return false
					}
					if gotDone != refDone {
						t.Logf("seed %d %v budget %d: complete=%v, reference %v", seed, model, budget, gotDone, refDone)
						return false
					}
					if err := sameSchedule(ref, got); err != nil {
						t.Logf("seed %d %v budget %d par %d: %v", seed, model, budget, par, err)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierNeverServesStale is the adversarial invalidation property: on
// a routed line platform every remote message crosses intermediate wires, so
// a commit can perturb a communication path shared by a cached pair whose
// task and processor are both unrelated to the committed task. After every
// commit, every cached (ready task, processor) score must equal a probe
// recomputed from scratch. The commit choice deliberately maximizes the
// start time so messages are forced across the longest routes.
func TestFrontierNeverServesStale(t *testing.T) {
	wide, err := platform.Homogeneous(65)
	if err != nil {
		t.Fatal(err)
	}
	wide100, err := platform.Homogeneous(100)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		pl   *platform.Platform
	}{
		{"lu8-line5", testbeds.LU(8, 10), linePlatform(5)},
		{"stencil6-line4", testbeds.Stencil(6, 10), linePlatform(4)},
		{"forkjoin20-paper", testbeds.ForkJoin(20, 10), platform.Paper()},
		{"lu5-wide65", testbeds.LU(5, 10), wide},
		{"lu5-wide100", testbeds.LU(5, 10), wide100},
	}
	for _, c := range cases {
		for _, model := range sched.Models() {
			t.Run(fmt.Sprintf("%s/%s", c.name, model), func(t *testing.T) {
				g, pl := c.g, c.pl
				prio, err := priorities(g, pl)
				if err != nil {
					t.Fatal(err)
				}
				s, err := newState(g, pl, model, nil)
				if err != nil {
					t.Fatal(err)
				}
				f := attachFrontier(s)
				check := newProbeBuf(pl.NumProcs())
				ready := newReadyList(prio)
				rel := newReleaser(g)
				for _, v := range rel.initial() {
					ready.push(v)
				}
				np := pl.NumProcs()
				for !ready.empty() {
					f.ensure(ready.items())
					for _, v := range ready.items() {
						preds := s.preds(v)
						row := f.row(v)
						for p := 0; p < np; p++ {
							fresh := s.probeWith(check, v, p, preds)
							if row[p].start != fresh.start || row[p].finish != fresh.finish {
								t.Fatalf("stale cache for task %d proc %d: cached (%g,%g), fresh (%g,%g)",
									v, p, row[p].start, row[p].finish, fresh.start, fresh.finish)
							}
						}
					}
					// commit the pair with the LATEST start among the top
					// task's row: maximizes remote traffic and route length
					v := ready.pop()
					worst := 0
					row := f.row(v)
					for p := 1; p < np; p++ {
						if row[p].start > row[worst].start {
							worst = p
						}
					}
					s.commit(v, f.placementFor(v, worst))
					for _, nv := range rel.release(v) {
						ready.push(nv)
					}
				}
			})
		}
	}
}

// TestFrontierSharedPathInvalidation is the hand-built multi-hop case: two
// independent chains pinned to the opposite ends of a 4-processor line. The
// cached probe of (u, P3) reads every processor on the route P0→P1→P2→P3;
// committing the unrelated task y onto P1 routes its message across the
// shared wires {3,2} and {2,1}, so the cache must drop (u, P3) — while
// (u, P0), whose probe read only P0, survives.
func TestFrontierSharedPathInvalidation(t *testing.T) {
	g := graph.New(4)
	a := g.AddNode(1, "a") // source of u's data, pinned to P0
	b := g.AddNode(1, "b") // source of y's data, pinned to P3
	u := g.AddNode(1, "u")
	y := g.AddNode(1, "y")
	g.MustEdge(a, u, 5)
	g.MustEdge(b, y, 5)
	pl := linePlatform(4)

	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := attachFrontier(s)
	s.commit(a, s.probe(a, 0, s.preds(a)))
	s.commit(b, s.probe(b, 3, s.preds(b)))

	f.ensure([]int{u, y})
	// (u, P3) read P0,P1,P2,P3 (full route from a on P0); (u, P0) read P0
	// only (no communication)
	if !f.valid(u, 3) || !f.valid(u, 0) {
		t.Fatal("fresh entries must be valid")
	}

	// y's message b→y travels P3→P2→P1: wires {3,2}, {2,1}
	s.commit(y, f.placementFor(y, 1))

	if f.valid(u, 3) {
		t.Fatal("(u,P3) read the perturbed route P1..P3 and must be invalidated")
	}
	if !f.valid(u, 0) {
		t.Fatal("(u,P0) read only P0, which the commit left untouched; it must survive")
	}

	// after revalidation the refreshed entry must match a from-scratch probe
	// that sees y's port traffic
	f.ensure([]int{u})
	check := newProbeBuf(pl.NumProcs())
	fresh := s.probeWith(check, u, 3, s.preds(u))
	if got := f.row(u)[3]; got.start != fresh.start || got.finish != fresh.finish {
		t.Fatalf("revalidated entry (%g,%g) differs from fresh probe (%g,%g)",
			got.start, got.finish, fresh.start, fresh.finish)
	}
}

// TestFrontierScratchReuse pins the engine's recycling path: a Scratch now
// carries the frontier across runs, so a reused engine must behave exactly
// like a fresh one — including across graph- and platform-size changes and
// across heuristics sharing one Scratch. The warm reset is O(1): old
// entries and stamps are not zeroed, they are invalidated wholesale by the
// epoch bump, so a reused engine serving a pre-epoch score (or using one as
// a monotone bound) would show up here as a schedule diff.
func TestFrontierScratchReuse(t *testing.T) {
	paper := platform.Paper()
	small, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	lu := testbeds.LU(12, 10)
	fj := testbeds.ForkJoin(15, 10)

	wantLU, err := dlsReference(lu, paper, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	wantFJ, err := dlsReference(fj, small, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	wantBIL, err := bilReference(lu, paper, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	wantEx, wantDone, err := exhaustiveReference(fj, small, sched.OnePort, 2000)
	if err != nil {
		t.Fatal(err)
	}

	tune := &Tuning{ProbeParallelism: 1, Scratch: NewScratch()}
	for rep := 0; rep < 3; rep++ {
		got, err := dlsRun(lu, paper, sched.OnePort, tune)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(wantLU, got); err != nil {
			t.Fatalf("rep %d DLS lu: %v", rep, err)
		}
		got, err = dlsRun(fj, small, sched.OnePort, tune)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(wantFJ, got); err != nil {
			t.Fatalf("rep %d DLS fj/small: %v", rep, err)
		}
		got, err = bilRun(lu, paper, sched.OnePort, tune)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(wantBIL, got); err != nil {
			t.Fatalf("rep %d BIL: %v", rep, err)
		}
		gotEx, gotDone, err := ExhaustiveTuned(fj, small, sched.OnePort, 2000, tune)
		if err != nil {
			t.Fatal(err)
		}
		if gotDone != wantDone {
			t.Fatalf("rep %d Exhaustive: complete=%v, reference %v", rep, gotDone, wantDone)
		}
		if err := sameSchedule(wantEx, gotEx); err != nil {
			t.Fatalf("rep %d Exhaustive: %v", rep, err)
		}
	}
}

// TestSetProbeParallelismDelegates pins the deprecation contract: the global
// knob only feeds the default Tuning, and any per-run setting wins over it.
func TestSetProbeParallelismDelegates(t *testing.T) {
	old := SetProbeParallelism(3)
	defer SetProbeParallelism(old)

	if got := (*Tuning)(nil).par(); got != 3 {
		t.Fatalf("nil Tuning par = %d, want the delegated default 3", got)
	}
	if got := (&Tuning{}).par(); got != 3 {
		t.Fatalf("zero Tuning par = %d, want the delegated default 3", got)
	}
	if got := (&Tuning{ProbeParallelism: 5}).par(); got != 5 {
		t.Fatalf("per-run par = %d, want 5 (global must not override)", got)
	}
	if prev := SetProbeParallelism(0); prev != 3 {
		t.Fatalf("previous value = %d, want 3", prev)
	}
	if got := (*Tuning)(nil).par(); got != 1 {
		t.Fatalf("par after clamped set = %d, want 1", got)
	}
}
