package heuristics

import (
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

func TestReadyListOrdering(t *testing.T) {
	prio := []float64{5, 9, 9, 1, 7}
	r := newReadyList(prio)
	for v := 0; v < 5; v++ {
		r.push(v)
	}
	// expect priority desc, id asc on ties: 1, 2 (prio 9), 4 (7), 0 (5), 3 (1)
	want := []int{1, 2, 4, 0, 3}
	for i, w := range want {
		if r.empty() {
			t.Fatalf("list empty after %d pops", i)
		}
		if got := r.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !r.empty() || r.len() != 0 {
		t.Fatal("list should be empty")
	}
}

func TestReadyListPopN(t *testing.T) {
	prio := []float64{3, 2, 1}
	r := newReadyList(prio)
	for v := 0; v < 3; v++ {
		r.push(v)
	}
	chunk := r.popN(2)
	if len(chunk) != 2 || chunk[0] != 0 || chunk[1] != 1 {
		t.Fatalf("popN(2) = %v, want [0 1]", chunk)
	}
	// popN larger than the list drains it
	rest := r.popN(10)
	if len(rest) != 1 || rest[0] != 2 {
		t.Fatalf("popN(10) = %v, want [2]", rest)
	}
}

func TestReleaser(t *testing.T) {
	g := graph.New(4)
	a := g.AddNode(1, "")
	b := g.AddNode(1, "")
	c := g.AddNode(1, "")
	d := g.AddNode(1, "")
	g.MustEdge(a, c, 1)
	g.MustEdge(b, c, 1)
	g.MustEdge(c, d, 1)
	rl := newReleaser(g)
	init := rl.initial()
	if len(init) != 2 || init[0] != a || init[1] != b {
		t.Fatalf("initial = %v", init)
	}
	if out := rl.release(a); len(out) != 0 {
		t.Fatalf("release(a) = %v, want none (c still blocked)", out)
	}
	if out := rl.release(b); len(out) != 1 || out[0] != c {
		t.Fatalf("release(b) = %v, want [c]", out)
	}
	if rl.done() {
		t.Fatal("not done yet")
	}
	if out := rl.release(c); len(out) != 1 || out[0] != d {
		t.Fatalf("release(c) = %v, want [d]", out)
	}
	rl.release(d)
	if !rl.done() {
		t.Fatal("should be done")
	}
}

func TestDominantPredProc(t *testing.T) {
	g := graph.New(4)
	u1 := g.AddNode(1, "")
	u2 := g.AddNode(1, "")
	u3 := g.AddNode(1, "")
	v := g.AddNode(1, "")
	g.MustEdge(u1, v, 1)
	g.MustEdge(u2, v, 1)
	g.MustEdge(u3, v, 1)
	pl, _ := platform.Homogeneous(3)
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	// two preds on P2, one on P0: dominant = P2 with 1 communication
	s.sch.SetTask(u1, 2, 0, 1)
	s.sch.SetTask(u2, 2, 1, 2)
	s.sch.SetTask(u3, 0, 0, 1)
	proc, comms := dominantPredProc(s, v)
	if proc != 2 || comms != 1 {
		t.Fatalf("dominantPredProc = (%d,%d), want (2,1)", proc, comms)
	}
	// entry tasks have no grouping target
	if p, c := dominantPredProc(s, u1); p != -1 || c != 0 {
		t.Fatalf("entry dominantPredProc = (%d,%d), want (-1,0)", p, c)
	}
}

func TestPredsSortedByFinish(t *testing.T) {
	g := graph.New(3)
	u1 := g.AddNode(1, "")
	u2 := g.AddNode(1, "")
	v := g.AddNode(1, "")
	g.MustEdge(u1, v, 4)
	g.MustEdge(u2, v, 5)
	pl, _ := platform.Homogeneous(2)
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.sch.SetTask(u1, 0, 5, 6) // finishes later
	s.sch.SetTask(u2, 1, 0, 1) // finishes first
	ps := s.preds(v)
	if len(ps) != 2 || ps[0].node != u2 || ps[1].node != u1 {
		t.Fatalf("preds order = %+v, want u2 before u1", ps)
	}
	if ps[0].data != 5 || ps[0].proc != 1 {
		t.Fatalf("pred info wrong: %+v", ps[0])
	}
}

func TestProbePanicsOnUnscheduledPred(t *testing.T) {
	g := graph.New(2)
	u := g.AddNode(1, "")
	v := g.AddNode(1, "")
	g.MustEdge(u, v, 1)
	pl, _ := platform.Homogeneous(1)
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when probing before predecessors are scheduled")
		}
	}()
	s.preds(v)
}

func TestStateCloneIndependence(t *testing.T) {
	g := graph.New(2)
	u := g.AddNode(1, "")
	v := g.AddNode(1, "")
	g.MustEdge(u, v, 2)
	pl, _ := platform.Homogeneous(2)
	s, err := newState(g, pl, sched.OnePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	plc := s.probe(u, 0, nil)
	s.commit(u, plc)
	c := s.clone()
	// schedule v remotely on the clone: real state must stay untouched
	plc2 := c.probe(v, 1, c.preds(v))
	c.commit(v, plc2)
	if s.sch.Tasks[v].Done {
		t.Fatal("clone mutation leaked into original schedule")
	}
	if s.send[0].Len() != 0 {
		t.Fatal("clone comm reservation leaked into original timelines")
	}
	if !c.sch.Tasks[v].Done || c.send[0].Len() != 1 {
		t.Fatal("clone did not record its own commit")
	}
}
