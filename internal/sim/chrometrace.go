package sim

import (
	"encoding/json"

	"oneport/internal/graph"
	"oneport/internal/sched"
)

// Chrome-tracing export: schedules rendered as Trace Event Format JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Each processor is
// a "process"; its compute unit and its two ports are "threads", so task
// executions and message hops appear as duration events on separate rows.

type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Args  map[string]any `json:"args"`
}

const (
	tidCompute = 0
	tidSend    = 1
	tidRecv    = 2
)

// ChromeTrace serializes the schedule in Chrome Trace Event Format.
// Timestamps are in microseconds by convention; scheduling time units map
// 1:1 onto microseconds.
func ChromeTrace(g *graph.Graph, s *sched.Schedule) ([]byte, error) {
	var events []any
	for p := 0; p < s.Procs; p++ {
		events = append(events,
			chromeMeta{Name: "process_name", Phase: "M", PID: p,
				Args: map[string]any{"name": procName(p)}},
			chromeMeta{Name: "thread_name", Phase: "M", PID: p, TID: tidCompute,
				Args: map[string]any{"name": "compute"}},
			chromeMeta{Name: "thread_name", Phase: "M", PID: p, TID: tidSend,
				Args: map[string]any{"name": "send port"}},
			chromeMeta{Name: "thread_name", Phase: "M", PID: p, TID: tidRecv,
				Args: map[string]any{"name": "recv port"}},
		)
	}
	for v := range s.Tasks {
		ev := &s.Tasks[v]
		if !ev.Done {
			continue
		}
		name := g.Label(v)
		if name == "" {
			name = "v" + itoa(v)
		}
		events = append(events, chromeEvent{
			Name: name, Cat: "task", Phase: "X",
			TS: ev.Start, Dur: ev.Finish - ev.Start, PID: ev.Proc, TID: tidCompute,
			Args: map[string]string{"task": itoa(v)},
		})
	}
	for ci := range s.Comms {
		c := &s.Comms[ci]
		label := "v" + itoa(c.FromTask) + "->v" + itoa(c.ToTask)
		for _, h := range c.Hops {
			events = append(events,
				chromeEvent{Name: label, Cat: "comm", Phase: "X",
					TS: h.Start, Dur: h.Finish - h.Start, PID: h.FromProc, TID: tidSend},
				chromeEvent{Name: label, Cat: "comm", Phase: "X",
					TS: h.Start, Dur: h.Finish - h.Start, PID: h.ToProc, TID: tidRecv},
			)
		}
	}
	return json.Marshal(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

func procName(p int) string { return "P" + itoa(p) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
