package sim

import (
	"fmt"
	"sort"
	"strings"

	"oneport/internal/graph"
	"oneport/internal/sched"
)

// Critical-chain analysis: walk backwards from the task that determines the
// makespan, at each step moving to the constraint that is *binding* — the
// predecessor event (dependence, message, port occupation or processor
// occupation) whose finish is latest. The resulting chain explains the
// makespan: its compute time, its communication time and its forced idle
// gaps decompose where the time went.

// ChainLink is one event on the critical chain, listed latest first.
type ChainLink struct {
	Desc       string  // human-readable event description
	Start, End float64 // the event's window
	IdleBefore float64 // idle gap between the binding predecessor and Start
}

// chainEvent is an internal unified view of tasks and hops.
type chainEvent struct {
	isTask     bool
	task       int // task id when isTask
	comm, hop  int // comm index and hop index otherwise
	start, end float64
	proc       int // task's processor (tasks only)
}

// CriticalChain extracts the binding chain of the schedule under the given
// model. The chain starts (in time) at some entry event and ends at the
// task whose finish equals the makespan.
func CriticalChain(g *graph.Graph, s *sched.Schedule, model sched.Model) ([]ChainLink, error) {
	n := g.NumNodes()
	if len(s.Tasks) != n {
		return nil, fmt.Errorf("sim: schedule has %d tasks, graph has %d", len(s.Tasks), n)
	}
	// terminal task
	last := -1
	for v := 0; v < n; v++ {
		if !s.Tasks[v].Done {
			return nil, fmt.Errorf("sim: task %d not scheduled", v)
		}
		if last == -1 || s.Tasks[v].Finish > s.Tasks[last].Finish {
			last = v
		}
	}
	if last == -1 {
		return nil, fmt.Errorf("sim: empty schedule")
	}

	// indices: tasks per proc by start; hops per resource by start
	tasksByProc := map[int][]int{}
	for v := 0; v < n; v++ {
		p := s.Tasks[v].Proc
		tasksByProc[p] = append(tasksByProc[p], v)
	}
	for _, list := range tasksByProc {
		sort.Slice(list, func(i, j int) bool { return s.Tasks[list[i]].Start < s.Tasks[list[j]].Start })
	}
	commArrival := map[[2]int]int{} // edge -> comm index
	for ci := range s.Comms {
		commArrival[[2]int{s.Comms[ci].FromTask, s.Comms[ci].ToTask}] = ci
	}
	type hopKey struct{ comm, hop int }
	sendHops := map[int][]hopKey{} // per processor
	recvHops := map[int][]hopKey{}
	wireHops := map[[2]int][]hopKey{}
	for ci := range s.Comms {
		for hi, h := range s.Comms[ci].Hops {
			k := hopKey{ci, hi}
			sendHops[h.FromProc] = append(sendHops[h.FromProc], k)
			recvHops[h.ToProc] = append(recvHops[h.ToProc], k)
			a, b := h.FromProc, h.ToProc
			if a > b {
				a, b = b, a
			}
			wireHops[[2]int{a, b}] = append(wireHops[[2]int{a, b}], k)
		}
	}

	hopOf := func(k hopKey) sched.Hop { return s.Comms[k.comm].Hops[k.hop] }
	// latestBefore returns the event among candidates with the largest
	// finish not exceeding t (plus slack); nil when none qualifies.
	better := func(best *chainEvent, cand chainEvent, t float64) *chainEvent {
		if cand.end > t+1e-9 {
			return best
		}
		if cand.end-cand.start == 0 && !cand.isTask {
			return best // zero-length hops never bind
		}
		if best == nil || cand.end > best.end {
			c := cand
			return &c
		}
		return best
	}

	taskEvent := func(v int) chainEvent {
		return chainEvent{isTask: true, task: v, start: s.Tasks[v].Start, end: s.Tasks[v].Finish, proc: s.Tasks[v].Proc}
	}
	hopEvent := func(k hopKey) chainEvent {
		h := hopOf(k)
		return chainEvent{comm: k.comm, hop: k.hop, start: h.Start, end: h.Finish}
	}

	// bindingPred finds the predecessor event with the latest finish <= start
	bindingPred := func(ev chainEvent) *chainEvent {
		var best *chainEvent
		t := ev.start
		if ev.isTask {
			v := ev.task
			for _, a := range g.Pred(v) {
				if ci, ok := commArrival[[2]int{a.Node, v}]; ok {
					best = better(best, hopEvent(hopKey{ci, len(s.Comms[ci].Hops) - 1}), t)
				} else {
					best = better(best, taskEvent(a.Node), t)
				}
			}
			for _, u := range tasksByProc[ev.proc] {
				if u != v && s.Tasks[u].Finish-s.Tasks[u].Start > 0 {
					best = better(best, taskEvent(u), t)
				}
			}
			if model == sched.OnePortNoOverlap {
				for _, k := range sendHops[ev.proc] {
					best = better(best, hopEvent(k), t)
				}
				for _, k := range recvHops[ev.proc] {
					best = better(best, hopEvent(k), t)
				}
			}
			return best
		}
		// hop: producer or previous hop in the chain
		c := &s.Comms[ev.comm]
		if ev.hop == 0 {
			best = better(best, taskEvent(c.FromTask), t)
		} else {
			best = better(best, hopEvent(hopKey{ev.comm, ev.hop - 1}), t)
		}
		h := c.Hops[ev.hop]
		self := hopKey{ev.comm, ev.hop}
		addPort := func(keys []hopKey) {
			for _, k := range keys {
				if k != self {
					best = better(best, hopEvent(k), t)
				}
			}
		}
		switch model {
		case sched.OnePort:
			addPort(sendHops[h.FromProc])
			addPort(recvHops[h.ToProc])
		case sched.UniPort:
			addPort(sendHops[h.FromProc])
			addPort(recvHops[h.FromProc])
			addPort(sendHops[h.ToProc])
			addPort(recvHops[h.ToProc])
		case sched.OnePortNoOverlap:
			addPort(sendHops[h.FromProc])
			addPort(recvHops[h.ToProc])
			for _, u := range tasksByProc[h.FromProc] {
				best = better(best, taskEvent(u), t)
			}
			for _, u := range tasksByProc[h.ToProc] {
				best = better(best, taskEvent(u), t)
			}
		case sched.LinkContention:
			a, b := h.FromProc, h.ToProc
			if a > b {
				a, b = b, a
			}
			addPort(wireHops[[2]int{a, b}])
		}
		return best
	}

	describe := func(ev chainEvent) string {
		if ev.isTask {
			label := g.Label(ev.task)
			if label == "" {
				label = fmt.Sprintf("v%d", ev.task)
			}
			return fmt.Sprintf("exec %s on P%d", label, ev.proc)
		}
		c := &s.Comms[ev.comm]
		h := c.Hops[ev.hop]
		return fmt.Sprintf("comm v%d->v%d P%d=>P%d", c.FromTask, c.ToTask, h.FromProc, h.ToProc)
	}

	var chain []ChainLink
	cur := taskEvent(last)
	for steps := 0; steps < 4*(n+len(s.Comms))+8; steps++ {
		link := ChainLink{Desc: describe(cur), Start: cur.start, End: cur.end}
		pred := bindingPred(cur)
		if pred == nil {
			chain = append(chain, link)
			return chain, nil
		}
		link.IdleBefore = cur.start - pred.end
		if link.IdleBefore < 0 {
			link.IdleBefore = 0
		}
		chain = append(chain, link)
		cur = *pred
	}
	return nil, fmt.Errorf("sim: critical chain did not terminate (cyclic schedule?)")
}

// ChainReport renders a critical chain with a summary decomposition of the
// makespan into compute, communication and idle time along the chain.
func ChainReport(chain []ChainLink) string {
	var b strings.Builder
	var compute, comm, idle float64
	for _, l := range chain {
		if strings.HasPrefix(l.Desc, "exec") {
			compute += l.End - l.Start
		} else {
			comm += l.End - l.Start
		}
		idle += l.IdleBefore
	}
	fmt.Fprintf(&b, "critical chain: %d events, compute %.4g, communication %.4g, idle %.4g\n",
		len(chain), compute, comm, idle)
	for i := len(chain) - 1; i >= 0; i-- {
		l := chain[i]
		if l.IdleBefore > 1e-9 {
			fmt.Fprintf(&b, "%12s  (idle %.4g)\n", "", l.IdleBefore)
		}
		fmt.Fprintf(&b, "%10.4g  %s until %.4g\n", l.Start, l.Desc, l.End)
	}
	return b.String()
}
