package sim

import (
	"encoding/json"
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestReplayReproducesHEFTTimesExactly(t *testing.T) {
	// HEFT's greedy ASAP placement should be reproduced identically by the
	// replayer on a graph where insertion gaps don't arise.
	g := testbeds.ForkJoin(6, 10)
	pl := platform.Paper()
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(g, pl, s, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, r, sched.OnePort); err != nil {
		t.Fatalf("replayed schedule invalid: %v", err)
	}
	if r.Makespan() > s.Makespan()+1e-9 {
		t.Errorf("replay makespan %g exceeds original %g", r.Makespan(), s.Makespan())
	}
}

func TestReplayNeverLater(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testbeds.RandomLayered(seed, 2+r.Intn(4), 2+r.Intn(5), 4, float64(1+r.Intn(10)))
		cycles := make([]float64, 1+r.Intn(4))
		for i := range cycles {
			cycles[i] = float64(1 + r.Intn(5))
		}
		pl, err := platform.Uniform(cycles, float64(1+r.Intn(3)))
		if err != nil {
			return false
		}
		for _, model := range sched.Models() {
			s, err := heuristics.HEFT(g, pl, model)
			if err != nil {
				return false
			}
			rp, err := Replay(g, pl, s, model)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := sched.Validate(g, pl, rp, model); err != nil {
				t.Logf("seed %d model %v: %v", seed, model, err)
				return false
			}
			for v := 0; v < g.NumNodes(); v++ {
				if rp.Tasks[v].Start > s.Tasks[v].Start+1e-9 {
					t.Logf("seed %d: task %d replayed later (%g > %g)",
						seed, v, rp.Tasks[v].Start, s.Tasks[v].Start)
					return false
				}
				if rp.Proc(v) != s.Proc(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayILHASchedules(t *testing.T) {
	g := testbeds.LU(8, 10)
	pl := platform.Paper()
	s, err := heuristics.ILHA(g, pl, sched.OnePort, heuristics.ILHAOptions{B: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(g, pl, s, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, pl, r, sched.OnePort); err != nil {
		t.Fatalf("replayed ILHA schedule invalid: %v", err)
	}
	if r.Makespan() > s.Makespan()+1e-9 {
		t.Errorf("replay makespan %g exceeds original %g", r.Makespan(), s.Makespan())
	}
}

func TestReplayRejectsIncompleteSchedule(t *testing.T) {
	g := testbeds.ForkJoin(3, 1)
	pl, _ := platform.Homogeneous(2)
	s := sched.NewSchedule(g.NumNodes(), 2) // nothing scheduled
	if _, err := Replay(g, pl, s, sched.OnePort); err == nil {
		t.Fatal("expected error for unscheduled tasks")
	}
	bad := sched.NewSchedule(1, 2)
	if _, err := Replay(g, pl, bad, sched.OnePort); err == nil {
		t.Fatal("expected error for wrong task count")
	}
}

func TestGanttRendering(t *testing.T) {
	g := testbeds.ForkJoin(4, 10)
	pl, err := platform.Uniform([]float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(g, pl, s, 60)
	if !strings.Contains(out, "P0 ") || !strings.Contains(out, "P1 ") {
		t.Errorf("Gantt missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Errorf("Gantt missing header:\n%s", out)
	}
	if s.CommCount() > 0 && !strings.Contains(out, "snd") {
		t.Errorf("Gantt missing port rows despite %d comms:\n%s", s.CommCount(), out)
	}
	// tiny width is clamped, not crashed
	_ = Gantt(g, pl, s, 1)
}

func TestTraceContainsAllEvents(t *testing.T) {
	g := testbeds.ForkJoin(3, 5)
	pl, _ := platform.Homogeneous(3)
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	tr := Trace(g, s)
	lines := strings.Count(tr, "\n")
	want := g.NumNodes() + s.CommCount() // single-hop comms
	if lines != want {
		t.Errorf("trace has %d lines, want %d:\n%s", lines, want, tr)
	}
	if !strings.Contains(tr, "exec") {
		t.Error("trace missing exec lines")
	}
	var _ *graph.Graph = g
}

func TestChromeTraceWellFormed(t *testing.T) {
	g := testbeds.ForkJoin(4, 10)
	pl := platform.Paper()
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ChromeTrace(g, s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	// 4 metadata events per processor + 1 per task + 2 per hop
	want := 4*pl.NumProcs() + g.NumNodes() + 2*s.CommCount()
	if len(decoded.TraceEvents) != want {
		t.Errorf("trace has %d events, want %d", len(decoded.TraceEvents), want)
	}
	var tasks, comms int
	for _, ev := range decoded.TraceEvents {
		switch ev["cat"] {
		case "task":
			tasks++
		case "comm":
			comms++
		}
		if ph, ok := ev["ph"].(string); ok && ph == "X" {
			if ev["dur"].(float64) < 0 {
				t.Error("negative duration event")
			}
		}
	}
	if tasks != g.NumNodes() {
		t.Errorf("task events = %d, want %d", tasks, g.NumNodes())
	}
	if comms != 2*s.CommCount() {
		t.Errorf("comm events = %d, want %d", comms, 2*s.CommCount())
	}
}

func TestSVGWellFormed(t *testing.T) {
	g := testbeds.ForkJoin(5, 10)
	pl := platform.Paper()
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	out := SVG(g, pl, s, 800)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an SVG document:\n%.200s", out)
	}
	// one rect per processor lane + one per task + two per hop, at least
	rects := strings.Count(out, "<rect")
	want := pl.NumProcs() + g.NumNodes() + 2*s.CommCount()
	if rects < want {
		t.Errorf("SVG has %d rects, want at least %d", rects, want)
	}
	if xml.Unmarshal([]byte(out), new(struct {
		XMLName xml.Name `xml:"svg"`
	})) != nil {
		t.Error("SVG does not parse as XML")
	}
	// tiny width is clamped
	_ = SVG(g, pl, s, 10)
}
