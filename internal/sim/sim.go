// Package sim replays and renders schedules.
//
// Replay is an independent discrete-event executor: it keeps only the
// *decisions* of a schedule — the task-to-processor allocation, the order of
// tasks on every processor, and the order of messages on every send and
// receive port — and re-derives every start time as early as possible under
// the one-port rules. Because the original schedule is one feasible
// realization of those decisions, the replayed times can never be later;
// the heuristics' tests use this as a cross-check (an incorrect timeline
// computation in a scheduler almost always shows up as a replay that
// finishes earlier or validates differently).
package sim

import (
	"fmt"
	"sort"
	"strings"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// event is one node of the replay DAG: a task execution or a single hop.
type event struct {
	dur   float64
	succs []int
	npred int
	start float64
}

// Replay re-executes the decisions of s and returns the ASAP schedule.
// The model governs whether port orders constrain the replay (OnePort) or
// only precedence does (MacroDataflow).
func Replay(g *graph.Graph, pl *platform.Platform, s *sched.Schedule, model sched.Model) (*sched.Schedule, error) {
	n := g.NumNodes()
	if len(s.Tasks) != n {
		return nil, fmt.Errorf("sim: schedule has %d tasks, graph has %d", len(s.Tasks), n)
	}
	// events 0..n-1 are tasks; hops come after
	events := make([]event, n, n+len(s.Comms))
	for v := 0; v < n; v++ {
		if !s.Tasks[v].Done {
			return nil, fmt.Errorf("sim: task %d not scheduled", v)
		}
		events[v] = event{dur: pl.ExecTime(g.Weight(v), s.Tasks[v].Proc)}
	}

	type hopRef struct {
		ev       int // event index
		from, to int // processors
		origin   float64
	}
	var hops []hopRef
	addEdge := func(from, to int) {
		events[from].succs = append(events[from].succs, to)
		events[to].npred++
	}

	// precedence chains through communications
	for ci := range s.Comms {
		c := &s.Comms[ci]
		prev := c.FromTask // producer task event
		for _, h := range c.Hops {
			ev := len(events)
			events = append(events, event{dur: h.Finish - h.Start})
			hops = append(hops, hopRef{ev: ev, from: h.FromProc, to: h.ToProc, origin: h.Start})
			addEdge(prev, ev)
			prev = ev
		}
		addEdge(prev, c.ToTask)
	}
	// same-processor precedence edges (no comm event exists for them)
	commSeen := make(map[[2]int]bool, len(s.Comms))
	for ci := range s.Comms {
		commSeen[[2]int{s.Comms[ci].FromTask, s.Comms[ci].ToTask}] = true
	}
	for _, e := range g.Edges() {
		if !commSeen[[2]int{e.From, e.To}] {
			addEdge(e.From, e.To)
		}
	}

	// compute resource orders: tasks per processor by original start
	byProc := make([][]int, pl.NumProcs())
	for v := 0; v < n; v++ {
		byProc[s.Tasks[v].Proc] = append(byProc[s.Tasks[v].Proc], v)
	}
	for _, tasks := range byProc {
		sort.Slice(tasks, func(i, j int) bool {
			a, b := &s.Tasks[tasks[i]], &s.Tasks[tasks[j]]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Task < b.Task
		})
		// zero-duration tasks don't occupy the processor; chaining them by
		// id could even contradict a same-instant precedence edge
		prev := -1
		for _, v := range tasks {
			if events[v].dur == 0 {
				continue
			}
			if prev >= 0 {
				addEdge(prev, v)
			}
			prev = v
		}
	}

	// communication resource orders, model dependent. Each resource is a
	// list of hop indices that must stay serialized in their original order.
	chain := func(order []int) {
		sort.Slice(order, func(i, j int) bool {
			a, b := hops[order[i]], hops[order[j]]
			if a.origin != b.origin {
				return a.origin < b.origin
			}
			return a.ev < b.ev
		})
		for i := 1; i < len(order); i++ {
			// zero-length hops don't occupy the resource
			if events[hops[order[i-1]].ev].dur == 0 || events[hops[order[i]].ev].dur == 0 {
				continue
			}
			addEdge(hops[order[i-1]].ev, hops[order[i]].ev)
		}
	}
	switch model {
	case sched.OnePort, sched.OnePortNoOverlap:
		sendOrder := make([][]int, pl.NumProcs()) // indices into hops
		recvOrder := make([][]int, pl.NumProcs())
		for hi := range hops {
			sendOrder[hops[hi].from] = append(sendOrder[hops[hi].from], hi)
			recvOrder[hops[hi].to] = append(recvOrder[hops[hi].to], hi)
		}
		for p := 0; p < pl.NumProcs(); p++ {
			chain(sendOrder[p])
			chain(recvOrder[p])
		}
	case sched.UniPort:
		portOrder := make([][]int, pl.NumProcs())
		for hi := range hops {
			portOrder[hops[hi].from] = append(portOrder[hops[hi].from], hi)
			portOrder[hops[hi].to] = append(portOrder[hops[hi].to], hi)
		}
		for p := 0; p < pl.NumProcs(); p++ {
			chain(portOrder[p])
		}
	case sched.LinkContention:
		wireOrder := make(map[[2]int][]int)
		for hi := range hops {
			a, b := hops[hi].from, hops[hi].to
			if a > b {
				a, b = b, a
			}
			wireOrder[[2]int{a, b}] = append(wireOrder[[2]int{a, b}], hi)
		}
		for _, order := range wireOrder {
			chain(order)
		}
	}
	if model == sched.OnePortNoOverlap {
		// communication also excludes computation: serialize each
		// processor's hops and task executions on one shared resource, in
		// original start order.
		type busy struct {
			ev     int
			origin float64
		}
		perProc := make([][]busy, pl.NumProcs())
		for v := 0; v < n; v++ {
			perProc[s.Tasks[v].Proc] = append(perProc[s.Tasks[v].Proc],
				busy{ev: v, origin: s.Tasks[v].Start})
		}
		for hi := range hops {
			h := hops[hi]
			perProc[h.from] = append(perProc[h.from], busy{ev: h.ev, origin: h.origin})
			perProc[h.to] = append(perProc[h.to], busy{ev: h.ev, origin: h.origin})
		}
		for p := range perProc {
			list := perProc[p]
			sort.Slice(list, func(i, j int) bool {
				if list[i].origin != list[j].origin {
					return list[i].origin < list[j].origin
				}
				return list[i].ev < list[j].ev
			})
			for i := 1; i < len(list); i++ {
				if events[list[i-1].ev].dur == 0 || events[list[i].ev].dur == 0 {
					continue
				}
				addEdge(list[i-1].ev, list[i].ev)
			}
		}
	}

	// Kahn ASAP pass
	queue := make([]int, 0, len(events))
	indeg := make([]int, len(events))
	for i := range events {
		indeg[i] = events[i].npred
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		end := events[i].start + events[i].dur
		for _, sc := range events[i].succs {
			if end > events[sc].start {
				events[sc].start = end
			}
			indeg[sc]--
			if indeg[sc] == 0 {
				queue = append(queue, sc)
			}
		}
	}
	if processed != len(events) {
		return nil, fmt.Errorf("sim: replay DAG has a cycle (inconsistent schedule orders)")
	}

	// assemble the replayed schedule
	out := sched.NewSchedule(n, pl.NumProcs())
	for v := 0; v < n; v++ {
		out.SetTask(v, s.Tasks[v].Proc, events[v].start, events[v].start+events[v].dur)
	}
	hi := 0
	for ci := range s.Comms {
		c := &s.Comms[ci]
		nc := sched.CommEvent{FromTask: c.FromTask, ToTask: c.ToTask, Data: c.Data}
		for range c.Hops {
			h := hops[hi]
			nc.Hops = append(nc.Hops, sched.Hop{
				FromProc: h.from, ToProc: h.to,
				Start: events[h.ev].start, Finish: events[h.ev].start + events[h.ev].dur,
			})
			hi++
		}
		out.AddComm(nc)
	}
	return out, nil
}

// Gantt renders an ASCII Gantt chart of the schedule: one row per processor
// scaled to width columns, each task block labelled where space permits.
// Rows for send/receive ports are added when the schedule has
// communications.
func Gantt(g *graph.Graph, pl *platform.Platform, s *sched.Schedule, width int) string {
	if width < 20 {
		width = 20
	}
	span := s.Makespan()
	if span == 0 {
		span = 1
	}
	col := func(t float64) int {
		c := int(t / span * float64(width))
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4g, %d comms, time scale: 1 col = %.4g\n",
		s.Makespan(), s.CommCount(), span/float64(width))
	for p := 0; p < pl.NumProcs(); p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for v := 0; v < g.NumNodes(); v++ {
			ev := &s.Tasks[v]
			if !ev.Done || ev.Proc != p {
				continue
			}
			lo, hi := col(ev.Start), col(ev.Finish)
			if hi == lo && hi < width {
				hi = lo + 1
			}
			label := g.Label(v)
			if label == "" {
				label = fmt.Sprintf("v%d", v)
			}
			for i := lo; i < hi && i < width; i++ {
				j := i - lo
				if j < len(label) {
					row[i] = label[j]
				} else {
					row[i] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, row)
	}
	if len(s.Comms) > 0 {
		for p := 0; p < pl.NumProcs(); p++ {
			srow := make([]byte, width)
			rrow := make([]byte, width)
			for i := range srow {
				srow[i], rrow[i] = '.', '.'
			}
			mark := func(row []byte, lo, hi int, ch byte) {
				if hi == lo && hi < width {
					hi = lo + 1
				}
				for i := lo; i < hi && i < width; i++ {
					row[i] = ch
				}
			}
			any := false
			for ci := range s.Comms {
				for _, h := range s.Comms[ci].Hops {
					if h.FromProc == p {
						mark(srow, col(h.Start), col(h.Finish), '>')
						any = true
					}
					if h.ToProc == p {
						mark(rrow, col(h.Start), col(h.Finish), '<')
						any = true
					}
				}
			}
			if any {
				fmt.Fprintf(&b, "P%-2d snd |%s|\n", p, srow)
				fmt.Fprintf(&b, "P%-2d rcv |%s|\n", p, rrow)
			}
		}
	}
	return b.String()
}

// Trace returns a human-readable event log of the schedule sorted by start
// time: task executions and communication hops.
func Trace(g *graph.Graph, s *sched.Schedule) string {
	type line struct {
		at   float64
		text string
	}
	var lines []line
	for v := 0; v < len(s.Tasks); v++ {
		ev := &s.Tasks[v]
		if !ev.Done {
			continue
		}
		label := g.Label(v)
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		lines = append(lines, line{ev.Start,
			fmt.Sprintf("%10.4g  exec %-12s on P%d until %.4g", ev.Start, label, ev.Proc, ev.Finish)})
	}
	for ci := range s.Comms {
		c := &s.Comms[ci]
		for _, h := range c.Hops {
			lines = append(lines, line{h.Start,
				fmt.Sprintf("%10.4g  comm v%d->v%d P%d=>P%d until %.4g (%.4g data)",
					h.Start, c.FromTask, c.ToTask, h.FromProc, h.ToProc, h.Finish, c.Data)})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at < lines[j].at })
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.text)
		b.WriteByte('\n')
	}
	return b.String()
}
