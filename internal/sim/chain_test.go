package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestCriticalChainOnChainGraph(t *testing.T) {
	// a pure chain scheduled on one processor: the critical chain is the
	// whole chain, with zero idle and zero communication.
	g := testbeds.RandomLayered(1, 5, 1, 3, 2) // width 1 = a chain
	pl := platform.Paper()
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := CriticalChain(g, s, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != g.NumNodes() {
		t.Fatalf("chain has %d links, want %d", len(chain), g.NumNodes())
	}
	for _, l := range chain {
		if l.IdleBefore != 0 {
			t.Errorf("unexpected idle %g before %s", l.IdleBefore, l.Desc)
		}
		if !strings.HasPrefix(l.Desc, "exec") {
			t.Errorf("unexpected non-exec link %q", l.Desc)
		}
	}
	// chain covers the whole makespan
	if chain[0].End != s.Makespan() {
		t.Errorf("chain ends at %g, makespan %g", chain[0].End, s.Makespan())
	}
	if chain[len(chain)-1].Start != 0 {
		t.Errorf("chain starts at %g, want 0", chain[len(chain)-1].Start)
	}
}

func TestCriticalChainIncludesComm(t *testing.T) {
	// Figure 1 fork under one-port: the last child's chain must pass
	// through a communication hop.
	g, err := testbeds.Fork(1, []float64{1, 1, 1, 1, 1, 1}, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Homogeneous(5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := CriticalChain(g, s, sched.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	rep := ChainReport(chain)
	if !strings.Contains(rep, "critical chain") {
		t.Errorf("report malformed:\n%s", rep)
	}
	// the one-port makespan-5 schedule ends with v6 on P0 after 4 local
	// tasks OR a remote child fed by a serialized message; either way the
	// chain must account for the full makespan
	if chain[0].End != s.Makespan() {
		t.Errorf("chain ends at %g, makespan %g", chain[0].End, s.Makespan())
	}
}

func TestPropertyCriticalChainContiguous(t *testing.T) {
	// invariants on random workloads: the chain ends at the makespan, every
	// link's binding predecessor finishes before the link starts, and
	// Start+IdleBefore reconstructs contiguity.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testbeds.RandomLayered(seed, 2+r.Intn(4), 1+r.Intn(5), 4, float64(1+r.Intn(8)))
		cycles := make([]float64, 1+r.Intn(4))
		for i := range cycles {
			cycles[i] = float64(1 + r.Intn(5))
		}
		pl, err := platform.Uniform(cycles, 1)
		if err != nil {
			return false
		}
		for _, model := range sched.Models() {
			s, err := heuristics.HEFT(g, pl, model)
			if err != nil {
				return false
			}
			chain, err := CriticalChain(g, s, model)
			if err != nil {
				t.Logf("seed %d %v: %v", seed, model, err)
				return false
			}
			if len(chain) == 0 || chain[0].End != s.Makespan() {
				t.Logf("seed %d %v: chain end %v vs makespan %g", seed, model, chain, s.Makespan())
				return false
			}
			for i := 1; i < len(chain); i++ {
				gap := chain[i-1].Start - chain[i].End
				if gap < -1e-9 {
					t.Logf("seed %d %v: link %d overlaps its predecessor", seed, model, i)
					return false
				}
				if diff := gap - chain[i-1].IdleBefore; diff > 1e-9 || diff < -1e-9 {
					t.Logf("seed %d %v: idle mismatch at %d: gap %g vs %g",
						seed, model, i, gap, chain[i-1].IdleBefore)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalChainRejectsIncomplete(t *testing.T) {
	g := testbeds.ForkJoin(3, 1)
	s := sched.NewSchedule(g.NumNodes(), 2)
	if _, err := CriticalChain(g, s, sched.OnePort); err == nil {
		t.Fatal("expected error")
	}
}
