package sim

import (
	"fmt"
	"strings"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// SVG renders the schedule as a self-contained SVG Gantt chart: one lane
// per processor with task blocks, and a thin sub-lane underneath for port
// activity (sends above, receives below). Suitable for embedding in reports
// without any external tooling.
func SVG(g *graph.Graph, pl *platform.Platform, s *sched.Schedule, width int) string {
	if width < 200 {
		width = 200
	}
	const (
		laneH   = 34.0 // task lane height
		portH   = 8.0  // port sub-lane height
		gapH    = 10.0
		leftPad = 52.0
		topPad  = 28.0
	)
	span := s.Makespan()
	if span <= 0 {
		span = 1
	}
	plotW := float64(width) - leftPad - 10
	x := func(t float64) float64 { return leftPad + t/span*plotW }
	laneY := func(p int) float64 { return topPad + float64(p)*(laneH+2*portH+gapH) }
	height := topPad + float64(pl.NumProcs())*(laneH+2*portH+gapH) + 24

	// a small qualitative palette cycled over tasks
	colors := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" font-family="monospace" font-size="10">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="16">makespan %.6g — %d comms</text>`+"\n", leftPad, s.Makespan(), s.CommCount())
	for p := 0; p < pl.NumProcs(); p++ {
		y := laneY(p)
		fmt.Fprintf(&b, `<text x="4" y="%.1f">P%d</text>`+"\n", y+laneH/2+3, p)
		fmt.Fprintf(&b, `<rect x="%g" y="%.1f" width="%.1f" height="%.1f" fill="#f4f4f4"/>`+"\n",
			leftPad, y, plotW, laneH)
	}
	for v := 0; v < g.NumNodes(); v++ {
		ev := &s.Tasks[v]
		if !ev.Done {
			continue
		}
		y := laneY(ev.Proc)
		w := x(ev.Finish) - x(ev.Start)
		if w < 1 {
			w = 1
		}
		label := g.Label(v)
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.5"><title>%s [%.6g,%.6g) on P%d</title></rect>`+"\n",
			x(ev.Start), y, w, laneH, colors[v%len(colors)], escape(label), ev.Start, ev.Finish, ev.Proc)
		if w > 24 {
			fmt.Fprintf(&b, `<text x="%.2f" y="%.1f" fill="#fff">%s</text>`+"\n",
				x(ev.Start)+2, y+laneH/2+3, escape(truncate(label, int(w/6))))
		}
	}
	for ci := range s.Comms {
		c := &s.Comms[ci]
		title := fmt.Sprintf("v%d-&gt;v%d (%.6g data)", c.FromTask, c.ToTask, c.Data)
		for _, h := range c.Hops {
			w := x(h.Finish) - x(h.Start)
			if w < 0.8 {
				w = 0.8
			}
			ys := laneY(h.FromProc) + laneH + 1
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="#c0392b"><title>send %s</title></rect>`+"\n",
				x(h.Start), ys, w, portH-2, title)
			yr := laneY(h.ToProc) + laneH + portH + 1
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="#2980b9"><title>recv %s</title></rect>`+"\n",
				x(h.Start), yr, w, portH-2, title)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func truncate(s string, n int) string {
	if n < 1 {
		n = 1
	}
	if len(s) <= n {
		return s
	}
	return s[:n]
}
