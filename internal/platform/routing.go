package platform

import (
	"fmt"
	"math"
)

// Static routing for sparse topologies (§4.3: "if there is no direct link
// from P2 to P1, we redo the previous step for all intermediate messages
// between adjacent processors"). Routes are shortest paths under the link
// cost metric, computed once with Floyd–Warshall; every processor's routing
// table is therefore fully static, as in the Sinnen–Sousa model the paper
// discusses.

// Routes holds the all-pairs static routing tables of a platform.
type Routes struct {
	next [][]int     // next[q][r]: first hop on the path q->r, -1 if unreachable
	dist [][]float64 // path cost under the link metric
}

// ComputeRoutes runs Floyd–Warshall over the link matrix and returns the
// routing tables. An error is returned if some processor pair is not
// connected even transitively.
func (pl *Platform) ComputeRoutes() (*Routes, error) {
	p := pl.NumProcs()
	dist := make([][]float64, p)
	next := make([][]int, p)
	for q := 0; q < p; q++ {
		dist[q] = make([]float64, p)
		next[q] = make([]int, p)
		for r := 0; r < p; r++ {
			dist[q][r] = pl.link[q][r]
			switch {
			case q == r:
				next[q][r] = q
			case !math.IsInf(pl.link[q][r], 1):
				next[q][r] = r
			default:
				next[q][r] = -1
			}
		}
	}
	for k := 0; k < p; k++ {
		for q := 0; q < p; q++ {
			for r := 0; r < p; r++ {
				if dist[q][k]+dist[k][r] < dist[q][r] {
					dist[q][r] = dist[q][k] + dist[k][r]
					next[q][r] = next[q][k]
				}
			}
		}
	}
	for q := 0; q < p; q++ {
		for r := 0; r < p; r++ {
			if next[q][r] == -1 {
				return nil, fmt.Errorf("platform: processors %d and %d are disconnected", q, r)
			}
		}
	}
	return &Routes{next: next, dist: dist}, nil
}

// Path returns the processor sequence from q to r, inclusive of both ends.
// For q == r it returns [q].
func (rt *Routes) Path(q, r int) []int {
	path := []int{q}
	for q != r {
		q = rt.next[q][r]
		path = append(path, q)
	}
	return path
}

// Dist returns the total per-data-item cost along the routed path q->r.
func (rt *Routes) Dist(q, r int) float64 { return rt.dist[q][r] }

// Hops returns the number of wires on the routed path q->r (0 when q == r).
func (rt *Routes) Hops(q, r int) int { return len(rt.Path(q, r)) - 1 }
