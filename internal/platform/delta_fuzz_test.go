package platform

import (
	"encoding/json"
	"testing"
)

// FuzzDeltaApply drives the platform delta decoder and Apply with
// arbitrary JSON: no input may panic, a failed delta returns no platform,
// a successful one returns a platform New accepted (so every invariant
// held), and the input platform is never mutated. Seeds mirror the
// adversarial suite: removing the last processor, out-of-range ids,
// negative and non-finite costs, null links, missing fields.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte(`[{"op":"add_proc","cycle":6,"link":1}]`))
	f.Add([]byte(`[{"op":"add_proc","cycle":6,"links":[1,null,2]}]`))
	f.Add([]byte(`[{"op":"remove_proc","proc":1}]`))
	f.Add([]byte(`[{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0},{"op":"remove_proc","proc":0}]`))
	f.Add([]byte(`[{"op":"set_cycle","proc":2,"cycle":10}]`))
	f.Add([]byte(`[{"op":"set_cycle","proc":-1,"cycle":10}]`))
	f.Add([]byte(`[{"op":"set_cycle","proc":0,"cycle":-3}]`))
	f.Add([]byte(`[{"op":"set_link","from":0,"to":2,"cost":2}]`))
	f.Add([]byte(`[{"op":"set_link","from":0,"to":2}]`)) // cut the wire
	f.Add([]byte(`[{"op":"set_link","from":0,"to":0,"cost":1}]`))
	f.Add([]byte(`[{"op":"set_link","from":99,"to":0,"cost":1}]`))
	f.Add([]byte(`[{"op":"add_proc"}]`))
	f.Add([]byte(`[{"op":"warp"}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if json.Unmarshal(data, &d) != nil {
			return
		}
		pl, err := Uniform([]float64{6, 6, 10}, 1)
		if err != nil {
			t.Fatal(err)
		}
		before, err := json.Marshal(pl)
		if err != nil {
			t.Fatal(err)
		}

		npl, aerr := d.Apply(pl)

		after, err := json.Marshal(pl)
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Fatalf("Apply mutated its input platform:\nbefore %s\nafter  %s", before, after)
		}
		if aerr != nil {
			if npl != nil {
				t.Fatalf("failed Apply returned a platform alongside error %v", aerr)
			}
			return
		}
		if npl == nil || npl.NumProcs() < 1 {
			t.Fatalf("successful Apply returned %v", npl)
		}
		// anything Apply accepts must round-trip through the strict codec
		out, err := json.Marshal(npl)
		if err != nil {
			t.Fatalf("accepted platform fails to marshal: %v", err)
		}
		var back Platform
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("accepted platform fails its own codec: %v", err)
		}
	})
}
