package platform

import (
	"fmt"
	"math"
)

// A Delta is an ordered list of platform mutations streamed by a scheduling
// session: processors joining or leaving, and speed or wire-cost changes.
// Because Platform is immutable, Apply builds a fresh Platform through New,
// which re-runs full validation — a malformed delta is an error, never a
// panic or a corrupt platform.
type Delta []DeltaOp

// DeltaOp is one platform mutation. Op selects the kind; numeric fields are
// pointers so a missing required field is rejected rather than read as zero.
//
//	{"op":"add_proc","cycle":6,"link":1}       new processor, uniform wires
//	{"op":"add_proc","cycle":6,"links":[1,null,2]}  explicit (nullable) wires
//	{"op":"remove_proc","proc":3}              drop a processor (ids renumber)
//	{"op":"set_cycle","proc":2,"cycle":10}     change a cycle-time
//	{"op":"set_link","from":0,"to":4,"cost":2} re-cost a wire (omit: cut it)
type DeltaOp struct {
	Op    string   `json:"op"`
	Proc  *int     `json:"proc,omitempty"`  // remove_proc, set_cycle
	Cycle *float64 `json:"cycle,omitempty"` // add_proc, set_cycle
	Link  *float64 `json:"link,omitempty"`  // add_proc: uniform wire cost
	Links []*jnum  `json:"links,omitempty"` // add_proc: explicit row, null = no wire
	From  *int     `json:"from,omitempty"`  // set_link
	To    *int     `json:"to,omitempty"`    // set_link
	// Cost is the new link(from,to) = link(to,from); JSON null or an absent
	// field cuts the wire (+Inf).
	Cost *float64 `json:"cost,omitempty"` // set_link
}

// Apply applies the delta to pl and returns a new validated Platform; pl is
// never mutated, so a failed delta leaves the session's platform untouched.
// Removing a processor renumbers the ones above it (ids stay dense), and
// removing the last processor is an error.
func (d Delta) Apply(pl *Platform) (*Platform, error) {
	if len(d) == 0 {
		return nil, fmt.Errorf("platform: empty delta")
	}
	cycles := append([]float64(nil), pl.cycle...)
	link := make([][]float64, len(pl.link))
	for q := range pl.link {
		link[q] = append([]float64(nil), pl.link[q]...)
	}
	for i, op := range d {
		var err error
		cycles, link, err = op.apply(cycles, link)
		if err != nil {
			return nil, fmt.Errorf("platform: delta op %d (%s): %w", i, op.Op, err)
		}
	}
	// New re-validates every entry, so value errors that slipped past the
	// per-op checks still cannot build a corrupt platform.
	return New(cycles, link)
}

func (op *DeltaOp) apply(cycles []float64, link [][]float64) ([]float64, [][]float64, error) {
	p := len(cycles)
	switch op.Op {
	case "add_proc":
		if op.Cycle == nil {
			return nil, nil, fmt.Errorf("missing cycle")
		}
		if c := *op.Cycle; c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, nil, fmt.Errorf("cycle-time %g must be positive and finite", c)
		}
		row := make([]float64, p+1) // row[p] = 0: own diagonal
		switch {
		case op.Links != nil:
			if op.Link != nil {
				return nil, nil, fmt.Errorf("both link and links given")
			}
			if len(op.Links) != p {
				return nil, nil, fmt.Errorf("links row has %d entries, want %d (one per existing processor)", len(op.Links), p)
			}
			for q, c := range op.Links {
				if c == nil {
					row[q] = math.Inf(1) // null: no wire to q
					continue
				}
				if v := float64(*c); v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, nil, fmt.Errorf("link to processor %d = %g must be positive or null", q, v)
				}
				row[q] = float64(*c)
			}
		case op.Link != nil:
			if c := *op.Link; c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, nil, fmt.Errorf("uniform link cost %g must be positive and finite", c)
			}
			for q := 0; q < p; q++ {
				row[q] = *op.Link
			}
		default:
			return nil, nil, fmt.Errorf("missing link or links")
		}
		// wires are applied symmetrically: existing rows gain column p
		for q := 0; q < p; q++ {
			link[q] = append(link[q], row[q])
		}
		return append(cycles, *op.Cycle), append(link, row), nil
	case "remove_proc":
		if op.Proc == nil {
			return nil, nil, fmt.Errorf("missing proc")
		}
		q := *op.Proc
		if q < 0 || q >= p {
			return nil, nil, fmt.Errorf("processor %d out of range [0,%d)", q, p)
		}
		if p == 1 {
			return nil, nil, fmt.Errorf("cannot remove the last processor")
		}
		cycles = append(cycles[:q], cycles[q+1:]...)
		link = append(link[:q], link[q+1:]...)
		for r := range link {
			link[r] = append(link[r][:q], link[r][q+1:]...)
		}
		return cycles, link, nil
	case "set_cycle":
		if op.Proc == nil || op.Cycle == nil {
			return nil, nil, fmt.Errorf("missing proc/cycle")
		}
		q := *op.Proc
		if q < 0 || q >= p {
			return nil, nil, fmt.Errorf("processor %d out of range [0,%d)", q, p)
		}
		if c := *op.Cycle; c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, nil, fmt.Errorf("cycle-time %g must be positive and finite", c)
		}
		cycles[q] = *op.Cycle
		return cycles, link, nil
	case "set_link":
		if op.From == nil || op.To == nil {
			return nil, nil, fmt.Errorf("missing from/to")
		}
		q, r := *op.From, *op.To
		if q < 0 || q >= p || r < 0 || r >= p {
			return nil, nil, fmt.Errorf("wire (%d,%d) out of range [0,%d)", q, r, p)
		}
		if q == r {
			return nil, nil, fmt.Errorf("cannot set the diagonal link(%d,%d)", q, r)
		}
		cost := math.Inf(1) // absent cost cuts the wire
		if op.Cost != nil {
			cost = *op.Cost
			if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, -1) {
				return nil, nil, fmt.Errorf("link cost %g must be positive (omit to cut the wire)", cost)
			}
		}
		link[q][r] = cost
		link[r][q] = cost
		return cycles, link, nil
	default:
		return nil, nil, fmt.Errorf("unknown op (known: add_proc, remove_proc, set_cycle, set_link)")
	}
}
