package platform

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name    string
		cycles  []float64
		link    [][]float64
		wantErr bool
	}{
		{"valid 2 procs", []float64{1, 2}, [][]float64{{0, 1}, {1, 0}}, false},
		{"no procs", nil, nil, true},
		{"zero cycle", []float64{0, 1}, [][]float64{{0, 1}, {1, 0}}, true},
		{"negative cycle", []float64{-1, 1}, [][]float64{{0, 1}, {1, 0}}, true},
		{"inf cycle", []float64{inf, 1}, [][]float64{{0, 1}, {1, 0}}, true},
		{"bad row count", []float64{1, 2}, [][]float64{{0, 1}}, true},
		{"bad col count", []float64{1, 2}, [][]float64{{0, 1}, {1}}, true},
		{"nonzero diagonal", []float64{1, 2}, [][]float64{{1, 1}, {1, 0}}, true},
		{"negative link", []float64{1, 2}, [][]float64{{0, -1}, {1, 0}}, true},
		{"zero off-diagonal link", []float64{1, 2}, [][]float64{{0, 0}, {1, 0}}, true},
		{"inf link ok (sparse)", []float64{1, 2}, [][]float64{{0, inf}, {1, 0}}, false},
	}
	for _, c := range cases {
		_, err := New(c.cycles, c.link)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestNewCopiesInputs(t *testing.T) {
	cycles := []float64{1, 2}
	link := [][]float64{{0, 3}, {3, 0}}
	pl, err := New(cycles, link)
	if err != nil {
		t.Fatal(err)
	}
	cycles[0] = 99
	link[0][1] = 99
	if pl.CycleTime(0) != 1 || pl.Link(0, 1) != 3 {
		t.Fatal("platform aliases caller slices")
	}
}

func TestUniformAndAccessors(t *testing.T) {
	pl, err := Uniform([]float64{2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", pl.NumProcs())
	}
	if pl.Link(0, 1) != 5 || pl.Link(1, 0) != 5 || pl.Link(0, 0) != 0 {
		t.Fatal("Uniform link matrix wrong")
	}
	if pl.ExecTime(3, 1) != 12 {
		t.Errorf("ExecTime = %g, want 12", pl.ExecTime(3, 1))
	}
	if pl.CommTime(3, 0, 1) != 15 {
		t.Errorf("CommTime = %g, want 15", pl.CommTime(3, 0, 1))
	}
	if pl.CommTime(3, 1, 1) != 0 {
		t.Errorf("intra-proc CommTime = %g, want 0", pl.CommTime(3, 1, 1))
	}
	if pl.Sparse() {
		t.Error("Uniform platform reported sparse")
	}
}

func TestHomogeneous(t *testing.T) {
	pl, err := Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if pl.CycleTime(i) != 1 {
			t.Fatalf("cycle %d = %g", i, pl.CycleTime(i))
		}
	}
	if pl.AvgExecFactor() != 1 || pl.AvgLinkFactor() != 1 {
		t.Errorf("factors = %g,%g want 1,1", pl.AvgExecFactor(), pl.AvgLinkFactor())
	}
}

func TestPaperPlatformNumbers(t *testing.T) {
	pl := Paper()
	if pl.NumProcs() != 10 {
		t.Fatalf("NumProcs = %d, want 10", pl.NumProcs())
	}
	// Σ 1/t = 5/6 + 3/10 + 2/15 = 0.8333... + 0.3 + 0.1333... = 38/30
	wantInv := 38.0 / 30.0
	if got := pl.InvSpeedSum(); math.Abs(got-wantInv) > 1e-12 {
		t.Errorf("InvSpeedSum = %g, want %g", got, wantInv)
	}
	// paper §5.2: speedup bound 228/30 = 7.6
	if got := pl.MaxSpeedup(); math.Abs(got-7.6) > 1e-12 {
		t.Errorf("MaxSpeedup = %g, want 7.6", got)
	}
	// paper §5.2: smallest perfectly balanced chunk B = 38
	b, err := pl.PerfectBalanceCount()
	if err != nil {
		t.Fatal(err)
	}
	if b != 38 {
		t.Errorf("PerfectBalanceCount = %d, want 38", b)
	}
	if pl.FastestProc() != 0 {
		t.Errorf("FastestProc = %d, want 0", pl.FastestProc())
	}
	if got := pl.SequentialTime(38); got != 228 {
		t.Errorf("SequentialTime(38) = %g, want 228", got)
	}
	// harmonic mean of cycle-times = 10/(38/30) = 300/38
	if got := pl.AvgExecFactor(); math.Abs(got-300.0/38.0) > 1e-12 {
		t.Errorf("AvgExecFactor = %g, want %g", got, 300.0/38.0)
	}
	// all links are 1 so the harmonic mean is 1
	if got := pl.AvgLinkFactor(); got != 1 {
		t.Errorf("AvgLinkFactor = %g, want 1", got)
	}
}

func TestPerfectBalanceCountNonInteger(t *testing.T) {
	pl, err := Uniform([]float64{1.5, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.PerfectBalanceCount(); err == nil {
		t.Fatal("expected error for non-integer cycle-times")
	}
}

func TestProcsBySpeedStable(t *testing.T) {
	pl, err := Uniform([]float64{10, 6, 15, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := pl.ProcsBySpeed()
	want := []int{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProcsBySpeed = %v, want %v", got, want)
		}
	}
}

func TestAvgLinkFactorHeterogeneousLinks(t *testing.T) {
	// links: (0,1)=1 (1,0)=1 (0,2)=2 (2,0)=2 (1,2)=4 (2,1)=4
	link := [][]float64{
		{0, 1, 2},
		{1, 0, 4},
		{2, 4, 0},
	}
	pl, err := New([]float64{1, 1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	// harmonic mean of {1,1,2,2,4,4} = 6 / (1+1+0.5+0.5+0.25+0.25) = 6/3.5
	want := 6.0 / 3.5
	if got := pl.AvgLinkFactor(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgLinkFactor = %g, want %g", got, want)
	}
}

func TestSingleProcessorFactors(t *testing.T) {
	pl, err := Uniform([]float64{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.AvgLinkFactor() != 0 {
		t.Errorf("AvgLinkFactor = %g, want 0 for single proc", pl.AvgLinkFactor())
	}
	if pl.AvgExecFactor() != 3 {
		t.Errorf("AvgExecFactor = %g, want 3", pl.AvgExecFactor())
	}
}

func TestRoutesFullyConnected(t *testing.T) {
	pl := Paper()
	rt, err := pl.ComputeRoutes()
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < pl.NumProcs(); q++ {
		for r := 0; r < pl.NumProcs(); r++ {
			path := rt.Path(q, r)
			if q == r {
				if len(path) != 1 {
					t.Fatalf("Path(%d,%d) = %v", q, r, path)
				}
				continue
			}
			if len(path) != 2 || rt.Hops(q, r) != 1 {
				t.Fatalf("Path(%d,%d) = %v, want direct", q, r, path)
			}
			if rt.Dist(q, r) != 1 {
				t.Fatalf("Dist(%d,%d) = %g, want 1", q, r, rt.Dist(q, r))
			}
		}
	}
}

func TestRoutesLineTopology(t *testing.T) {
	inf := math.Inf(1)
	// 0 -- 1 -- 2 line, each wire cost 2
	link := [][]float64{
		{0, 2, inf},
		{2, 0, 2},
		{inf, 2, 0},
	}
	pl, err := New([]float64{1, 1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Sparse() {
		t.Fatal("line topology should be sparse")
	}
	rt, err := pl.ComputeRoutes()
	if err != nil {
		t.Fatal(err)
	}
	path := rt.Path(0, 2)
	want := []int{0, 1, 2}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("Path(0,2) = %v, want %v", path, want)
	}
	if rt.Dist(0, 2) != 4 {
		t.Errorf("Dist(0,2) = %g, want 4", rt.Dist(0, 2))
	}
	if rt.Hops(0, 2) != 2 {
		t.Errorf("Hops(0,2) = %d, want 2", rt.Hops(0, 2))
	}
}

func TestRoutesDisconnected(t *testing.T) {
	inf := math.Inf(1)
	link := [][]float64{
		{0, inf},
		{inf, 0},
	}
	pl, err := New([]float64{1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ComputeRoutes(); err == nil {
		t.Fatal("expected error for disconnected platform")
	}
}

func TestRoutesPreferCheaperIndirectPath(t *testing.T) {
	// direct wire 0->2 costs 10, but 0->1->2 costs 2: routing should take it.
	link := [][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	}
	pl, err := New([]float64{1, 1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pl.ComputeRoutes()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Dist(0, 2) != 2 {
		t.Errorf("Dist(0,2) = %g, want 2", rt.Dist(0, 2))
	}
	if rt.Hops(0, 2) != 2 {
		t.Errorf("Hops(0,2) = %d, want 2 (via proc 1)", rt.Hops(0, 2))
	}
}
