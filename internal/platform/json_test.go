package platform

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// samePlatform compares every observable of two platforms.
func samePlatform(t *testing.T, a, b *Platform) {
	t.Helper()
	if a.NumProcs() != b.NumProcs() {
		t.Fatalf("procs: %d vs %d", a.NumProcs(), b.NumProcs())
	}
	if a.Sparse() != b.Sparse() {
		t.Fatalf("sparse: %v vs %v", a.Sparse(), b.Sparse())
	}
	for i := 0; i < a.NumProcs(); i++ {
		if a.CycleTime(i) != b.CycleTime(i) {
			t.Fatalf("cycle %d: %g vs %g", i, a.CycleTime(i), b.CycleTime(i))
		}
		for j := 0; j < a.NumProcs(); j++ {
			if a.Link(i, j) != b.Link(i, j) {
				t.Fatalf("link(%d,%d): %g vs %g", i, j, a.Link(i, j), b.Link(i, j))
			}
		}
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	pl := Paper()
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	var back Platform
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	samePlatform(t, pl, &back)
}

func TestPlatformJSONRoundTripSparse(t *testing.T) {
	// ring of 4: only neighbours are wired; routing must still work after
	// the round trip
	inf := math.Inf(1)
	link := [][]float64{
		{0, 1, inf, 1},
		{1, 0, 1, inf},
		{inf, 1, 0, 1},
		{1, inf, 1, 0},
	}
	pl, err := New([]float64{1, 2, 3, 4}, link)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "null") {
		t.Fatalf("sparse encoding should carry null wires: %s", data)
	}
	var back Platform
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	samePlatform(t, pl, &back)
	if !back.Sparse() {
		t.Fatal("round-tripped platform lost sparsity")
	}
	rtA, err := pl.ComputeRoutes()
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := back.ComputeRoutes()
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		for r := 0; r < 4; r++ {
			if rtA.Dist(q, r) != rtB.Dist(q, r) || rtA.Hops(q, r) != rtB.Hops(q, r) {
				t.Fatalf("route %d->%d differs after round trip", q, r)
			}
		}
	}
}

func TestPlatformJSONUniformShorthand(t *testing.T) {
	var pl Platform
	if err := json.Unmarshal([]byte(`{"cycles":[6,10,15],"uniform_link":2}`), &pl); err != nil {
		t.Fatal(err)
	}
	want, err := Uniform([]float64{6, 10, 15}, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePlatform(t, want, &pl)

	// no uniform_link: unit links
	var unit Platform
	if err := json.Unmarshal([]byte(`{"cycles":[1,1]}`), &unit); err != nil {
		t.Fatal(err)
	}
	if unit.Link(0, 1) != 1 {
		t.Fatalf("default uniform link = %g, want 1", unit.Link(0, 1))
	}
}

func TestPlatformJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no processors", `{"cycles":[]}`},
		{"negative cycle", `{"cycles":[1,-2]}`},
		{"zero cycle", `{"cycles":[0],"link":[[0]]}`},
		{"ragged link", `{"cycles":[1,1],"link":[[0,1],[1]]}`},
		{"short link", `{"cycles":[1,1],"link":[[0,1]]}`},
		{"diag nonzero", `{"cycles":[1,1],"link":[[1,1],[1,0]]}`},
		{"negative link", `{"cycles":[1,1],"link":[[0,-1],[1,0]]}`},
		{"both link forms", `{"cycles":[1,1],"uniform_link":1,"link":[[0,1],[1,0]]}`},
		{"not json", `{"cycles":`},
	}
	for _, c := range cases {
		var pl Platform
		if err := json.Unmarshal([]byte(c.in), &pl); err == nil {
			t.Errorf("%s: want error, got platform with %d procs", c.name, pl.NumProcs())
		}
	}
}
