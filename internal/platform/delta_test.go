package platform

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func pf(v float64) *float64 { return &v }
func pi(v int) *int         { return &v }

func TestPlatformDeltaApply(t *testing.T) {
	pl, err := Uniform([]float64{2, 4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{
		{Op: "add_proc", Cycle: pf(6), Link: pf(3)},
		{Op: "set_cycle", Proc: pi(1), Cycle: pf(5)},
		{Op: "set_link", From: pi(0), To: pi(2), Cost: pf(9)},
	}
	np, err := d.Apply(pl)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if np.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d, want 4", np.NumProcs())
	}
	if np.CycleTime(3) != 6 || np.CycleTime(1) != 5 {
		t.Errorf("cycles = %v, want t_3=6 t_1=5", np.CycleTimes())
	}
	// add_proc wires are symmetric, set_link applies both directions
	if np.Link(3, 0) != 3 || np.Link(0, 3) != 3 {
		t.Errorf("new proc wires = %g/%g, want 3/3", np.Link(3, 0), np.Link(0, 3))
	}
	if np.Link(0, 2) != 9 || np.Link(2, 0) != 9 {
		t.Errorf("link(0,2) = %g/%g, want 9/9", np.Link(0, 2), np.Link(2, 0))
	}
	if np.Link(1, 2) != 1 {
		t.Errorf("untouched link(1,2) = %g, want 1", np.Link(1, 2))
	}
	// the source platform must be untouched
	if pl.NumProcs() != 3 || pl.CycleTime(1) != 4 || pl.Link(0, 2) != 1 {
		t.Errorf("source platform mutated")
	}
}

func TestPlatformDeltaRemoveAndSparse(t *testing.T) {
	pl, err := Uniform([]float64{2, 4, 8, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	np, err := Delta{{Op: "remove_proc", Proc: pi(1)}}.Apply(pl)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if np.NumProcs() != 3 {
		t.Fatalf("NumProcs = %d, want 3", np.NumProcs())
	}
	// ids renumber densely: old 2,3 become 1,2
	want := []float64{2, 8, 16}
	for i, c := range np.CycleTimes() {
		if c != want[i] {
			t.Errorf("cycle[%d] = %g, want %g", i, c, want[i])
		}
	}
	// cutting a wire (omitted cost) flips the platform sparse
	np2, err := Delta{{Op: "set_link", From: pi(0), To: pi(2)}}.Apply(np)
	if err != nil {
		t.Fatalf("cut wire: %v", err)
	}
	if !np2.Sparse() || !math.IsInf(np2.Link(0, 2), 1) || !math.IsInf(np2.Link(2, 0), 1) {
		t.Errorf("cut wire: sparse=%v link=%g/%g", np2.Sparse(), np2.Link(0, 2), np2.Link(2, 0))
	}
	// and an explicit nullable add_proc row keeps nulls as missing wires
	var d Delta
	body := `[{"op":"add_proc","cycle":3,"links":[1,null,2]}]`
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	np3, err := d.Apply(np)
	if err != nil {
		t.Fatalf("add_proc links: %v", err)
	}
	if !math.IsInf(np3.Link(3, 1), 1) || !math.IsInf(np3.Link(1, 3), 1) {
		t.Errorf("null wire not +Inf both ways: %g/%g", np3.Link(3, 1), np3.Link(1, 3))
	}
	if np3.Link(3, 2) != 2 || np3.Link(2, 3) != 2 {
		t.Errorf("explicit wire = %g/%g, want 2/2", np3.Link(3, 2), np3.Link(2, 3))
	}
}

func TestPlatformDeltaErrors(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"empty", Delta{}, "empty delta"},
		{"unknown op", Delta{{Op: "reboot"}}, "unknown op"},
		{"remove unknown", Delta{{Op: "remove_proc", Proc: pi(7)}}, "out of range"},
		{"remove missing proc", Delta{{Op: "remove_proc"}}, "missing proc"},
		{"set_cycle unknown", Delta{{Op: "set_cycle", Proc: pi(-1), Cycle: pf(1)}}, "out of range"},
		{"set_cycle zero", Delta{{Op: "set_cycle", Proc: pi(0), Cycle: pf(0)}}, "positive and finite"},
		{"set_link diagonal", Delta{{Op: "set_link", From: pi(1), To: pi(1), Cost: pf(1)}}, "diagonal"},
		{"set_link unknown", Delta{{Op: "set_link", From: pi(0), To: pi(9), Cost: pf(1)}}, "out of range"},
		{"set_link negative", Delta{{Op: "set_link", From: pi(0), To: pi(1), Cost: pf(-1)}}, "positive"},
		{"add_proc no wires", Delta{{Op: "add_proc", Cycle: pf(1)}}, "missing link"},
		{"add_proc both wires", Delta{{Op: "add_proc", Cycle: pf(1), Link: pf(1), Links: []*jnum{}}}, "both link and links"},
		{"add_proc short row", Delta{{Op: "add_proc", Cycle: pf(1), Links: []*jnum{}}}, "want 2"},
		{"add_proc bad cycle", Delta{{Op: "add_proc", Cycle: pf(math.NaN()), Link: pf(1)}}, "positive and finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := Uniform([]float64{2, 4}, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tc.d.Apply(pl); err == nil {
				t.Fatalf("Apply succeeded, want error containing %q", tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply error %q, want substring %q", err, tc.want)
			}
			if pl.NumProcs() != 2 || pl.CycleTime(0) != 2 {
				t.Errorf("failed delta mutated the platform")
			}
		})
	}
	// removing the last processor is a distinct error
	one, err := Uniform([]float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Delta{{Op: "remove_proc", Proc: pi(0)}}).Apply(one); err == nil ||
		!strings.Contains(err.Error(), "last processor") {
		t.Errorf("remove last: got %v", err)
	}
}
