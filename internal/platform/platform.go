// Package platform models the target computing resources of the paper:
// a set P of p processors with cycle-times t_i (inverse relative speeds) and
// a communication matrix link(q,r) giving the time to move one data item
// from P_q to P_r. The main diagonal is zero (intra-processor transfers are
// free) and, unless a sparse topology is configured, all off-diagonal
// entries are finite.
//
// A Platform is immutable after construction; all scheduling code shares a
// single instance.
package platform

import (
	"fmt"
	"math"
	"sort"
)

// Platform describes the processors and interconnect.
type Platform struct {
	cycle  []float64   // cycle-time t_i per processor
	link   [][]float64 // link(q,r); 0 on the diagonal; +Inf if no direct wire
	sparse bool        // true if any off-diagonal entry is +Inf
}

// New builds a platform from explicit cycle-times and a full link matrix.
// It validates shapes and entries: cycle-times must be positive, the
// diagonal must be zero, and off-diagonal entries must be positive or +Inf
// (missing wire).
func New(cycleTimes []float64, link [][]float64) (*Platform, error) {
	p := len(cycleTimes)
	if p == 0 {
		return nil, fmt.Errorf("platform: no processors")
	}
	for i, t := range cycleTimes {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("platform: cycle-time t_%d = %g must be positive and finite", i, t)
		}
	}
	if len(link) != p {
		return nil, fmt.Errorf("platform: link matrix has %d rows, want %d", len(link), p)
	}
	sparse := false
	for q := range link {
		if len(link[q]) != p {
			return nil, fmt.Errorf("platform: link row %d has %d entries, want %d", q, len(link[q]), p)
		}
		for r, c := range link[q] {
			switch {
			case q == r:
				if c != 0 {
					return nil, fmt.Errorf("platform: link(%d,%d) = %g, diagonal must be 0", q, r, c)
				}
			case math.IsInf(c, 1):
				sparse = true
			case c <= 0 || math.IsNaN(c):
				return nil, fmt.Errorf("platform: link(%d,%d) = %g must be positive or +Inf", q, r, c)
			}
		}
	}
	pl := &Platform{
		cycle:  append([]float64(nil), cycleTimes...),
		link:   make([][]float64, p),
		sparse: sparse,
	}
	for q := range link {
		pl.link[q] = append([]float64(nil), link[q]...)
	}
	return pl, nil
}

// Uniform builds a fully-connected platform with the given cycle-times and a
// single link cost for every processor pair. This is the configuration of
// all the paper's experiments (link(q,r) = 1 for q != r).
func Uniform(cycleTimes []float64, linkCost float64) (*Platform, error) {
	p := len(cycleTimes)
	link := make([][]float64, p)
	for q := range link {
		link[q] = make([]float64, p)
		for r := range link[q] {
			if q != r {
				link[q][r] = linkCost
			}
		}
	}
	return New(cycleTimes, link)
}

// Homogeneous builds p identical unit-speed processors with unit link cost,
// the setting of the complexity proofs.
func Homogeneous(p int) (*Platform, error) {
	cycles := make([]float64, p)
	for i := range cycles {
		cycles[i] = 1
	}
	return Uniform(cycles, 1)
}

// Paper returns the 10-processor platform of the paper's evaluation:
// five processors with cycle-time 6, three with cycle-time 10, and two with
// cycle-time 15, fully connected with unit links.
func Paper() *Platform {
	pl, err := Uniform([]float64{6, 6, 6, 6, 6, 10, 10, 10, 15, 15}, 1)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return pl
}

// NumProcs returns p, the number of processors.
func (pl *Platform) NumProcs() int { return len(pl.cycle) }

// CycleTime returns t_i.
func (pl *Platform) CycleTime(i int) float64 { return pl.cycle[i] }

// CycleTimes returns a copy of all cycle-times.
func (pl *Platform) CycleTimes() []float64 { return append([]float64(nil), pl.cycle...) }

// Link returns link(q,r): the per-data-item transfer time, 0 when q == r and
// +Inf when there is no direct wire.
func (pl *Platform) Link(q, r int) float64 { return pl.link[q][r] }

// Sparse reports whether some processor pair lacks a direct wire, in which
// case communications must be routed (see Routes).
func (pl *Platform) Sparse() bool { return pl.sparse }

// ExecTime returns the time to execute a task of weight w on processor i:
// w * t_i.
func (pl *Platform) ExecTime(w float64, i int) float64 { return w * pl.cycle[i] }

// CommTime returns the time to move data items over the direct wire from q
// to r: data * link(q,r). It is zero when q == r and +Inf when the wire is
// missing.
func (pl *Platform) CommTime(data float64, q, r int) float64 {
	if q == r {
		return 0
	}
	return data * pl.link[q][r]
}

// FastestProc returns the index of a processor with minimum cycle-time
// (lowest index on ties) — the reference processor for sequential times.
func (pl *Platform) FastestProc() int {
	best := 0
	for i, t := range pl.cycle {
		if t < pl.cycle[best] {
			best = i
		}
	}
	return best
}

// SequentialTime returns the time to run total weight w on a fastest
// processor: w * min_i t_i. Figures 7-12 normalise by this quantity.
func (pl *Platform) SequentialTime(w float64) float64 {
	return w * pl.cycle[pl.FastestProc()]
}

// InvSpeedSum returns Σ 1/t_i, the aggregate speed of the platform.
func (pl *Platform) InvSpeedSum() float64 {
	var s float64
	for _, t := range pl.cycle {
		s += 1 / t
	}
	return s
}

// AvgExecFactor returns the harmonic mean of the cycle-times,
// p / Σ(1/t_i): the paper's scaling factor for task weights when computing
// bottom levels on a heterogeneous platform (§4.1).
func (pl *Platform) AvgExecFactor() float64 {
	return float64(len(pl.cycle)) / pl.InvSpeedSum()
}

// AvgLinkFactor returns the harmonic mean of the finite off-diagonal link
// entries — the paper's scaling factor for communication volumes in bottom
// levels ("replace link(q,r) by the inverse of the harmonic mean" of the
// bandwidths). For a single processor it returns 0 (no communication ever).
func (pl *Platform) AvgLinkFactor() float64 {
	var invSum float64
	var count int
	for q := range pl.link {
		for r, c := range pl.link[q] {
			if q == r || math.IsInf(c, 1) {
				continue
			}
			invSum += 1 / c
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(count) / invSum
}

// MaxSpeedup returns the paper's §5.2 upper bound on achievable speedup for
// a large pool of equal-size tasks: with B tasks distributed perfectly
// (B = lcm-based perfect-balance count), the parallel time per round is
// B / Σ(1/t_i) and the sequential time is B * min t_i, so the bound is
// min_i t_i * Σ_i 1/t_i. For the paper platform this is 7.6.
func (pl *Platform) MaxSpeedup() float64 {
	return pl.cycle[pl.FastestProc()] * pl.InvSpeedSum()
}

// PerfectBalanceCount returns the smallest number of equal-size tasks that
// can be distributed with perfectly equal finish times:
// lcm(t_1..t_p) * Σ 1/t_i, defined when the cycle-times are integers.
// For the paper platform this is 38 (the default ILHA chunk size B).
// It returns an error when a cycle-time is not a positive integer.
func (pl *Platform) PerfectBalanceCount() (int, error) {
	l := 1
	for _, t := range pl.cycle {
		it := int(t)
		if float64(it) != t || it <= 0 {
			return 0, fmt.Errorf("platform: PerfectBalanceCount needs integer cycle-times, got %g", t)
		}
		l = lcm(l, it)
	}
	sum := 0
	for _, t := range pl.cycle {
		sum += l / int(t)
	}
	return sum, nil
}

// ProcsBySpeed returns processor indices sorted fastest first (stable on
// ties, so equal-speed processors keep their index order).
func (pl *Platform) ProcsBySpeed() []int {
	idx := make([]int, len(pl.cycle))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pl.cycle[idx[a]] < pl.cycle[idx[b]] })
	return idx
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
