package platform

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonPlatform is the wire representation used by MarshalJSON/UnmarshalJSON.
// Missing wires (link(q,r) = +Inf on a sparse topology) are encoded as JSON
// null, since JSON has no literal for infinity.
type jsonPlatform struct {
	Cycles []float64 `json:"cycles"`
	Link   [][]*jnum `json:"link,omitempty"`
	// UniformLink is a shorthand accepted on input: when Link is absent, the
	// platform is fully connected with this single off-diagonal cost.
	UniformLink *float64 `json:"uniform_link,omitempty"`
}

// jnum is a float64 whose JSON null means +Inf (no direct wire).
type jnum float64

func (n jnum) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(n))
}

// MarshalJSON encodes the platform as
// {"cycles":[...],"link":[[...]]}, with null entries for missing wires.
// The encoding round-trips through UnmarshalJSON, sparse topologies
// included.
func (pl *Platform) MarshalJSON() ([]byte, error) {
	jp := jsonPlatform{
		Cycles: append([]float64(nil), pl.cycle...),
		Link:   make([][]*jnum, len(pl.link)),
	}
	for q := range pl.link {
		row := make([]*jnum, len(pl.link[q]))
		for r, c := range pl.link[q] {
			if !math.IsInf(c, 1) {
				v := jnum(c)
				row[r] = &v
			}
		}
		jp.Link[q] = row
	}
	return json.Marshal(jp)
}

// UnmarshalJSON decodes a platform previously produced by MarshalJSON, or
// the {"cycles":[...],"uniform_link":c} shorthand for fully-connected
// platforms. It runs the same validation as New, so malformed payloads
// (non-positive cycle-times, ragged matrices, negative links, non-zero
// diagonals) fail with errors rather than building a corrupt platform.
func (pl *Platform) UnmarshalJSON(data []byte) error {
	var jp jsonPlatform
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	if jp.Link == nil {
		cost := 1.0
		if jp.UniformLink != nil {
			cost = *jp.UniformLink
		}
		built, err := Uniform(jp.Cycles, cost)
		if err != nil {
			return err
		}
		*pl = *built
		return nil
	}
	if jp.UniformLink != nil {
		return fmt.Errorf("platform: JSON carries both link and uniform_link")
	}
	link := make([][]float64, len(jp.Link))
	for q := range jp.Link {
		link[q] = make([]float64, len(jp.Link[q]))
		for r, c := range jp.Link[q] {
			if c == nil {
				link[q][r] = math.Inf(1)
			} else {
				link[q][r] = float64(*c)
			}
		}
	}
	built, err := New(jp.Cycles, link)
	if err != nil {
		return err
	}
	*pl = *built
	return nil
}
