package sched

import (
	"strings"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
)

// multiWireViolation builds a schedule that is valid under MacroDataflow
// but violates LinkContention on TWO distinct wires — (0,1) and (2,3) —
// each carrying a pair of overlapping messages. With more than one
// violating wire, WHICH one Validate reports is only well-defined if the
// wires are checked in a deterministic order.
func multiWireViolation(t *testing.T) (*graph.Graph, *platform.Platform, *Schedule) {
	t.Helper()
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddNode(1, "")
	}
	// two independent producer/consumer pairs per wire
	g.MustEdge(0, 2, 1) // proc 0 -> proc 1
	g.MustEdge(1, 3, 1) // proc 0 -> proc 1
	g.MustEdge(4, 6, 1) // proc 2 -> proc 3
	g.MustEdge(5, 7, 1) // proc 2 -> proc 3
	pl, err := platform.Uniform([]float64{1, 1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSchedule(8, 4)
	// producers on proc 0 and proc 2, back to back
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 0, 1, 2)
	s.SetTask(4, 2, 0, 1)
	s.SetTask(5, 2, 1, 2)
	// consumers on proc 1 and proc 3, after their comms land
	s.SetTask(2, 1, 2.5, 3.5)
	s.SetTask(3, 1, 3.5, 4.5)
	s.SetTask(6, 3, 2.5, 3.5)
	s.SetTask(7, 3, 3.5, 4.5)
	// each wire carries two messages overlapping on [2,2.5)
	s.AddComm(CommEvent{FromTask: 0, ToTask: 2, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1.5, Finish: 2.5}}})
	s.AddComm(CommEvent{FromTask: 1, ToTask: 3, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 2, Finish: 3}}})
	s.AddComm(CommEvent{FromTask: 4, ToTask: 6, Data: 1,
		Hops: []Hop{{FromProc: 2, ToProc: 3, Start: 1.5, Finish: 2.5}}})
	s.AddComm(CommEvent{FromTask: 5, ToTask: 7, Data: 1,
		Hops: []Hop{{FromProc: 2, ToProc: 3, Start: 2, Finish: 3}}})
	return g, pl, s
}

// TestLinkContentionErrorDeterministic pins that the validation error for
// a schedule violating link contention on several wires is the same on
// every call, and names the lowest wire. The error string flows into the
// service's HTTP response, so two replicas validating the same request
// must produce byte-identical errors; iterating the wire map directly
// made the reported wire flap with Go's map iteration randomization.
func TestLinkContentionErrorDeterministic(t *testing.T) {
	g, pl, s := multiWireViolation(t)

	// sanity: only the port rule is violated
	if err := Validate(g, pl, s, MacroDataflow); err != nil {
		t.Fatalf("fixture invalid under MacroDataflow: %v", err)
	}

	first := Validate(g, pl, s, LinkContention)
	if first == nil {
		t.Fatal("multi-wire violation not detected under LinkContention")
	}
	if !strings.Contains(first.Error(), "wire 0<->1") {
		t.Fatalf("error does not name the lowest violating wire: %v", first)
	}
	for i := 0; i < 60; i++ {
		err := Validate(g, pl, s, LinkContention)
		if err == nil {
			t.Fatal("violation not detected on repeat call")
		}
		if err.Error() != first.Error() {
			t.Fatalf("validation error flapped between runs:\nfirst: %v\n got:  %v", first, err)
		}
	}
}
