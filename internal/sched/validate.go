package sched

import (
	"fmt"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
)

// Validate checks a complete schedule of g on pl against the given model.
// It verifies, in order:
//
//  1. every task is scheduled exactly once on a real processor with
//     Finish = Start + w(v)*t_proc;
//  2. no two tasks overlap on the same processor;
//  3. every precedence edge is satisfied: same-processor edges by simple
//     ordering, cross-processor edges through a communication event whose
//     hop chain starts at the producer's processor after the producer
//     finishes, ends at the consumer's processor before the consumer
//     starts, and whose every hop lasts exactly data*link(from,to);
//  4. under OnePort, that every processor's sends are pairwise disjoint in
//     time and every processor's receives are pairwise disjoint in time.
//
// Under MacroDataflow step 4 is skipped: ports are unlimited.
func Validate(g *graph.Graph, pl *platform.Platform, s *Schedule, model Model) error {
	n := g.NumNodes()
	if len(s.Tasks) != n {
		return fmt.Errorf("sched: schedule has %d tasks, graph has %d", len(s.Tasks), n)
	}
	if s.Procs != pl.NumProcs() {
		return fmt.Errorf("sched: schedule built for %d procs, platform has %d", s.Procs, pl.NumProcs())
	}

	// 1. individual task events
	for v := 0; v < n; v++ {
		ev := &s.Tasks[v]
		if !ev.Done {
			return fmt.Errorf("sched: task %d not scheduled", v)
		}
		if ev.Proc < 0 || ev.Proc >= pl.NumProcs() {
			return fmt.Errorf("sched: task %d on invalid processor %d", v, ev.Proc)
		}
		if ev.Start < 0 {
			return fmt.Errorf("sched: task %d starts at negative time %g", v, ev.Start)
		}
		want := pl.ExecTime(g.Weight(v), ev.Proc)
		if !almostEQ(ev.Finish-ev.Start, want) {
			return fmt.Errorf("sched: task %d duration %g, want w*t = %g", v, ev.Finish-ev.Start, want)
		}
	}

	// 2. compute exclusivity per processor
	byProc := make([][]*TaskEvent, pl.NumProcs())
	for v := 0; v < n; v++ {
		ev := &s.Tasks[v]
		byProc[ev.Proc] = append(byProc[ev.Proc], ev)
	}
	for p, evs := range byProc {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		prev := -1
		for i := range evs {
			if evs[i].Finish == evs[i].Start {
				continue // zero-duration tasks never occupy the processor
			}
			if prev >= 0 && !almostLE(evs[prev].Finish, evs[i].Start) {
				return fmt.Errorf("sched: tasks %d and %d overlap on processor %d ([%g,%g) vs [%g,%g))",
					evs[prev].Task, evs[i].Task, p,
					evs[prev].Start, evs[prev].Finish, evs[i].Start, evs[i].Finish)
			}
			prev = i
		}
	}

	// index communications by edge
	type edgeKey struct{ u, v int }
	commFor := make(map[edgeKey]*CommEvent, len(s.Comms))
	for i := range s.Comms {
		c := &s.Comms[i]
		k := edgeKey{c.FromTask, c.ToTask}
		if _, dup := commFor[k]; dup {
			return fmt.Errorf("sched: duplicate communication for edge (%d,%d)", c.FromTask, c.ToTask)
		}
		if _, ok := g.EdgeData(c.FromTask, c.ToTask); !ok {
			return fmt.Errorf("sched: communication for non-edge (%d,%d)", c.FromTask, c.ToTask)
		}
		if len(c.Hops) == 0 {
			return fmt.Errorf("sched: communication for edge (%d,%d) has no hops", c.FromTask, c.ToTask)
		}
		commFor[k] = c
	}

	// 3. precedence constraints
	for _, e := range g.Edges() {
		pu, pv := s.Tasks[e.From], s.Tasks[e.To]
		if pu.Proc == pv.Proc {
			if !almostLE(pu.Finish, pv.Start) {
				return fmt.Errorf("sched: edge (%d,%d) violated on processor %d: %g > %g",
					e.From, e.To, pu.Proc, pu.Finish, pv.Start)
			}
			if _, has := commFor[edgeKey{e.From, e.To}]; has {
				return fmt.Errorf("sched: same-processor edge (%d,%d) has a communication event", e.From, e.To)
			}
			continue
		}
		c, ok := commFor[edgeKey{e.From, e.To}]
		if !ok {
			return fmt.Errorf("sched: cross-processor edge (%d,%d) has no communication event", e.From, e.To)
		}
		if !almostEQ(c.Data, e.Data) {
			return fmt.Errorf("sched: edge (%d,%d) comm data %g, want %g", e.From, e.To, c.Data, e.Data)
		}
		if c.Hops[0].FromProc != pu.Proc {
			return fmt.Errorf("sched: edge (%d,%d) first hop leaves %d, producer on %d",
				e.From, e.To, c.Hops[0].FromProc, pu.Proc)
		}
		if last := c.Hops[len(c.Hops)-1]; last.ToProc != pv.Proc {
			return fmt.Errorf("sched: edge (%d,%d) last hop reaches %d, consumer on %d",
				e.From, e.To, last.ToProc, pv.Proc)
		}
		if !almostLE(pu.Finish, c.Hops[0].Start) {
			return fmt.Errorf("sched: edge (%d,%d) comm starts %g before producer finish %g",
				e.From, e.To, c.Hops[0].Start, pu.Finish)
		}
		if !almostLE(c.Finish(), pv.Start) {
			return fmt.Errorf("sched: edge (%d,%d) comm finishes %g after consumer start %g",
				e.From, e.To, c.Finish(), pv.Start)
		}
		for i, h := range c.Hops {
			if h.FromProc == h.ToProc {
				return fmt.Errorf("sched: edge (%d,%d) hop %d is a self-hop on %d", e.From, e.To, i, h.FromProc)
			}
			want := pl.CommTime(e.Data, h.FromProc, h.ToProc)
			if !almostEQ(h.Finish-h.Start, want) {
				return fmt.Errorf("sched: edge (%d,%d) hop %d duration %g, want data*link = %g",
					e.From, e.To, i, h.Finish-h.Start, want)
			}
			if i > 0 {
				if c.Hops[i-1].ToProc != h.FromProc {
					return fmt.Errorf("sched: edge (%d,%d) hop chain broken at hop %d", e.From, e.To, i)
				}
				if !almostLE(c.Hops[i-1].Finish, h.Start) {
					return fmt.Errorf("sched: edge (%d,%d) hop %d starts before previous hop finishes", e.From, e.To, i)
				}
			}
		}
	}

	// every comm event must correspond to a cross-processor edge; verified
	// above via the non-edge check plus:
	for i := range s.Comms {
		c := &s.Comms[i]
		if s.Tasks[c.FromTask].Proc == s.Tasks[c.ToTask].Proc {
			return fmt.Errorf("sched: communication recorded for same-processor edge (%d,%d)", c.FromTask, c.ToTask)
		}
	}

	return validatePorts(g, s, pl.NumProcs(), model)
}

// checkDisjoint verifies that the non-empty windows are pairwise
// non-overlapping.
func checkDisjoint(what string, wins []Interval) error {
	sort.Slice(wins, func(i, j int) bool { return wins[i].Start < wins[j].Start })
	for i := 1; i < len(wins); i++ {
		if wins[i-1].End == wins[i-1].Start || wins[i].End == wins[i].Start {
			continue // zero-length windows never occupy a resource
		}
		if !almostLE(wins[i-1].End, wins[i].Start) {
			return fmt.Errorf("sched: %s overlap ([%g,%g) and [%g,%g))",
				what, wins[i-1].Start, wins[i-1].End, wins[i].Start, wins[i].End)
		}
	}
	return nil
}

// validatePorts checks the communication-resource constraints of the model:
//
//	OnePort           sends disjoint per processor; receives disjoint
//	UniPort           sends and receives together disjoint per processor
//	OnePortNoOverlap  OnePort rules + port activity disjoint from execution
//	LinkContention    at most one message per (half-duplex) wire at a time
//	MacroDataflow     nothing
func validatePorts(g *graph.Graph, s *Schedule, procs int, model Model) error {
	if model == MacroDataflow {
		return nil
	}
	if model == LinkContention {
		wires := make(map[[2]int][]Interval)
		for i := range s.Comms {
			for _, h := range s.Comms[i].Hops {
				k := wireKey(h.FromProc, h.ToProc)
				wires[k] = append(wires[k], Interval{Start: h.Start, End: h.Finish})
			}
		}
		// check wires in sorted key order: with several violating wires,
		// WHICH violation is reported must not depend on map order — the
		// error string reaches the service response, and two replicas
		// answering the same request with different errors breaks the
		// byte-identity promise
		keys := make([][2]int, 0, len(wires))
		for k := range wires {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			if err := checkDisjoint(fmt.Sprintf("link-contention violation: wire %d<->%d messages", k[0], k[1]), wires[k]); err != nil {
				return err
			}
		}
		return nil
	}

	sends := make([][]Interval, procs)
	recvs := make([][]Interval, procs)
	for i := range s.Comms {
		for _, h := range s.Comms[i].Hops {
			w := Interval{Start: h.Start, End: h.Finish}
			sends[h.FromProc] = append(sends[h.FromProc], w)
			recvs[h.ToProc] = append(recvs[h.ToProc], w)
		}
	}
	for p := 0; p < procs; p++ {
		if model == UniPort {
			both := append(append([]Interval(nil), sends[p]...), recvs[p]...)
			if err := checkDisjoint(fmt.Sprintf("uni-port violation: processor %d port activity", p), both); err != nil {
				return err
			}
			continue
		}
		if err := checkDisjoint(fmt.Sprintf("one-port violation: processor %d sends", p), append([]Interval(nil), sends[p]...)); err != nil {
			return err
		}
		if err := checkDisjoint(fmt.Sprintf("one-port violation: processor %d receives", p), append([]Interval(nil), recvs[p]...)); err != nil {
			return err
		}
	}
	if model == OnePortNoOverlap {
		for p := 0; p < procs; p++ {
			wins := append(append([]Interval(nil), sends[p]...), recvs[p]...)
			for v := 0; v < g.NumNodes(); v++ {
				if s.Tasks[v].Done && s.Tasks[v].Proc == p {
					wins = append(wins, Interval{Start: s.Tasks[v].Start, End: s.Tasks[v].Finish})
				}
			}
			if err := checkDisjoint(fmt.Sprintf("no-overlap violation: processor %d communication vs computation", p), wins); err != nil {
				return err
			}
		}
	}
	return nil
}

// wireKey canonicalizes an unordered processor pair.
func wireKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
