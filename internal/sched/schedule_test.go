package sched

import (
	"encoding/json"
	"math"
	"testing"
)

func TestModelString(t *testing.T) {
	if MacroDataflow.String() != "macro-dataflow" || OnePort.String() != "one-port" {
		t.Fatalf("Model strings wrong: %v %v", MacroDataflow, OnePort)
	}
	if Model(42).String() != "Model(42)" {
		t.Fatalf("unknown model string: %v", Model(42))
	}
}

func TestScheduleBasics(t *testing.T) {
	s := NewSchedule(3, 2)
	if s.Proc(0) != -1 {
		t.Fatal("unscheduled task should report proc -1")
	}
	s.SetTask(0, 0, 0, 2)
	s.SetTask(1, 1, 1, 4)
	s.SetTask(2, 0, 2, 6)
	if s.Makespan() != 6 {
		t.Errorf("Makespan = %g, want 6", s.Makespan())
	}
	if s.Proc(1) != 1 {
		t.Errorf("Proc(1) = %d, want 1", s.Proc(1))
	}
	s.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 2, Finish: 3}}})
	if s.CommCount() != 1 {
		t.Errorf("CommCount = %d, want 1", s.CommCount())
	}
	if s.TotalCommTime() != 1 {
		t.Errorf("TotalCommTime = %g, want 1", s.TotalCommTime())
	}
	c := s.Comms[0]
	if c.Start() != 2 || c.Finish() != 3 {
		t.Errorf("comm window = [%g,%g], want [2,3]", c.Start(), c.Finish())
	}
}

func TestComputeStats(t *testing.T) {
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 0, 4)
	s.SetTask(1, 1, 0, 2)
	st := s.ComputeStats()
	if st.Makespan != 4 {
		t.Errorf("Makespan = %g", st.Makespan)
	}
	if st.ProcBusy[0] != 4 || st.ProcBusy[1] != 2 {
		t.Errorf("ProcBusy = %v", st.ProcBusy)
	}
	// utilization = (4/4 + 2/4)/2 = 0.75
	if math.Abs(st.Utilization-0.75) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.75", st.Utilization)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 1, 2, 3)
	s.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 5,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Makespan() != s.Makespan() || back.CommCount() != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if !back.Tasks[0].Done || back.Proc(1) != 1 {
		t.Fatal("Done flags not restored")
	}
}
